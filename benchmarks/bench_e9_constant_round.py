"""E9 — Corollary 1.4: constant AMPC rounds at fixed α as n grows."""

from repro.experiments.e9_constant_round import run_constant_round


def test_e9_constant_round(benchmark, show_table):
    rows = benchmark.pedantic(
        run_constant_round,
        kwargs=dict(ns=(100, 200, 400, 800), alpha=2),
        rounds=1,
        iterations=1,
    )
    show_table(rows, "E9 — Corollary 1.4: rounds vs n at fixed α")
    for row in rows:
        assert row["colors"] <= row["cap"], row
    # Partition rounds flat in n (the constant-round claim).
    partition_rounds = [row["partition_rounds"] for row in rows]
    assert max(partition_rounds) - min(partition_rounds) <= 1, partition_rounds
    # Total rounds must not trend upward with n (simulation-depth constant).
    totals = [row["total_rounds"] for row in rows]
    assert totals[-1] <= 2 * max(totals[0], 1), totals
