"""F4 — AMPC runtime throughput: columnar stores vs the dict-backed oracle.

Measures ``beta_partition_ampc`` end-to-end on both execution fabrics at
the scale the ROADMAP names as the dict path's breaking point (n = 10⁵),
in the two regimes of Theorem 1.2:

1. **lca** — the coin-dropping-game rounds (β = (2+ε)α on a sparse
   ``random_gnm``, the default pipeline configuration).  The game is an
   inherently adaptive per-vertex process; the columnar win here comes
   from CSR-native residual encoding, flat-list adjacency probes, and the
   worklist/lazy-σ game engine.
2. **peel** — the Barenboim-Elkin fallback, where every round is a pure
   degree-mask array kernel and the speedup is the full dict-overhead
   factor.

Both fabrics produce *identical* partitions, round counts, and per-round
statistics (asserted here on the quick config and by the equivalence
tests); the benchmark's job is only to time them.  The lca regime is
additionally swept over ``workers`` (process-pool machine sharding;
``columnar_workers_s`` in the JSON records the per-worker scaling —
informative only on multi-core hosts, but every sweep point must still
reproduce the serial partition exactly).

Run as a script to (re)generate the tracked ``BENCH_ampc.json``::

    PYTHONPATH=src python benchmarks/bench_f4_ampc_runtime.py \
        --out BENCH_ampc.json

or with ``--quick`` for a CI-sized configuration.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.ampc.pool import close_shared_pools
from repro.core.beta_partition_ampc import beta_partition_ampc
from repro.graphs.generators import random_gnm

FULL_CONFIG = {"n": 100_000, "m": 200_000, "seed": 20260730, "beta": 9}
QUICK_CONFIG = {"n": 8_000, "m": 16_000, "seed": 20260730, "beta": 9}
FULL_WORKER_SWEEP = (1, 2, 4)
QUICK_WORKER_SWEEP = (1, 2)


def _time_run(graph, beta: int, mode: str, store: str, workers: int = 1):
    start = time.perf_counter()
    outcome = beta_partition_ampc(
        graph, beta, mode=mode, store=store, workers=workers
    )
    elapsed = time.perf_counter() - start
    return elapsed, outcome


def bench_mode(
    graph,
    beta: int,
    mode: str,
    check_equivalence: bool,
    worker_sweep: tuple[int, ...] = (),
) -> dict:
    """Columnar vs dict wall-clock for one Theorem 1.2 regime.

    ``worker_sweep`` additionally times the columnar path at each worker
    count (per-machine coin-game sharding over the process pool) and
    verifies every sweep point reproduces the serial partition exactly.
    """
    columnar_s, columnar = _time_run(graph, beta, mode, "columnar")
    dict_s, oracle = _time_run(graph, beta, mode, "dict")
    assert columnar.rounds == oracle.rounds
    assert columnar.partition.size() == oracle.partition.size()
    if check_equivalence:
        assert columnar.partition.layers == oracle.partition.layers
        for a, b in zip(
            oracle.simulator.stats.rounds, columnar.simulator.stats.rounds
        ):
            assert (a.total_reads, a.total_writes, a.store_words) == (
                b.total_reads, b.total_writes, b.store_words
            )
    report = {
        "mode": mode,
        "beta": beta,
        "columnar_s": round(columnar_s, 3),
        "dict_s": round(dict_s, 3),
        "speedup": round(dict_s / columnar_s, 2),
        "rounds": columnar.rounds,
        "num_layers": columnar.num_layers,
        "total_reads": sum(
            r.total_reads for r in columnar.simulator.stats.rounds
        ),
    }
    if worker_sweep:
        scaling = {"1": report["columnar_s"]}
        for workers in worker_sweep:
            if workers == 1:
                continue
            sweep_s, sweep = _time_run(graph, beta, mode, "columnar", workers)
            assert sweep.partition.layers == columnar.partition.layers
            scaling[str(workers)] = round(sweep_s, 3)
        close_shared_pools()
        report["columnar_workers_s"] = scaling
    return report


def run(
    config: dict,
    check_equivalence: bool = False,
    worker_sweep: tuple[int, ...] = (),
) -> dict:
    graph = random_gnm(config["n"], config["m"], config["seed"])
    return {
        "bench": "f4_ampc_runtime",
        "config": dict(config),
        "lca": bench_mode(
            graph, config["beta"], "lca", check_equivalence, worker_sweep
        ),
        "peel": bench_mode(
            graph, max(2, config["beta"] // 2), "peel", check_equivalence
        ),
    }


def test_f4_ampc_runtime(benchmark, show_table):
    """Quick config: columnar must beat dict in both regimes, equivalently."""
    report = benchmark.pedantic(
        lambda: run(
            QUICK_CONFIG,
            check_equivalence=True,
            worker_sweep=QUICK_WORKER_SWEEP,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        {"metric": f"{mode}.{key}", "value": value}
        for mode in ("lca", "peel")
        for key, value in report[mode].items()
    ]
    show_table(rows, "F4 — AMPC runtime (quick config)")
    # Loose bounds for shared CI hardware; the committed BENCH_ampc.json
    # records the full-size numbers.
    assert report["lca"]["speedup"] >= 1.5
    assert report["peel"]["speedup"] >= 3.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=FULL_CONFIG["n"])
    parser.add_argument("--m", type=int, default=FULL_CONFIG["m"])
    parser.add_argument("--seed", type=int, default=FULL_CONFIG["seed"])
    parser.add_argument("--beta", type=int, default=FULL_CONFIG["beta"])
    parser.add_argument("--quick", action="store_true", help="CI-sized config")
    parser.add_argument("--out", default=None, help="write JSON here")
    args = parser.parse_args()
    if args.quick:
        config = dict(QUICK_CONFIG)
        sweep = QUICK_WORKER_SWEEP
    else:
        config = {"n": args.n, "m": args.m, "seed": args.seed, "beta": args.beta}
        sweep = FULL_WORKER_SWEEP
    report = run(config, check_equivalence=args.quick, worker_sweep=sweep)
    text = json.dumps(report, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")


if __name__ == "__main__":
    main()
