"""F4 — AMPC runtime throughput: columnar stores vs the dict-backed oracle.

Measures ``beta_partition_ampc`` end-to-end on both execution fabrics at
the scale the ROADMAP names as the dict path's breaking point (n = 10⁵),
in the two regimes of Theorem 1.2:

1. **lca** — the coin-dropping-game rounds (β = (2+ε)α on a sparse
   ``random_gnm``, the default pipeline configuration).  The columnar
   fabric runs the lockstep batched game engine
   (:mod:`repro.core.batched_games`) by default; the PR 2/3 per-game
   scalar interpreter is timed alongside it (``columnar_scalar_s``) as
   the engine baseline, and — whenever the fused C kernel can load —
   so is ``engine="compiled"`` (``compiled_s``, with
   ``engine_speedup_compiled`` = batched/compiled of the same run).
2. **peel** — the Barenboim-Elkin fallback, where every round is a pure
   degree-mask array kernel and the speedup is the full dict-overhead
   factor.

All fabrics and engines produce *identical* partitions, round counts,
and per-round statistics (asserted here on the quick config and by the
equivalence tests); the benchmark's job is only to time them.  The lca
regime is additionally swept over ``workers`` (process-pool machine
sharding; ``columnar_workers_s`` in the JSON records the per-worker
scaling — informative only on multi-core hosts, but every sweep point
must still reproduce the serial partition exactly).

Run as a script to (re)generate the tracked ``BENCH_ampc.json``::

    PYTHONPATH=src python benchmarks/bench_f4_ampc_runtime.py \
        --phases --out BENCH_ampc.json

or with ``--quick`` for a CI-sized configuration.  ``--phases`` records
the lca rounds' per-phase wall clock (explore / forward / fold / cache)
and the incremental-replay reuse counters (replayed/fresh waves and
entries, redo games, cone fraction) land in the lca block either way.
``--check-regression BENCH_ampc.json`` compares the current run against
the tracked baseline and fails (exit 2) if the lca columnar time
regressed by more than 25% or if any single phase regressed by more
than 40% — both normalized by the dict-oracle time of the same run, so
those guards measure the code path, not the CI hardware — or if pool
dispatch at any swept worker count exceeds the *same run's* serial
columnar time by more than its overhead budget (1.25x at workers=2; a
within-run ratio, so it needs no baseline or normalization).  The
worker-overhead guard reads the recorded ``host_cpus``: on a 1-core
host the pool forks no more processes than the core count, so every
point — workers=4 included — is held to the flat
:data:`MAX_WORKER_OVERHEAD_SINGLE_CORE` dispatch budget (the old
superlinear 11.3/31.4/102.6 s sweep fails it immediately; pure
dispatch overhead passes with room).  When the compiled leg ran, the
guard also requires the
same-run ``engine_speedup_compiled`` to stay at or above
:data:`MIN_COMPILED_SPEEDUP` on the quick config — a within-run ratio
that catches the fused kernel silently losing its edge (or silently
dropping out while the kernel still loads).

The lca block also times one ``transport="message"`` leg (the
PR 6 sharded fabric at :data:`MESSAGE_SHARDS` shards) and records its
communication/memory counters — messages, words, sub-rounds, max
per-shard words, and the peak *real* held-row words — next to a
configured per-shard S budget (:data:`MESSAGE_HELD_BUDGET_FACTOR` x
the graph's CSR words).  The leg asserts the sharded partition equals
the shared-memory one, and ``--check-regression`` additionally fails
when the measured max per-shard held words exceeds that budget: the
counters are deterministic for a fixed config, so this guard needs no
baseline or hardware normalization either.

``--guard-worker-monotone`` turns the worker sweep into a scaling
guard for multi-core runners: each successive swept worker count must
not run slower than the previous one by more than
:data:`MONOTONE_SLACK`.  Sweep points asking for more workers than the
host has cores are waived with a logged notice (in particular the
whole guard soft-fails on a 1-core runner), so the flag is safe to set
unconditionally in CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.ampc import faults
from repro.ampc.engine_config import EngineConfig
from repro.ampc.faults import FaultPlan
from repro.ampc.pool import close_shared_pools
from repro.core import native
from repro.core.batched_games import replay_cone_fraction
from repro.core.beta_partition_ampc import beta_partition_ampc
from repro.graphs.generators import random_gnm

FULL_CONFIG = {"n": 100_000, "m": 200_000, "seed": 20260730, "beta": 9}
QUICK_CONFIG = {"n": 8_000, "m": 16_000, "seed": 20260730, "beta": 9}
FULL_WORKER_SWEEP = (1, 2, 4)
# workers={2,4} ride in the quick sweep too (CI's REPRO_WORKERS matrix
# leg), so a multi-worker pool regression cannot return silently.
QUICK_WORKER_SWEEP = (1, 2, 4)

# A quick-config lca run may regress this much against the tracked
# baseline (after dict-normalization) before --check-regression fails.
MAX_REGRESSION = 0.25
# Any single lca phase (explore / forward / fold / cache) may regress
# this much (dict-normalized) before the guard fails; phases below
# MIN_PHASE_SHARE of the columnar total — or below MIN_PHASE_SECONDS
# of absolute wall clock, where min-of-3 timing cannot resolve a 40%
# delta from scheduler noise — are noise and not guarded.
MAX_PHASE_REGRESSION = 0.40
MIN_PHASE_SHARE = 0.05
MIN_PHASE_SECONDS = 0.1
# Pool dispatch on an oversubscribed host (CI runners, 1-core boxes) may
# cost at most this factor over the serial columnar run before the
# worker guard fails.  workers=2 is the acceptance bar (dispatch cost
# must stay near-serial even with zero spare cores); higher counts get
# headroom for pure time-slicing overhead on small hosts — the PR 4
# regression pattern (time growing linearly with the worker count)
# lands past both.
MAX_WORKER_OVERHEAD = {"2": 1.25}
MAX_WORKER_OVERHEAD_DEFAULT = 1.6
# On a 1-core host the executor never forks more processes than cores
# (the pool caps it), so any requested worker count must cost only the
# fixed dispatch overhead: every sweep point is held to this flat
# budget instead of being waived.  The old superlinear regression
# (11.3/31.4/102.6 s at workers 1/2/4 — oversubscribed CPU-bound
# workers multiplying kernel page-fault overhead) fails this bar by 5x.
MAX_WORKER_OVERHEAD_SINGLE_CORE = 2.0
# The message-transport leg: shard count, and the per-shard S budget
# for *held* residual rows (owned slice + pinned ghost fringe), as a
# multiple of the graph's full CSR words.  Deep default-x balls pin
# wide ghost fringes, so the per-shard held peak can exceed one CSR
# copy (~3.5x on the quick config); 4.5x gives the guard headroom
# without letting the fringe grow unbounded.
MESSAGE_SHARDS = 4
MESSAGE_HELD_BUDGET_FACTOR = 4.5
# The message fabric runs the compiled engine inside its shards (when
# the kernel loads), so the quick-config transport tax over the bare
# compiled run is a within-run ratio the guard can pin.  Before the
# fabric's seeded exchanges / speculative prefetch / pooled shard
# chains, quick message_s tracked 9.91 s against a 0.102 s compiled
# run (~97x); the columnar row plane (slab serving, incremental local
# CSR, cross-round ghost cache) brought the tax under 8x, which this
# factor pins without a baseline or hardware normalization.
MAX_MESSAGE_OVER_COMPILED = 8.0
# Each swept worker count may be at most this factor slower than the
# previous one before --guard-worker-monotone fails (non-increasing
# up to timing noise and pool dispatch overhead).
MONOTONE_SLACK = 1.25
# When the fused C kernel loads, the quick-config compiled run must
# beat the same run's batched time by at least this factor — a
# within-run ratio, so no baseline or hardware normalization applies.
# The tracked full-size margin is far larger; 2x keeps headroom for
# the quick config's fixed per-round overhead (graph setup, folding).
MIN_COMPILED_SPEEDUP = 2.0
# The round supervisor's zero-fault bookkeeping (deadline polling,
# result checksum verification) may cost at most this share of the
# pooled run's wall clock — a within-run ratio, so no baseline or
# hardware normalization applies.
MAX_RECOVERY_OVERHEAD = 0.03


def _time_run(graph, beta: int, mode: str, store: str, workers: int = 1,
              engine=None, phases=None, **kwargs):
    start = time.perf_counter()
    outcome = beta_partition_ampc(
        graph, beta, mode=mode, store=store, workers=workers, engine=engine,
        phases=phases, **kwargs,
    )
    elapsed = time.perf_counter() - start
    return elapsed, outcome


def bench_mode(
    graph,
    beta: int,
    mode: str,
    check_equivalence: bool,
    worker_sweep: tuple[int, ...] = (),
    phases: bool = False,
    repeats: int = 1,
    chaos: bool = False,
) -> dict:
    """Columnar vs dict wall-clock for one Theorem 1.2 regime.

    ``worker_sweep`` additionally times the columnar path at each worker
    count (per-machine coin-game sharding over the process pool) and
    verifies every sweep point reproduces the serial partition exactly.
    ``repeats`` takes the best of that many timings for every measured
    configuration — quick configs are noisy enough that the regression
    guard needs it, and the min must apply symmetrically or the derived
    ratios (speedup, engine_speedup, worker scaling) would be biased.
    """
    want_phases = phases and mode == "lca"
    phase_times: dict | None = {} if want_phases else None
    columnar_s, columnar = _time_run(
        graph, beta, mode, "columnar", phases=phase_times
    )
    for __ in range(repeats - 1):
        repeat_phases: dict | None = {} if want_phases else None
        repeat_s, __o = _time_run(
            graph, beta, mode, "columnar", phases=repeat_phases
        )
        if repeat_s < columnar_s:
            # Keep the breakdown of the run the headline time reports.
            columnar_s, phase_times = repeat_s, repeat_phases
    scalar_s = scalar = compiled_s = None
    if mode == "lca":
        # Timed before the dict oracle so the engine comparison is not
        # skewed by the dict run's interpreter-heap churn.
        scalar_s, scalar = _time_run(
            graph, beta, mode, "columnar", engine="scalar"
        )
        for __ in range(repeats - 1):
            scalar_s = min(
                scalar_s,
                _time_run(graph, beta, mode, "columnar", engine="scalar")[0],
            )
        assert scalar.partition.layers == columnar.partition.layers
        if native.available():
            # The fused C kernel leg only exists where it can load; the
            # engine-fallback CI step runs with it disabled, and the
            # regression guard treats the missing leg as a waiver there.
            compiled_s, compiled = _time_run(
                graph, beta, mode, "columnar", engine="compiled"
            )
            for __ in range(repeats - 1):
                compiled_s = min(
                    compiled_s,
                    _time_run(
                        graph, beta, mode, "columnar", engine="compiled"
                    )[0],
                )
            assert compiled.engine == "compiled"
            assert compiled.partition.layers == columnar.partition.layers
    dict_s, oracle = _time_run(graph, beta, mode, "dict")
    for __ in range(repeats - 1):
        dict_s = min(dict_s, _time_run(graph, beta, mode, "dict")[0])
    assert columnar.rounds == oracle.rounds
    assert columnar.partition.size() == oracle.partition.size()
    if check_equivalence:
        assert columnar.partition.layers == oracle.partition.layers
        for a, b in zip(
            oracle.simulator.stats.rounds, columnar.simulator.stats.rounds
        ):
            assert (a.total_reads, a.total_writes, a.store_words) == (
                b.total_reads, b.total_writes, b.store_words
            )
    report = {
        "mode": mode,
        "beta": beta,
        "columnar_s": round(columnar_s, 3),
        "dict_s": round(dict_s, 3),
        "speedup": round(dict_s / columnar_s, 2),
        "rounds": columnar.rounds,
        "num_layers": columnar.num_layers,
        "total_reads": sum(
            r.total_reads for r in columnar.simulator.stats.rounds
        ),
    }
    if scalar_s is not None:
        # Peel rounds are degree-mask kernels with no coin games, so the
        # engine comparison only exists for lca mode.
        report["engine"] = columnar.engine
        report["columnar_scalar_s"] = round(scalar_s, 3)
        report["engine_speedup"] = round(scalar_s / columnar_s, 2)
        if compiled_s is not None:
            report["compiled_s"] = round(compiled_s, 3)
            report["engine_speedup_compiled"] = round(
                columnar_s / compiled_s, 2
            )
        # Incremental-replay reuse, summed over the run's lca rounds.
        totals: dict = {}
        for reuse in columnar.round_reuse:
            for key, value in reuse.items():
                if isinstance(value, int):
                    totals[key] = totals.get(key, 0) + value
        totals["cone_fraction"] = replay_cone_fraction(totals)
        report["replay"] = totals
    if mode == "lca":
        # One sharded-fabric leg: same partition, plus the communication
        # and memory counters the S-budget regression guard reads.  The
        # counters are deterministic for a fixed config; only message_s
        # is hardware-dependent.  The fabric runs the compiled engine
        # inside its shards whenever the kernel loads (the block records
        # which engine actually ran, so the regression guard notices a
        # silent fallback to the slow path).
        csr_words = (graph.num_vertices + 1) + 2 * graph.num_edges
        message_engine = "compiled" if native.available() else None
        message_s, sharded = _time_run(
            graph, beta, mode, "columnar", engine=message_engine,
            transport="message", shards=MESSAGE_SHARDS,
        )
        for __ in range(repeats - 1):
            message_s = min(
                message_s,
                _time_run(
                    graph, beta, mode, "columnar", engine=message_engine,
                    transport="message", shards=MESSAGE_SHARDS,
                )[0],
            )
        assert sharded.partition.layers == columnar.partition.layers
        comm_totals: dict = {}
        for comm in sharded.round_comm:
            for key in ("messages", "words", "subrounds",
                        "row_requests", "rows_served",
                        "ghost_cache_hits", "ghost_cache_evicted"):
                comm_totals[key] = comm_totals.get(key, 0) + comm.get(key, 0)
        # Per-phase fabric wall (serve / install / compact / play, plus
        # the pooled replay overlap), summed over rounds — so the next
        # transport PR profiles instead of guessing.
        phase_split: dict = {}
        for comm in sharded.round_comm:
            for key in ("serve_s", "install_s", "compact_s", "play_s",
                        "comm_overlap_s"):
                phase_split[key] = phase_split.get(key, 0.0) + comm.get(
                    key, 0.0
                )
        report["message"] = {
            "shards": sharded.shards,
            "engine": sharded.engine,
            "message_s": round(message_s, 3),
            "budget_words": int(MESSAGE_HELD_BUDGET_FACTOR * csr_words),
            "max_held_words": sharded.max_held_words,
            "max_shard_words": max(
                (c.get("max_shard_words", 0) for c in sharded.round_comm),
                default=0,
            ),
            "ghost_cache_words": EngineConfig.from_env().ghost_cache_words,
            "ghost_cache_held_words": max(
                (c.get("ghost_cache_held_words", 0)
                 for c in sharded.round_comm),
                default=0,
            ),
            "phase_s": {k: round(v, 3) for k, v in phase_split.items()},
            **comm_totals,
        }
    if phase_times is not None:
        report["phases"] = {
            k: round(v, 3) for k, v in sorted(phase_times.items())
        }
    if worker_sweep:
        scaling = {"1": report["columnar_s"]}
        for workers in worker_sweep:
            if workers == 1:
                continue
            sweep_s, sweep = _time_run(
                graph, beta, mode, "columnar", workers=workers
            )
            if workers == 2 and mode == "lca":
                # Zero-fault recovery accounting from the first pooled
                # run: every counter must be zero, and the supervisor's
                # bookkeeping (deadline polling, checksum verification)
                # must stay under MAX_RECOVERY_OVERHEAD of this run's
                # own wall clock — both guarded by --check-regression.
                rec = dict(sweep.round_recovery)
                report["recovery"] = {
                    "pool_wall_s": round(sweep_s, 3),
                    "recovery_overhead_s": round(
                        rec.pop("recovery_wall_s"), 4
                    ),
                    **rec,
                }
            for __ in range(repeats - 1):
                sweep_s = min(
                    sweep_s,
                    _time_run(graph, beta, mode, "columnar", workers=workers)[0],
                )
            assert sweep.partition.layers == columnar.partition.layers
            scaling[str(workers)] = round(sweep_s, 3)
        report["columnar_workers_s"] = scaling
        if mode == "lca" and "message" in report:
            # The pooled-fabric matrix: the same sweep over the
            # message transport, whose shard chains dispatch to the
            # worker pool.  Every point must still reproduce the
            # serial partition exactly; the monotone guard covers this
            # dict alongside the plain columnar sweep.
            message_engine = "compiled" if native.available() else None
            fabric_scaling = {"1": report["message"]["message_s"]}
            for workers in worker_sweep:
                if workers == 1:
                    continue
                sweep_s, sweep = _time_run(
                    graph, beta, mode, "columnar", engine=message_engine,
                    transport="message", shards=MESSAGE_SHARDS,
                    workers=workers,
                )
                for __ in range(repeats - 1):
                    sweep_s = min(
                        sweep_s,
                        _time_run(
                            graph, beta, mode, "columnar",
                            engine=message_engine, transport="message",
                            shards=MESSAGE_SHARDS, workers=workers,
                        )[0],
                    )
                assert sweep.partition.layers == columnar.partition.layers
                fabric_scaling[str(workers)] = round(sweep_s, 3)
            report["message"]["message_workers_s"] = fabric_scaling
        if chaos and mode == "lca":
            # The degraded-serial leg (quick config only): a rate=1.0
            # crash plan makes every pool attempt fail, so after
            # max_shard_retries the supervisor runs every shard chain
            # inline on the driver — and the partition must still be
            # bit-identical.  Guarded by --check-regression so the
            # degradation path cannot silently rot.
            plan = FaultPlan(seed=QUICK_CONFIG["seed"], rate=1.0,
                             kinds=("crash",))
            fast = EngineConfig.from_env().with_overrides(
                retry_backoff_s=0.0
            )
            with faults.inject(plan):
                degraded_s, degraded = _time_run(
                    graph, beta, mode, "columnar", workers=2, config=fast,
                )
            rec = degraded.round_recovery
            report.setdefault("recovery", {})["degraded"] = {
                "degraded_s": round(degraded_s, 3),
                "degraded_shards": rec["degraded_shards"],
                "retries": rec["retries"],
                "bit_identical": (
                    degraded.partition.layers == columnar.partition.layers
                ),
            }
        close_shared_pools()
        # Recorded next to the sweep so a reader (and the regression
        # guard) can tell dispatch cost from plain time-slicing.
        report["host_cpus"] = os.cpu_count() or 1
    return report


def run(
    config: dict,
    check_equivalence: bool = False,
    worker_sweep: tuple[int, ...] = (),
    phases: bool = False,
    repeats: int = 1,
    chaos: bool = False,
) -> dict:
    graph = random_gnm(config["n"], config["m"], config["seed"])
    return {
        "bench": "f4_ampc_runtime",
        "config": dict(config),
        "lca": bench_mode(
            graph, config["beta"], "lca", check_equivalence, worker_sweep,
            phases=phases, repeats=repeats, chaos=chaos,
        ),
        "peel": bench_mode(
            graph, max(2, config["beta"] // 2), "peel", check_equivalence
        ),
    }


def check_regression(report: dict, baseline: dict) -> tuple[list[str], list[str]]:
    """Compare a run against the tracked baseline's matching config.

    Returns ``(failures, waivers)`` — failure messages (empty = within
    budget) plus logged notices for guards that were skipped for a
    stated hardware reason rather than passed.  Times are normalized by
    the same run's dict-oracle wall clock before comparing, so the
    guard is about the columnar code path rather than absolute CI
    hardware speed.  Besides the headline lca columnar time, the guard
    covers the per-phase breakdown (a >40% dict-normalized regression
    in any single phase fails even when the total hides it) and the
    worker sweep (pool dispatch may not exceed the serial run by more
    than :data:`MAX_WORKER_OVERHEAD` on any measured worker count — the
    shape of the old per-worker-linear pool regression).  On a host
    with fewer than 2 CPUs (the recorded ``host_cpus``) the pool forks
    no extra processes, so every worker point is held to the flat
    :data:`MAX_WORKER_OVERHEAD_SINGLE_CORE` dispatch budget instead of
    the per-count table.  The message-transport leg is guarded
    within-run: its max per-shard held words must stay inside the
    configured S budget (deterministic counters, so no baseline
    normalization applies), the leg may not silently drop out while
    the baseline still tracks it, its shards must run the compiled
    engine whenever the kernel loads, and on the quick config its
    transport tax over the same-run compiled leg must stay under
    :data:`MAX_MESSAGE_OVER_COMPILED`.  Finally,
    when the fused C kernel loaded, the same run's compiled leg must
    beat its batched leg by :data:`MIN_COMPILED_SPEEDUP` on the quick
    config; a missing compiled leg is a waiver when the kernel cannot
    load (the engine-fallback CI step) and a failure when it can.  The
    quick config additionally guards the round supervisor: a clean run
    must record zero recovery counters, the supervisor's bookkeeping
    (deadline polling, result checksums) must cost under
    :data:`MAX_RECOVERY_OVERHEAD` of the pooled wall clock, and the
    degraded-to-serial leg (every pool attempt faulted) must stay
    bit-identical — all within-run ratios, no normalization.
    """
    section = (
        "quick" if report["config"] == baseline.get("quick", {}).get("config")
        else None
    )
    if section == "quick":
        base = baseline["quick"]["lca"]
    elif report["config"] == baseline.get("config"):
        base = baseline["lca"]
    else:
        return (
            [
                "no matching config in baseline: refresh the tracked JSON "
                "with this benchmark's --out (and --quick for the quick "
                "block)"
            ],
            [],
        )
    failures = []
    waivers = []
    current_ratio = report["lca"]["columnar_s"] / report["lca"]["dict_s"]
    base_ratio = base["columnar_s"] / base["dict_s"]
    if current_ratio > base_ratio * (1 + MAX_REGRESSION):
        failures.append(
            f"lca columnar regressed: columnar/dict ratio {current_ratio:.4f} "
            f"vs baseline {base_ratio:.4f} "
            f"(>{MAX_REGRESSION:.0%} over budget)"
        )
    base_phases = base.get("phases") or {}
    cur_phases = report["lca"].get("phases") or {}
    for phase, base_s in base_phases.items():
        if base_s < max(MIN_PHASE_SHARE * base["columnar_s"],
                        MIN_PHASE_SECONDS):
            continue  # too small to separate from noise
        cur_s = cur_phases.get(phase)
        if cur_s is None:
            # A tracked phase that stopped being measured must fail
            # loudly, not silently drop out of the guard.
            failures.append(
                f"lca phase '{phase}' is in the baseline but missing from "
                "this run (run with --phases, or refresh the baseline)"
            )
            continue
        cur_norm = cur_s / report["lca"]["dict_s"]
        base_norm = base_s / base["dict_s"]
        if cur_norm > base_norm * (1 + MAX_PHASE_REGRESSION):
            failures.append(
                f"lca phase '{phase}' regressed: dict-normalized "
                f"{cur_norm:.4f} vs baseline {base_norm:.4f} "
                f"(>{MAX_PHASE_REGRESSION:.0%} over budget)"
            )
    scaling = report["lca"].get("columnar_workers_s") or {}
    serial_s = report["lca"]["columnar_s"]
    host_cpus = report["lca"].get("host_cpus") or os.cpu_count() or 1
    for workers, sweep_s in scaling.items():
        if workers == "1":
            continue
        if host_cpus < 2:
            # The pool never forks more processes than the host has
            # cores, so on a 1-core host every requested worker count
            # must cost only the fixed dispatch overhead — a flat
            # budget, not a waiver (the old superlinear sweep fails it
            # immediately).
            limit = MAX_WORKER_OVERHEAD_SINGLE_CORE
        else:
            limit = MAX_WORKER_OVERHEAD.get(
                workers, MAX_WORKER_OVERHEAD_DEFAULT
            )
        if sweep_s > serial_s * limit:
            failures.append(
                f"pool dispatch at workers={workers} costs {sweep_s:.3f}s vs "
                f"{serial_s:.3f}s serial (>{limit:.2f}x overhead budget"
                f"{' on a 1-core host' if host_cpus < 2 else ''})"
            )
    message = report["lca"].get("message") or {}
    if base.get("message") and not message:
        # Same spirit as the phase drop-out check: a tracked leg that
        # silently stops being measured must fail, not slip the guard.
        failures.append(
            "lca message-transport leg is in the baseline but missing "
            "from this run (refresh the baseline if it was removed)"
        )
    budget = message.get("budget_words")
    if budget and message.get("max_held_words", 0) > budget:
        failures.append(
            f"message fabric exceeded its S budget: max per-shard held "
            f"words {message['max_held_words']} > {budget} "
            f"(shards={message.get('shards')}; a within-run check — the "
            "ghost fringe or owned-slice residency grew)"
        )
    if message and native.available():
        if message.get("engine") != "compiled":
            # The fabric must run the fused kernel inside its shards
            # whenever it loads; most of the pre-pooling 212 s full-size
            # message time was exactly this silent pin to the slow path.
            failures.append(
                "message fabric ran engine="
                f"{message.get('engine')!r} although the compiled kernel "
                "loads (the shard chains silently fell back)"
            )
        elif report["lca"].get("compiled_s") and section == "quick":
            # Within-run transport tax: quick message_s over the bare
            # compiled run of the same graph.  Encodes the >= 5x
            # improvement bar over the pre-pooling 9.91 s baseline
            # without hardware normalization.
            ratio = message["message_s"] / report["lca"]["compiled_s"]
            if ratio > MAX_MESSAGE_OVER_COMPILED:
                failures.append(
                    f"message transport tax regressed: message_s "
                    f"{message['message_s']:.3f}s is {ratio:.1f}x the "
                    f"same-run compiled {report['lca']['compiled_s']:.3f}s "
                    f"(>{MAX_MESSAGE_OVER_COMPILED:.0f}x budget)"
                )
    recovery = report["lca"].get("recovery")
    if section == "quick":
        # Supervisor guards, all within-run (no baseline normalization):
        # a clean CI run must inject zero faults, the supervisor's
        # bookkeeping must stay under MAX_RECOVERY_OVERHEAD of the
        # pooled wall clock, and the degraded-serial leg must still be
        # bit-identical.
        if recovery is None:
            failures.append(
                "the quick run has no lca recovery block (the supervisor "
                "overhead guard cannot silently drop out; run with the "
                "quick worker sweep)"
            )
        else:
            fault_counts = {
                k: v for k, v in recovery.items()
                if isinstance(v, int) and v
            }
            if fault_counts:
                failures.append(
                    f"zero-fault pooled run recovered from faults: "
                    f"{fault_counts} (real worker loss, or a fault plan "
                    "leaked into the bench environment)"
                )
            overhead = recovery["recovery_overhead_s"]
            budget = MAX_RECOVERY_OVERHEAD * recovery["pool_wall_s"]
            if overhead > budget:
                failures.append(
                    f"supervisor recovery overhead {overhead:.4f}s exceeds "
                    f"{MAX_RECOVERY_OVERHEAD:.0%} of the pooled wall clock "
                    f"{recovery['pool_wall_s']:.3f}s (checksum/deadline "
                    "bookkeeping got expensive)"
                )
            degraded = recovery.get("degraded")
            if degraded is None:
                failures.append(
                    "the quick run has no degraded-serial leg (the "
                    "degradation guard cannot silently drop out)"
                )
            elif not degraded["bit_identical"]:
                failures.append(
                    "the degraded-serial path diverged from the serial "
                    "partition (inline re-execution is no longer "
                    "bit-identical)"
                )
            elif degraded["degraded_shards"] == 0:
                failures.append(
                    "the degraded-serial leg degraded zero shards (the "
                    "rate=1.0 crash plan stopped reaching the workers)"
                )
    compiled_s = report["lca"].get("compiled_s")
    if compiled_s is None:
        if not native.available():
            waivers.append(
                "compiled engine leg not measured (kernel unavailable: "
                f"{native.load_error()!r}): compiled speedup guard waived"
            )
        else:
            failures.append(
                "compiled kernel loads but the run has no compiled_s leg "
                "(the compiled-vs-batched guard cannot silently drop out)"
            )
    elif section == "quick":
        # Within-run ratio: no baseline or hardware normalization.  Only
        # the quick config is guarded in CI; full-size refreshes carry a
        # far larger margin and are eyeballed at --out time.
        speedup = report["lca"]["columnar_s"] / compiled_s
        if speedup < MIN_COMPILED_SPEEDUP:
            failures.append(
                f"compiled engine lost its edge: {compiled_s:.3f}s vs "
                f"{report['lca']['columnar_s']:.3f}s batched "
                f"({speedup:.2f}x < {MIN_COMPILED_SPEEDUP:.1f}x same-run "
                "budget)"
            )
    return failures, waivers


def guard_worker_monotone(report: dict) -> tuple[list[str], list[str]]:
    """Monotone non-increasing worker sweep, waived per-point by cores.

    Returns ``(failures, waivers)``.  Each swept worker count must not
    be slower than its predecessor by more than :data:`MONOTONE_SLACK`.
    Points asking for more workers than the host has cores — and the
    whole guard on a 1-core host — are waived with a logged notice
    instead of failing, so CI can set the flag unconditionally.
    """
    cores = os.cpu_count() or 1
    failures: list[str] = []
    waivers: list[str] = []
    if cores < 2:
        waivers.append(
            f"runner has {cores} core(s): worker-monotone guard waived"
        )
        return failures, waivers
    sweeps = {
        "columnar": report["lca"].get("columnar_workers_s") or {},
        # The pooled-fabric matrix: the message transport's shard
        # chains run on the same worker pool, so its sweep must scale
        # (or at least not anti-scale) the same way.
        "message": (
            report["lca"].get("message") or {}
        ).get("message_workers_s") or {},
    }
    for label, scaling in sweeps.items():
        points = sorted((int(w), s) for w, s in scaling.items())
        for (prev_w, prev_s), (cur_w, cur_s) in zip(points, points[1:]):
            if cur_w > cores:
                waivers.append(
                    f"{label} workers={cur_w} exceeds the runner's "
                    f"{cores} cores: sweep point waived"
                )
                continue
            if cur_s > prev_s * MONOTONE_SLACK:
                failures.append(
                    f"{label} worker sweep not monotone: workers={cur_w} "
                    f"took {cur_s:.3f}s vs {prev_s:.3f}s at "
                    f"workers={prev_w} (>{MONOTONE_SLACK:.2f}x slack)"
                )
    return failures, waivers


def test_f4_ampc_runtime(benchmark, show_table):
    """Quick config: columnar must beat dict in both regimes, equivalently."""
    report = benchmark.pedantic(
        lambda: run(
            QUICK_CONFIG,
            check_equivalence=True,
            worker_sweep=QUICK_WORKER_SWEEP,
            phases=True,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        {"metric": f"{mode}.{key}", "value": value}
        for mode in ("lca", "peel")
        for key, value in report[mode].items()
        if not isinstance(value, dict)
    ]
    show_table(rows, "F4 — AMPC runtime (quick config)")
    # Loose bounds for shared CI hardware; the committed BENCH_ampc.json
    # records the full-size numbers.
    assert report["lca"]["speedup"] >= 1.5
    assert report["peel"]["speedup"] >= 3.0
    assert set(report["lca"]["phases"]) >= {"explore", "forward", "fold"}
    if native.available():
        assert report["lca"]["engine_speedup_compiled"] >= MIN_COMPILED_SPEEDUP
    message = report["lca"]["message"]
    assert message["max_held_words"] <= message["budget_words"]
    assert message["messages"] > 0 and message["shards"] == MESSAGE_SHARDS
    if native.available():
        # The fabric's shard chains must actually run the fused kernel.
        assert message["engine"] == "compiled"
    # The pooled-fabric sweep rides in the quick worker matrix too.
    assert set(message["message_workers_s"]) == {
        str(w) for w in QUICK_WORKER_SWEEP
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=FULL_CONFIG["n"])
    parser.add_argument("--m", type=int, default=FULL_CONFIG["m"])
    parser.add_argument("--seed", type=int, default=FULL_CONFIG["seed"])
    parser.add_argument("--beta", type=int, default=FULL_CONFIG["beta"])
    parser.add_argument("--quick", action="store_true", help="CI-sized config")
    parser.add_argument(
        "--phases", action="store_true",
        help="record per-phase lca wall clock (explore/forward/fold/cache)",
    )
    parser.add_argument("--out", default=None, help="write JSON here")
    parser.add_argument(
        "--quick-baseline", action="store_true",
        help="additionally run the quick config and attach it as the "
        "'quick' block (the reference --check-regression compares "
        "CI quick runs against); use when refreshing the tracked JSON",
    )
    parser.add_argument(
        "--check-regression", default=None, metavar="BASELINE",
        help="compare against this tracked JSON; exit 2 if the lca "
        f"columnar time regressed >{MAX_REGRESSION:.0%} (dict-normalized) "
        "or the message fabric exceeded its per-shard S budget",
    )
    parser.add_argument(
        "--guard-worker-monotone", action="store_true",
        help="exit 2 unless the worker sweep is monotone non-increasing "
        f"(up to {MONOTONE_SLACK:.2f}x slack); sweep points beyond the "
        "host's core count are waived with a logged notice",
    )
    args = parser.parse_args()
    if args.quick:
        config = dict(QUICK_CONFIG)
        sweep = QUICK_WORKER_SWEEP
    else:
        config = {"n": args.n, "m": args.m, "seed": args.seed, "beta": args.beta}
        sweep = FULL_WORKER_SWEEP
    report = run(
        config, check_equivalence=args.quick, worker_sweep=sweep,
        phases=args.phases, repeats=3 if args.quick else 1,
        chaos=args.quick,
    )
    if args.quick_baseline and not args.quick:
        quick = run(QUICK_CONFIG, check_equivalence=True, repeats=3, phases=True)
        report["quick"] = {
            "config": quick["config"],
            "lca": {
                "columnar_s": quick["lca"]["columnar_s"],
                "dict_s": quick["lca"]["dict_s"],
                "speedup": quick["lca"]["speedup"],
                # within-run numbers (the CI guard recomputes its own);
                # tracked for counter-drift eyeballing
                **(
                    {
                        "compiled_s": quick["lca"]["compiled_s"],
                        "engine_speedup_compiled":
                            quick["lca"]["engine_speedup_compiled"],
                    }
                    if "compiled_s" in quick["lca"] else {}
                ),
                # the per-phase regression guard compares CI quick runs
                # against this breakdown
                "phases": quick["lca"].get("phases", {}),
                # tracked so the quick guard notices the message leg
                # dropping out, and for counter-drift eyeballing
                "message": quick["lca"].get("message", {}),
            },
        }
    text = json.dumps(report, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
    failed = False
    if args.check_regression:
        with open(args.check_regression) as handle:
            baseline = json.load(handle)
        failures, waivers = check_regression(report, baseline)
        for notice in waivers:
            print(f"WAIVER: {notice}", file=sys.stderr)
        for message in failures:
            print(f"REGRESSION: {message}", file=sys.stderr)
        failed = failed or bool(failures)
    if args.guard_worker_monotone:
        failures, waivers = guard_worker_monotone(report)
        for notice in waivers:
            print(f"WAIVER: {notice}", file=sys.stderr)
        for message in failures:
            print(f"MONOTONE: {message}", file=sys.stderr)
        failed = failed or bool(failures)
    if failed:
        raise SystemExit(2)


if __name__ == "__main__":
    main()
