"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment table (see DESIGN.md's index and
EXPERIMENTS.md for the recorded outputs).  Tables are printed through the
capture bypass so ``pytest benchmarks/ --benchmark-only`` shows them inline
with the timing results.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import format_table


@pytest.fixture
def show_table(capsys):
    """Print an experiment table past pytest's capture."""

    def _show(rows, title: str, columns=None) -> None:
        with capsys.disabled():
            print()
            print(format_table(rows, columns=columns, title=title))
            print()

    return _show
