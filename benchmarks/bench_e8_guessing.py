"""E8 — Lemma 5.1: unknown-α overhead vs known-α rounds."""

from repro.experiments.e8_guessing import run_guessing


def test_e8_guessing(benchmark, show_table):
    rows = benchmark.pedantic(
        run_guessing, kwargs=dict(ns=(200, 400), alphas=(2, 4)), rounds=1, iterations=1
    )
    show_table(rows, "E8 — Lemma 5.1: arboricity-oblivious partitioning")
    for row in rows:
        assert row["rounds_guessed"] >= row["rounds_known"], row
        assert row["overhead"] <= 20, row  # constant-factor claim
