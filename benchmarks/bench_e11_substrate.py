"""E11 — substrate: exact arboricity vs bounds, Lemma 3.4, Fact 3.3."""

from repro.experiments.e11_substrate import run_substrate


def test_e11_substrate(benchmark, show_table):
    rows = benchmark.pedantic(run_substrate, rounds=1, iterations=1)
    show_table(rows, "E11 — arboricity machinery across generator families")
    for row in rows:
        assert row["sandwich_ok"], row
        assert row["lemma_3_4"], row
        assert row["density_LB"] <= row["alpha_exact"], row
