"""A1 — ablation: rake-and-compress 3-coloring vs the generic pipeline."""

from repro.experiments.a1_forest_coloring import run_forest_coloring


def test_a1_forest_coloring(benchmark, show_table):
    rows = benchmark.pedantic(run_forest_coloring, rounds=1, iterations=1)
    show_table(rows, "A1 — forests (α=1): specialized vs generic coloring")
    for row in rows:
        assert row["rake_compress_colors"] <= 3, row
        assert row["rc_max_outdeg"] <= 2, row
        assert row["generic_colors"] <= row["generic_cap"], row
