"""A2 — ablation: coin-forwarding horizon (Lemma 4.2 wave depth)."""

from repro.experiments.a2_horizon_ablation import run_horizon_ablation


def test_a2_horizon_ablation(benchmark, show_table):
    rows = benchmark.pedantic(
        run_horizon_ablation, kwargs=dict(beta=3, depth=3), rounds=1, iterations=1
    )
    show_table(rows, "A2 — forwarding horizon sensitivity (deep tree root)")
    by_label = {row["horizon"]: row for row in rows}
    # Too-short horizons break the progress guarantee...
    assert not by_label["1"]["certified"]
    # ...the wave-depth horizon certifies, and the default matches strict
    # mode exactly (same queries, same explored set size).
    wave_row = next(r for r in rows if r["horizon"].startswith("wave"))
    default_row = next(r for r in rows if r["horizon"].startswith("default"))
    strict_row = next(r for r in rows if r["horizon"].startswith("strict"))
    assert wave_row["certified"] and default_row["certified"] and strict_row["certified"]
    assert default_row["queries"] == strict_row["queries"]
    assert default_row["|S|"] == strict_row["|S|"]
