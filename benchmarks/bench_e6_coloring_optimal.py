"""E6 — Theorem 1.3(3): ((2+ε)α + 1) colors in Õ(α/ε) rounds."""

from repro.experiments.e6_coloring_optimal import run_coloring_optimal


def test_e6_coloring_optimal(benchmark, show_table):
    rows = benchmark.pedantic(
        run_coloring_optimal,
        kwargs=dict(n=300, alphas=(1, 2, 3), methods=("kw", "mpc")),
        rounds=1,
        iterations=1,
    )
    show_table(rows, "E6 — Theorem 1.3(3): ((2+ε)α+1)-coloring")
    for row in rows:
        assert row["colors"] <= row["cap=(2+e)a+1"], row
