"""E4 — Theorem 1.3(1): O(α^{2+ε}) colors in O(1/ε) rounds."""

from repro.experiments.e4_coloring_eps import run_coloring_eps


def test_e4_coloring_eps(benchmark, show_table):
    rows = benchmark.pedantic(
        run_coloring_eps,
        kwargs=dict(n=400, alphas=(2, 3, 4), eps_values=(1.0, 0.5)),
        rounds=1,
        iterations=1,
    )
    show_table(rows, "E4 — Theorem 1.3(1): O(α^{2+ε})-coloring")
    for row in rows:
        assert row["colors"] <= row["palette"], row
        # Rounds stay small (the O(1/ε) claim at fixed ε).
        assert row["rounds"] <= 8 / row["eps"], row
