"""E2 — Lemma 4.6: |S_v| <= x^3 + 1, |E(G[S_v])| <= x^6, connectivity."""

from repro.experiments.e2_game_bounds import run_game_bounds


def test_e2_game_bounds(benchmark, show_table):
    rows = benchmark.pedantic(
        run_game_bounds,
        kwargs=dict(n=300, alpha=2, xs=(8, 16, 32, 64), num_roots=40),
        rounds=1,
        iterations=1,
    )
    show_table(rows, "E2 — Lemma 4.6: coin-game footprint bounds")
    for row in rows:
        assert row["within_bounds"], row
        assert row["connected"], row
