"""E1 — Lemma 4.7: LCA queries <= x^6, layered fraction >= paper bound."""

from repro.experiments.e1_lca_quality import run_lca_quality


def test_e1_lca_quality(benchmark, show_table):
    rows = benchmark.pedantic(
        run_lca_quality,
        kwargs=dict(ns=(200, 400), alphas=(1, 2, 3), xs=(16, 64)),
        rounds=1,
        iterations=1,
    )
    show_table(rows, "E1 — Lemma 4.7: partial β-partition LCA quality")
    for row in rows:
        assert row["meets_bound"], row
        assert row["subset_valid"], row
        assert row["max_queries"] <= row["query_cap_x6"], row
        assert row["max_layer"] <= row["layer_cap"], row
