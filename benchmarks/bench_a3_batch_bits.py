"""A3 — ablation: derandomization batch width vs MPC rounds."""

from repro.experiments.a3_batch_bits import run_batch_bits


def test_a3_batch_bits(benchmark, show_table):
    rows = benchmark.pedantic(run_batch_bits, rounds=1, iterations=1)
    show_table(rows, "A3 — Theorem 1.5: batch width vs round/bandwidth trade")
    # Wider batches strictly reduce rounds and raise message width.
    rounds = [row["mpc_rounds"] for row in rows]
    widths = [row["max_msg_words"] for row in rows]
    assert rounds == sorted(rounds, reverse=True), rounds
    assert widths == sorted(widths), widths
    # The palette never depends on the batching.
    assert len({row["palette"] for row in rows}) == 1
