"""F2 — Figure 2b / §2.1: adaptive forwarding vs naive/BFS/DFS."""

from repro.experiments.f2_exploration_ablation import run_exploration_ablation


def test_f2_exploration_ablation(benchmark, show_table):
    rows = benchmark.pedantic(
        run_exploration_ablation,
        kwargs=dict(beta=3, chain_length=4, fan=30, decoy_fan=40),
        rounds=1,
        iterations=1,
    )
    show_table(rows, "F2 — Figure 2b: exploration strategies on the skewed gadget")
    by_name = {row["strategy"]: row for row in rows}
    adaptive = by_name["adaptive_game"]
    assert adaptive["certifies_layer"], adaptive
    for loser in ("naive_coins", "bfs", "dfs"):
        assert not by_name[loser]["certifies_layer"], by_name[loser]
        assert adaptive["D_coverage"] > by_name[loser]["D_coverage"], loser
