"""E5 — Theorem 1.3(2): O(α²) colors in O(log α) rounds."""

from repro.experiments.e5_coloring_quadratic import run_coloring_quadratic


def test_e5_coloring_quadratic(benchmark, show_table):
    rows = benchmark.pedantic(
        run_coloring_quadratic,
        kwargs=dict(n=400, alphas=(1, 2, 3, 4, 6)),
        rounds=1,
        iterations=1,
    )
    show_table(rows, "E5 — Theorem 1.3(2): O(α²)-coloring (the quadratic barrier)")
    for row in rows:
        assert row["colors"] <= row["palette"], row
        # The O(α²) shape: palette / α² bounded by a constant once α grows;
        # small α pay fixed constants (q >= next prime above β).
        if row["alpha"] >= 4:
            assert row["palette/a^2"] <= 30, row
