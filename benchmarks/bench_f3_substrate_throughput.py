"""F3 — substrate throughput: vectorized CSR core vs the seed implementation.

Measures the two acceptance numbers of the array-native substrate rebuild:

1. **Construction**: ``Graph.from_edges`` / ``Graph.from_arrays`` against
   the seed pure-Python CSR builder (kept verbatim in
   :mod:`repro.graphs.reference`), on the edge list of a ``random_gnm``
   workload.  Target: >= 5x.
2. **Pipeline**: ``coloring_two_plus_eps`` end-to-end on the same graph,
   against the wall-clock of the seed implementation recorded at the seed
   commit (the seed pipeline no longer exists in the tree; its time is a
   pinned baseline with provenance).  Target: >= 2x.

Run as a script to (re)generate the tracked ``BENCH_substrate.json``::

    PYTHONPATH=src python benchmarks/bench_f3_substrate_throughput.py \
        --out BENCH_substrate.json

or with ``--quick`` for a CI-sized configuration.  The pytest entry point
below runs the quick configuration and sanity-asserts the construction
speedup.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.coloring.pipeline import coloring_two_plus_eps
from repro.graphs.generators import random_gnm
from repro.graphs.graph import Graph
from repro.graphs.reference import reference_csr_from_edges
from repro.graphs.validation import is_proper_coloring
from repro.partition.induced import natural_beta_partition

# Full-size configuration (the acceptance numbers) and the seed-commit
# pipeline baseline measured on it.  The seed coloring_two_plus_eps cannot
# be re-run from this tree (its hot paths were replaced in place), so the
# committed baseline records when/where it was measured.
FULL_CONFIG = {"n": 100_000, "m": 200_000, "seed": 20260730, "alpha": 3, "eps": 1.0}
SEED_PIPELINE_BASELINE = {
    "two_plus_eps_s": 320.80,
    "from_edges_s": 0.50,
    "provenance": (
        "seed commit a2b4411, measured 2026-07-30 on the benchmark host, "
        "identical n/m/seed/alpha/eps"
    ),
}
QUICK_CONFIG = {"n": 8_000, "m": 16_000, "seed": 20260730, "alpha": 3, "eps": 1.0}


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_construction(graph: Graph, config: dict) -> dict:
    """Seed reference builder vs the vectorized paths, best of 3."""
    n = config["n"]
    edge_arr = graph.edge_array()
    edge_list = [tuple(e) for e in edge_arr.tolist()]
    reference_s = _best_of(lambda: reference_csr_from_edges(n, edge_list), repeats=2)
    from_edges_s = _best_of(lambda: Graph.from_edges(n, edge_list))
    from_arrays_s = _best_of(lambda: Graph.from_arrays(n, edge_arr))
    return {
        "reference_from_edges_s": round(reference_s, 6),
        "vectorized_from_edges_s": round(from_edges_s, 6),
        "vectorized_from_arrays_s": round(from_arrays_s, 6),
        "speedup_from_edges": round(reference_s / from_edges_s, 2),
        "speedup_from_arrays": round(reference_s / from_arrays_s, 2),
        "edges_per_second_from_arrays": int(len(edge_arr) / from_arrays_s),
    }


def bench_substrate_micro(graph: Graph, config: dict) -> dict:
    """Single-pass timings of the vectorized substrate operations."""
    beta = 3 * config["alpha"]
    half = list(range(0, graph.num_vertices, 2))
    out = {}
    start = time.perf_counter()
    graph.subgraph(half)
    out["subgraph_half_s"] = round(time.perf_counter() - start, 6)
    start = time.perf_counter()
    natural_beta_partition(graph, beta)
    out["natural_beta_partition_s"] = round(time.perf_counter() - start, 6)
    colors = list(range(graph.num_vertices))
    start = time.perf_counter()
    assert is_proper_coloring(graph, colors)
    out["is_proper_coloring_s"] = round(time.perf_counter() - start, 6)
    return out


def bench_pipeline(graph: Graph, config: dict, seed_baseline_s: float | None) -> dict:
    """End-to-end coloring_two_plus_eps wall-clock (single run)."""
    start = time.perf_counter()
    result = coloring_two_plus_eps(graph, config["alpha"], eps=config["eps"])
    current_s = time.perf_counter() - start
    out = {
        "current_two_plus_eps_s": round(current_s, 3),
        # The engine the partition actually ran on (compiled may have
        # degraded to batched), so the tracked JSON says what produced
        # its wall-clock.
        "engine": result.details.get("partition_engine"),
        "num_colors": result.num_colors,
        "palette_bound": result.palette_bound,
        "total_rounds": result.total_rounds,
        "num_layers": result.num_layers,
    }
    if seed_baseline_s is not None:
        out["seed_two_plus_eps_s"] = seed_baseline_s
        out["speedup_vs_seed"] = round(seed_baseline_s / current_s, 2)
        out["seed_provenance"] = SEED_PIPELINE_BASELINE["provenance"]
    return out


def run(config: dict, include_pipeline: bool = True) -> dict:
    full_size = config == FULL_CONFIG
    start = time.perf_counter()
    graph = random_gnm(config["n"], config["m"], config["seed"])
    generate_s = time.perf_counter() - start
    report = {
        "bench": "f3_substrate_throughput",
        "config": dict(config),
        "generate_random_gnm_s": round(generate_s, 6),
        "construction": bench_construction(graph, config),
        "substrate_micro": bench_substrate_micro(graph, config),
    }
    if include_pipeline:
        baseline = SEED_PIPELINE_BASELINE["two_plus_eps_s"] if full_size else None
        report["pipeline"] = bench_pipeline(graph, config, baseline)
    return report


def test_f3_substrate_throughput(benchmark, show_table):
    """Quick-config run: the vectorized builder must beat the seed builder."""
    report = benchmark.pedantic(
        lambda: run(QUICK_CONFIG, include_pipeline=True), rounds=1, iterations=1
    )
    construction = report["construction"]
    rows = [
        {"metric": key, "value": value}
        for section in ("construction", "substrate_micro", "pipeline")
        for key, value in report[section].items()
    ]
    show_table(rows, "F3 — substrate throughput (quick config)")
    # Loose bound (quick config, shared CI hardware); the committed
    # BENCH_substrate.json records the full-size >= 5x / >= 2x numbers.
    assert construction["speedup_from_edges"] >= 2.0
    assert construction["speedup_from_arrays"] >= 2.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=FULL_CONFIG["n"])
    parser.add_argument("--m", type=int, default=FULL_CONFIG["m"])
    parser.add_argument("--seed", type=int, default=FULL_CONFIG["seed"])
    parser.add_argument("--alpha", type=int, default=FULL_CONFIG["alpha"])
    parser.add_argument("--quick", action="store_true", help="CI-sized config")
    parser.add_argument("--skip-pipeline", action="store_true")
    parser.add_argument("--out", default=None, help="write JSON here")
    args = parser.parse_args()
    if args.quick:
        config = dict(QUICK_CONFIG)
    else:
        config = {
            "n": args.n,
            "m": args.m,
            "seed": args.seed,
            "alpha": args.alpha,
            "eps": 1.0,
        }
    report = run(config, include_pipeline=not args.skip_pipeline)
    text = json.dumps(report, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")


if __name__ == "__main__":
    main()
