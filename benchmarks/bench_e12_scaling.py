"""E12 — wall-clock scaling envelope of the pure-Python harness."""

from repro.experiments.e12_scaling import run_scaling


def test_e12_scaling(benchmark, show_table):
    rows = benchmark.pedantic(
        run_scaling, kwargs=dict(ns=(250, 500, 1000, 2000), alpha=2), rounds=1, iterations=1
    )
    show_table(rows, "E12 — wall-clock scaling (model rounds stay flat)")
    # Model cost flat while n grows 8x.
    partition_rounds = [row["partition_rounds"] for row in rows]
    assert max(partition_rounds) - min(partition_rounds) <= 1, partition_rounds
    for row in rows:
        assert row["colors"] <= 3 * 2 + 1, row
