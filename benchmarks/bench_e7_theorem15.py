"""E7 — Theorem 1.5: deterministic 2xΔ-coloring, log_x n phases."""

from repro.experiments.e7_theorem15 import run_theorem15


def test_e7_theorem15(benchmark, show_table):
    rows = benchmark.pedantic(
        run_theorem15, kwargs=dict(ns=(100, 200), xs=(2, 4, 8)), rounds=1, iterations=1
    )
    show_table(rows, "E7 — Theorem 1.5: derandomized MPC coloring")
    for row in rows:
        assert row["palette"] <= row["cap_4xDelta"], row
        assert row["decay>=x"], row
        assert row["phases"] <= row["log_x(n)"] + 1, row
