"""F1 — Figure 1: layer histogram of a partial β-partition."""

from repro.experiments.f1_layer_histogram import run_layer_histogram


def test_f1_layer_histogram(benchmark, show_table):
    rows = benchmark.pedantic(
        run_layer_histogram, kwargs=dict(n=500, alpha=2, x=27), rounds=1, iterations=1
    )
    show_table(rows, "F1 — Figure 1: vertices per layer after one LCA pass")
    assert sum(row["vertices"] for row in rows) == 500
    finite = [row for row in rows if row["layer"] != "infinity"]
    # Figure 1's shape: the vast majority of vertices land in few layers.
    assert sum(row["fraction"] for row in finite) >= 0.9
    assert len(finite) <= 6
