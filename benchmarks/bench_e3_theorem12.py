"""E3 — Theorem 1.2: β-partition size and AMPC rounds, both regimes."""

from repro.experiments.e3_theorem12 import run_theorem12, run_theorem12_deep


def test_e3_theorem12_regimes(benchmark, show_table):
    rows = benchmark.pedantic(
        run_theorem12,
        kwargs=dict(ns=(200, 400, 800), alphas=(2, 4)),
        rounds=1,
        iterations=1,
    )
    show_table(rows, "E3 — Theorem 1.2: β-partitioning (β regimes × game budget)")
    for row in rows:
        assert row["valid"], row
        assert row["acyclic"], row
        assert row["max_outdeg"] <= row["beta"], row
        # Size O(log_{β/2α} n): generous constant 3 plus additive slack.
        assert row["size"] <= 3 * row["log_{b/2a}(n)"] + 2, row


def test_e3_theorem12_deep_trees(benchmark, show_table):
    rows = benchmark.pedantic(
        run_theorem12_deep, kwargs=dict(depths=(2, 3, 4, 5)), rounds=1, iterations=1
    )
    show_table(rows, "E3b — Theorem 1.2 on deep (β+1)-ary trees: rounds vs x")
    # Rounds shrink (weakly) as the game budget x grows, at every depth.
    by_depth: dict[int, dict[str, int]] = {}
    for row in rows:
        by_depth.setdefault(row["depth"], {})[row["x"]] = row["rounds"]
    for depth, per_x in by_depth.items():
        assert per_x["x=b+1"] >= per_x["x=(b+1)^2"] >= per_x["x=(b+1)^3"], (
            depth,
            per_x,
        )
