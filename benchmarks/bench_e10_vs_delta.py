"""E10 — who wins: α-family vs Δ-family palettes as Δ/α grows."""

from repro.experiments.e10_vs_delta import run_vs_delta


def test_e10_vs_delta(benchmark, show_table):
    rows = benchmark.pedantic(
        run_vs_delta, kwargs=dict(ns=(200, 400, 800), links=2), rounds=1, iterations=1
    )
    show_table(rows, "E10 — arboricity-aware vs Δ-based coloring")
    for row in rows:
        # The paper's headline pipeline beats the Δ-family palettes...
        assert row["ours(2+e)a+1"] < row["MPC(2xD)"], row
        # ...and the margin is substantial on these sparse hubs.
        assert row["win_vs_MPC"] >= 4, row
    # The win factor grows (weakly) with n since Δ grows and α stays put.
    wins = [row["win_vs_MPC"] for row in rows]
    assert wins[-1] >= wins[0], wins
