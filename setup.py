from setuptools import find_packages, setup

# The compiled wave kernel (repro.core.native) is optional: installed
# builds with cffi available get the API-mode extension compiled here;
# everyone else (source checkouts, cffi-less hosts) falls back to the
# lazy first-import gcc build or to the pure-numpy engine.
cffi_kwargs = {}
try:
    import cffi  # noqa: F401

    cffi_kwargs = {
        "cffi_modules": ["src/repro/core/native/_build.py:ffibuilder"],
        "setup_requires": ["cffi"],
    }
except ImportError:
    pass

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Adaptive Massively Parallel Coloring in Sparse Graphs (PODC 2024) "
        "- full reproduction: AMPC/MPC/LOCAL simulators, beta-partitions, "
        "sublinear LCA, arboricity-dependent coloring"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro.core.native": ["_wave_kernel.c"]},
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "dev": ["pytest", "pytest-benchmark", "hypothesis"],
        "native": ["cffi"],
    },
    **cffi_kwargs,
)
