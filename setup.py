from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Adaptive Massively Parallel Coloring in Sparse Graphs (PODC 2024) "
        "- full reproduction: AMPC/MPC/LOCAL simulators, beta-partitions, "
        "sublinear LCA, arboricity-dependent coloring"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)
