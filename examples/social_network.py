"""Coloring a social-network-like graph: the α ≪ Δ regime.

Preferential-attachment graphs model social networks: a few massive hubs,
but globally sparse (arboricity stays at the link count while the maximum
degree grows with n).  This is exactly the regime motivating the paper —
(Δ+1)-family algorithms waste a palette proportional to the hubs' degree,
while arboricity-dependent coloring needs O(α) colors.

Run with::

    python examples/social_network.py
"""

from repro import preferential_attachment
from repro.coloring import (
    coloring_alpha_squared,
    coloring_two_plus_eps,
    deterministic_mpc_coloring,
)
from repro.experiments.common import format_table
from repro.graphs import degeneracy, is_proper_coloring


def main() -> None:
    rows = []
    for n in (300, 600, 1200):
        graph = preferential_attachment(n, links=2, seed=7)
        alpha = max(1, degeneracy(graph))  # upper bound on arboricity
        delta = graph.max_degree()

        # Delta-family competitor: Theorem 1.5 palette is Θ(Δ).
        mpc = deterministic_mpc_coloring(graph, x=2)
        assert is_proper_coloring(graph, mpc.colors)

        # The paper's pipelines.
        quadratic = coloring_alpha_squared(graph, alpha)
        optimal = coloring_two_plus_eps(graph, alpha)
        rows.append(
            {
                "n": n,
                "Delta": delta,
                "alpha<=": alpha,
                "MPC 2xΔ palette": mpc.num_colors,
                "ours α² palette": quadratic.palette_bound,
                "ours (2+ε)α+1": optimal.num_colors,
                "rounds (2+ε)α+1": optimal.total_rounds,
            }
        )
    print(format_table(rows, title="Social-network coloring: Δ grows, α does not"))
    print()
    print("The Δ-family palette scales with the hubs; the α-family stays flat.")


if __name__ == "__main__":
    main()
