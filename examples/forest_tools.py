"""Forest toolbox: rake-and-compress, 3-coloring, and MIS on trees.

The α = 1 special case from the paper's related work, end to end: peel a
random forest with rake-and-compress, inspect the phase structure, 3-color
it from the out-degree-2 orientation, and derive a maximal independent set
— then compare against the generic ((2+ε)α+1)-pipeline.

Run with::

    python examples/forest_tools.py
"""

from repro import union_of_random_forests
from repro.coloring import (
    coloring_two_plus_eps,
    is_maximal_independent_set,
    mis_from_coloring,
    three_color_forest,
)
from repro.graphs import is_proper_coloring


def main() -> None:
    forest = union_of_random_forests(n=2000, k=1, seed=3)
    print(f"forest: n={forest.num_vertices} m={forest.num_edges} "
          f"max_degree={forest.max_degree()}")

    colors, decomposition = three_color_forest(forest)
    assert is_proper_coloring(forest, colors)
    print(f"rake-and-compress: {decomposition.phases} phases, "
          f"max out-degree {decomposition.orientation.max_out_degree()}")
    histogram: dict[int, int] = {}
    for phase in decomposition.removal_phase:
        histogram[phase] = histogram.get(phase, 0) + 1
    per_phase = ", ".join(f"p{p}:{c}" for p, c in sorted(histogram.items()))
    print(f"vertices removed per phase: {per_phase}")
    print(f"3-coloring uses {len(set(colors))} colors")

    generic = coloring_two_plus_eps(forest, alpha=1, eps=1.0)
    print(f"generic pipeline at α=1: {generic.num_colors} colors "
          f"(cap {generic.beta + 1}) in {generic.total_rounds} AMPC rounds")

    mis = mis_from_coloring(forest, colors)
    assert is_maximal_independent_set(forest, mis)
    print(f"MIS from the 3-coloring: {len(mis)} vertices "
          f"({len(mis) / forest.num_vertices:.1%} of the forest)")


if __name__ == "__main__":
    main()
