"""Regenerate every experiment table from EXPERIMENTS.md in one run.

Run with::

    python examples/run_all_experiments.py            # all experiments
    python examples/run_all_experiments.py E7 F2      # a subset, by prefix

The same tables (same defaults, same seeds) are produced by
``pytest benchmarks/ --benchmark-only`` with timing attached.
"""

from __future__ import annotations

import sys
import time

from repro.experiments import ALL_EXPERIMENTS, format_table


def main(argv: list[str]) -> None:
    prefixes = [arg.upper() for arg in argv] or None
    for name, run in ALL_EXPERIMENTS.items():
        if prefixes and not any(name.upper().startswith(p) for p in prefixes):
            continue
        start = time.perf_counter()
        rows = run()
        elapsed = time.perf_counter() - start
        print(format_table(rows, title=f"{name}   [{elapsed:.1f}s]"))
        print()


if __name__ == "__main__":
    main(sys.argv[1:])
