"""Watch the coin-dropping game explore a skewed dependency graph.

This example steps the (x, β, F)-coin-dropping game super-iteration by
super-iteration on the Figure 2b gadget, printing how the explored set
S_v, the simulated layer of the root, and the dependency-graph coverage
evolve — and then shows how the naive §2.1 strategies fare with the same
budget.

Run with::

    python examples/lca_exploration.py
"""

from repro import skewed_dependency_gadget
from repro.lca import CoinDroppingGame, GraphOracle, bfs_explore, naive_coin_explore
from repro.partition import dependency_set, natural_beta_partition


def main() -> None:
    beta, chain_length, fan, decoy_fan = 3, 4, 20, 30
    graph, chain = skewed_dependency_gadget(beta, chain_length, fan, decoy_fan)
    root = chain[0]
    natural = natural_beta_partition(graph, beta)
    target = dependency_set(graph, natural, root)
    true_layer = natural.layer(root)
    print(f"gadget: n={graph.num_vertices}, chain head w0={root}, "
          f"true layer={int(true_layer)}, |D(ℓ, w0)|={len(target)}")
    print(f"w0's degree is {graph.degree(root)}: {fan} fan leaves, a decoy "
          f"of degree {decoy_fan + 1}, delay trees, and the chain.\n")

    x = (beta + 1) ** chain_length
    oracle = GraphOracle(graph)
    game = CoinDroppingGame(oracle, root, x=x, beta=beta)
    print(f"(x={x}, β={beta}) adaptive coin-dropping game:")
    print("iter | |S_v| | new | σ(w0) | D-coverage | queries")
    announced_convergence = False
    for iteration in range(1, x * x + 1):
        added = game.super_iteration()
        sigma = game.current_partition()
        explored = game.explored_vertices
        coverage = len(explored & target) / len(target)
        layer = sigma.layer(root)
        layer_str = "∞" if layer == float("inf") else str(int(layer))
        converged = layer == true_layer
        if iteration <= 10 or added == 0 or (converged and not announced_convergence):
            print(f"{iteration:4d} | {len(explored):5d} | {added:3d} | "
                  f"{layer_str:>5s} | {coverage:10.3f} | {oracle.stats.total}")
        if added == 0:
            break
        if converged and not announced_convergence:
            announced_convergence = True
            print("  ... (σ(w0) reached the true layer; running to fixpoint)")
    budget = oracle.stats.total
    print(f"\nadaptive game certified layer {layer_str} with {budget} queries.\n")

    naive_oracle = GraphOracle(graph)
    naive = naive_coin_explore(naive_oracle, root, x=x)
    print(f"naive coin dropping: explored {len(naive)} vertices "
          f"({len(naive & target) / len(target):.1%} of D) with "
          f"{naive_oracle.stats.total} queries — coins died in the fans.")

    bfs_oracle = GraphOracle(graph)
    bfs = bfs_explore(bfs_oracle, root, query_budget=budget)
    print(f"BFS at equal budget:  explored {len(bfs)} vertices "
          f"({len(bfs & target) / len(target):.1%} of D) — "
          f"drowned in the decoy's children.")


if __name__ == "__main__":
    main()
