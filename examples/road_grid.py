"""Coloring a road-network-like planar grid, end to end.

Grids are the classic low-arboricity workload (α = 2): this example walks
the full pipeline explicitly — exact arboricity, AMPC β-partitioning with
resource accounting, acyclic orientation, and the final coloring — showing
each certificate along the way.

Run with::

    python examples/road_grid.py
"""

from repro import (
    beta_partition_ampc,
    exact_arboricity,
    grid_2d,
    is_proper_coloring,
    orient_by_partition,
)
from repro.coloring import greedy_recolor_by_layers, kw_color_reduction, linial_undirected_coloring


def main() -> None:
    graph = grid_2d(40, 40)
    alpha = exact_arboricity(graph)
    print(f"grid 40x40: n={graph.num_vertices} m={graph.num_edges} α={alpha}")

    # Step 1 — Theorem 1.2: β-partition with β = (2+ε)α, ε = 1.
    beta = 3 * alpha
    outcome = beta_partition_ampc(graph, beta)
    assert outcome.partition.is_valid(graph, beta)
    stats = outcome.simulator.stats
    print(f"β-partition: β={beta} layers={outcome.num_layers} "
          f"rounds={outcome.rounds} mode={outcome.mode}")
    print(f"  per-machine comm: max={stats.max_machine_communication} "
          f"(space budget S={stats.space_per_machine}, "
          f"effective δ'={stats.effective_delta():.2f})")

    # Step 2 — acyclic orientation with out-degree <= β.
    orientation = orient_by_partition(graph, outcome.partition)
    print(f"orientation: max out-degree={orientation.max_out_degree()} "
          f"acyclic={orientation.is_acyclic()}")

    # Step 3 — per-layer initial coloring (Linial + Kuhn-Wattenhofer)...
    layers: dict[int, list[int]] = {}
    for v in graph.vertices():
        layers.setdefault(int(outcome.partition.layer(v)), []).append(v)
    initial = [0] * graph.num_vertices
    for vertices in layers.values():
        sub, mapping = graph.subgraph(vertices)
        if sub.num_edges == 0:
            continue
        bound = min(sub.max_degree(), beta)
        linial = linial_undirected_coloring(sub, bound)
        kw = kw_color_reduction(sub, linial.colors, bound, palette=linial.num_colors)
        inverse = {new: old for old, new in mapping.items()}
        for new_id, color in enumerate(kw.colors):
            initial[inverse[new_id]] = color

    # ...then Section 6.3's top-down recoloring into {0..β}.
    final = greedy_recolor_by_layers(graph, outcome.partition, initial, beta)
    assert is_proper_coloring(graph, final.colors)
    print(f"final coloring: {final.num_colors} colors "
          f"(guarantee <= β+1 = {beta + 1}; the grid is 2-colorable, "
          f"so the gap is the price of O(1) rounds)")


if __name__ == "__main__":
    main()
