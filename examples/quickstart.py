"""Quickstart: color a sparse graph with (2+ε)α + 1 colors in AMPC.

Run with::

    python examples/quickstart.py
"""

from repro import color_graph, exact_arboricity, is_proper_coloring, union_of_random_forests


def main() -> None:
    # A graph that is certifiably sparse: the union of 3 random spanning
    # trees has arboricity at most 3 by Nash-Williams.
    graph = union_of_random_forests(n=1000, k=3, seed=0)
    alpha = exact_arboricity(graph)
    print(f"graph: n={graph.num_vertices} m={graph.num_edges} "
          f"max_degree={graph.max_degree()} arboricity={alpha}")

    # The paper's headline pipeline (Theorem 1.3, part 3):
    # β-partition via the coin-dropping LCA, per-layer initial coloring,
    # then greedy cross-layer recoloring into (2+ε)α + 1 colors.
    result = color_graph(graph, variant="two_plus_eps", alpha=alpha, eps=1.0)
    assert is_proper_coloring(graph, result.colors)

    print(f"colors used:      {result.num_colors} "
          f"(guarantee: <= (2+ε)α+1 = {result.beta + 1})")
    print(f"AMPC rounds:      {result.total_rounds} "
          f"(partition {result.partition_rounds} + coloring {result.coloring_rounds})")
    print(f"partition layers: {result.num_layers}")
    print(f"compare: a (Δ+1)-family palette would use up to "
          f"{graph.max_degree() + 1} colors")


if __name__ == "__main__":
    main()
