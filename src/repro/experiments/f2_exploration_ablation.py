"""F2 — Figure 2b / §2.1: why naive exploration fails and adaptivity wins.

On the skewed-dependency gadget, the dependency graph of the chain head
descends a long path whose every node carries a huge fan of layer-0
leaves.  We give each strategy the *same* probe budget that the adaptive
coin game actually used, and measure what fraction of D(ℓ_β, w_0) it
discovered and whether it could certify w_0's true layer.

Strategies: the paper's adaptive (x, β, F)-game, naive volume-based coin
dropping, BFS, and DFS.
"""

from __future__ import annotations

from repro.graphs.generators import skewed_dependency_gadget
from repro.lca.baselines import bfs_explore, dfs_explore, naive_coin_explore
from repro.lca.oracle import GraphOracle
from repro.lca.partial_partition_lca import PartialPartitionLCA
from repro.partition.dependency import dependency_set
from repro.partition.induced import induced_beta_partition, natural_beta_partition

__all__ = ["run_exploration_ablation"]


def _certifies(graph, explored: set[int], beta: int, root, true_layer) -> bool:
    sigma = induced_beta_partition(graph, explored, beta)
    return sigma.layer(root) == true_layer


def run_exploration_ablation(
    beta: int = 3,
    chain_length: int = 4,
    fan: int = 30,
    decoy_fan: int = 40,
    engine: str = "batched",
) -> list[dict]:
    """One row per strategy.

    ``decoy_fan`` delay trees hang off a high-degree decoy adjacent to w_0
    but *outside* its dependency graph — the §2.1 structure that drowns
    BFS (its children all sit at distance 2) and swallows DFS (its id is
    the lowest among w_0's neighbors).

    The adaptive game runs on the selected ``engine`` ("batched"
    lockstep kernels by default, the per-vertex "scalar" oracle
    otherwise — rows are byte-identical); the naive/BFS/DFS baselines
    stay per-probe by design — they *are* the ablation.
    """
    graph, chain = skewed_dependency_gadget(beta, chain_length, fan, decoy_fan)
    root = chain[0]
    natural = natural_beta_partition(graph, beta)
    true_layer = natural.layer(root)
    target = dependency_set(graph, natural, root)
    x = (beta + 1) ** chain_length  # deep enough to certify the chain head

    lca = PartialPartitionLCA(graph, x=x, beta=beta, engine=engine)
    adaptive = lca.query_all(vertices=[root])[1][root]
    budget = adaptive.queries

    runs: dict[str, set[int]] = {"adaptive_game": adaptive.explored}
    naive_oracle = GraphOracle(graph)
    runs["naive_coins"] = naive_coin_explore(naive_oracle, root, x)
    bfs_oracle = GraphOracle(graph)
    runs["bfs"] = bfs_explore(bfs_oracle, root, budget)
    dfs_oracle = GraphOracle(graph)
    runs["dfs"] = dfs_explore(dfs_oracle, root, budget)
    queries = {
        "adaptive_game": budget,
        "naive_coins": naive_oracle.stats.total,
        "bfs": bfs_oracle.stats.total,
        "dfs": dfs_oracle.stats.total,
    }

    rows = []
    for name, explored in runs.items():
        rows.append(
            {
                "strategy": name,
                "queries": queries[name],
                "|S|": len(explored),
                "D_coverage": len(explored & target) / len(target),
                "certifies_layer": _certifies(graph, explored, beta, root, true_layer),
                "true_layer": int(true_layer),
                "|D|": len(target),
                "n": graph.num_vertices,
            }
        )
    return rows
