"""E11 — substrate validation: Definition 3.1, Lemma 3.4, Fact 3.3.

Measured across generator families: exact Nash-Williams arboricity vs the
degeneracy sandwich (ceil((d+1)/2) <= α <= d), the whole-graph density
lower bound, and the Lemma 3.4 count check (< 2α|V|/β vertices of degree
> β for a few β values).
"""

from __future__ import annotations

from repro.graphs.arboricity import (
    degeneracy,
    density_lower_bound,
    exact_arboricity,
)
from repro.graphs.generators import (
    complete_graph,
    grid_2d,
    hypercube,
    preferential_attachment,
    random_tree,
    union_of_random_forests,
)

__all__ = ["run_substrate"]


def _lemma_3_4_holds(graph, alpha: int) -> bool:
    degrees = sorted((graph.degree(v) for v in graph.vertices()), reverse=True)
    n = graph.num_vertices
    for beta in (alpha, 2 * alpha, 4 * alpha):
        if beta < 1:
            continue
        heavy = sum(1 for d in degrees if d > beta)
        if not heavy < 2 * alpha * n / beta:
            return False
    return True


def run_substrate(seed: int = 11) -> list[dict]:
    """One row per generator family."""
    workloads = {
        "tree(150)": random_tree(150, seed=seed),
        "forests(150,3)": union_of_random_forests(150, 3, seed=seed),
        "grid(10x10)": grid_2d(10, 10),
        "hypercube(5)": hypercube(5),
        "K12": complete_graph(12),
        "pref_attach(150,2)": preferential_attachment(150, 2, seed=seed),
    }
    rows = []
    for name, graph in workloads.items():
        alpha = exact_arboricity(graph)
        degen = degeneracy(graph)
        rows.append(
            {
                "graph": name,
                "n": graph.num_vertices,
                "m": graph.num_edges,
                "alpha_exact": alpha,
                "degeneracy": degen,
                "density_LB": density_lower_bound(graph),
                "sandwich_ok": (degen + 1 + 1) // 2 <= alpha <= max(degen, 1),
                "lemma_3_4": _lemma_3_4_holds(graph, alpha),
            }
        )
    return rows
