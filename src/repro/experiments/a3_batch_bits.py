"""A3 — ablation: Theorem 1.5 derandomization batch width.

The method of conditional expectations fixes seed bits in batches of
(δ/3)·log n bits; wider batches mean fewer broadcast-tree sweeps (fewer
MPC rounds) but exponentially more candidate evaluations per sweep.  The
output coloring is proper either way — only the cost profile moves.
"""

from __future__ import annotations

from repro.coloring.derandomized_mpc import deterministic_mpc_coloring
from repro.graphs.generators import random_gnm
from repro.graphs.validation import is_proper_coloring

__all__ = ["run_batch_bits"]


def run_batch_bits(n: int = 120, x: int = 2, seed: int = 14) -> list[dict]:
    """One row per batch width."""
    graph = random_gnm(n, 2 * n, seed=seed)
    rows = []
    for bits in (1, 2, 4, 8):
        res = deterministic_mpc_coloring(graph, x=x, batch_bits=bits)
        assert is_proper_coloring(graph, res.colors)
        rows.append(
            {
                "batch_bits": bits,
                "candidates_per_sweep": 2**bits,
                "mpc_rounds": res.mpc_rounds,
                "phases": res.phases,
                "palette": res.num_colors,
                "max_msg_words": res.max_message_words,
            }
        )
    return rows
