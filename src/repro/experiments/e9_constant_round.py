"""E9 — Corollary 1.4: constant-round ((2+ε)α+1)-coloring for α = O(1).

Measured: rounds of the two_plus_eps pipeline as n grows at fixed α — the
column should be flat (independent of n), while the colors stay within
(2+ε)α + 1.
"""

from __future__ import annotations

from repro.coloring.pipeline import coloring_two_plus_eps
from repro.graphs.generators import union_of_random_forests

__all__ = ["run_constant_round"]


def run_constant_round(
    ns: tuple[int, ...] = (100, 200, 400, 800),
    alpha: int = 2,
    eps: float = 1.0,
    seed: int = 9,
) -> list[dict]:
    """Sweep n at fixed α."""
    rows = []
    for n in ns:
        graph = union_of_random_forests(n, alpha, seed=seed)
        res = coloring_two_plus_eps(graph, alpha, eps=eps)
        rows.append(
            {
                "n": n,
                "alpha": alpha,
                "colors": res.num_colors,
                "cap": res.beta + 1,
                "partition_rounds": res.partition_rounds,
                "coloring_rounds": res.coloring_rounds,
                "total_rounds": res.total_rounds,
            }
        )
    return rows
