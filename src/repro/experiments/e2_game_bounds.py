"""E2 — Lemma 4.6: structural bounds of the coin-dropping game.

Paper claims, for any root v and budget x: G[S_v] stays connected, at most
x new vertices join S_v per super-iteration (hence |S_v| <= x³ + 1), and
|E(G[S_v])| <= x⁶.

Measured: per x, the max over roots of |S_v| and |E(G[S_v])|, against both
bounds, plus a connectivity check of the explored subgraph.
"""

from __future__ import annotations

import math

from repro.graphs.generators import union_of_random_forests
from repro.lca.coin_game import CoinDroppingGame
from repro.lca.oracle import GraphOracle

__all__ = ["run_game_bounds"]


def _explored_connected(graph, explored: set[int], root: int) -> bool:
    seen = {root}
    stack = [root]
    while stack:
        v = stack.pop()
        for w in graph.neighbors(v):
            w = int(w)
            if w in explored and w not in seen:
                seen.add(w)
                stack.append(w)
    return seen == explored


def run_game_bounds(
    n: int = 300,
    alpha: int = 2,
    xs: tuple[int, ...] = (8, 16, 32, 64),
    eps: float = 1.0,
    num_roots: int = 40,
    seed: int = 2,
) -> list[dict]:
    """One row per x: worst-case game footprint over sampled roots."""
    graph = union_of_random_forests(n, alpha, seed=seed)
    beta = max(2, math.ceil((2 + eps) * alpha))
    roots = list(range(0, graph.num_vertices, max(1, graph.num_vertices // num_roots)))
    rows = []
    for x in xs:
        max_s = max_edges = 0
        all_connected = True
        for root in roots:
            oracle = GraphOracle(graph)
            result = CoinDroppingGame(oracle, root, x, beta).run()
            max_s = max(max_s, len(result.explored))
            max_edges = max(max_edges, result.edges_seen)
            all_connected &= _explored_connected(graph, result.explored, root)
        rows.append(
            {
                "x": x,
                "max_S": max_s,
                "S_cap_x3+1": x**3 + 1,
                "max_edges": max_edges,
                "edge_cap_x6": x**6,
                "connected": all_connected,
                "within_bounds": max_s <= x**3 + 1 and max_edges <= x**6,
            }
        )
    return rows
