"""E5 — Theorem 1.3(2): O(α²) colors in O(log α) rounds.

Measured: per α: palette vs α² (the Arb-Linial quadratic barrier, §1) and
rounds vs log α.
"""

from __future__ import annotations

import math

from repro.coloring.pipeline import coloring_alpha_squared
from repro.graphs.generators import union_of_random_forests

__all__ = ["run_coloring_quadratic"]


def run_coloring_quadratic(
    n: int = 400,
    alphas: tuple[int, ...] = (1, 2, 3, 4, 6),
    eps: float = 1.0,
    seed: int = 5,
) -> list[dict]:
    """Sweep α at fixed n."""
    rows = []
    for alpha in alphas:
        graph = union_of_random_forests(n, alpha, seed=seed + alpha)
        res = coloring_alpha_squared(graph, alpha, eps=eps)
        rows.append(
            {
                "n": n,
                "alpha": alpha,
                "beta": res.beta,
                "colors": res.num_colors,
                "palette": res.palette_bound,
                "alpha^2": alpha * alpha,
                "palette/a^2": res.palette_bound / (alpha * alpha),
                "rounds": res.total_rounds,
                "log2(alpha)+1": math.log2(alpha) + 1,
            }
        )
    return rows
