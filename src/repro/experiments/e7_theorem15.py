"""E7 — Theorem 1.5: deterministic 2xΔ-coloring in O(log_x n) MPC phases.

Measured: per (graph, x): palette (<= 2^ceil(log2 2xΔ) < 4xΔ), the number
of phases vs log_x n, and the per-phase uncolored-count decay, which the
method of conditional expectations guarantees is at least a factor x (this
is asserted inside the algorithm itself).
"""

from __future__ import annotations

import math

from repro.coloring.derandomized_mpc import deterministic_mpc_coloring
from repro.graphs.generators import random_gnm, union_of_random_forests
from repro.graphs.validation import is_proper_coloring

__all__ = ["run_theorem15"]


def run_theorem15(
    ns: tuple[int, ...] = (100, 200),
    xs: tuple[int, ...] = (2, 4, 8),
    seed: int = 7,
) -> list[dict]:
    """Sweep n × x over two graph families."""
    rows = []
    for n in ns:
        workloads = {
            "gnm(2n)": random_gnm(n, 2 * n, seed=seed),
            "forests(3)": union_of_random_forests(n, 3, seed=seed),
        }
        for name, graph in workloads.items():
            max_degree = graph.max_degree()
            for x in xs:
                res = deterministic_mpc_coloring(graph, x=x)
                assert is_proper_coloring(graph, res.colors)
                decay = [
                    (res.uncolored_history[i] / max(1, res.uncolored_history[i + 1]))
                    if res.uncolored_history[i + 1]
                    else float("inf")
                    for i in range(len(res.uncolored_history) - 1)
                ]
                min_decay = min(decay) if decay else float("inf")
                rows.append(
                    {
                        "graph": name,
                        "n": n,
                        "Delta": max_degree,
                        "x": x,
                        "palette": res.num_colors,
                        "cap_4xDelta": 4 * x * max_degree,
                        "phases": res.phases,
                        "log_x(n)": math.log(n) / math.log(x),
                        "min_decay": min_decay,
                        "decay>=x": min_decay >= x,
                        "mpc_rounds": res.mpc_rounds,
                    }
                )
    return rows
