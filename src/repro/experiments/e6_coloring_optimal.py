"""E6 — Theorem 1.3(3): ((2+ε)α + 1) colors in Õ(α/ε) rounds.

This is the paper's headline color count — within (2+ε) of the 2α lower
bound discussed in the introduction.  Measured: per (α, method): colors
used vs the hard palette cap β+1 = (2+ε)α+1 (a *guarantee*, asserted), and
rounds vs the α·log α scale.
"""

from __future__ import annotations

import math

from repro.coloring.pipeline import coloring_two_plus_eps
from repro.graphs.generators import union_of_random_forests

__all__ = ["run_coloring_optimal"]


def run_coloring_optimal(
    n: int = 300,
    alphas: tuple[int, ...] = (1, 2, 3),
    eps: float = 1.0,
    methods: tuple[str, ...] = ("kw", "mpc"),
    seed: int = 6,
) -> list[dict]:
    """Sweep α × initial-coloring method."""
    rows = []
    for alpha in alphas:
        graph = union_of_random_forests(n, alpha, seed=seed + alpha)
        for method in methods:
            res = coloring_two_plus_eps(graph, alpha, eps=eps, initial_method=method)
            cap = res.beta + 1
            assert res.num_colors <= cap, "palette guarantee violated"
            rows.append(
                {
                    "n": n,
                    "alpha": alpha,
                    "method": method,
                    "colors": res.num_colors,
                    "cap=(2+e)a+1": cap,
                    "2a_lower": 2 * alpha,
                    "rounds": res.total_rounds,
                    "a*log2(a)+a": alpha * (math.log2(alpha) + 1) if alpha > 1 else 1,
                }
            )
    return rows
