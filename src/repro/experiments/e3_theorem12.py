"""E3 — Theorem 1.2: β-partition size and AMPC round complexity.

Paper claims: a β-partition of size O(log_{β/2α} n) in O(log_{β/2α} β)
rounds; in particular β = O(α) gives size O(log n) in O(log α) rounds and
β = O(α^{1+ε}) gives size O(log_α n) in O(1) rounds.

Measured: per (n, α, regime): rounds, partition size, the theoretical size
scale log_{β/2α} n, orientation out-degree (<= β), and validity.  Random
forest unions peel in O(1) natural layers, so the round-scaling shape is
exercised on *deep* workloads — complete (β+1)-ary trees, whose natural
β-partition has depth+1 layers — where the rounds column shows the
log_x-flavored trade-off between game budget and round count
(:func:`run_theorem12_deep`).
"""

from __future__ import annotations

import math

from repro.core.beta_partition_ampc import beta_partition_ampc
from repro.core.orientation import orient_by_partition
from repro.graphs.generators import complete_ary_tree, union_of_random_forests

__all__ = ["run_theorem12", "run_theorem12_deep"]


def run_theorem12_deep(
    depths: tuple[int, ...] = (2, 3, 4, 5),
    eps: float = 1.0,
) -> list[dict]:
    """Round scaling on complete (β+1)-ary trees (α = 1, β = 3 = (2+ε)α).

    Every internal node of a (β+1)-ary tree has β+1 children, so it stays
    unlayered until all children are layered: the natural β-partition has
    exactly depth+1 layers, and the AMPC round count must grow with depth
    for fixed x and shrink as x grows.
    """
    beta = 3
    rows = []
    for depth in depths:
        graph = complete_ary_tree(beta + 1, depth)
        for x_label, x in (("x=b+1", beta + 1), ("x=(b+1)^2", (beta + 1) ** 2),
                           ("x=(b+1)^3", (beta + 1) ** 3)):
            outcome = beta_partition_ampc(graph, beta, x=x)
            assert outcome.partition.is_valid(graph, beta)
            rows.append(
                {
                    "depth": depth,
                    "n": graph.num_vertices,
                    "x": x_label,
                    "natural_layers": depth + 1,
                    "rounds": outcome.rounds,
                    "size": outcome.num_layers,
                }
            )
    return rows


def run_theorem12(
    ns: tuple[int, ...] = (200, 400, 800),
    alphas: tuple[int, ...] = (2, 4),
    eps: float = 1.0,
    seed: int = 3,
) -> list[dict]:
    """Sweep n × α × {linear, polynomial} β regimes."""
    rows = []
    for n in ns:
        for alpha in alphas:
            graph = union_of_random_forests(n, alpha, seed=seed + alpha)
            regimes = {
                "beta=(2+eps)a": max(2, math.ceil((2 + eps) * alpha)),
                "beta=a^(1+eps)": max(
                    2 * alpha + 1, math.ceil(alpha ** (1 + eps))
                ),
            }
            for regime, beta in regimes.items():
                # Two game budgets: the shallow x = β+1 certifies one layer
                # per application (more rounds, the log-shaped regime); the
                # default x = (β+1)² certifies two (the fast regime).
                for x_label, x in (("x=b+1", beta + 1), ("x=(b+1)^2", None)):
                    outcome = beta_partition_ampc(graph, beta, x=x)
                    valid = outcome.partition.is_valid(graph, beta)
                    orientation = orient_by_partition(graph, outcome.partition)
                    ratio = beta / (2 * alpha)
                    size_scale = (
                        math.log(n) / math.log(ratio) if ratio > 1 else float("nan")
                    )
                    rows.append(
                        {
                            "n": n,
                            "alpha": alpha,
                            "regime": regime,
                            "x": x_label,
                            "beta": beta,
                            "rounds": outcome.rounds,
                            "size": outcome.num_layers,
                            "log_{b/2a}(n)": size_scale,
                            "max_outdeg": orientation.max_out_degree(),
                            "valid": valid,
                            "acyclic": orientation.is_acyclic(),
                        }
                    )
    return rows
