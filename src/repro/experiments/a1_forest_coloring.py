"""A1 — ablation: specialized forest 3-coloring vs the generic pipeline.

The related work (Section 1.1) singles out forests (α = 1): rake-and-
compress gives an out-degree-2 orientation and 3 colors, while the generic
((2+ε)α+1)-pipeline guarantees 4 at ε = 1.  Measured: colors, the
decomposition phase count (logarithmic-ish), and the generic pipeline's
round count, across tree shapes.
"""

from __future__ import annotations

from repro.coloring.pipeline import coloring_two_plus_eps
from repro.coloring.rake_compress import three_color_forest
from repro.graphs.generators import (
    complete_ary_tree,
    path_graph,
    random_tree,
    union_of_random_forests,
)
from repro.graphs.validation import is_proper_coloring

__all__ = ["run_forest_coloring"]


def run_forest_coloring(seed: int = 13) -> list[dict]:
    """One row per forest workload."""
    workloads = {
        "path(500)": path_graph(500),
        "random_tree(500)": random_tree(500, seed=seed),
        "binary_tree(d=8)": complete_ary_tree(2, 8),
        "forest_union(500,1)": union_of_random_forests(500, 1, seed=seed),
    }
    rows = []
    for name, graph in workloads.items():
        colors, decomposition = three_color_forest(graph)
        assert is_proper_coloring(graph, colors)
        generic = coloring_two_plus_eps(graph, 1, eps=1.0)
        rows.append(
            {
                "graph": name,
                "n": graph.num_vertices,
                "rake_compress_colors": len(set(colors)),
                "rc_phases": decomposition.phases,
                "rc_max_outdeg": decomposition.orientation.max_out_degree(),
                "generic_colors": generic.num_colors,
                "generic_cap": generic.beta + 1,
                "generic_rounds": generic.total_rounds,
            }
        )
    return rows
