"""Shared plumbing for the experiment harness.

Each experiment module produces a list of plain-dict rows; benchmarks and
examples render them with :func:`format_table` so every table in
EXPERIMENTS.md can be regenerated verbatim.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value: Any) -> str:
    """Human-friendly cell rendering."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (0 < abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    rows: Sequence[dict[str, Any]],
    columns: Iterable[str] | None = None,
    title: str = "",
) -> str:
    """Render rows as an aligned ASCII table (markdown-pipe style)."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    columns = list(columns)
    cells = [[format_value(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in cells:
        lines.append(" | ".join(val.ljust(w) for val, w in zip(r, widths)))
    return "\n".join(lines)
