"""Experiment harness: one module per paper claim (see DESIGN.md index)."""

from repro.experiments.a1_forest_coloring import run_forest_coloring
from repro.experiments.a2_horizon_ablation import run_horizon_ablation
from repro.experiments.a3_batch_bits import run_batch_bits

from repro.experiments.common import format_table, format_value
from repro.experiments.e1_lca_quality import run_lca_quality
from repro.experiments.e2_game_bounds import run_game_bounds
from repro.experiments.e3_theorem12 import run_theorem12, run_theorem12_deep
from repro.experiments.e4_coloring_eps import run_coloring_eps
from repro.experiments.e5_coloring_quadratic import run_coloring_quadratic
from repro.experiments.e6_coloring_optimal import run_coloring_optimal
from repro.experiments.e7_theorem15 import run_theorem15
from repro.experiments.e8_guessing import run_guessing
from repro.experiments.e9_constant_round import run_constant_round
from repro.experiments.e10_vs_delta import run_vs_delta
from repro.experiments.e11_substrate import run_substrate
from repro.experiments.e12_scaling import run_scaling
from repro.experiments.f1_layer_histogram import run_layer_histogram
from repro.experiments.f2_exploration_ablation import run_exploration_ablation

ALL_EXPERIMENTS = {
    "E1 Lemma 4.7 (LCA quality)": run_lca_quality,
    "E2 Lemma 4.6 (game bounds)": run_game_bounds,
    "E3 Theorem 1.2 (beta-partition)": run_theorem12,
    "E3b Theorem 1.2 (deep trees)": run_theorem12_deep,
    "E4 Theorem 1.3(1) (alpha^{2+eps})": run_coloring_eps,
    "E5 Theorem 1.3(2) (alpha^2)": run_coloring_quadratic,
    "E6 Theorem 1.3(3) ((2+eps)alpha+1)": run_coloring_optimal,
    "E7 Theorem 1.5 (derandomized MPC)": run_theorem15,
    "E8 Lemma 5.1 (unknown alpha)": run_guessing,
    "E9 Corollary 1.4 (constant rounds)": run_constant_round,
    "E10 vs (Delta+1) baselines": run_vs_delta,
    "E11 substrate (arboricity)": run_substrate,
    "E12 harness scaling (wall-clock)": run_scaling,
    "F1 Figure 1 (layer histogram)": run_layer_histogram,
    "F2 Figure 2b (exploration ablation)": run_exploration_ablation,
    "A1 ablation (forest 3-coloring)": run_forest_coloring,
    "A2 ablation (forwarding horizon)": run_horizon_ablation,
    "A3 ablation (derandomization batch)": run_batch_bits,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "format_table",
    "format_value",
    "run_coloring_eps",
    "run_coloring_optimal",
    "run_coloring_quadratic",
    "run_batch_bits",
    "run_constant_round",
    "run_exploration_ablation",
    "run_forest_coloring",
    "run_game_bounds",
    "run_guessing",
    "run_horizon_ablation",
    "run_layer_histogram",
    "run_lca_quality",
    "run_scaling",
    "run_substrate",
    "run_theorem12",
    "run_theorem12_deep",
    "run_theorem15",
    "run_vs_delta",
]
