"""F1 — Figure 1: the shape of a partial β-partition after one LCA pass.

Figure 1 depicts most vertices landing in a small number of layers with a
residual "undecided" (∞) set.  Measured: the per-layer vertex counts of
the min-merged partial β-partition after a single application of the LCA
to every vertex, plus the ∞ remainder — i.e. the picture, as a table.
"""

from __future__ import annotations

import math

from repro.graphs.generators import union_of_random_forests
from repro.lca.partial_partition_lca import PartialPartitionLCA
from repro.partition.beta_partition import INFINITY

__all__ = ["run_layer_histogram"]


def run_layer_histogram(
    n: int = 500,
    alpha: int = 2,
    x: int = 27,
    eps: float = 1.0,
    seed: int = 12,
) -> list[dict]:
    """One row per layer (plus the ∞ row)."""
    graph = union_of_random_forests(n, alpha, seed=seed)
    beta = max(2, math.ceil((2 + eps) * alpha))
    lca = PartialPartitionLCA(graph, x=x, beta=beta)
    merged, __ = lca.query_all()
    histogram: dict[float, int] = {}
    for v in graph.vertices():
        lay = merged.layer(v)
        histogram[lay] = histogram.get(lay, 0) + 1
    rows = []
    for lay in sorted(histogram, key=lambda t: (t == INFINITY, t)):
        label = "infinity" if lay == INFINITY else str(int(lay))
        rows.append(
            {
                "layer": label,
                "vertices": histogram[lay],
                "fraction": histogram[lay] / n,
            }
        )
    return rows
