"""E4 — Theorem 1.3(1): O(α^{2+ε}) colors in O(1/ε) rounds.

Measured: per (α, ε): colors used vs the α^{2+ε} scale and total AMPC
rounds vs 1/ε; the rounds column should stay flat as n grows and shrink as
ε grows, while colors grow with α^{2+ε}.
"""

from __future__ import annotations

from repro.coloring.pipeline import coloring_alpha_squared_eps
from repro.graphs.generators import union_of_random_forests

__all__ = ["run_coloring_eps"]


def run_coloring_eps(
    n: int = 400,
    alphas: tuple[int, ...] = (2, 3, 4),
    eps_values: tuple[float, ...] = (1.0, 0.5),
    seed: int = 4,
) -> list[dict]:
    """Sweep α × ε."""
    rows = []
    for alpha in alphas:
        graph = union_of_random_forests(n, alpha, seed=seed + alpha)
        for eps in eps_values:
            res = coloring_alpha_squared_eps(graph, alpha, eps=eps)
            scale = alpha ** (2 + eps)
            rows.append(
                {
                    "n": n,
                    "alpha": alpha,
                    "eps": eps,
                    "beta": res.beta,
                    "colors": res.num_colors,
                    "palette": res.palette_bound,
                    "a^(2+eps)": scale,
                    "palette/scale": res.palette_bound / scale,
                    "rounds": res.total_rounds,
                    "1/eps": 1 / eps,
                }
            )
    return rows
