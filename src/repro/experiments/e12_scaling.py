"""E12 — harness scaling: wall-clock of the full pipeline vs n.

Not a paper claim — the calibration note warns the pure-Python simulation
is "slow on large sparse graphs", so this table records the practical
envelope: seconds for β-partitioning and for the headline coloring as n
grows at fixed α, plus the simulated-rounds columns showing that *model*
cost stays flat while wall-clock grows roughly linearly.
"""

from __future__ import annotations

import time

from repro.coloring.pipeline import coloring_two_plus_eps
from repro.core.beta_partition_ampc import beta_partition_ampc
from repro.graphs.generators import union_of_random_forests

__all__ = ["run_scaling"]


def run_scaling(
    ns: tuple[int, ...] = (250, 500, 1000, 2000),
    alpha: int = 2,
    seed: int = 15,
) -> list[dict]:
    """One row per n."""
    beta = 3 * alpha
    rows = []
    for n in ns:
        graph = union_of_random_forests(n, alpha, seed=seed)
        t0 = time.perf_counter()
        outcome = beta_partition_ampc(graph, beta)
        partition_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        result = coloring_two_plus_eps(graph, alpha, eps=1.0)
        coloring_seconds = time.perf_counter() - t0
        rows.append(
            {
                "n": n,
                "m": graph.num_edges,
                "partition_s": partition_seconds,
                "coloring_s": coloring_seconds,
                "partition_rounds": outcome.rounds,
                "total_rounds": result.total_rounds,
                "colors": result.num_colors,
                "us_per_edge": 1e6 * (partition_seconds + coloring_seconds) / max(1, graph.num_edges),
            }
        )
    return rows
