"""E1 — Lemma 4.7: LCA query bound and layered-fraction guarantee.

Paper claims, per LCA application with budget x on arboricity-α graphs with
β >= (2+ε)α:

- at most x⁶ probes per queried vertex;
- a subset S of >= (1 - 2^{1 - log x / log_{β/2α}(β+1)}) |V| vertices whose
  layering is a β-partition of G[S] with <= log_{β+1} x layers.

Measured: per (n, α, x): the achieved layered fraction (vs the bound), the
max probes (vs x⁶), the max layer (vs log_{β+1} x), and validity of the
min-merged partition restricted to the layered set.
"""

from __future__ import annotations

import math

from repro.graphs.generators import union_of_random_forests
from repro.lca.partial_partition_lca import (
    PartialPartitionLCA,
    lca_success_fraction_bound,
)
from repro.partition.beta_partition import INFINITY

__all__ = ["run_lca_quality"]


def run_lca_quality(
    ns: tuple[int, ...] = (200, 400),
    alphas: tuple[int, ...] = (1, 2, 3),
    xs: tuple[int, ...] = (16, 64),
    eps: float = 1.0,
    seed: int = 1,
    engine: str = "batched",
) -> list[dict]:
    """Sweep (n, α, x); one row per combination.

    ``engine`` selects the query execution (the lockstep ``"batched"``
    kernels by default, the per-vertex ``"scalar"`` oracle otherwise);
    sweep rows are byte-identical either way — the probe loop is the
    only thing that changes.
    """
    rows = []
    for n in ns:
        for alpha in alphas:
            graph = union_of_random_forests(n, alpha, seed=seed + alpha)
            beta = max(2, math.ceil((2 + eps) * alpha))
            for x in xs:
                lca = PartialPartitionLCA(graph, x=x, beta=beta, engine=engine)
                merged, results = lca.query_all()
                layered = [
                    v for v in graph.vertices() if merged.layer(v) != INFINITY
                ]
                fraction = len(layered) / n
                bound = lca_success_fraction_bound(x, beta, alpha)
                max_queries = max(r.queries for r in results.values())
                valid = merged.is_valid_on_subset(graph, beta, set(layered))
                rows.append(
                    {
                        "n": n,
                        "alpha": alpha,
                        "beta": beta,
                        "x": x,
                        "layered_frac": fraction,
                        "paper_bound": bound,
                        "meets_bound": fraction >= bound,
                        "max_layer": merged.max_layer(),
                        "layer_cap": lca.max_layer,
                        "max_queries": max_queries,
                        "query_cap_x6": x**6,
                        "subset_valid": valid,
                    }
                )
    return rows
