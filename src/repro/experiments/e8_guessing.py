"""E8 — Lemma 5.1: β-partitioning without knowing α.

Paper claims the guessing scheme matches the known-α round complexity up
to constants (double-exponential phase is a geometric series; the parallel
refinement costs one max).  Measured: per (n, α): rounds with α known vs
the guessing scheme's sequential+parallel rounds, and the accepted guess.
"""

from __future__ import annotations

import math

from repro.core.beta_partition_ampc import beta_partition_ampc
from repro.core.guessing import beta_partition_unknown_alpha
from repro.graphs.generators import union_of_random_forests

__all__ = ["run_guessing"]


def run_guessing(
    ns: tuple[int, ...] = (200, 400),
    alphas: tuple[int, ...] = (2, 4),
    eps: float = 1.0,
    seed: int = 8,
) -> list[dict]:
    """Sweep n × α comparing known-α and guessed-α executions."""
    rows = []
    for n in ns:
        for alpha in alphas:
            graph = union_of_random_forests(n, alpha, seed=seed + alpha)
            beta = max(2, math.ceil((2 + eps) * alpha))
            known = beta_partition_ampc(graph, beta)
            guessed = beta_partition_unknown_alpha(graph, eps=eps)
            rows.append(
                {
                    "n": n,
                    "alpha": alpha,
                    "rounds_known": known.rounds,
                    "rounds_guessed": guessed.total_rounds,
                    "overhead": guessed.total_rounds / max(1, known.rounds),
                    "guess": guessed.guessed_alpha,
                    "size_known": known.num_layers,
                    "size_guessed": guessed.outcome.num_layers,
                    "attempts": len(guessed.attempts),
                }
            )
    return rows
