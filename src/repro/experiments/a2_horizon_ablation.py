"""A2 — ablation: coin-forwarding horizon sensitivity.

Algorithm 1 forwards coins for |V| iterations; our default horizon is a
small multiple of the Lemma 4.2 wave depth ceil(log_{β+1} x) (DESIGN.md).
This ablation runs the game on deep (β+1)-ary trees with horizons from 1
to the strict |V|, measuring whether the root's layer is certified and
the query cost — validating that (a) too-short horizons break the
progress guarantee, (b) the default matches strict mode at a fraction of
the cost.
"""

from __future__ import annotations

from repro.graphs.generators import complete_ary_tree
from repro.lca.coin_game import CoinDroppingGame, max_provable_layer
from repro.lca.oracle import GraphOracle
from repro.partition.induced import natural_beta_partition

__all__ = ["run_horizon_ablation"]


def run_horizon_ablation(beta: int = 3, depth: int = 3) -> list[dict]:
    """One row per horizon setting; root of a depth-d (β+1)-ary tree."""
    graph = complete_ary_tree(beta + 1, depth)
    natural = natural_beta_partition(graph, beta)
    x = (beta + 1) ** depth  # deep enough to certify the root
    wave = max_provable_layer(x, beta) + 1
    horizons = {
        "1": 1,
        "2": 2,
        f"wave={wave}": wave,
        f"default={4 * (wave + 1)}": None,  # library default
        f"strict=|V|={graph.num_vertices}": graph.num_vertices,
    }
    rows = []
    for label, horizon in horizons.items():
        oracle = GraphOracle(graph)
        game = CoinDroppingGame(
            oracle, 0, x=x, beta=beta, forward_iterations=horizon
        )
        result = game.run()
        rows.append(
            {
                "horizon": label,
                "certified": result.layer == natural.layer(0),
                "layer": "inf" if result.layer == float("inf") else int(result.layer),
                "true_layer": int(natural.layer(0)),
                "queries": result.queries,
                "super_iters": result.super_iterations,
                "|S|": len(result.explored),
            }
        )
    return rows
