"""E10 — the motivating comparison: arboricity-aware vs Δ-based coloring.

The introduction's pitch: sparse graphs can have Δ ≫ α, so algorithms
whose palette is a function of Δ waste colors that arboricity-dependent
algorithms save.  We compare the *in-model* families on
preferential-attachment graphs (α <= links fixed, Δ grows with n):

- Linial on the undirected graph — the classic distributed O(Δ²) palette;
- Theorem 1.5 with x = 2 — the deterministic MPC Θ(Δ) palette;
- the paper's O(α²) pipeline (Theorem 1.3(2));
- the paper's ((2+ε)α+1) pipeline (Theorem 1.3(3)).

Sequential first-fit is included as the non-distributed reference floor
(it is not a competitor: it has no parallel implementation, and its small
color count on these graphs is an artifact of the insertion order).
"Who wins": the Δ-family palettes grow with n; the α-family stays flat.
"""

from __future__ import annotations

from repro.coloring.arb_linial import linial_undirected_coloring
from repro.coloring.derandomized_mpc import deterministic_mpc_coloring
from repro.coloring.greedy import greedy_coloring
from repro.coloring.pipeline import coloring_alpha_squared, coloring_two_plus_eps
from repro.graphs.arboricity import degeneracy
from repro.graphs.generators import preferential_attachment
from repro.graphs.validation import count_colors

__all__ = ["run_vs_delta"]


def run_vs_delta(
    ns: tuple[int, ...] = (200, 400, 800),
    links: int = 2,
    eps: float = 1.0,
    seed: int = 10,
) -> list[dict]:
    """Sweep n on preferential-attachment graphs with fixed link count."""
    rows = []
    for n in ns:
        graph = preferential_attachment(n, links, seed=seed)
        alpha = max(1, degeneracy(graph))  # upper bound on arboricity
        max_degree = graph.max_degree()
        linial_delta = linial_undirected_coloring(graph, max_degree)
        mpc_delta = deterministic_mpc_coloring(graph, x=2)
        ours_sq = coloring_alpha_squared(graph, alpha, eps=eps)
        ours_opt = coloring_two_plus_eps(graph, alpha, eps=eps)
        firstfit = count_colors(graph, greedy_coloring(graph))
        rows.append(
            {
                "n": n,
                "Delta": max_degree,
                "alpha<=": alpha,
                "Delta/alpha": max_degree / alpha,
                "Linial(D^2)": linial_delta.num_colors,
                "MPC(2xD)": mpc_delta.num_colors,
                "ours_a^2": ours_sq.palette_bound,
                "ours(2+e)a+1": ours_opt.num_colors,
                "firstfit(ref)": firstfit,
                "win_vs_MPC": mpc_delta.num_colors / max(1, ours_opt.num_colors),
                "win_vs_Linial": linial_delta.num_colors / max(1, ours_sq.palette_bound),
            }
        )
    return rows
