"""repro — Adaptive Massively Parallel Coloring in Sparse Graphs.

A complete, executable reproduction of Latypov, Maus, Pai & Uitto
(PODC 2024, arXiv:2402.13755): deterministic low-space AMPC algorithms for
arboricity-dependent graph coloring, together with every substrate they
stand on — AMPC/MPC/LOCAL simulators with resource accounting, β-partition
machinery, the sublinear coin-dropping LCA, cover-free-family color
reduction, and derandomized MPC coloring.

Quickstart::

    from repro import color_graph, union_of_random_forests

    graph = union_of_random_forests(n=1000, k=3, seed=0)   # arboricity <= 3
    result = color_graph(graph, variant="two_plus_eps", alpha=3)
    print(result.num_colors, "colors in", result.total_rounds, "AMPC rounds")

Subpackages
-----------
- :mod:`repro.graphs` — CSR graphs, generators, arboricity, validation.
- :mod:`repro.partition` — β-partitions (Definitions 3.5/3.6/3.9/3.12).
- :mod:`repro.lca` — the coin-dropping game and partial-partition LCA.
- :mod:`repro.ampc` — AMPC/MPC simulators and cost accounting.
- :mod:`repro.core` — Theorem 1.2 β-partitioning, Lemma 5.1, orientations.
- :mod:`repro.coloring` — Theorem 1.3 pipelines, Theorem 1.5, baselines.
- :mod:`repro.local` — synchronous LOCAL simulation.
- :mod:`repro.experiments` — the experiment harness behind benchmarks/.
"""

from repro.coloring import (
    color_graph,
    coloring_alpha_squared,
    coloring_alpha_squared_eps,
    coloring_large_alpha,
    coloring_two_plus_eps,
    deterministic_mpc_coloring,
)
from repro.core import (
    beta_partition_ampc,
    beta_partition_unknown_alpha,
    orient_by_partition,
)
from repro.graphs import (
    Graph,
    exact_arboricity,
    grid_2d,
    is_proper_coloring,
    preferential_attachment,
    random_gnm,
    random_tree,
    skewed_dependency_gadget,
    union_of_random_forests,
)
from repro.lca import PartialPartitionLCA
from repro.partition import PartialBetaPartition, natural_beta_partition

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "PartialBetaPartition",
    "PartialPartitionLCA",
    "beta_partition_ampc",
    "beta_partition_unknown_alpha",
    "color_graph",
    "coloring_alpha_squared",
    "coloring_alpha_squared_eps",
    "coloring_large_alpha",
    "coloring_two_plus_eps",
    "deterministic_mpc_coloring",
    "exact_arboricity",
    "grid_2d",
    "is_proper_coloring",
    "natural_beta_partition",
    "orient_by_partition",
    "preferential_attachment",
    "random_gnm",
    "random_tree",
    "skewed_dependency_gadget",
    "union_of_random_forests",
    "__version__",
]
