"""Graph substrate: CSR graphs, generators, arboricity, flows, validation.

The core is array-native: :class:`Graph` builds from numpy edge arrays
(:meth:`Graph.from_arrays`), exposes bulk accessors
(:meth:`Graph.edge_array`, :meth:`Graph.neighbors_of`), and hands out only
read-only views of its frozen CSR arrays.  The seed pure-Python builder
survives in :mod:`repro.graphs.reference` as the equivalence-test oracle.
"""

from repro.graphs.arboricity import (
    core_numbers,
    degeneracy,
    degeneracy_order,
    density_lower_bound,
    exact_arboricity,
    forest_partition,
)
from repro.graphs.builder import GraphBuilder
from repro.graphs.densest import densest_subgraph
from repro.graphs.flow import FlowNetwork
from repro.graphs.generators import (
    complete_ary_tree,
    complete_graph,
    cycle_graph,
    grid_2d,
    hypercube,
    path_graph,
    preferential_attachment,
    random_forest,
    random_gnm,
    random_tree,
    skewed_dependency_gadget,
    star_graph,
    union_of_random_forests,
)
from repro.graphs.graph import Graph
from repro.graphs.io import (
    graph_from_json,
    graph_to_json,
    read_edge_list,
    write_edge_list,
)
from repro.graphs.validation import (
    count_colors,
    is_acyclic_orientation,
    is_forest,
    is_proper_coloring,
    max_out_degree,
    monochromatic_edges,
)

__all__ = [
    "FlowNetwork",
    "Graph",
    "GraphBuilder",
    "complete_ary_tree",
    "complete_graph",
    "core_numbers",
    "count_colors",
    "cycle_graph",
    "degeneracy",
    "degeneracy_order",
    "densest_subgraph",
    "density_lower_bound",
    "exact_arboricity",
    "forest_partition",
    "graph_from_json",
    "graph_to_json",
    "grid_2d",
    "hypercube",
    "is_acyclic_orientation",
    "is_forest",
    "is_proper_coloring",
    "max_out_degree",
    "monochromatic_edges",
    "path_graph",
    "preferential_attachment",
    "random_forest",
    "random_gnm",
    "random_tree",
    "read_edge_list",
    "skewed_dependency_gadget",
    "star_graph",
    "union_of_random_forests",
    "write_edge_list",
]
