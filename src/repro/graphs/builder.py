"""Incremental graph builder.

Generators assemble edge sets incrementally (e.g. adding one forest at a
time); :class:`GraphBuilder` collects edges with validation and produces an
immutable :class:`~repro.graphs.graph.Graph` at the end.  Scalar
``add_edge`` keeps exact membership semantics (it reports whether the edge
was new); bulk ``add_edge_array`` accepts a whole numpy edge array at once,
and :meth:`build` hands the accumulated edges to the vectorized CSR
builder without any per-edge Python work.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Collects edges for a graph on ``n`` vertices, then freezes it."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self.n = n
        self._edges: set[tuple[int, int]] = set()

    def __len__(self) -> int:
        return len(self._edges)

    def has_edge(self, u: int, v: int) -> bool:
        """True if the edge is already present."""
        if u == v:
            return False
        return ((u, v) if u < v else (v, u)) in self._edges

    def add_edge(self, u: int, v: int) -> bool:
        """Add edge ``{u, v}``; return False if it was already present."""
        if u == v:
            raise ValueError(f"self-loop at vertex {u}")
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={self.n}")
        key = (u, v) if u < v else (v, u)
        if key in self._edges:
            return False
        self._edges.add(key)
        return True

    def add_edges(self, edges) -> int:
        """Add many edges; return how many were new."""
        added = 0
        for u, v in edges:
            if self.add_edge(u, v):
                added += 1
        return added

    def add_edge_array(self, edge_array: np.ndarray) -> int:
        """Bulk-add an ``(m, 2)`` edge array; return how many were new.

        Validation (self-loops, range) and canonicalization run as array
        operations; only genuinely new canonical pairs touch the Python
        membership set.
        """
        arr = np.asarray(edge_array, dtype=np.int64)
        if arr.size == 0:
            return 0
        arr = arr.reshape(-1, 2)
        u, v = arr[:, 0], arr[:, 1]
        loops = u == v
        if loops.any():
            raise ValueError(f"self-loop at vertex {int(u[np.argmax(loops)])}")
        bad = (arr < 0) | (arr >= self.n)
        if bad.any():
            row = int(np.argmax(bad.any(axis=1)))
            raise ValueError(
                f"edge ({int(u[row])}, {int(v[row])}) out of range for n={self.n}"
            )
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        canonical = np.unique(np.column_stack((lo, hi)), axis=0)
        before = len(self._edges)
        self._edges.update(zip(canonical[:, 0].tolist(), canonical[:, 1].tolist()))
        return len(self._edges) - before

    def edge_array(self) -> np.ndarray:
        """Snapshot of the accumulated edges as an ``(m, 2)`` array."""
        m = len(self._edges)
        if m == 0:
            return np.empty((0, 2), dtype=np.int64)
        return np.fromiter(
            (x for uv in self._edges for x in uv), dtype=np.int64, count=2 * m
        ).reshape(m, 2)

    def build(self) -> Graph:
        """Freeze into an immutable Graph (vectorized CSR build)."""
        return Graph.from_arrays(self.n, self.edge_array(), validate=False)
