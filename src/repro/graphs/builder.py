"""Incremental graph builder.

Generators assemble edge sets incrementally (e.g. adding one forest at a
time); :class:`GraphBuilder` collects edges with validation and produces an
immutable :class:`~repro.graphs.graph.Graph` at the end.
"""

from __future__ import annotations

from repro.graphs.graph import Graph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Collects edges for a graph on ``n`` vertices, then freezes it."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self.n = n
        self._edges: set[tuple[int, int]] = set()

    def __len__(self) -> int:
        return len(self._edges)

    def has_edge(self, u: int, v: int) -> bool:
        """True if the edge is already present."""
        if u == v:
            return False
        return ((u, v) if u < v else (v, u)) in self._edges

    def add_edge(self, u: int, v: int) -> bool:
        """Add edge ``{u, v}``; return False if it was already present."""
        if u == v:
            raise ValueError(f"self-loop at vertex {u}")
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={self.n}")
        key = (u, v) if u < v else (v, u)
        if key in self._edges:
            return False
        self._edges.add(key)
        return True

    def add_edges(self, edges) -> int:
        """Add many edges; return how many were new."""
        added = 0
        for u, v in edges:
            if self.add_edge(u, v):
                added += 1
        return added

    def build(self) -> Graph:
        """Freeze into an immutable Graph."""
        return Graph._from_edge_set(self.n, set(self._edges))
