"""Arboricity machinery: Definition 3.1, bounds, and exact computation.

The paper parameterizes everything by the arboricity

    alpha(G) = max over subgraphs H, |V(H)| >= 2 of ceil(m_H / (n_H - 1)),

equal (Nash-Williams 1964) to the minimum number of forests covering E(G).
We provide:

- :func:`degeneracy` / :func:`core_numbers` — the classic peeling bounds
  (alpha <= degeneracy <= 2*alpha - 1);
- :func:`density_lower_bound` — ceil(m / (n-1)) on the whole graph;
- :func:`exact_arboricity` — exact value via matroid-union forest packing,
  which also returns an explicit partition of E into alpha forests
  (the constructive direction of Nash-Williams).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "core_numbers",
    "degeneracy",
    "degeneracy_order",
    "density_lower_bound",
    "exact_arboricity",
    "forest_partition",
]


def degeneracy_order(graph: Graph) -> tuple[list[int], list[int]]:
    """Smallest-last vertex order and per-vertex core numbers.

    Returns ``(order, cores)`` where ``order`` lists vertices in peeling
    order and ``cores[v]`` is the core number of v.  The degeneracy is
    ``max(cores)``.

    Array bucket peel (Batagelj-Zaveršnik layout): vertices live in one
    flat array sorted by residual degree (``np.bincount`` histogram +
    stable argsort set up the buckets), and every removal decrements each
    surviving neighbor by an O(1) swap toward its new bucket.  Each
    extracted vertex has minimum *exact* residual degree — the same
    smallest-last guarantee as the :class:`~repro.util.bucket_queue.
    BucketQueue` peeler this replaces (kept as the test oracle), with a
    deterministic array-order tie-break instead of set-pop order.
    """
    n = graph.num_vertices
    if n == 0:
        return [], []
    offsets_arr, targets_arr = graph.csr()
    deg_arr = graph.degrees()
    max_deg = int(deg_arr.max(initial=0))
    # Bucket layout: vert = vertices sorted by degree (ties by id),
    # pos = inverse permutation, bin_start[d] = first slot of bucket d.
    vert_arr = np.argsort(deg_arr, kind="stable")
    pos_arr = np.empty(n, dtype=np.int64)
    pos_arr[vert_arr] = np.arange(n, dtype=np.int64)
    counts = np.bincount(deg_arr, minlength=max_deg + 1)
    starts = np.zeros(max_deg + 1, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    # The peel itself runs over plain lists: indexed swaps beat per-probe
    # numpy scalars by an order of magnitude at this access pattern.
    deg = deg_arr.tolist()
    vert = vert_arr.tolist()
    pos = pos_arr.tolist()
    bin_start = starts.tolist()
    offsets = offsets_arr.tolist()
    targets = targets_arr.tolist()
    cores = [0] * n
    current_core = 0
    for i in range(n):
        v = vert[i]
        dv = deg[v]
        bin_start[dv] = i + 1  # v leaves the front of its bucket
        if dv > current_core:
            current_core = dv
        cores[v] = current_core
        for w in targets[offsets[v]:offsets[v + 1]]:
            if pos[w] > i:  # w still unpeeled: exact residual decrement
                dw = deg[w]
                s = bin_start[dw]
                u = vert[s]
                if u != w:
                    pw = pos[w]
                    vert[s] = w
                    vert[pw] = u
                    pos[w] = s
                    pos[u] = pw
                bin_start[dw] = s + 1
                deg[w] = dw - 1
    return vert, cores


def core_numbers(graph: Graph) -> list[int]:
    """Core number of every vertex."""
    return degeneracy_order(graph)[1]


def degeneracy(graph: Graph) -> int:
    """The degeneracy d(G); satisfies alpha <= d <= 2*alpha - 1."""
    __, cores = degeneracy_order(graph)
    return max(cores, default=0)


def density_lower_bound(graph: Graph) -> int:
    """ceil(m / (n - 1)), a lower bound on arboricity (whole-graph term)."""
    n, m = graph.num_vertices, graph.num_edges
    if n < 2 or m == 0:
        return 0
    return -(-m // (n - 1))


class _ForestPacking:
    """k mutable forests over a fixed vertex set, with edge insertion via
    matroid-union augmenting paths.

    ``try_insert(u, v)`` attempts to add edge {u, v} to one of the k forests,
    possibly reshuffling existing edges between forests (the exchange walk of
    the matroid-union algorithm).  Returns False when no augmenting sequence
    exists — which, by matroid union / Nash-Williams, happens iff the current
    edge set plus {u, v} is not coverable by k forests.
    """

    def __init__(self, n: int, k: int) -> None:
        self.n = n
        self.k = k
        # adjacency[i][v] = list of neighbors of v inside forest i
        self.adjacency: list[dict[int, list[int]]] = [dict() for _ in range(k)]
        self.forest_of: dict[tuple[int, int], int] = {}

    @staticmethod
    def _key(u: int, v: int) -> tuple[int, int]:
        return (u, v) if u < v else (v, u)

    def _forest_path(self, i: int, u: int, v: int) -> list[tuple[int, int]] | None:
        """Edge path from u to v inside forest i, or None if disconnected."""
        if u == v:
            return []
        adj = self.adjacency[i]
        if u not in adj or v not in adj:
            return None
        parent: dict[int, int] = {u: u}
        queue = deque([u])
        while queue:
            x = queue.popleft()
            for y in adj.get(x, ()):
                if y not in parent:
                    parent[y] = x
                    if y == v:
                        path = []
                        cur = v
                        while cur != u:
                            path.append(self._key(parent[cur], cur))
                            cur = parent[cur]
                        path.reverse()
                        return path
                    queue.append(y)
        return None

    def _add(self, i: int, u: int, v: int) -> None:
        self.adjacency[i].setdefault(u, []).append(v)
        self.adjacency[i].setdefault(v, []).append(u)
        self.forest_of[self._key(u, v)] = i

    def _remove(self, i: int, u: int, v: int) -> None:
        self.adjacency[i][u].remove(v)
        self.adjacency[i][v].remove(u)
        del self.forest_of[self._key(u, v)]

    def try_insert(self, u: int, v: int) -> bool:
        """Insert edge {u, v}; return False if k forests cannot hold it."""
        start = self._key(u, v)
        if start in self.forest_of:
            raise ValueError(f"edge {start} already packed")
        # BFS over edges-to-place.  predecessor[e] = (previous edge, forest
        # whose cycle e lies on); used to unwind the exchange sequence.
        predecessor: dict[tuple[int, int], tuple[tuple[int, int] | None, int]] = {
            start: (None, -1)
        }
        queue = deque([start])
        while queue:
            edge = queue.popleft()
            a, b = edge
            for i in range(self.k):
                path = self._forest_path(i, a, b)
                if path is None:
                    # Forest i accepts this edge outright: unwind swaps.
                    self._apply_augmentation(edge, i, predecessor)
                    return True
                for cycle_edge in path:
                    if cycle_edge not in predecessor:
                        predecessor[cycle_edge] = (edge, i)
                        queue.append(cycle_edge)
        return False

    def _apply_augmentation(
        self,
        final_edge: tuple[int, int],
        free_forest: int,
        predecessor: dict[tuple[int, int], tuple[tuple[int, int] | None, int]],
    ) -> None:
        # Walk back: final_edge goes into free_forest; every predecessor
        # edge replaces its successor in the forest whose cycle linked them.
        edge: tuple[int, int] | None = final_edge
        target_forest = free_forest
        while edge is not None:
            prev_edge, via_forest = predecessor[edge]
            if edge in self.forest_of:
                self._remove(self.forest_of[edge], *edge)
            self._add(target_forest, *edge)
            target_forest = via_forest
            edge = prev_edge

    def forests(self) -> list[list[tuple[int, int]]]:
        """Return the packed edges grouped by forest index."""
        result: list[list[tuple[int, int]]] = [[] for _ in range(self.k)]
        for edge, i in self.forest_of.items():
            result[i].append(edge)
        return [sorted(f) for f in result]


def forest_partition(graph: Graph, k: int) -> list[list[tuple[int, int]]] | None:
    """Partition E(G) into at most ``k`` forests, or None if impossible.

    Matroid-union augmentation: exact, deterministic.  The returned list has
    exactly ``k`` entries (possibly empty ones).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if graph.num_edges == 0:
        return [[] for _ in range(k)]
    if k == 0:
        return None
    packing = _ForestPacking(graph.num_vertices, k)
    for u, v in graph.edges():
        if not packing.try_insert(u, v):
            return None
    return packing.forests()


def exact_arboricity(graph: Graph) -> int:
    """Exact Nash-Williams arboricity via incremental forest packing.

    Starts from the density lower bound and increases k until a k-forest
    packing exists.  Exact but superlinear; intended for validation and
    bench-scale graphs (up to a few thousand edges).
    """
    if graph.num_edges == 0:
        return 0
    k = max(1, density_lower_bound(graph))
    while True:
        if forest_partition(graph, k) is not None:
            return k
        k += 1
