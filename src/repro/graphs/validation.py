"""Validators for colorings, orientations, and forests.

Every experiment ends by *checking* its output with these functions, so a
bug in an algorithm fails loudly rather than producing a pretty but wrong
table.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.util.dsu import DisjointSetUnion

__all__ = [
    "is_proper_coloring",
    "count_colors",
    "monochromatic_edges",
    "is_forest",
    "is_acyclic_orientation",
    "max_out_degree",
]


def _as_color_array(graph: Graph, colors: Sequence[int] | Mapping[int, int]) -> np.ndarray | None:
    """Dense color vector for vertices ``0..n-1``, or None if not coercible.

    Lists/arrays of plain integers take the vectorized path; mappings and
    exotic sequences fall back to the element-wise checks.
    """
    if isinstance(colors, Mapping):
        return None
    try:
        arr = np.asarray(colors)
    except (TypeError, ValueError):
        return None
    if arr.ndim != 1 or len(arr) < graph.num_vertices or not np.issubdtype(
        arr.dtype, np.integer
    ):
        return None
    return arr


def is_proper_coloring(graph: Graph, colors: Sequence[int] | Mapping[int, int]) -> bool:
    """True if no edge has equal endpoint colors and every vertex is colored."""
    arr = _as_color_array(graph, colors)
    if arr is not None:
        edges = graph.edge_array()
        return bool((arr[edges[:, 0]] != arr[edges[:, 1]]).all())
    getter = colors.__getitem__
    try:
        for v in graph.vertices():
            getter(v)
    except (KeyError, IndexError):
        return False
    return all(getter(u) != getter(v) for u, v in graph.edges())


def count_colors(graph: Graph, colors: Sequence[int] | Mapping[int, int]) -> int:
    """Number of distinct colors used."""
    return len({colors[v] for v in graph.vertices()})


def monochromatic_edges(graph: Graph, colors: Sequence[int] | Mapping[int, int]) -> list[tuple[int, int]]:
    """All edges whose endpoints share a color (lexicographic order)."""
    arr = _as_color_array(graph, colors)
    if arr is not None:
        edges = graph.edge_array()
        bad = edges[arr[edges[:, 0]] == arr[edges[:, 1]]]
        return [(int(u), int(v)) for u, v in bad]
    return [(u, v) for u, v in graph.edges() if colors[u] == colors[v]]


def is_forest(n: int, edges: Sequence[tuple[int, int]]) -> bool:
    """True if the edge set is acyclic over vertices 0..n-1."""
    dsu = DisjointSetUnion(n)
    return all(dsu.union(u, v) for u, v in edges)


def is_acyclic_orientation(graph: Graph, orientation: Mapping[tuple[int, int], int]) -> bool:
    """Check that ``orientation`` orients every edge of ``graph`` acyclically.

    ``orientation[(u, v)]`` (with u < v) is the edge's head (either u or v).
    """
    n = graph.num_vertices
    out_edges: list[list[int]] = [[] for _ in range(n)]
    for u, v in graph.edges():
        head = orientation.get((u, v))
        if head not in (u, v):
            return False
        tail = v if head == u else u
        out_edges[tail].append(head)
    # Kahn's algorithm: the orientation is acyclic iff all nodes drain.
    indegree = [0] * n
    for tail in range(n):
        for head in out_edges[tail]:
            indegree[head] += 1
    stack = [v for v in range(n) if indegree[v] == 0]
    drained = 0
    while stack:
        v = stack.pop()
        drained += 1
        for head in out_edges[v]:
            indegree[head] -= 1
            if indegree[head] == 0:
                stack.append(head)
    return drained == n


def max_out_degree(graph: Graph, orientation: Mapping[tuple[int, int], int]) -> int:
    """Maximum out-degree induced by the orientation."""
    out = [0] * graph.num_vertices
    for u, v in graph.edges():
        head = orientation[(u, v)]
        tail = v if head == u else u
        out[tail] += 1
    return max(out, default=0)
