"""Graph serialization: whitespace edge lists and JSON documents.

Lets users bring their own workloads to the pipelines and persist
generated benchmark graphs.  The edge-list dialect is the common
"``u v`` per line, ``#`` comments" format used by SNAP et al.; vertex
count is the max id + 1 unless given explicitly.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.graphs.graph import Graph

__all__ = ["read_edge_list", "write_edge_list", "graph_to_json", "graph_from_json"]


def read_edge_list(path: str | Path, num_vertices: int | None = None) -> Graph:
    """Parse a ``u v`` per-line edge list (``#`` starts a comment)."""
    edges: list[tuple[int, int]] = []
    max_id = -1
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            body = line.split("#", 1)[0].strip()
            if not body:
                continue
            parts = body.split()
            if len(parts) != 2:
                raise ValueError(f"{path}:{line_no}: expected 'u v', got {body!r}")
            u, v = int(parts[0]), int(parts[1])
            if u < 0 or v < 0:
                raise ValueError(f"{path}:{line_no}: negative vertex id")
            edges.append((u, v))
            max_id = max(max_id, u, v)
    n = num_vertices if num_vertices is not None else max_id + 1
    return Graph.from_edges(n, edges)


def write_edge_list(graph: Graph, path: str | Path) -> None:
    """Write one ``u v`` line per edge (u < v), plus a header comment."""
    with open(path, "w") as handle:
        handle.write(
            f"# n={graph.num_vertices} m={graph.num_edges} (repro edge list)\n"
        )
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def graph_to_json(graph: Graph) -> str:
    """Serialize to a compact JSON document."""
    return json.dumps(
        {
            "format": "repro-graph",
            "version": 1,
            "num_vertices": graph.num_vertices,
            "edges": [[u, v] for u, v in graph.edges()],
        }
    )


def graph_from_json(document: str) -> Graph:
    """Inverse of :func:`graph_to_json`."""
    data = json.loads(document)
    if data.get("format") != "repro-graph":
        raise ValueError("not a repro-graph document")
    return Graph.from_edges(
        data["num_vertices"], [tuple(e) for e in data["edges"]]
    )
