"""Graph serialization: whitespace edge lists and JSON documents.

Lets users bring their own workloads to the pipelines and persist
generated benchmark graphs.  The edge-list dialect is the common
"``u v`` per line, ``#`` comments" format used by SNAP et al.; vertex
count is the max id + 1 unless given explicitly.

Real-world SNAP-style files routinely contain self-loops and duplicate
edges (both orientations of the same pair count as duplicates), which the
paper's simple-graph model rejects.  :func:`read_edge_list` therefore
parses in two modes: ``strict=True`` (default) raises a
:class:`ValueError` naming the file and line of the first offending
entry; ``strict=False`` silently drops them and reports how many were
dropped through the optional ``stats`` dict and a :mod:`warnings`
message.  Vertex ids are validated against ``num_vertices`` *during*
parsing, so an out-of-range id is reported with its file and line rather
than surfacing later as an opaque construction error.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import numpy as np

from repro.graphs.graph import Graph

__all__ = ["read_edge_list", "write_edge_list", "graph_to_json", "graph_from_json"]


def read_edge_list(
    path: str | Path,
    num_vertices: int | None = None,
    strict: bool = True,
    stats: dict | None = None,
) -> Graph:
    """Parse a ``u v`` per-line edge list (``#`` starts a comment).

    Parameters
    ----------
    num_vertices:
        Explicit vertex count; ids are checked against it line by line.
        Defaults to max id + 1.
    strict:
        With ``strict=True`` (default) a self-loop or duplicate edge
        raises ``ValueError`` with the file path and line number.  With
        ``strict=False`` such lines are skipped; the drop counts are
        reported via ``stats`` and a ``UserWarning``.
    stats:
        Optional dict populated with ``self_loops_dropped``,
        ``duplicates_dropped``, and ``edges_kept``.
    """
    edges: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    self_loops = 0
    duplicates = 0
    max_id = -1
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            body = line.split("#", 1)[0].strip()
            if not body:
                continue
            parts = body.split()
            if len(parts) != 2:
                raise ValueError(f"{path}:{line_no}: expected 'u v', got {body!r}")
            u, v = int(parts[0]), int(parts[1])
            if u < 0 or v < 0:
                raise ValueError(f"{path}:{line_no}: negative vertex id")
            if num_vertices is not None and (u >= num_vertices or v >= num_vertices):
                raise ValueError(
                    f"{path}:{line_no}: vertex id {max(u, v)} out of range "
                    f"for num_vertices={num_vertices}"
                )
            # A vertex mentioned only on a dropped line still exists, so
            # max_id must be updated before the skip paths below.
            if v > max_id or u > max_id:
                max_id = max(max_id, u, v)
            if u == v:
                if strict:
                    raise ValueError(
                        f"{path}:{line_no}: self-loop at vertex {u} "
                        "(use strict=False to skip)"
                    )
                self_loops += 1
                continue
            key = (u, v) if u < v else (v, u)
            if key in seen:
                if strict:
                    raise ValueError(
                        f"{path}:{line_no}: duplicate edge ({u}, {v}) "
                        "(use strict=False to skip)"
                    )
                duplicates += 1
                continue
            seen.add(key)
            edges.append(key)
    if stats is not None:
        stats["self_loops_dropped"] = self_loops
        stats["duplicates_dropped"] = duplicates
        stats["edges_kept"] = len(edges)
    if self_loops or duplicates:
        warnings.warn(
            f"{path}: dropped {self_loops} self-loop(s) and "
            f"{duplicates} duplicate edge(s)",
            stacklevel=2,
        )
    n = num_vertices if num_vertices is not None else max_id + 1
    return Graph.from_edges(n, edges)


def write_edge_list(graph: Graph, path: str | Path) -> None:
    """Write one ``u v`` line per edge (u < v), plus a header comment."""
    with open(path, "w") as handle:
        handle.write(
            f"# n={graph.num_vertices} m={graph.num_edges} (repro edge list)\n"
        )
        for u, v in graph.edge_array():
            handle.write(f"{u} {v}\n")


def graph_to_json(graph: Graph) -> str:
    """Serialize to a compact JSON document."""
    return json.dumps(
        {
            "format": "repro-graph",
            "version": 1,
            "num_vertices": graph.num_vertices,
            "edges": graph.edge_array().tolist(),
        }
    )


def graph_from_json(document: str) -> Graph:
    """Inverse of :func:`graph_to_json`."""
    data = json.loads(document)
    if data.get("format") != "repro-graph":
        raise ValueError("not a repro-graph document")
    edges = np.asarray(data["edges"], dtype=np.int64).reshape(-1, 2)
    return Graph.from_arrays(data["num_vertices"], edges)
