"""The seed (pre-vectorization) CSR builder, kept as a correctness oracle.

`repro.graphs.graph._build_csr` replaced this per-edge insertion loop and
per-vertex sort loop with a single ``np.lexsort`` pass.  The equivalence
tests (``tests/test_graphs_graph.py``) and the substrate throughput
benchmark (``benchmarks/bench_f3_substrate_throughput.py``) assert /
measure the vectorized builder against this verbatim seed implementation:
the two must produce byte-identical ``offsets`` and ``targets`` on every
input.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "reference_connected_components",
    "reference_csr_from_edge_set",
    "reference_csr_from_edges",
]


def reference_connected_components(graph) -> list[list[int]]:
    """The seed per-vertex BFS that ``Graph.connected_components`` replaced.

    Kept verbatim as the equivalence oracle for the vectorized
    hook-and-compress implementation: both must return components sorted
    internally and ordered by smallest member.
    """
    n = graph.num_vertices
    seen = np.zeros(n, dtype=bool)
    components: list[list[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = True
        queue = [start]
        component = []
        while queue:
            v = queue.pop()
            component.append(v)
            for w in graph.neighbors(v):
                w = int(w)
                if not seen[w]:
                    seen[w] = True
                    queue.append(w)
        components.append(sorted(component))
    return components


def reference_csr_from_edge_set(
    n: int, edge_set: set[tuple[int, int]]
) -> tuple[np.ndarray, np.ndarray]:
    """The seed ``Graph._from_edge_set`` body, returning ``(offsets, targets)``.

    ``edge_set`` must contain canonical ``(u, v)`` pairs with ``u < v``.
    """
    m = len(edge_set)
    degrees = np.zeros(n, dtype=np.int64)
    if m:
        arr = np.fromiter(
            (x for uv in edge_set for x in uv), dtype=np.int64, count=2 * m
        ).reshape(m, 2)
        np.add.at(degrees, arr[:, 0], 1)
        np.add.at(degrees, arr[:, 1], 1)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    targets = np.zeros(2 * m, dtype=np.int64)
    cursor = offsets[:-1].copy()
    if m:
        for u, v in edge_set:
            targets[cursor[u]] = v
            cursor[u] += 1
            targets[cursor[v]] = u
            cursor[v] += 1
    # Sort each adjacency list so neighbor(v, i) is deterministic.
    for v in range(n):
        lo, hi = offsets[v], offsets[v + 1]
        targets[lo:hi] = np.sort(targets[lo:hi])
    return offsets, targets


def reference_csr_from_edges(
    n: int, edges
) -> tuple[np.ndarray, np.ndarray]:
    """The seed ``Graph.from_edges`` validation + dedup, then the seed build."""
    if n < 0:
        raise ValueError("n must be non-negative")
    seen: set[tuple[int, int]] = set()
    for u, v in edges:
        if u == v:
            raise ValueError(f"self-loop at vertex {u}")
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
        seen.add((u, v) if u < v else (v, u))
    return reference_csr_from_edge_set(n, seen)
