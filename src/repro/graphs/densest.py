"""Exact densest subgraph via Goldberg's flow reduction.

``max_H m_H / n_H`` over nonempty vertex-induced subgraphs.  The maximum
average degree ``2 * density`` sandwiches the arboricity
(``alpha - 1 < max_H m_H/n_H``-ish via Nash-Williams), and the extracted
witness subgraph is used in tests to cross-validate
:func:`repro.graphs.arboricity.exact_arboricity`.

Implementation: binary search on the guess ``g = p / q`` with integer-scaled
capacities, testing ``exists H: m_H - g * n_H > 0`` with one min-cut per
probe (edge-node network: s -> e with capacity q, e -> endpoints infinite,
v -> t with capacity p).  Distinct density values differ by at least
``1 / n^2``, so O(log(m n^2)) probes isolate the optimum; the witness is the
source side of the final cut.
"""

from __future__ import annotations

from fractions import Fraction

from repro.graphs.flow import FlowNetwork
from repro.graphs.graph import Graph

__all__ = ["densest_subgraph"]


def _exists_denser_than(graph: Graph, p: int, q: int) -> set[int] | None:
    """Return a vertex set H with m_H * q > p * n_H, or None.

    Network nodes: 0 = source, 1 = sink, 2..2+m-1 = edge nodes,
    2+m .. 2+m+n-1 = vertex nodes.
    """
    n, m = graph.num_vertices, graph.num_edges
    if m == 0:
        return None
    net = FlowNetwork(2 + m + n)
    source, sink = 0, 1
    vertex_base = 2 + m
    infinite = q * m + p * n + 1
    for idx, (u, v) in enumerate(graph.edges()):
        enode = 2 + idx
        net.add_edge(source, enode, q)
        net.add_edge(enode, vertex_base + u, infinite)
        net.add_edge(enode, vertex_base + v, infinite)
    for v in range(n):
        net.add_edge(vertex_base + v, sink, p)
    cut_value = net.max_flow(source, sink)
    if cut_value >= q * m:
        return None
    side = net.min_cut_source_side(source)
    witness = {v for v in range(n) if (vertex_base + v) in side}
    return witness or None


def densest_subgraph(graph: Graph) -> tuple[Fraction, list[int]]:
    """Return ``(max density m_H/n_H, witness vertex list)``.

    Exact: the returned Fraction equals the density of the returned witness,
    which is maximum over all nonempty vertex subsets.
    """
    n, m = graph.num_vertices, graph.num_edges
    if n == 0:
        raise ValueError("densest subgraph of the empty graph is undefined")
    if m == 0:
        return Fraction(0), [0]
    # Binary search over density in units of 1/n^2 (distinct subgraph
    # densities a/b, c/d with b, d <= n differ by >= 1/n^2).
    scale = n * n
    lo, hi = 0, m * scale  # density in [0, m]
    best_witness: list[int] | None = None
    while lo < hi:
        mid = (lo + hi + 1) // 2
        witness = _exists_denser_than(graph, mid, scale)
        if witness is not None:
            lo = mid
            best_witness = sorted(witness)
        else:
            hi = mid - 1
    if best_witness is None:
        # Every subgraph has density <= 0/scale ... only possible when m=0.
        return Fraction(0), [0]
    sub, __ = graph.subgraph(best_witness)
    density = Fraction(sub.num_edges, sub.num_vertices)
    return density, best_witness
