"""Graph generators with *certified* arboricity bounds.

The paper's theorems are parameterized by the arboricity α (Definition 3.1).
To test them we need workloads whose arboricity is known by construction:

- :func:`union_of_random_forests` is the canonical workload — by
  Nash-Williams, a union of k forests has arboricity <= k exactly.
- :func:`preferential_attachment` gives sparse graphs where the maximum
  degree Δ grows with n while α stays fixed — the motivating regime where
  arboricity-dependent coloring beats (Δ+1)-coloring.
- :func:`skewed_dependency_gadget` builds the Figure 2b counterexample:
  a graph whose natural β-partition has a long, thin dependency chain with
  huge fans hanging off it, defeating naive volume-based exploration.

All randomness flows from explicit seeds through SplitMix64.  The
deterministic families below build their edge sets as numpy array
expressions feeding :meth:`Graph.from_arrays` directly; the randomized
families keep their exact scalar SplitMix64 draw sequences (so seeds keep
producing the same graphs as the seed implementation) and hand the
accumulated edges to the vectorized CSR builder in one shot.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import Graph
from repro.util.rng import SplitMix64

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid_2d",
    "hypercube",
    "complete_ary_tree",
    "random_tree",
    "random_forest",
    "union_of_random_forests",
    "random_gnm",
    "preferential_attachment",
    "skewed_dependency_gadget",
]


def path_graph(n: int) -> Graph:
    """Path on ``n`` vertices (arboricity 1 for n >= 2)."""
    ids = np.arange(max(n - 1, 0), dtype=np.int64)
    return Graph.from_arrays(n, np.column_stack((ids, ids + 1)))


def cycle_graph(n: int) -> Graph:
    """Cycle on ``n >= 3`` vertices (arboricity 2 by Nash-Williams... = ceil(n/(n-1)) = 2)."""
    if n < 3:
        raise ValueError("cycle needs n >= 3")
    ids = np.arange(n, dtype=np.int64)
    return Graph.from_arrays(n, np.column_stack((ids, (ids + 1) % n)))


def complete_graph(n: int) -> Graph:
    """Clique K_n (arboricity ceil(n/2))."""
    upper = np.triu_indices(n, k=1)
    return Graph.from_arrays(n, np.column_stack(upper).astype(np.int64))


def star_graph(n: int) -> Graph:
    """Star with one hub and ``n - 1`` leaves (arboricity 1, Δ = n - 1)."""
    if n < 1:
        raise ValueError("star needs n >= 1")
    leaves = np.arange(1, n, dtype=np.int64)
    return Graph.from_arrays(n, np.column_stack((np.zeros_like(leaves), leaves)))


def grid_2d(rows: int, cols: int) -> Graph:
    """rows x cols grid (planar, arboricity <= 2... <= 3 in general; 2 for grids)."""
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horizontal = np.column_stack((ids[:, :-1].ravel(), ids[:, 1:].ravel()))
    vertical = np.column_stack((ids[:-1, :].ravel(), ids[1:, :].ravel()))
    return Graph.from_arrays(rows * cols, np.concatenate((horizontal, vertical)))


def hypercube(dim: int) -> Graph:
    """Boolean hypercube Q_dim on 2^dim vertices."""
    n = 1 << dim
    ids = np.arange(n, dtype=np.int64)
    flips = ids[:, None] ^ (np.int64(1) << np.arange(dim, dtype=np.int64))[None, :]
    pairs = np.column_stack((np.repeat(ids, dim), flips.ravel()))
    return Graph.from_arrays(n, pairs[pairs[:, 0] < pairs[:, 1]])


def complete_ary_tree(arity: int, depth: int) -> Graph:
    """Complete ``arity``-ary tree of the given depth (root at vertex 0).

    Depth 0 is a single vertex.  Vertices are numbered level by level, so
    the children of v are ``arity * v + 1 .. arity * v + arity``.
    """
    if arity < 1:
        raise ValueError("arity must be >= 1")
    n = sum(arity**d for d in range(depth + 1))
    children = np.arange(1, n, dtype=np.int64)
    parents = (children - 1) // arity
    return Graph.from_arrays(n, np.column_stack((parents, children)))


def random_tree(n: int, seed: int) -> Graph:
    """Uniform random-attachment tree: node i attaches to a random j < i."""
    rng = SplitMix64(seed)
    edges = [(i, rng.randrange(i)) for i in range(1, n)]
    return Graph.from_edges(n, edges)


def random_forest(n: int, num_edges: int, seed: int) -> Graph:
    """Random forest on ``n`` vertices with exactly ``num_edges`` edges.

    Built by sampling a random attachment tree and keeping a random subset
    of its edges, so the result is always acyclic (arboricity <= 1).
    """
    if num_edges > n - 1:
        raise ValueError("a forest on n vertices has at most n-1 edges")
    rng = SplitMix64(seed)
    tree_edges = [(i, rng.randrange(i)) for i in range(1, n)]
    rng.shuffle(tree_edges)
    return Graph.from_edges(n, tree_edges[:num_edges])


def union_of_random_forests(n: int, k: int, seed: int) -> Graph:
    """Union of ``k`` independent random spanning trees: arboricity <= k.

    By Nash-Williams the edge set partitions into <= k forests, so
    α(G) <= k by construction.  Duplicate edges across trees are merged,
    which can only lower the arboricity.  For n moderately large the
    density m/(n-1) stays close to k, so α is close to k as well.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    rng = SplitMix64(seed)
    builder = GraphBuilder(n)
    for _ in range(k):
        child = rng.split()
        order = list(range(n))
        child.shuffle(order)
        for idx in range(1, n):
            parent = order[child.randrange(idx)]
            if parent != order[idx]:
                builder.add_edge(order[idx], parent)
    return builder.build()


def random_gnm(n: int, m: int, seed: int) -> Graph:
    """Erdos-Renyi G(n, m): exactly ``m`` distinct edges, uniform."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"G({n}, m) has at most {max_edges} edges")
    rng = SplitMix64(seed)
    builder = GraphBuilder(n)
    while len(builder) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            builder.add_edge(u, v)
    return builder.build()


def preferential_attachment(n: int, links: int, seed: int) -> Graph:
    """Barabasi-Albert style graph: each new node attaches to ``links`` nodes.

    Arboricity <= degeneracy <= links (peel nodes newest-first), but the
    maximum degree grows roughly like sqrt(n) — exactly the sparse-but-
    high-degree regime motivating arboricity-dependent coloring.
    """
    if links < 1:
        raise ValueError("links must be >= 1")
    if n <= links:
        return complete_graph(n)
    rng = SplitMix64(seed)
    builder = GraphBuilder(n)
    # Seed clique on links + 1 nodes.
    for u in range(links + 1):
        for v in range(u + 1, links + 1):
            builder.add_edge(u, v)
    # Repeated-endpoints list implements degree-proportional sampling.
    endpoints: list[int] = []
    for u in range(links + 1):
        endpoints.extend([u] * links)
    for new in range(links + 1, n):
        chosen: set[int] = set()
        while len(chosen) < links:
            pick = endpoints[rng.randrange(len(endpoints))]
            chosen.add(pick)
        for target in chosen:
            builder.add_edge(new, target)
            endpoints.append(target)
        endpoints.extend([new] * links)
    return builder.build()


def skewed_dependency_gadget(
    beta: int, chain_length: int, fan: int, decoy_fan: int = 0
) -> tuple[Graph, list[int]]:
    """The Figure 2b counterexample to naive volume-based querying.

    Builds a graph whose natural β-partition contains a *chain*
    ``w_0, w_1, ..., w_L`` with strictly decreasing layers
    (layer(w_i) = L - i + 1), where every chain node additionally carries
    ``fan`` pendant leaves (layer 0).  The dependency graph of ``w_0``
    therefore descends the whole chain, but a coin-dropping strategy that
    splits coins uniformly over all ``fan + O(beta)`` neighbors runs out of
    coins after ~log_fan(x) chain steps, while the paper's adaptive
    forwarding rule spends only a 1/(beta+1) fraction per step.

    The decreasing layers are enforced with pendant *delay trees*: chain
    node ``w_i`` carries ``beta + 1`` complete (beta+1)-ary trees of depth
    ``L - i``, whose roots stay unlayered exactly until iteration ``L - i``
    of the induced-partition process (Definition 3.6), blocking ``w_i``
    until iteration ``L - i + 1`` regardless of what its chain neighbors do.

    ``decoy_fan > 0`` additionally attaches to ``w_0`` a *decoy* neighbor
    (vertex id ``chain_length``) carrying ``decoy_fan`` delay trees of
    depth L.  The decoy's layer equals w_0's, so it lies *outside*
    D(ℓ_β, w_0) — yet its degree is decoy_fan, so BFS drowns in its
    children and DFS can dive into its subtrees (the §2.1 failure modes),
    while the adaptive rule forwards it only 1/(β+1) of the coins and the
    decoy re-forwards to at most β+1 children per super-iteration.

    Returns ``(graph, chain)`` where ``chain[i]`` is the vertex id of w_i.
    ``w_0`` is always vertex 0.  Note the size grows like
    ``beta * (beta+1)^L`` plus ``decoy_fan * (beta+1)^L``, so keep
    ``chain_length`` small for large beta.
    """
    if beta < 2:
        raise ValueError("gadget needs beta >= 2")
    if chain_length < 1:
        raise ValueError("chain_length must be >= 1")
    if 0 < decoy_fan < beta:
        # Fewer than beta delay trees cannot hold the decoy at w_0's layer,
        # which would drop it *into* the dependency graph.
        raise ValueError("decoy_fan must be 0 or >= beta")
    edges: list[tuple[int, int]] = []
    next_id = chain_length  # chain occupies ids 0..chain_length-1
    chain = list(range(chain_length))

    def fresh() -> int:
        nonlocal next_id
        vid = next_id
        next_id += 1
        return vid

    def attach_delay_tree(parent: int, depth: int) -> None:
        """Attach a complete (beta+1)-ary tree of the given depth to parent."""
        root = fresh()
        edges.append((parent, root))
        frontier = [root]
        for _ in range(depth):
            next_frontier = []
            for node in frontier:
                for _ in range(beta + 1):
                    child = fresh()
                    edges.append((node, child))
                    next_frontier.append(child)
            frontier = next_frontier

    last = chain_length - 1
    if decoy_fan > 0:
        # Decoy gets the first fresh id (= chain_length), so adversarial
        # low-id-first exploration orders walk straight into it.
        decoy = fresh()
        edges.append((chain[0], decoy))
        for _ in range(decoy_fan):
            attach_delay_tree(decoy, last)
    for i in range(chain_length):
        if i + 1 < chain_length:
            edges.append((chain[i], chain[i + 1]))
        for _ in range(fan):
            leaf = fresh()
            edges.append((chain[i], leaf))
        # beta + 1 delay trees of depth (last - i) keep w_i at layer
        # last - i + 1: their roots stay unlayered through iteration
        # last - i, so w_i has > beta infinity-neighbors until then.
        for _ in range(beta + 1):
            attach_delay_tree(chain[i], last - i)
    return Graph.from_edges(next_id, edges), chain
