"""Immutable undirected graph in CSR (compressed sparse row) form.

Every algorithm in this library reads graphs through this class.  The CSR
layout matches the paper's access model: the LCA / AMPC query interface is
"give me the i-th neighbor of v" and "give me deg(v)" (Section 3.1), both
O(1) on CSR.  Simple graphs only: no self-loops, no parallel edges.

The substrate is *array-native*: construction, subgraph extraction, and
bulk queries are single numpy passes (``np.lexsort`` / ``np.bincount`` /
fancy indexing), never per-edge Python loops.  The array API:

- :meth:`Graph.from_arrays` — build straight from an ``(m, 2)`` edge array.
- :meth:`Graph.edge_array` — all edges as an ``(m, 2)`` array with
  ``u < v``, lexicographically sorted (cached, read-only).
- :meth:`Graph.neighbors_of` — concatenated adjacency of a vertex batch.

Immutability is enforced, not just documented: the backing ``offsets`` /
``targets`` arrays are marked non-writeable at construction, so every view
handed out by :meth:`neighbors`, :meth:`degrees`, or :meth:`edge_array` is
read-only — attempting to mutate one raises ``ValueError``.
"""

from __future__ import annotations

from itertools import chain
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Graph"]


def _as_edge_array(edges: Iterable[tuple[int, int]] | np.ndarray) -> np.ndarray:
    """Coerce an edge iterable / array-like into an ``(m, 2)`` int64 array."""
    if isinstance(edges, np.ndarray):
        arr = np.ascontiguousarray(edges, dtype=np.int64)
        if arr.size == 0:
            return arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError(f"edge array must have shape (m, 2), got {arr.shape}")
        return arr
    if not isinstance(edges, (list, tuple)):
        edges = list(edges)
    if not edges:
        return np.empty((0, 2), dtype=np.int64)
    return np.fromiter(
        chain.from_iterable(edges), dtype=np.int64, count=2 * len(edges)
    ).reshape(len(edges), 2)


class Graph:
    """Undirected simple graph with integer vertices ``0..n-1``.

    Construct via :meth:`from_edges`, :meth:`from_arrays`, or
    :class:`repro.graphs.builder.GraphBuilder`.
    """

    __slots__ = ("_n", "_offsets", "_targets", "_degrees", "_edge_array")

    def __init__(self, n: int, offsets: np.ndarray, targets: np.ndarray) -> None:
        offsets.setflags(write=False)
        targets.setflags(write=False)
        self._n = int(n)
        self._offsets = offsets
        self._targets = targets
        self._degrees: np.ndarray | None = None
        self._edge_array: np.ndarray | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[tuple[int, int]]) -> "Graph":
        """Build a graph on ``n`` vertices from an iterable of edges.

        Rejects self-loops and out-of-range endpoints; deduplicates parallel
        edges silently (the paper's model assumes simple graphs).
        """
        return cls.from_arrays(n, _as_edge_array(edges))

    @classmethod
    def from_arrays(
        cls, n: int, edge_array: np.ndarray, *, validate: bool = True
    ) -> "Graph":
        """Build a graph from an ``(m, 2)`` array of undirected edges.

        Edges may appear in either orientation and with duplicates; the CSR
        build canonicalizes, sorts, and deduplicates in bulk.  With
        ``validate=False`` the self-loop / range checks are skipped (for
        callers that construct provably clean arrays, e.g. subgraph
        extraction).
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        arr = _as_edge_array(edge_array)
        if validate and arr.size:
            u, v = arr[:, 0], arr[:, 1]
            loops = u == v
            if loops.any():
                raise ValueError(f"self-loop at vertex {int(u[np.argmax(loops)])}")
            bad = (arr < 0) | (arr >= n)
            if bad.any():
                row = int(np.argmax(bad.any(axis=1)))
                raise ValueError(
                    f"edge ({int(u[row])}, {int(v[row])}) out of range for n={n}"
                )
        offsets, targets = _build_csr(n, arr)
        return cls(n, offsets, targets)

    # -- basic accessors ---------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return len(self._targets) // 2

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return int(self._offsets[v + 1] - self._offsets[v])

    def degrees(self) -> np.ndarray:
        """Vector of all vertex degrees (cached, read-only)."""
        if self._degrees is None:
            degrees = np.diff(self._offsets)
            degrees.setflags(write=False)
            self._degrees = degrees
        return self._degrees

    def max_degree(self) -> int:
        """Maximum degree Δ (0 for the empty graph)."""
        if self._n == 0:
            return 0
        return int(self.degrees().max(initial=0))

    def neighbor(self, v: int, i: int) -> int:
        """The ``i``-th neighbor of ``v`` (the paper's LCA query)."""
        if not 0 <= i < self.degree(v):
            raise IndexError(f"vertex {v} has no neighbor index {i}")
        return int(self._targets[self._offsets[v] + i])

    def neighbors(self, v: int) -> np.ndarray:
        """All neighbors of ``v`` as a sorted array (zero-copy, read-only)."""
        return self._targets[self._offsets[v]: self._offsets[v + 1]]

    def neighbors_of(self, vertices: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated adjacency for a batch of vertices.

        Returns ``(targets, boundaries)`` where the neighbors of
        ``vertices[k]`` are ``targets[boundaries[k]:boundaries[k + 1]]``.
        One vectorized gather instead of ``len(vertices)`` slice calls.
        """
        idx = np.asarray(vertices, dtype=np.int64)
        starts = self._offsets[idx]
        counts = self._offsets[idx + 1] - starts
        boundaries = np.zeros(len(idx) + 1, dtype=np.int64)
        np.cumsum(counts, out=boundaries[1:])
        total = int(boundaries[-1])
        positions = np.arange(total, dtype=np.int64)
        positions += np.repeat(starts - boundaries[:-1], counts)
        return self._targets[positions], boundaries

    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """The raw CSR pair ``(offsets, targets)`` (zero-copy, read-only).

        ``targets[offsets[v]:offsets[v + 1]]`` lists the sorted neighbors
        of ``v``.  This is the substrate the columnar AMPC stores install
        directly instead of re-encoding adjacency pair by pair.
        """
        return self._offsets, self._targets

    def edge_array(self) -> np.ndarray:
        """All undirected edges as an ``(m, 2)`` array with ``u < v``.

        Rows are lexicographically sorted; the array is cached and
        read-only.  This is the bulk counterpart of :meth:`edges` and the
        substrate for the vectorized validators and subgraph extraction.
        """
        if self._edge_array is None:
            sources = np.repeat(
                np.arange(self._n, dtype=np.int64), self.degrees()
            )
            mask = sources < self._targets
            arr = np.column_stack((sources[mask], self._targets[mask]))
            arr.setflags(write=False)
            self._edge_array = arr
        return self._edge_array

    def has_edge(self, u: int, v: int) -> bool:
        """True if ``{u, v}`` is an edge (binary search on CSR)."""
        if u == v:
            return False
        nbrs = self.neighbors(u)
        pos = int(np.searchsorted(nbrs, v))
        return pos < len(nbrs) and int(nbrs[pos]) == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate each undirected edge once, as ``(u, v)`` with u < v."""
        for u, v in self.edge_array():
            yield int(u), int(v)

    def vertices(self) -> range:
        """Range over all vertex ids."""
        return range(self._n)

    # -- derived graphs ----------------------------------------------------

    def induced_subgraph(self, vertices: Sequence[int]) -> "Graph":
        """Vertex-induced subgraph, without materializing an id mapping.

        Vertex ids in the subgraph are ``0..len(vertices)-1`` in the order
        given (duplicates rejected).  Extraction is a bulk index-remap over
        :meth:`edge_array`, not a per-vertex dict walk; ``vertices`` itself
        is the new->old inverse mapping (use :meth:`subgraph` when the
        old->new dict is needed).
        """
        verts = np.asarray(vertices, dtype=np.int64)
        if verts.ndim != 1:
            raise ValueError("subgraph takes a 1-D sequence of vertex ids")
        k = len(verts)
        if verts.size and (
            int(verts.min()) < 0 or int(verts.max()) >= self._n
        ):
            raise IndexError("subgraph vertex id out of range")
        remap = np.full(self._n, -1, dtype=np.int64)
        remap[verts] = np.arange(k, dtype=np.int64)
        if len(np.unique(verts)) != k:
            seen: set[int] = set()
            for old_id in verts:
                old_id = int(old_id)
                if old_id in seen:
                    raise ValueError(f"duplicate vertex {old_id}")
                seen.add(old_id)
        # Gather only the subset's adjacency (O(vol(S)), not O(m)); every
        # in-subgraph edge appears once per endpoint and the CSR build's
        # canonicalize-and-dedup collapses the pair.
        nbrs, boundaries = self.neighbors_of(verts)
        new_v = remap[nbrs]
        new_u = np.repeat(np.arange(k, dtype=np.int64), np.diff(boundaries))
        keep = new_v >= 0
        sub_edges = np.column_stack((new_u[keep], new_v[keep]))
        return Graph.from_arrays(k, sub_edges, validate=False)

    def subgraph(self, vertices: Sequence[int]) -> tuple["Graph", dict[int, int]]:
        """Vertex-induced subgraph plus the old->new id mapping.

        :meth:`induced_subgraph` with the old->new dict materialized on
        top; prefer that method on hot paths that do not need the dict.
        """
        sub = self.induced_subgraph(vertices)
        mapping = {int(old_id): new_id for new_id, old_id in enumerate(vertices)}
        return sub, mapping

    def connected_components(self) -> list[list[int]]:
        """Connected components as sorted vertex lists.

        Vectorized hook-and-compress over :meth:`edge_array`: every pass
        pulls each component label to the minimum over edge endpoints
        (``np.minimum.at``) and then collapses label chains by pointer
        jumping, converging in O(log n) passes of O(n + m) array work —
        the per-vertex BFS this replaces is preserved in
        :mod:`repro.graphs.reference` as the equivalence oracle.  Output
        is identical: components sorted internally, ordered by smallest
        member.
        """
        n = self._n
        if n == 0:
            return []
        label = np.arange(n, dtype=np.int64)
        if self.num_edges:
            u, v = self.edge_array().T
            while True:
                lu, lv = label[u], label[v]
                np.minimum.at(label, lu, label[lv])
                np.minimum.at(label, lv, label[lu])
                # Pointer jumping: each chain halves until labels are roots.
                while True:
                    jumped = label[label]
                    if np.array_equal(jumped, label):
                        break
                    label = jumped
                if np.array_equal(label[u], label[v]):
                    break
        order = np.argsort(label, kind="stable")
        sorted_labels = label[order]
        boundaries = np.flatnonzero(np.diff(sorted_labels)) + 1
        return [grp.tolist() for grp in np.split(order, boundaries)]

    # -- dunder ------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self._n}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._offsets, other._offsets)
            and np.array_equal(self._targets, other._targets)
        )

    def __hash__(self) -> int:
        return hash((self._n, self._targets.tobytes()))


def _build_csr(n: int, edge_array: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """One-pass vectorized CSR build from an ``(m, 2)`` edge array.

    Mirrors and replaces the seed per-edge insertion / per-vertex sort
    loops (kept verbatim in :mod:`repro.graphs.reference` as the
    equivalence-test oracle): duplicate edges collapse, every adjacency
    list comes out sorted, and the output is byte-identical to the seed
    builder's ``offsets`` / ``targets``.
    """
    if edge_array.size == 0:
        return np.zeros(n + 1, dtype=np.int64), np.zeros(0, dtype=np.int64)
    lo = np.minimum(edge_array[:, 0], edge_array[:, 1])
    hi = np.maximum(edge_array[:, 0], edge_array[:, 1])
    src = np.concatenate((lo, hi))
    dst = np.concatenate((hi, lo))
    if n <= 3_000_000_000:  # n² fits in int64: one fused-key sort
        key = src * n
        key += dst
        key.sort(kind="stable")
        # Adjacent duplicates are exactly the parallel-edge copies.
        keep = np.empty(len(key), dtype=bool)
        keep[0] = True
        np.not_equal(key[1:], key[:-1], out=keep[1:])
        key = key[keep]
        src, targets = np.divmod(key, n)
    else:  # pragma: no cover - astronomically large n
        order = np.lexsort((dst, src))
        src = src[order]
        dst = dst[order]
        keep = np.empty(len(src), dtype=bool)
        keep[0] = True
        np.not_equal(src[1:], src[:-1], out=keep[1:])
        np.logical_or(keep[1:], dst[1:] != dst[:-1], out=keep[1:])
        src = src[keep]
        targets = dst[keep]
    degrees = np.bincount(src, minlength=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    return offsets, targets
