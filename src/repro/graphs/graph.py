"""Immutable undirected graph in CSR (compressed sparse row) form.

Every algorithm in this library reads graphs through this class.  The CSR
layout matches the paper's access model: the LCA / AMPC query interface is
"give me the i-th neighbor of v" and "give me deg(v)" (Section 3.1), both
O(1) on CSR.  Simple graphs only: no self-loops, no parallel edges.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Graph"]


class Graph:
    """Undirected simple graph with integer vertices ``0..n-1``.

    Construct via :meth:`from_edges` or :class:`repro.graphs.builder.GraphBuilder`.
    """

    __slots__ = ("_n", "_offsets", "_targets")

    def __init__(self, n: int, offsets: np.ndarray, targets: np.ndarray) -> None:
        self._n = n
        self._offsets = offsets
        self._targets = targets

    # -- construction ------------------------------------------------------

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[tuple[int, int]]) -> "Graph":
        """Build a graph on ``n`` vertices from an iterable of edges.

        Rejects self-loops and out-of-range endpoints; deduplicates parallel
        edges silently (the paper's model assumes simple graphs).
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        seen: set[tuple[int, int]] = set()
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop at vertex {u}")
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
            seen.add((u, v) if u < v else (v, u))
        return cls._from_edge_set(n, seen)

    @classmethod
    def _from_edge_set(cls, n: int, edge_set: set[tuple[int, int]]) -> "Graph":
        m = len(edge_set)
        degrees = np.zeros(n, dtype=np.int64)
        if m:
            arr = np.fromiter(
                (x for uv in edge_set for x in uv), dtype=np.int64, count=2 * m
            ).reshape(m, 2)
            np.add.at(degrees, arr[:, 0], 1)
            np.add.at(degrees, arr[:, 1], 1)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])
        targets = np.zeros(2 * m, dtype=np.int64)
        cursor = offsets[:-1].copy()
        if m:
            for u, v in edge_set:
                targets[cursor[u]] = v
                cursor[u] += 1
                targets[cursor[v]] = u
                cursor[v] += 1
        # Sort each adjacency list so neighbor(v, i) is deterministic.
        for v in range(n):
            lo, hi = offsets[v], offsets[v + 1]
            targets[lo:hi] = np.sort(targets[lo:hi])
        return cls(n, offsets, targets)

    # -- basic accessors ---------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return len(self._targets) // 2

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return int(self._offsets[v + 1] - self._offsets[v])

    def degrees(self) -> np.ndarray:
        """Vector of all vertex degrees."""
        return np.diff(self._offsets)

    def max_degree(self) -> int:
        """Maximum degree Δ (0 for the empty graph)."""
        if self._n == 0:
            return 0
        return int(np.diff(self._offsets).max(initial=0))

    def neighbor(self, v: int, i: int) -> int:
        """The ``i``-th neighbor of ``v`` (the paper's LCA query)."""
        if not 0 <= i < self.degree(v):
            raise IndexError(f"vertex {v} has no neighbor index {i}")
        return int(self._targets[self._offsets[v] + i])

    def neighbors(self, v: int) -> np.ndarray:
        """All neighbors of ``v`` as a sorted array (zero-copy view)."""
        return self._targets[self._offsets[v]: self._offsets[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """True if ``{u, v}`` is an edge (binary search on CSR)."""
        if u == v:
            return False
        nbrs = self.neighbors(u)
        pos = int(np.searchsorted(nbrs, v))
        return pos < len(nbrs) and int(nbrs[pos]) == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate each undirected edge once, as ``(u, v)`` with u < v."""
        for u in range(self._n):
            for v in self.neighbors(u):
                if u < int(v):
                    yield u, int(v)

    def vertices(self) -> range:
        """Range over all vertex ids."""
        return range(self._n)

    # -- derived graphs ----------------------------------------------------

    def subgraph(self, vertices: Sequence[int]) -> tuple["Graph", dict[int, int]]:
        """Vertex-induced subgraph plus the old->new id mapping.

        Vertex ids in the subgraph are ``0..len(vertices)-1`` in the order
        given (duplicates rejected).
        """
        mapping: dict[int, int] = {}
        for new_id, old_id in enumerate(vertices):
            if old_id in mapping:
                raise ValueError(f"duplicate vertex {old_id}")
            mapping[old_id] = new_id
        edge_set: set[tuple[int, int]] = set()
        for old_u, new_u in mapping.items():
            for old_v in self.neighbors(old_u):
                new_v = mapping.get(int(old_v))
                if new_v is not None and new_u < new_v:
                    edge_set.add((new_u, new_v))
        return Graph._from_edge_set(len(mapping), edge_set), mapping

    def connected_components(self) -> list[list[int]]:
        """Connected components as vertex lists (iterative BFS)."""
        seen = np.zeros(self._n, dtype=bool)
        components: list[list[int]] = []
        for start in range(self._n):
            if seen[start]:
                continue
            seen[start] = True
            queue = [start]
            component = []
            while queue:
                v = queue.pop()
                component.append(v)
                for w in self.neighbors(v):
                    w = int(w)
                    if not seen[w]:
                        seen[w] = True
                        queue.append(w)
            components.append(sorted(component))
        return components

    # -- dunder ------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self._n}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._offsets, other._offsets)
            and np.array_equal(self._targets, other._targets)
        )

    def __hash__(self) -> int:
        return hash((self._n, self._targets.tobytes()))
