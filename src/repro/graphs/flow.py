"""Dinic's maximum-flow algorithm on integer capacities.

Substrate for the exact densest-subgraph computation (Goldberg's reduction),
which in turn certifies Nash-Williams density lower bounds for arboricity.
Pure-Python adjacency-list implementation; capacities are Python ints so
scaled rational capacities never overflow.
"""

from __future__ import annotations

from collections import deque

__all__ = ["FlowNetwork"]

_INF = float("inf")


class FlowNetwork:
    """Directed flow network supporting max-flow and min-cut extraction."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise ValueError("need at least a source and a sink")
        self.n = num_nodes
        # Edge arrays: to[i], cap[i]; reverse edge of i is i ^ 1.
        self._to: list[int] = []
        self._cap: list[float] = []
        self._adj: list[list[int]] = [[] for _ in range(num_nodes)]

    def add_edge(self, u: int, v: int, capacity: float) -> int:
        """Add directed edge u -> v; return its edge id."""
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        eid = len(self._to)
        self._to.append(v)
        self._cap.append(capacity)
        self._adj[u].append(eid)
        self._to.append(u)
        self._cap.append(0)
        self._adj[v].append(eid + 1)
        return eid

    def _bfs_levels(self, s: int, t: int) -> list[int] | None:
        level = [-1] * self.n
        level[s] = 0
        queue = deque([s])
        while queue:
            v = queue.popleft()
            for eid in self._adj[v]:
                w = self._to[eid]
                if self._cap[eid] > 0 and level[w] < 0:
                    level[w] = level[v] + 1
                    queue.append(w)
        return level if level[t] >= 0 else None

    def _dfs_augment(self, v: int, t: int, pushed: float, level: list[int], it: list[int]) -> float:
        if v == t:
            return pushed
        while it[v] < len(self._adj[v]):
            eid = self._adj[v][it[v]]
            w = self._to[eid]
            if self._cap[eid] > 0 and level[w] == level[v] + 1:
                flow = self._dfs_augment(w, t, min(pushed, self._cap[eid]), level, it)
                if flow > 0:
                    self._cap[eid] -= flow
                    self._cap[eid ^ 1] += flow
                    return flow
            it[v] += 1
        return 0

    def max_flow(self, s: int, t: int) -> float:
        """Compute the maximum s-t flow (Dinic's algorithm)."""
        if s == t:
            raise ValueError("source equals sink")
        total = 0
        while True:
            level = self._bfs_levels(s, t)
            if level is None:
                return total
            it = [0] * self.n
            while True:
                pushed = self._dfs_augment(s, t, _INF, level, it)
                if pushed <= 0:
                    break
                total += pushed

    def min_cut_source_side(self, s: int) -> set[int]:
        """After max_flow, return nodes reachable from s in the residual graph."""
        seen = {s}
        queue = deque([s])
        while queue:
            v = queue.popleft()
            for eid in self._adj[v]:
                w = self._to[eid]
                if self._cap[eid] > 0 and w not in seen:
                    seen.add(w)
                    queue.append(w)
        return seen
