"""Kuhn-Wattenhofer iterative color reduction (used in Section 6.3).

Reduces an m-coloring to a (Δ+1)-coloring in O(Δ · log(m / Δ)) LOCAL
rounds: partition the palette into blocks of 2(Δ+1) colors; inside each
block, spend Δ+1 rounds moving the upper-half color classes down into the
lower half (a vertex has <= Δ neighbors, the lower half has Δ+1 colors, so
a free one always exists); then renumber the surviving lower halves
consecutively, halving the palette.  Blocks act in parallel because their
color ranges are disjoint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.graph import Graph

__all__ = ["KWResult", "kw_color_reduction"]


@dataclass
class KWResult:
    """Coloring plus round accounting."""

    colors: list[int]
    num_colors: int
    local_rounds: int


def kw_color_reduction(
    graph: Graph,
    colors: list[int],
    max_degree: int,
    palette: int | None = None,
) -> KWResult:
    """Reduce ``colors`` (proper on ``graph``) to max_degree + 1 colors.

    ``max_degree`` must upper-bound every vertex degree in ``graph``.
    """
    delta_plus_1 = max_degree + 1
    colors = list(colors)
    m = palette if palette is not None else (max(colors, default=0) + 1)
    if any(not 0 <= c < m for c in colors):
        raise ValueError("colors outside declared palette")
    rounds = 0
    while m > delta_plus_1:
        block = 2 * delta_plus_1
        # Phase: for upper-half offset j, all vertices whose color sits at
        # upper position j of its block recolor into the block's lower half.
        for j in range(delta_plus_1):
            new_colors = list(colors)
            for v in graph.vertices():
                c = colors[v]
                base = (c // block) * block
                if c - base == delta_plus_1 + j:
                    taken = {
                        colors[int(w)]
                        for w in graph.neighbors(v)
                        if base <= colors[int(w)] < base + delta_plus_1
                    }
                    for candidate in range(base, base + delta_plus_1):
                        if candidate not in taken:
                            new_colors[v] = candidate
                            break
                    else:  # pragma: no cover - impossible by pigeonhole
                        raise AssertionError("no free color in lower half")
            colors = new_colors
            rounds += 1
        # Renumber: block b's lower half [b*block, b*block + Δ+1) maps to
        # [b*(Δ+1), (b+1)*(Δ+1)).  Free (local arithmetic, no round).
        colors = [
            (c // block) * delta_plus_1 + (c % block) for c in colors
        ]
        num_blocks = -(-m // block)
        m = num_blocks * delta_plus_1
        if num_blocks == 1:
            m = min(m, delta_plus_1)
    return KWResult(colors=colors, num_colors=m, local_rounds=rounds)
