"""Rake-and-compress decomposition and 3-coloring of forests.

The paper's related work (Section 1.1) notes that for the special case of
forests (α = 1), the rake-and-compress decomposition yields an acyclic
orientation with out-degree at most 2 — and hence a 3-coloring — and that
[HKSS22] obtains the decomposition in O(1) AMPC rounds while [GLM+23]
3-colors forests in O(log log n) conditionally-optimal MPC rounds.  We
implement the decomposition as deterministic synchronous peeling; each
phase simultaneously removes

- *rake* vertices: alive degree <= 1, and
- *compress* vertices: alive degree exactly 2 with both alive neighbors of
  degree <= 2 (interior chain vertices).

A removed vertex has at most 2 alive neighbors at removal time, so
orienting its edges toward phase-survivors — and edges between same-phase
removals from lower to higher id — yields an out-degree-2 acyclic
orientation.  Sinks-first greedy coloring along it uses at most 3 colors.
Long chains vanish whole (all interior vertices compress at once), so the
phase count stays logarithmic-ish on bench workloads and is reported for
inspection.

This is both a standalone utility (``three_color_forest``) and the
baseline for the ablation bench comparing it against the generic
((2+ε)α+1)-pipeline at α = 1 (which guarantees 4 colors).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.orientation import Orientation
from repro.graphs.graph import Graph
from repro.graphs.validation import is_forest

__all__ = ["RakeCompressResult", "rake_compress", "three_color_forest"]


@dataclass
class RakeCompressResult:
    """Decomposition outcome."""

    removal_phase: list[int]  # phase (1-based) at which each vertex left
    orientation: Orientation  # out-degree <= 2, acyclic
    phases: int


def rake_compress(forest: Graph) -> RakeCompressResult:
    """Peel a forest with simultaneous rake+compress phases.

    Raises ValueError when the input contains a cycle (the out-degree-2
    guarantee needs acyclicity).
    """
    n = forest.num_vertices
    if not is_forest(n, list(forest.edges())):
        raise ValueError("rake_compress requires an acyclic input")
    alive = [True] * n
    degree = [forest.degree(v) for v in range(n)]
    removal_phase = [-1] * n
    out_neighbors: list[list[int]] = [[] for _ in range(n)]
    remaining = n
    phase = 0
    while remaining:
        phase += 1
        removed = set()
        for v in range(n):
            if not alive[v]:
                continue
            if degree[v] <= 1:
                removed.add(v)  # rake
                continue
            if degree[v] == 2:
                nbr_degrees = [
                    degree[int(w)] for w in forest.neighbors(v) if alive[int(w)]
                ]
                if all(d <= 2 for d in nbr_degrees):
                    removed.add(v)  # compress
        if not removed:  # pragma: no cover - impossible on forests
            raise AssertionError("peeling stalled on an acyclic graph")
        for v in removed:
            removal_phase[v] = phase
            outs = []
            for w in forest.neighbors(v):
                w = int(w)
                if not alive[w]:
                    continue  # removed in an earlier phase: edge oriented then
                if w not in removed or w > v:
                    # Survivor, or same-phase removal with higher id.
                    outs.append(w)
            out_neighbors[v] = outs
        for v in removed:
            alive[v] = False
            for w in forest.neighbors(v):
                degree[int(w)] -= 1
        remaining -= len(removed)
    orientation = Orientation(graph=forest, out_neighbors=out_neighbors)
    return RakeCompressResult(
        removal_phase=removal_phase, orientation=orientation, phases=phase
    )


def three_color_forest(forest: Graph) -> tuple[list[int], RakeCompressResult]:
    """Proper 3-coloring of a forest via rake-and-compress.

    Returns ``(colors, decomposition)``; colors are in {0, 1, 2}.
    """
    result = rake_compress(forest)
    # Sinks-first greedy along the orientation: each vertex avoids its
    # <= 2 out-neighbors, so 3 colors suffice.
    order = result.orientation.topological_order()
    colors = [-1] * forest.num_vertices
    for v in reversed(order):
        taken = {colors[w] for w in result.orientation.out_neighbors[v]}
        color = 0
        while color in taken:
            color += 1
        colors[v] = color
    return colors, result
