"""Arb-Linial: O(β²)-coloring from a β-out-degree orientation (§6.1-6.2).

Iterates the cover-free reduction: ids (an n-coloring) → O(β² log n) →
O(β² log β) → ... → O(β²), converging in O(log* n) one-sided LOCAL rounds.
The observation of [BE10b] that Linial's algorithm only needs *out*-degree
bounds (not maximum degree) is what makes it work on arboricity-sparse
graphs with huge Δ.

The AMPC cost of simulating r one-sided rounds is governed by the out-ball
size β^r (Section 6.1's case analysis); :func:`ampc_rounds_for_simulation`
encodes that conversion and is reused by all pipelines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.coloring.cover_free import CoverFreeFamily, choose_family
from repro.core.orientation import Orientation

__all__ = [
    "ArbLinialResult",
    "arb_linial_coloring",
    "linial_undirected_coloring",
    "ampc_rounds_for_simulation",
]


@dataclass
class ArbLinialResult:
    """Coloring plus the reduction schedule that produced it."""

    colors: list[int]
    num_colors: int  # final palette size q²
    local_rounds: int
    schedule: list[CoverFreeFamily] = field(default_factory=list)


def arb_linial_coloring(
    orientation: Orientation,
    beta: int,
    initial_colors: list[int] | None = None,
    initial_palette: int | None = None,
    max_rounds: int = 64,
) -> ArbLinialResult:
    """Run Arb-Linial to its fixed point.

    ``beta`` must upper-bound the orientation's out-degree.  The default
    initial coloring is vertex ids (palette n).  Stops when another round
    would not shrink the palette.
    """
    if orientation.max_out_degree() > beta:
        raise ValueError(
            f"orientation out-degree {orientation.max_out_degree()} exceeds β={beta}"
        )
    n = orientation.graph.num_vertices
    if initial_colors is None:
        colors = list(range(n))
        palette = max(n, 2)
    else:
        colors = list(initial_colors)
        palette = initial_palette if initial_palette is not None else max(colors) + 1
        if any(not 0 <= c < palette for c in colors):
            raise ValueError("initial colors outside declared palette")
    schedule: list[CoverFreeFamily] = []
    rounds = 0
    while rounds < max_rounds:
        if palette <= 2:
            break
        family = choose_family(palette, beta)
        if family.target_colors >= palette:
            break  # fixed point: O(β²) reached
        old = colors
        colors = [
            family.reduce_color(old[v], [old[w] for w in orientation.out_neighbors[v]], beta)
            for v in range(n)
        ]
        palette = family.target_colors
        schedule.append(family)
        rounds += 1
    return ArbLinialResult(
        colors=colors, num_colors=palette, local_rounds=rounds, schedule=schedule
    )


def linial_undirected_coloring(
    graph,
    max_degree: int,
    initial_colors: list[int] | None = None,
    initial_palette: int | None = None,
    max_rounds: int = 64,
) -> ArbLinialResult:
    """Classic (undirected) Linial reduction to O(Δ²) colors.

    Used for the per-layer initial colorings of Section 6.3, where the
    within-layer degree is at most β.  Identical machinery to
    :func:`arb_linial_coloring` but each vertex avoids *all* neighbors.
    """
    n = graph.num_vertices
    if max_degree < 1:
        return ArbLinialResult(colors=[0] * n, num_colors=min(n, 1), local_rounds=0)
    if initial_colors is None:
        colors = list(range(n))
        palette = max(n, 2)
    else:
        colors = list(initial_colors)
        palette = initial_palette if initial_palette is not None else max(colors) + 1
    schedule: list[CoverFreeFamily] = []
    rounds = 0
    while rounds < max_rounds and palette > 2:
        family = choose_family(palette, max_degree)
        if family.target_colors >= palette:
            break
        old = colors
        colors = [
            family.reduce_color(
                old[v], [old[int(w)] for w in graph.neighbors(v)], max_degree
            )
            for v in range(n)
        ]
        palette = family.target_colors
        schedule.append(family)
        rounds += 1
    return ArbLinialResult(
        colors=colors, num_colors=palette, local_rounds=rounds, schedule=schedule
    )


def ampc_rounds_for_simulation(local_rounds: int, fanout: int, space: int) -> int:
    """AMPC rounds to simulate ``local_rounds`` one-sided LOCAL rounds.

    One AMPC round gathers an out-ball of radius t, size ~ fanout^t, into a
    machine with ``space`` words, so t = floor(log_fanout(space)) LOCAL
    rounds per AMPC round (at least 1: gathering direct out-neighbors needs
    fanout <= space, which the paper guarantees via α <= n^{δ/(1+ε)}).
    """
    if local_rounds <= 0:
        return 0
    if fanout <= 1:
        return 1
    per_round = max(1, int(math.floor(math.log(max(space, 2)) / math.log(fanout))))
    return max(1, math.ceil(local_rounds / per_round))
