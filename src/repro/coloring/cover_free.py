"""Polynomial cover-free families for Linial-style color reduction.

One Arb-Linial round maps an m-coloring to a q²-coloring, where q is a
prime with q > d·β and q^{d+1} >= m: encode each color as a distinct
polynomial of degree <= d over F_q (base-q digits as coefficients); a
vertex v with out-degree <= β finds an evaluation point a where its
polynomial differs from all out-neighbors' polynomials (it agrees with
each on <= d points, and d·β < q points cannot cover F_q); the new color
is the pair (a, p_v(a)).

This file provides the parameter selection (minimizing the new palette
q² over the degree d) and the per-vertex reduction step.  Correctness is
*one-sided*: a vertex only needs its out-neighbors' colors, which is what
lets the AMPC wrapper simulate many rounds in one ball collection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.primes import next_prime

__all__ = ["CoverFreeFamily", "choose_family"]


@dataclass(frozen=True)
class CoverFreeFamily:
    """Parameters of one reduction round: F_q polynomials of degree <= d."""

    q: int  # prime field size
    d: int  # polynomial degree
    source_colors: int  # m: colors the encoding must distinguish

    @property
    def target_colors(self) -> int:
        """Size of the new palette, q²."""
        return self.q * self.q

    def coefficients(self, color: int) -> list[int]:
        """Base-q digits of ``color``: the polynomial's d+1 coefficients."""
        if not 0 <= color < self.source_colors:
            raise ValueError(f"color {color} outside palette [0, {self.source_colors})")
        digits = []
        value = color
        for _ in range(self.d + 1):
            digits.append(value % self.q)
            value //= self.q
        if value:
            raise AssertionError("q^(d+1) >= m violated; family misconstructed")
        return digits

    def evaluate(self, color: int, a: int) -> int:
        """p_color(a) over F_q (Horner)."""
        result = 0
        for coef in reversed(self.coefficients(color)):
            result = (result * a + coef) % self.q
        return result

    def reduce_color(self, color: int, out_neighbor_colors: list[int], beta: int) -> int:
        """New color of a vertex given its out-neighbors' current colors.

        Requires len(out_neighbor_colors) <= β and all distinct from
        ``color`` (a proper coloring on the oriented edges).  Returns
        ``a * q + p(a)`` for the smallest valid evaluation point a.
        """
        if len(out_neighbor_colors) > beta:
            raise ValueError("more out-neighbors than β")
        if self.d * beta >= self.q:
            raise ValueError("family too small: need q > d·β")
        own = self.coefficients(color)
        others = [self.coefficients(c) for c in out_neighbor_colors]
        for a in range(self.q):
            mine = 0
            for coef in reversed(own):
                mine = (mine * a + coef) % self.q
            clashes = False
            for coefs in others:
                val = 0
                for coef in reversed(coefs):
                    val = (val * a + coef) % self.q
                if val == mine:
                    clashes = True
                    break
            if not clashes:
                return a * self.q + mine
        raise AssertionError(
            "no distinguishing point found; inputs were not a proper coloring"
        )


def choose_family(m: int, beta: int, max_degree: int = 64) -> CoverFreeFamily:
    """Smallest-q family able to reduce an m-coloring at out-degree β.

    Scans degrees d = 1.. and keeps the d minimizing q (hence the new
    palette q²), subject to q > d·β and q^{d+1} >= m.
    """
    if m < 2:
        raise ValueError("nothing to reduce with fewer than 2 colors")
    if beta < 1:
        raise ValueError("beta must be >= 1")
    best: CoverFreeFamily | None = None
    for d in range(1, max_degree + 1):
        # Smallest q compatible with both constraints at this degree.
        root = int(round(m ** (1.0 / (d + 1))))
        while root**(d + 1) < m:
            root += 1
        q = next_prime(max(d * beta + 1, root, 2))
        if best is None or q < best.q:
            best = CoverFreeFamily(q=q, d=d, source_colors=m)
        if root <= d * beta + 1:
            break  # larger d can only raise the d·β constraint
    assert best is not None
    return best
