"""Cross-layer recoloring — the greedy conflict-fixing of Section 6.3.

Input: a β-partition and an *initial* coloring with palette {0..β} that is
proper within every layer but may conflict across layers.  The centralized
process: topmost layer keeps its colors; then layers are processed top to
bottom, and inside a layer vertices are processed in decreasing initial
color; each vertex picks an available color among {0..β} avoiding all
neighbors that already finalized (its same-or-higher-layer neighbors, of
which there are <= β — so a color always exists).

The AMPC simulation batches layers so each vertex's recursive dependency
ball fits in machine memory; :func:`recoloring_ampc_rounds` reproduces the
paper's O((β/(εδ)) log β) round count for the parameters at hand.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.graphs.graph import Graph
from repro.partition.beta_partition import PartialBetaPartition

__all__ = ["RecolorResult", "greedy_recolor_by_layers", "recoloring_ampc_rounds"]


@dataclass
class RecolorResult:
    """Final proper coloring in palette {0..β}."""

    colors: list[int]
    num_colors: int
    processed_order: list[int]  # the centralized order, for inspection


def greedy_recolor_by_layers(
    graph: Graph,
    partition: PartialBetaPartition,
    initial_colors: list[int],
    beta: int,
    pick: Literal["highest", "lowest"] = "highest",
) -> RecolorResult:
    """Fix cross-layer conflicts into a proper (β+1)-coloring.

    ``initial_colors`` must be proper inside each layer (values may come
    from any palette — they only define the processing order, Section 6.4
    uses a 4β-palette initial coloring); the partition must be complete.
    ``pick`` selects the highest (Section 6.3) or lowest (Section 6.4)
    available color from {0..β} — both are valid.
    """
    n = graph.num_vertices
    if len(initial_colors) != n:
        raise ValueError("need one initial color per vertex")
    # Validation runs as two array passes over the layer vector and the
    # edge array instead of a per-neighbor Python walk.
    layer_vec = partition.layer_array(n)
    unlayered = np.isinf(layer_vec)
    if unlayered.any():
        raise ValueError(f"vertex {int(np.argmax(unlayered))} unlayered")
    init_vec = np.asarray(initial_colors, dtype=np.int64)
    edges = graph.edge_array()
    conflict = (layer_vec[edges[:, 0]] == layer_vec[edges[:, 1]]) & (
        init_vec[edges[:, 0]] == init_vec[edges[:, 1]]
    )
    if conflict.any():
        u, w = edges[np.argmax(conflict)]
        raise ValueError(
            f"initial coloring not proper within layer: {int(u)} ~ {int(w)}"
        )
    # Process by (layer desc, initial color desc); ties broken by id for
    # determinism — tied vertices are never adjacent (initial coloring is
    # proper within a layer), so any tie-break yields the same constraints.
    order = np.lexsort(
        (np.arange(n), -init_vec, -layer_vec)
    ).tolist()
    # Blocked palettes as per-vertex bitmaps over {0..β}: finalizing v
    # sets bit c in every neighbor's mask, and picking a color is one
    # complement + bit scan instead of materializing a neighbor-color set.
    offsets, targets = graph.csr()
    offs = offsets.tolist()
    tgts = targets.tolist()
    blocked = [0] * n
    full = (1 << (beta + 1)) - 1
    final = [0] * n
    for v in order:
        available = ~blocked[v] & full
        if not available:
            raise AssertionError(
                "palette exhausted: partition was not a valid β-partition"
            )
        if pick == "highest":
            chosen = available.bit_length() - 1
        else:
            chosen = (available & -available).bit_length() - 1
        final[v] = chosen
        bit = 1 << chosen
        for w in tgts[offs[v]:offs[v + 1]]:
            blocked[w] |= bit
    return RecolorResult(
        colors=final, num_colors=len(set(final)), processed_order=order
    )


def recoloring_ampc_rounds(
    num_layers: int, beta: int, delta: float, n: int, c: float = 1.0
) -> int:
    """AMPC rounds for the layer-batched recoloring simulation.

    Section 6.3: batches of (cδ/β)·log_β n layers keep the dependency ball
    under n^δ, giving O((β/(εδ))·log β) batches, one AMPC round each.
    The ε⁻¹ factor lives in num_layers = O(ε⁻¹ log n) already.
    """
    if num_layers <= 0:
        return 0
    log_beta_n = math.log(max(n, 2)) / math.log(max(beta, 2))
    batch = max(1.0, c * delta / max(beta, 1) * log_beta_n)
    return max(1, math.ceil(num_layers / batch))
