"""Maximal independent set from a proper coloring.

The introduction points out the classic connection between coloring and
MIS: given a proper c-coloring, sweeping the color classes in order and
greedily keeping every vertex with no earlier-kept neighbor yields a
maximal independent set in c LOCAL rounds.  Combined with the paper's
((2+ε)α+1)-coloring this gives an O(α)-round deterministic AMPC MIS on
sparse graphs — a free corollary worth shipping.
"""

from __future__ import annotations

from typing import Sequence

from repro.graphs.graph import Graph

__all__ = ["mis_from_coloring", "is_independent_set", "is_maximal_independent_set"]


def mis_from_coloring(graph: Graph, colors: Sequence[int]) -> set[int]:
    """Maximal independent set via color-class sweep.

    ``colors`` must be a proper coloring; the sweep order is ascending
    color, so the result is deterministic.  Runs in O(n + m).
    """
    if len(colors) != graph.num_vertices:
        raise ValueError("need one color per vertex")
    by_color: dict[int, list[int]] = {}
    for v in graph.vertices():
        by_color.setdefault(colors[v], []).append(v)
    chosen: set[int] = set()
    blocked = [False] * graph.num_vertices
    for color in sorted(by_color):
        for v in by_color[color]:
            if not blocked[v]:
                chosen.add(v)
                for w in graph.neighbors(v):
                    blocked[int(w)] = True
    return chosen


def is_independent_set(graph: Graph, vertices: set[int]) -> bool:
    """True if no two chosen vertices are adjacent."""
    return all(
        int(w) not in vertices for v in vertices for w in graph.neighbors(v)
    )


def is_maximal_independent_set(graph: Graph, vertices: set[int]) -> bool:
    """True if independent and no vertex can be added."""
    if not is_independent_set(graph, vertices):
        return False
    for v in graph.vertices():
        if v in vertices:
            continue
        if all(int(w) not in vertices for w in graph.neighbors(v)):
            return False
    return True
