"""Theorem 1.5: deterministic 2xΔ-coloring in low-space MPC.

The randomized trial: every uncolored vertex hashes itself to a color from
a palette of C = 2^ceil(log2(2xΔ)) colors using a pairwise-independent
GF(2^k) hash; the expected number of monochromatic "live" edges (edges
with an uncolored endpoint) is (#live edges)/C <= |U|/(2x).

Derandomization (method of conditional expectations, [CPS20]-style): the
seed has 2k = O(log n) bits.  Bits are fixed in batches; for each of the
2^b assignments of a batch, every machine computes the *exact* conditional
expectation of its shard's monochromatic-edge count — possible because
each edge's collision event is a conjunction of GF(2)-linear constraints
on the seed (characteristic 2: no carries), so the conditional probability
is 2^(-rank) of a small linear system.  Sums are aggregated up a broadcast
tree and the minimizing assignment is fixed.  The invariant
E[Y | fixed bits] <= E[Y] makes the final, fully-deterministic trial leave
at most |U|/x vertices uncolored — a hard guarantee this implementation
asserts every phase.  O(log_x n) phases finish the coloring.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.ampc.mpc import MPCSimulator
from repro.graphs.graph import Graph
from repro.util.hashing import PairwiseHashFamily

__all__ = ["MPCColoringResult", "deterministic_mpc_coloring"]


@dataclass
class MPCColoringResult:
    """Coloring plus phase/round accounting."""

    colors: list[int]
    num_colors: int  # palette size C (= 2^ceil(log2(2xΔ)), 0 edges -> 1)
    phases: int
    mpc_rounds: int
    max_message_words: int
    uncolored_history: list[int] = field(default_factory=list)


def _strip_bits(row: int, rhs: int, assignment: list[tuple[int, int]]) -> tuple[int, int]:
    """Substitute fixed seed bits into one GF(2) equation."""
    for idx, val in assignment:
        if (row >> idx) & 1:
            row &= ~(1 << idx)
            rhs ^= val
    return row, rhs


def _event_probability(stripped: list[tuple[int, int]]) -> float:
    """P[all equations hold] for uniform free bits: 2^-rank, or 0.

    ``stripped`` holds (row, rhs) pairs whose fixed bits were substituted
    away; Gaussian elimination over the remaining variables.
    """
    basis: list[tuple[int, int]] = []
    for row, rhs in stripped:
        cur, cb = row, rhs
        for brow, bb in basis:
            if cur ^ brow < cur:
                cur ^= brow
                cb ^= bb
        if cur:
            basis.append((cur, cb))
            basis.sort(key=lambda t: t[0], reverse=True)
        elif cb:
            return 0.0
    return 2.0 ** (-len(basis))


def deterministic_mpc_coloring(
    graph: Graph,
    x: int,
    delta: float = 0.5,
    batch_bits: int | None = None,
) -> MPCColoringResult:
    """Color ``graph`` with <= 2^ceil(log2(2xΔ)) < 4xΔ colors, deterministically.

    ``x > 1`` trades palette size against phases: larger x, fewer phases.
    """
    if x < 2:
        raise ValueError("Theorem 1.5 needs x > 1")
    n = graph.num_vertices
    max_degree = graph.max_degree()
    if n == 0:
        return MPCColoringResult([], 0, 0, 0, 0, [])
    if max_degree == 0:
        return MPCColoringResult([0] * n, 1, 0, 0, 0, [n, 0])

    palette_bits = max(1, math.ceil(math.log2(2 * x * max_degree)))
    family = PairwiseHashFamily(n, palette_bits)
    input_size = n + graph.num_edges
    mpc = MPCSimulator(input_size, delta=delta)
    if batch_bits is None:
        batch_bits = max(1, min(8, int(delta / 3 * math.log2(input_size))))

    colors: list[int | None] = [None] * n
    uncolored = set(graph.vertices())
    history = [len(uncolored)]
    all_edges = list(graph.edges())
    phases = 0

    while uncolored:
        phases += 1
        # Live events: every edge with >= 1 uncolored endpoint contributes
        # one linear-constraint system whose satisfaction = "monochromatic".
        events: list[tuple[list[int], list[int], int, int]] = []
        for u, v in all_edges:
            cu, cv = colors[u], colors[v]
            if cu is None and cv is None:
                rows, rhs = family.collision_constraints(u, v)
                events.append((rows, rhs, u, v))
            elif cu is None and cv is not None:
                rows, rhs = family.value_constraints(u, cv)
                events.append((rows, rhs, u, -1))
            elif cv is None and cu is not None:
                rows, rhs = family.value_constraints(v, cu)
                events.append((rows, rhs, v, -1))

        fixed: list[tuple[int, int]] = []  # (bit index, value)
        if events:
            shards = mpc.shard(events)
            bit = 0
            while bit < family.seed_bits:
                width = min(batch_bits, family.seed_bits - bit)
                # Pre-substitute already-fixed bits once per batch.
                pre: list[list[list[tuple[int, int]]]] = []
                for shard in shards:
                    pre.append(
                        [
                            [_strip_bits(r, b, fixed) for r, b in zip(rows, rhs)]
                            for rows, rhs, __, ___ in shard
                        ]
                    )
                vectors = []
                for shard_events in pre:
                    vec = []
                    for assignment in range(1 << width):
                        batch = [
                            (bit + t, (assignment >> t) & 1) for t in range(width)
                        ]
                        total = 0.0
                        for stripped in shard_events:
                            final = [_strip_bits(r, b, batch) for r, b in stripped]
                            total += _event_probability(final)
                        vec.append(total)
                    vectors.append(vec)
                sums = mpc.aggregate_sums(vectors)
                best = min(range(len(sums)), key=lambda i: (sums[i], i))
                fixed.extend((bit + t, (best >> t) & 1) for t in range(width))
                mpc.broadcast(width)
                bit += width
        seed = sum(val << idx for idx, val in fixed)

        # Deterministic trial with the fully fixed seed.
        trial = {u: family.evaluate(seed, u) for u in uncolored}
        blocked: set[int] = set()
        for rows, rhs, a, b in events:
            if b >= 0:  # both endpoints were uncolored
                if trial[a] == trial[b]:
                    blocked.add(a)
                    blocked.add(b)
            else:
                # a uncolored vs fixed neighbor color: mono iff constraints
                # hold, equivalently iff trial[a] equals that color -- but
                # we stored only the system; re-check via probability:
                final = [_strip_bits(r, c, fixed) for r, c in zip(rows, rhs)]
                if _event_probability(final) == 1.0:
                    blocked.add(a)
        newly = uncolored - blocked
        for u in newly:
            colors[u] = trial[u]
        mpc.charge_local_round()
        # Hard guarantee of the method of conditional expectations:
        assert len(blocked) <= len(uncolored) / x, (
            "derandomization invariant violated: "
            f"{len(blocked)} > {len(uncolored)}/{x}"
        )
        uncolored = blocked
        history.append(len(uncolored))

    final_colors = [c if c is not None else 0 for c in colors]
    return MPCColoringResult(
        colors=final_colors,
        num_colors=1 << palette_bits,
        phases=phases,
        mpc_rounds=mpc.rounds,
        max_message_words=mpc.max_message_words,
        uncolored_history=history,
    )
