"""End-to-end AMPC coloring pipelines — Theorem 1.3 and Section 6.4.

Every pipeline follows the paper's recipe: compute a β-partition with
Theorem 1.2 (measured AMPC rounds), derive the acyclic low-out-degree
orientation, then run the variant-specific coloring stage whose AMPC cost
is the simulated-LOCAL conversion of Sections 6.1-6.3.  All results carry
the measured round breakdown and are *validated* (proper coloring) before
being returned.

Variants:

- :func:`coloring_alpha_squared_eps` — Theorem 1.3(1): O(α^{2+ε}) colors,
  O(1/ε) rounds (β = α^{1+ε}).
- :func:`coloring_alpha_squared` — Theorem 1.3(2): O(α²) colors,
  O(log α) rounds (β = (2+ε)α).
- :func:`coloring_two_plus_eps` — Theorem 1.3(3): ((2+ε)α+1) colors,
  Õ(α/ε) rounds; per-layer initial coloring via Linial + Kuhn-Wattenhofer
  (§6.3) or via Theorem 1.5 with x = 2 (§6.4), then greedy cross-layer
  recoloring.
- :func:`coloring_large_alpha` — §6.4: O(α^{1+ε}) colors in O(1/ε) rounds
  by coloring each layer with Theorem 1.5 under a fresh palette.
- :func:`color_graph` — convenience dispatcher with arboricity estimation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.coloring.arb_linial import (
    ampc_rounds_for_simulation,
    arb_linial_coloring,
    linial_undirected_coloring,
)
from repro.coloring.derandomized_mpc import deterministic_mpc_coloring
from repro.coloring.kuhn_wattenhofer import kw_color_reduction
from repro.coloring.recolor import greedy_recolor_by_layers, recoloring_ampc_rounds
from repro.core.beta_partition_ampc import beta_partition_ampc
from repro.core.orientation import orient_by_partition
from repro.graphs.arboricity import degeneracy
from repro.graphs.graph import Graph
from repro.graphs.validation import is_proper_coloring
from repro.partition.beta_partition import PartialBetaPartition

__all__ = [
    "PipelineResult",
    "coloring_alpha_squared",
    "coloring_alpha_squared_eps",
    "coloring_large_alpha",
    "coloring_two_plus_eps",
    "color_graph",
]


@dataclass
class PipelineResult:
    """A validated coloring with its full AMPC cost breakdown."""

    variant: str
    colors: list[int]
    num_colors: int  # distinct colors actually used
    palette_bound: int  # the variant's guaranteed palette size
    beta: int
    alpha: int
    eps: float
    partition_rounds: int
    coloring_rounds: int
    num_layers: int
    details: dict = field(default_factory=dict)

    @property
    def total_rounds(self) -> int:
        """Partition rounds plus coloring-stage rounds."""
        return self.partition_rounds + self.coloring_rounds


def _space_budget(graph: Graph, delta: float) -> int:
    return max(2, math.ceil((graph.num_vertices + graph.num_edges) ** delta))


def _layers_of(partition: PartialBetaPartition, graph: Graph) -> dict[int, np.ndarray]:
    """Group vertices by layer: one argsort over the layer vector.

    Values are ascending vertex-id arrays (usable directly as the new->old
    inverse mapping of ``graph.subgraph``); keys are ascending layers.
    """
    layer_vec = partition.layer_array(graph.num_vertices)
    order = np.argsort(layer_vec, kind="stable")
    sorted_layers = layer_vec[order]
    boundaries = np.flatnonzero(np.diff(sorted_layers)) + 1
    starts = np.concatenate(([0], boundaries))
    groups = np.split(order, boundaries)
    return {int(sorted_layers[s]): grp for s, grp in zip(starts, groups)}


def _finish(graph: Graph, result: PipelineResult) -> PipelineResult:
    if not is_proper_coloring(graph, result.colors):
        raise AssertionError(f"pipeline {result.variant} produced an improper coloring")
    result.num_colors = len(set(result.colors)) if result.colors else 0
    return result


def _trivial_result(graph: Graph, variant: str, alpha: int, eps: float) -> PipelineResult:
    return PipelineResult(
        variant=variant,
        colors=[0] * graph.num_vertices,
        num_colors=1 if graph.num_vertices else 0,
        palette_bound=1,
        beta=0,
        alpha=alpha,
        eps=eps,
        partition_rounds=0,
        coloring_rounds=0,
        num_layers=1 if graph.num_vertices else 0,
    )


def coloring_alpha_squared_eps(
    graph: Graph,
    alpha: int,
    eps: float = 1.0,
    delta: float = 0.5,
    x: int | None = None,
    store: str = "columnar",
    workers: int | str | None = None,
    engine: str | None = None,
) -> PipelineResult:
    """Theorem 1.3(1): O(α^{2+ε})-coloring in O(1/ε) AMPC rounds."""
    if graph.num_edges == 0:
        return _trivial_result(graph, "alpha_squared_eps", alpha, eps)
    beta = max(math.ceil(alpha ** (1 + eps)), 2 * alpha + 1, 2)
    outcome = beta_partition_ampc(
        graph, beta, delta=delta, x=x, store=store, workers=workers,
        engine=engine,
    )
    orientation = orient_by_partition(graph, outcome.partition)
    linial = arb_linial_coloring(orientation, beta)
    space = _space_budget(graph, delta)
    coloring_rounds = ampc_rounds_for_simulation(
        max(linial.local_rounds, 1), max(beta, 2), space
    )
    return _finish(
        graph,
        PipelineResult(
            variant="alpha_squared_eps",
            colors=linial.colors,
            num_colors=0,
            palette_bound=linial.num_colors,
            beta=beta,
            alpha=alpha,
            eps=eps,
            partition_rounds=outcome.rounds,
            coloring_rounds=coloring_rounds,
            num_layers=outcome.num_layers,
            details={
                "linial_local_rounds": linial.local_rounds,
                "partition_mode": outcome.mode,
            },
        ),
    )


def coloring_alpha_squared(
    graph: Graph,
    alpha: int,
    eps: float = 1.0,
    delta: float = 0.5,
    x: int | None = None,
    store: str = "columnar",
    workers: int | str | None = None,
    engine: str | None = None,
) -> PipelineResult:
    """Theorem 1.3(2): O(α²)-coloring in O(log α) AMPC rounds."""
    if graph.num_edges == 0:
        return _trivial_result(graph, "alpha_squared", alpha, eps)
    beta = max(math.ceil((2 + eps) * alpha), 2)
    outcome = beta_partition_ampc(
        graph, beta, delta=delta, x=x, store=store, workers=workers,
        engine=engine,
    )
    orientation = orient_by_partition(graph, outcome.partition)
    linial = arb_linial_coloring(orientation, beta)
    space = _space_budget(graph, delta)
    coloring_rounds = ampc_rounds_for_simulation(
        max(linial.local_rounds, 1), max(beta, 2), space
    )
    return _finish(
        graph,
        PipelineResult(
            variant="alpha_squared",
            colors=linial.colors,
            num_colors=0,
            palette_bound=linial.num_colors,
            beta=beta,
            alpha=alpha,
            eps=eps,
            partition_rounds=outcome.rounds,
            coloring_rounds=coloring_rounds,
            num_layers=outcome.num_layers,
            details={
                "linial_local_rounds": linial.local_rounds,
                "partition_mode": outcome.mode,
            },
        ),
    )


def coloring_two_plus_eps(
    graph: Graph,
    alpha: int,
    eps: float = 1.0,
    delta: float = 0.5,
    x: int | None = None,
    initial_method: str = "kw",
    store: str = "columnar",
    workers: int | str | None = None,
    engine: str | None = None,
) -> PipelineResult:
    """Theorem 1.3(3): ((2+ε)α+1)-coloring in Õ(α/ε) AMPC rounds.

    ``initial_method`` selects the per-layer initial coloring: "kw" = Linial
    then Kuhn-Wattenhofer down to β+1 colors (§6.3); "mpc" = Theorem 1.5
    with x = 2 (§6.4, initial 4β-palette).  Both end with the greedy
    top-down cross-layer recoloring into palette {0..β}.
    """
    if graph.num_edges == 0:
        return _trivial_result(graph, "two_plus_eps", alpha, eps)
    if initial_method not in ("kw", "mpc"):
        raise ValueError("initial_method must be 'kw' or 'mpc'")
    beta = max(math.ceil((2 + eps) * alpha), 2)
    outcome = beta_partition_ampc(
        graph, beta, delta=delta, x=x, store=store, workers=workers,
        engine=engine,
    )
    partition = outcome.partition
    layers = _layers_of(partition, graph)
    space = _space_budget(graph, delta)
    n = graph.num_vertices

    # The per-layer loop scatters each subgraph coloring back through the
    # layer's vertex array (new->old inverse map) in one fancy-indexed write.
    initial = np.zeros(n, dtype=np.int64)
    init_local_rounds = 0
    init_ampc_rounds = 0
    if initial_method == "kw":
        kw_rounds_max = 0
        linial_rounds_max = 0
        for vertices in layers.values():
            sub = graph.induced_subgraph(vertices)
            if sub.num_edges == 0:
                continue
            sub_degree = min(sub.max_degree(), beta)
            lin = linial_undirected_coloring(sub, sub_degree)
            kw = kw_color_reduction(sub, lin.colors, sub_degree, palette=lin.num_colors)
            initial[vertices] = kw.colors
            linial_rounds_max = max(linial_rounds_max, lin.local_rounds)
            kw_rounds_max = max(kw_rounds_max, kw.local_rounds)
        init_local_rounds = linial_rounds_max + kw_rounds_max
        init_ampc_rounds = ampc_rounds_for_simulation(
            max(linial_rounds_max, 1), max(beta, 2), space
        ) + ampc_rounds_for_simulation(kw_rounds_max, max(beta, 2), space)
    else:
        mpc_rounds_max = 0
        for vertices in layers.values():
            sub = graph.induced_subgraph(vertices)
            if sub.num_edges == 0:
                continue
            res = deterministic_mpc_coloring(sub, x=2, delta=delta)
            initial[vertices] = res.colors
            mpc_rounds_max = max(mpc_rounds_max, res.mpc_rounds)
        init_ampc_rounds = mpc_rounds_max

    pick = "highest" if initial_method == "kw" else "lowest"
    recolored = greedy_recolor_by_layers(graph, partition, initial, beta, pick=pick)
    recolor_rounds = recoloring_ampc_rounds(len(layers), beta, delta, n)
    return _finish(
        graph,
        PipelineResult(
            variant="two_plus_eps",
            colors=recolored.colors,
            num_colors=0,
            palette_bound=beta + 1,
            beta=beta,
            alpha=alpha,
            eps=eps,
            partition_rounds=outcome.rounds,
            coloring_rounds=init_ampc_rounds + recolor_rounds,
            num_layers=outcome.num_layers,
            details={
                "initial_method": initial_method,
                "init_local_rounds": init_local_rounds,
                "init_ampc_rounds": init_ampc_rounds,
                "recolor_ampc_rounds": recolor_rounds,
                "partition_mode": outcome.mode,
                # What actually ran (the compiled kernel silently-but-
                # warned downgrades to batched), so a recorded benchmark
                # names the engine behind its numbers.
                "partition_engine": outcome.engine,
            },
        ),
    )


def coloring_large_alpha(
    graph: Graph,
    alpha: int,
    eps: float = 1.0,
    delta: float = 0.5,
    x: int | None = None,
    store: str = "columnar",
    workers: int | str | None = None,
    engine: str | None = None,
) -> PipelineResult:
    """Section 6.4: O(α^{1+ε})-coloring in O(1/ε) rounds via per-layer
    Theorem 1.5 with fresh palettes (works for α up to n^δ and beyond)."""
    if graph.num_edges == 0:
        return _trivial_result(graph, "large_alpha", alpha, eps)
    beta = max(math.ceil(alpha ** (1 + eps)), 2 * alpha + 1, 2)
    outcome = beta_partition_ampc(
        graph, beta, delta=delta, x=x, store=store, workers=workers,
        engine=engine,
    )
    layers = _layers_of(outcome.partition, graph)
    trial_x = max(2, round(alpha**eps))
    colors = np.zeros(graph.num_vertices, dtype=np.int64)
    offset = 0
    mpc_rounds_max = 0
    for __, vertices in sorted(layers.items()):
        sub = graph.induced_subgraph(vertices)
        if sub.num_edges == 0:
            colors[vertices] = offset
            offset += 1
            continue
        res = deterministic_mpc_coloring(sub, x=trial_x, delta=delta)
        colors[vertices] = np.asarray(res.colors) + offset
        offset += res.num_colors
        mpc_rounds_max = max(mpc_rounds_max, res.mpc_rounds)
    return _finish(
        graph,
        PipelineResult(
            variant="large_alpha",
            colors=colors.tolist(),
            num_colors=0,
            palette_bound=offset,
            beta=beta,
            alpha=alpha,
            eps=eps,
            partition_rounds=outcome.rounds,
            coloring_rounds=mpc_rounds_max,
            num_layers=outcome.num_layers,
            details={"per_layer_x": trial_x, "partition_mode": outcome.mode},
        ),
    )


def color_graph(
    graph: Graph,
    variant: str = "auto",
    alpha: int | None = None,
    eps: float = 1.0,
    delta: float = 0.5,
    store: str = "columnar",
    workers: int | str | None = None,
    engine: str | None = None,
) -> PipelineResult:
    """Color ``graph`` with an arboricity-dependent AMPC pipeline.

    ``alpha`` defaults to the degeneracy (a cheap upper bound on α; use
    :func:`repro.graphs.exact_arboricity` for the exact value on small
    graphs).  ``variant="auto"`` picks the fewest-colors pipeline
    (two_plus_eps); other values name the specific theorem part.
    ``store`` selects the Theorem 1.2 execution fabric ("columnar" array
    kernels by default; "dict" is the per-machine oracle path),
    ``workers`` how many processes its lca rounds shard across (None
    reads ``$REPRO_WORKERS`` and defaults to ``"auto"`` — the CPU count,
    with small rounds skipping pool dispatch entirely), and ``engine``
    how the coin games execute ("batched" lockstep array kernels by
    default, "scalar" for the per-game oracle interpreter).  All three
    are pure throughput knobs: results are identical for every
    combination.
    """
    if alpha is None:
        alpha = max(1, degeneracy(graph))
    dispatch = {
        "auto": coloring_two_plus_eps,
        "two_plus_eps": coloring_two_plus_eps,
        "alpha_squared": coloring_alpha_squared,
        "alpha_squared_eps": coloring_alpha_squared_eps,
        "large_alpha": coloring_large_alpha,
    }
    if variant not in dispatch:
        raise ValueError(f"unknown variant {variant!r}; options: {sorted(dispatch)}")
    return dispatch[variant](
        graph, alpha, eps=eps, delta=delta, store=store, workers=workers,
        engine=engine,
    )
