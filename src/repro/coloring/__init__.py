"""Coloring algorithms: Theorem 1.3 pipelines, Theorem 1.5, baselines."""

from repro.coloring.arb_linial import (
    ArbLinialResult,
    ampc_rounds_for_simulation,
    arb_linial_coloring,
    linial_undirected_coloring,
)
from repro.coloring.cover_free import CoverFreeFamily, choose_family
from repro.coloring.derandomized_mpc import (
    MPCColoringResult,
    deterministic_mpc_coloring,
)
from repro.coloring.greedy import (
    degeneracy_coloring,
    greedy_coloring,
    orientation_greedy_coloring,
)
from repro.coloring.kuhn_wattenhofer import KWResult, kw_color_reduction
from repro.coloring.mis import (
    is_independent_set,
    is_maximal_independent_set,
    mis_from_coloring,
)
from repro.coloring.pipeline import (
    PipelineResult,
    color_graph,
    coloring_alpha_squared,
    coloring_alpha_squared_eps,
    coloring_large_alpha,
    coloring_two_plus_eps,
)
from repro.coloring.randomized import (
    RandomizedColoringResult,
    luby_plus_one_coloring,
)
from repro.coloring.rake_compress import (
    RakeCompressResult,
    rake_compress,
    three_color_forest,
)
from repro.coloring.recolor import (
    RecolorResult,
    greedy_recolor_by_layers,
    recoloring_ampc_rounds,
)

__all__ = [
    "ArbLinialResult",
    "CoverFreeFamily",
    "KWResult",
    "MPCColoringResult",
    "PipelineResult",
    "RakeCompressResult",
    "RandomizedColoringResult",
    "RecolorResult",
    "ampc_rounds_for_simulation",
    "arb_linial_coloring",
    "choose_family",
    "color_graph",
    "coloring_alpha_squared",
    "coloring_alpha_squared_eps",
    "coloring_large_alpha",
    "coloring_two_plus_eps",
    "degeneracy_coloring",
    "deterministic_mpc_coloring",
    "greedy_coloring",
    "greedy_recolor_by_layers",
    "is_independent_set",
    "is_maximal_independent_set",
    "kw_color_reduction",
    "luby_plus_one_coloring",
    "linial_undirected_coloring",
    "mis_from_coloring",
    "orientation_greedy_coloring",
    "rake_compress",
    "recoloring_ampc_rounds",
    "three_color_forest",
]
