"""Sequential coloring baselines.

These are the comparison points for experiment E10 (who wins when α ≪ Δ):

- :func:`greedy_coloring` — classic (Δ+1) first-fit, topology-oblivious;
- :func:`degeneracy_coloring` — smallest-last order, uses <= degeneracy+1
  <= 2α colors, the best *sequential* arboricity-aware baseline;
- :func:`orientation_greedy_coloring` — sinks-first first-fit along an
  acyclic orientation, using <= out-degree+1 colors; the sequential
  analogue of what the paper's AMPC pipelines parallelize.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.orientation import Orientation
from repro.graphs.arboricity import degeneracy_order
from repro.graphs.graph import Graph

__all__ = [
    "greedy_coloring",
    "degeneracy_coloring",
    "orientation_greedy_coloring",
]


def _first_fit(graph: Graph, order: Sequence[int]) -> list[int]:
    colors = [-1] * graph.num_vertices
    for v in order:
        taken = {colors[int(w)] for w in graph.neighbors(v) if colors[int(w)] >= 0}
        c = 0
        while c in taken:
            c += 1
        colors[v] = c
    return colors


def greedy_coloring(graph: Graph, order: Sequence[int] | None = None) -> list[int]:
    """First-fit in the given order (default: id order); <= Δ+1 colors."""
    if order is None:
        order = list(graph.vertices())
    return _first_fit(graph, order)


def degeneracy_coloring(graph: Graph) -> list[int]:
    """First-fit in reverse smallest-last order; <= degeneracy+1 colors."""
    order, __ = degeneracy_order(graph)
    return _first_fit(graph, list(reversed(order)))


def orientation_greedy_coloring(orientation: Orientation) -> list[int]:
    """First-fit processing sinks first; <= max out-degree + 1 colors.

    Every vertex is colored after all its out-neighbors, so it avoids at
    most out-degree(v) colors.
    """
    order = orientation.topological_order()  # edges point forward
    colors = [-1] * orientation.graph.num_vertices
    for v in reversed(order):  # sinks first
        taken = {colors[w] for w in orientation.out_neighbors[v]}
        c = 0
        while c in taken:
            c += 1
        colors[v] = c
    return colors
