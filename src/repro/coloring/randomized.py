"""Randomized LOCAL coloring baselines (related work, Section 1.1).

The paper stresses that all *its* algorithms are deterministic and notes
the exponential gap to randomized complexities.  For honest comparisons
the harness ships the classic randomized competitor:

- :func:`luby_plus_one_coloring` — the Luby-style (deg+1)-list-coloring:
  every round, each uncolored vertex proposes a uniform color from its
  remaining palette and keeps it if no uncolored neighbor proposed the
  same; terminates in O(log n) rounds w.h.p.

Randomness is injected through a seeded SplitMix64, so "randomized" runs
are still reproducible from their seed.  The round count is the quantity
to compare against the paper's deterministic O(log α) / O(1) bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.graph import Graph
from repro.util.rng import SplitMix64

__all__ = ["RandomizedColoringResult", "luby_plus_one_coloring"]


@dataclass
class RandomizedColoringResult:
    """Coloring plus round accounting."""

    colors: list[int]
    num_colors: int
    local_rounds: int
    seed: int


def luby_plus_one_coloring(
    graph: Graph, seed: int, max_rounds: int | None = None
) -> RandomizedColoringResult:
    """Randomized (deg+1)-coloring by synchronous proposal rounds.

    Every vertex's palette is {0..deg(v)}, so a proposal is always
    available; monochromatic proposals between *uncolored* neighbors are
    both withdrawn.  Raises RuntimeError if ``max_rounds`` (default
    8·log2(n)+16, far beyond the w.h.p. bound) is exhausted — which for a
    correct implementation signals a broken PRNG, not bad luck.
    """
    n = graph.num_vertices
    if max_rounds is None:
        max_rounds = 8 * max(n, 2).bit_length() + 16
    rng = SplitMix64(seed)
    colors: list[int | None] = [None] * n
    uncolored = set(graph.vertices())
    rounds = 0
    while uncolored:
        if rounds >= max_rounds:
            raise RuntimeError("Luby coloring exceeded its w.h.p. round bound")
        rounds += 1
        proposals: dict[int, int] = {}
        for v in sorted(uncolored):
            taken = {
                colors[int(w)]
                for w in graph.neighbors(v)
                if colors[int(w)] is not None
            }
            palette = [c for c in range(graph.degree(v) + 1) if c not in taken]
            proposals[v] = palette[rng.randrange(len(palette))]
        accepted = []
        for v, proposal in proposals.items():
            conflict = any(
                proposals.get(int(w)) == proposal for w in graph.neighbors(v)
            )
            if not conflict:
                accepted.append(v)
        for v in accepted:
            colors[v] = proposals[v]
            uncolored.discard(v)
    final = [c if c is not None else 0 for c in colors]
    return RandomizedColoringResult(
        colors=final,
        num_colors=len(set(final)),
        local_rounds=rounds,
        seed=seed,
    )
