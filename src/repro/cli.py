"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``color``        color a generated or loaded graph with a chosen pipeline
``partition``    compute a β-partition and report AMPC resource usage
``experiments``  run experiment tables by prefix (E1..E11, F1, F2)
``info``         analyze a graph: n, m, Δ, degeneracy, exact arboricity
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.coloring.pipeline import color_graph
from repro.core.beta_partition_ampc import beta_partition_ampc
from repro.experiments import ALL_EXPERIMENTS, format_table
from repro.graphs.arboricity import degeneracy, density_lower_bound, exact_arboricity
from repro.graphs.generators import (
    grid_2d,
    preferential_attachment,
    random_gnm,
    random_tree,
    union_of_random_forests,
)
from repro.graphs.graph import Graph
from repro.graphs.io import read_edge_list

__all__ = ["main"]


def _build_graph(args: argparse.Namespace) -> Graph:
    if args.input:
        return read_edge_list(args.input, strict=not args.lenient)
    generators = {
        "forests": lambda: union_of_random_forests(args.n, args.k, seed=args.seed),
        "tree": lambda: random_tree(args.n, seed=args.seed),
        "grid": lambda: grid_2d(int(args.n**0.5) or 1, int(args.n**0.5) or 1),
        "pref-attach": lambda: preferential_attachment(args.n, args.k, seed=args.seed),
        "gnm": lambda: random_gnm(args.n, args.k * args.n, seed=args.seed),
    }
    return generators[args.generator]()


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", help="edge-list file (overrides generator)")
    parser.add_argument(
        "--lenient",
        action="store_true",
        help="skip self-loops/duplicate edges in --input instead of failing",
    )
    parser.add_argument(
        "--generator",
        default="forests",
        choices=["forests", "tree", "grid", "pref-attach", "gnm"],
        help="workload family (default: union of k random forests)",
    )
    parser.add_argument("--n", type=int, default=1000, help="vertex count")
    parser.add_argument(
        "--k", type=int, default=3, help="forests/links/density parameter"
    )
    parser.add_argument("--seed", type=int, default=0, help="generator seed")


def _cmd_color(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    result = color_graph(
        graph, variant=args.variant, alpha=args.alpha, eps=args.eps
    )
    print(f"graph: n={graph.num_vertices} m={graph.num_edges} "
          f"Delta={graph.max_degree()}")
    print(f"variant={result.variant} alpha={result.alpha} beta={result.beta}")
    print(f"colors used: {result.num_colors} (palette bound {result.palette_bound})")
    print(f"AMPC rounds: {result.total_rounds} "
          f"(partition {result.partition_rounds} + coloring {result.coloring_rounds})")
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    alpha = args.alpha if args.alpha is not None else max(1, degeneracy(graph))
    beta = args.beta if args.beta is not None else 3 * alpha
    outcome = beta_partition_ampc(graph, beta)
    stats = outcome.simulator.stats
    print(f"graph: n={graph.num_vertices} m={graph.num_edges}")
    print(f"beta={beta} mode={outcome.mode} x={outcome.x}")
    print(f"layers: {outcome.num_layers}  rounds: {outcome.rounds}")
    print(f"valid: {outcome.partition.is_valid(graph, beta)}")
    print(f"per-machine communication: max={stats.max_machine_communication} "
          f"(budget S={stats.space_per_machine}, effective delta'="
          f"{stats.effective_delta():.3f})")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    prefixes = [p.upper() for p in args.names] or None
    matched = False
    for name, run in ALL_EXPERIMENTS.items():
        if prefixes and not any(name.upper().startswith(p) for p in prefixes):
            continue
        matched = True
        print(format_table(run(), title=name))
        print()
    if not matched:
        print(f"no experiment matches {args.names}; known: "
              f"{', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 1
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    print(f"n: {graph.num_vertices}")
    print(f"m: {graph.num_edges}")
    print(f"max degree: {graph.max_degree()}")
    print(f"degeneracy: {degeneracy(graph)}")
    print(f"density lower bound: {density_lower_bound(graph)}")
    if args.exact:
        print(f"exact arboricity: {exact_arboricity(graph)}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive massively parallel coloring in sparse graphs "
        "(PODC 2024 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    color = commands.add_parser("color", help="color a graph with a pipeline")
    _add_graph_arguments(color)
    color.add_argument(
        "--variant",
        default="two_plus_eps",
        choices=["auto", "two_plus_eps", "alpha_squared", "alpha_squared_eps", "large_alpha"],
    )
    color.add_argument("--alpha", type=int, default=None, help="arboricity bound")
    color.add_argument("--eps", type=float, default=1.0)
    color.set_defaults(func=_cmd_color)

    partition = commands.add_parser("partition", help="compute a beta-partition")
    _add_graph_arguments(partition)
    partition.add_argument("--alpha", type=int, default=None)
    partition.add_argument("--beta", type=int, default=None)
    partition.set_defaults(func=_cmd_partition)

    experiments = commands.add_parser("experiments", help="run experiment tables")
    experiments.add_argument("names", nargs="*", help="prefixes, e.g. E7 F2")
    experiments.set_defaults(func=_cmd_experiments)

    info = commands.add_parser("info", help="analyze a graph")
    _add_graph_arguments(info)
    info.add_argument("--exact", action="store_true", help="compute exact arboricity")
    info.set_defaults(func=_cmd_info)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
