"""Synchronous LOCAL model simulator.

The coloring pipelines of Section 6 work by simulating LOCAL algorithms
(Arb-Linial, Kuhn-Wattenhofer) inside AMPC.  This simulator runs those
algorithms natively and counts their LOCAL rounds; the AMPC wrappers then
convert LOCAL rounds to AMPC rounds using the paper's ball-collection
arguments (each AMPC round gathers a ball of <= n^δ vertices).

Two stepping modes:

- :meth:`step` — undirected: every vertex sees all neighbor states.
- :meth:`step_directed` — one-sided: every vertex sees only the states of
  its *out*-neighbors under a fixed orientation (the property that makes
  Arb-Linial simulable layer-by-layer).
"""

from __future__ import annotations

from typing import Callable, Generic, Sequence, TypeVar

from repro.graphs.graph import Graph

__all__ = ["LocalSimulator"]

State = TypeVar("State")


class LocalSimulator(Generic[State]):
    """Round-synchronous message passing over a fixed graph."""

    def __init__(self, graph: Graph, initial: Sequence[State]) -> None:
        if len(initial) != graph.num_vertices:
            raise ValueError("need one initial state per vertex")
        self.graph = graph
        self.states: list[State] = list(initial)
        self.rounds = 0

    def step(self, update: Callable[[int, State, list[State]], State]) -> None:
        """One undirected LOCAL round: v sees all neighbor states."""
        graph = self.graph
        old = self.states
        self.states = [
            update(v, old[v], [old[int(w)] for w in graph.neighbors(v)])
            for v in graph.vertices()
        ]
        self.rounds += 1

    def step_directed(
        self,
        out_neighbors: Sequence[Sequence[int]],
        update: Callable[[int, State, list[State]], State],
    ) -> None:
        """One one-sided LOCAL round: v sees only out-neighbor states."""
        old = self.states
        self.states = [
            update(v, old[v], [old[w] for w in out_neighbors[v]])
            for v in range(len(old))
        ]
        self.rounds += 1

    def run_until_fixpoint(
        self,
        update: Callable[[int, State, list[State]], State],
        max_rounds: int,
    ) -> int:
        """Step until states stop changing; return rounds used."""
        for _ in range(max_rounds):
            before = list(self.states)
            self.step(update)
            if before == self.states:
                return self.rounds
        return self.rounds
