"""Synchronous LOCAL model simulation."""

from repro.local.simulator import LocalSimulator

__all__ = ["LocalSimulator"]
