"""Monotone bucket priority queue.

The induced β-partition construction (Definition 3.6) and degeneracy
ordering both repeatedly extract a vertex of currently-minimum key where
keys only ever *decrease* by small steps.  A bucket queue gives O(1)
amortised operations, which matters because the coin-dropping game
recomputes induced partitions thousands of times.
"""

from __future__ import annotations

__all__ = ["BucketQueue"]


class BucketQueue:
    """Priority queue over integer keys in ``[0, max_key]``.

    Supports :meth:`insert`, :meth:`decrease_key` and :meth:`pop_min`.
    ``pop_min`` scans monotonically upward from the last minimum, so a full
    run of n pops with d decrease-keys costs ``O(n + d + max_key)``.
    """

    def __init__(self, max_key: int) -> None:
        if max_key < 0:
            raise ValueError("max_key must be non-negative")
        self._buckets: list[set[int]] = [set() for _ in range(max_key + 1)]
        self._key: dict[int, int] = {}
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._key)

    def __contains__(self, item: int) -> bool:
        return item in self._key

    def key_of(self, item: int) -> int:
        """Return the current key of ``item``."""
        return self._key[item]

    def insert(self, item: int, key: int) -> None:
        """Insert ``item`` with ``key``; item must not already be present."""
        if item in self._key:
            raise ValueError(f"item {item} already present")
        self._buckets[key].add(item)
        self._key[item] = key
        if key < self._cursor:
            self._cursor = key

    def decrease_key(self, item: int, new_key: int) -> None:
        """Lower the key of ``item`` to ``new_key`` (no-op if not lower)."""
        old = self._key[item]
        if new_key >= old:
            return
        self._buckets[old].discard(item)
        self._buckets[new_key].add(item)
        self._key[item] = new_key
        if new_key < self._cursor:
            self._cursor = new_key

    def pop_min(self) -> tuple[int, int]:
        """Remove and return ``(item, key)`` with the smallest key."""
        while self._cursor < len(self._buckets) and not self._buckets[self._cursor]:
            self._cursor += 1
        if self._cursor >= len(self._buckets):
            raise IndexError("pop from empty BucketQueue")
        item = self._buckets[self._cursor].pop()
        key = self._key.pop(item)
        return item, key
