"""Shared utilities: PRNG, data structures, finite-field linear algebra."""

from repro.util.bucket_queue import BucketQueue
from repro.util.dsu import DisjointSetUnion
from repro.util.gf2 import GF2System, gf2_rank, gf2_solution_count_log2
from repro.util.gf2k import GF2kField
from repro.util.hashing import PairwiseHashFamily
from repro.util.primes import is_prime, next_prime
from repro.util.rng import SplitMix64

__all__ = [
    "BucketQueue",
    "DisjointSetUnion",
    "GF2System",
    "GF2kField",
    "PairwiseHashFamily",
    "SplitMix64",
    "gf2_rank",
    "gf2_solution_count_log2",
    "is_prime",
    "next_prime",
]
