"""Arithmetic in the binary field GF(2^k).

The pairwise-independent hash family of Theorem 1.5 is
``h(u) = top_bits(s1 * u + s2)`` with multiplication in GF(2^k).  Because
the field has characteristic 2, ``+`` is XOR, and the collision event
``h(u) = h(v)`` depends only on ``s1 * (u XOR v)`` — a *GF(2)-linear*
function of the bits of ``s1``.  That linearity is what makes exact
conditional expectations tractable (see :mod:`repro.util.gf2`).
"""

from __future__ import annotations

__all__ = ["GF2kField"]

# Irreducible polynomials over GF(2) for each supported degree, given as the
# integer whose bits are the polynomial's coefficients (degree k bit set).
# All are standard low-weight irreducibles (trinomials / pentanomials).
_IRREDUCIBLE = {
    1: 0b11,                      # x + 1
    2: 0b111,                     # x^2 + x + 1
    3: 0b1011,                    # x^3 + x + 1
    4: 0b10011,                   # x^4 + x + 1
    5: 0b100101,                  # x^5 + x^2 + 1
    6: 0b1000011,                 # x^6 + x + 1
    7: 0b10000011,                # x^7 + x + 1
    8: 0b100011011,               # x^8 + x^4 + x^3 + x + 1
    9: 0b1000010001,              # x^9 + x^4 + 1
    10: 0b10000001001,            # x^10 + x^3 + 1
    11: 0b100000000101,           # x^11 + x^2 + 1
    12: 0b1000001010011,          # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011,         # x^13 + x^4 + x^3 + x + 1
    14: 0b100010000000011,        # x^14 + x^10 + x + 1  (low weight)
    15: 0b1000000000000011,       # x^15 + x + 1
    16: 0b10001000000001011,      # x^16 + x^12 + x^3 + x + 1
    17: 0b100000000000001001,     # x^17 + x^3 + 1
    18: 0b1000000000010000001,    # x^18 + x^7 + 1
    19: 0b10000000000000100111,   # x^19 + x^5 + x^2 + x + 1
    20: 0b100000000000000001001,  # x^20 + x^3 + 1
    21: 0b1000000000000000000101,   # x^21 + x^2 + 1
    22: 0b10000000000000000000011,  # x^22 + x + 1
    23: 0b100000000000000000100001,  # x^23 + x^5 + 1
    24: 0b1000000000000000010000111,  # x^24 + x^7 + x^2 + x + 1
    25: 0b10000000000000000000001001,  # x^25 + x^3 + 1
    26: 0b100000000000000000001000011,  # x^26 + x^6 + x + 1  (pentanomial-ish)
    27: 0b1000000000000000000000100111,  # x^27 + x^5 + x^2 + x + 1
    28: 0b10000000000000000000000000011,  # x^28 + x + 1  (not irr? see check)
    29: 0b100000000000000000000000000101,  # x^29 + x^2 + 1
    30: 0b1000000000000000000000000000011,  # x^30 + x + 1 (check)
    31: 0b10000000000000000000000000001001,  # x^31 + x^3 + 1
    32: 0b100000000000000000000000010001101,  # x^32+x^7+x^3+x^2+1
}


def _poly_mod_mult(a: int, b: int, mod: int, k: int) -> int:
    """Carry-less multiply of ``a`` and ``b`` reduced modulo ``mod``."""
    result = 0
    top = 1 << k
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a & top:
            a ^= mod
    return result


def _is_irreducible(poly: int, k: int) -> bool:
    """Rabin irreducibility test for a degree-k polynomial over GF(2)."""
    if k == 1:
        # x and x+1 are the only degree-1 polynomials; both irreducible.
        # (The generic test below manipulates the unreduced element "x",
        # which only exists for k >= 2.)
        return poly in (0b10, 0b11)

    def mulmod(a: int, b: int) -> int:
        return _poly_mod_mult(a, b, poly, k)

    def pow_x(exp: int) -> int:
        # Compute x^exp mod poly via square and multiply on exponent bits.
        result = 0b10 if exp % 2 else 0b1
        base = 0b10
        exp //= 2
        while exp:
            base = mulmod(base, base)
            if exp & 1:
                result = mulmod(result, base)
            exp //= 2
        return result

    # x^(2^k) == x (mod poly) is necessary.
    if pow_x(1 << k) != 0b10:
        return False
    # gcd(x^(2^(k/p)) - x, poly) == 1 for each prime divisor p of k.
    divisors = {p for p in range(2, k + 1) if k % p == 0 and all(p % q for q in range(2, p))}
    for p in divisors:
        probe = pow_x(1 << (k // p)) ^ 0b10
        if _gcd_poly(probe, poly) != 1:
            return False
    return True


def _gcd_poly(a: int, b: int) -> int:
    """GCD of two GF(2)[x] polynomials represented as bit masks."""
    while b:
        a, b = b, _poly_rem(a, b)
    return a


def _poly_rem(a: int, b: int) -> int:
    """Remainder of polynomial division a mod b over GF(2)."""
    db = b.bit_length() - 1
    while a.bit_length() - 1 >= db and a:
        a ^= b << (a.bit_length() - 1 - db)
    return a


class GF2kField:
    """The finite field GF(2^k) for 1 <= k <= 32.

    Elements are integers in ``[0, 2^k)``; addition is XOR; multiplication
    is carry-less multiplication modulo a fixed irreducible polynomial.
    """

    def __init__(self, k: int) -> None:
        if k not in _IRREDUCIBLE:
            raise ValueError(f"unsupported field degree {k} (need 1..32)")
        poly = _IRREDUCIBLE[k]
        if not _is_irreducible(poly, k):
            # Fall back to a search; the table should make this unreachable,
            # but a wrong table entry must never silently corrupt the field.
            poly = self._find_irreducible(k)
        self.k = k
        self.order = 1 << k
        self.modulus = poly

    @staticmethod
    def _find_irreducible(k: int) -> int:
        for candidate in range((1 << k) + 1, 1 << (k + 1), 2):
            if _is_irreducible(candidate, k):
                return candidate
        raise RuntimeError(f"no irreducible polynomial of degree {k} found")

    def add(self, a: int, b: int) -> int:
        """Field addition (XOR)."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        return _poly_mod_mult(a, b, self.modulus, self.k)

    def pow(self, a: int, e: int) -> int:
        """Field exponentiation by squaring."""
        result = 1
        while e:
            if e & 1:
                result = self.mul(result, a)
            a = self.mul(a, a)
            e >>= 1
        return result

    def inverse(self, a: int) -> int:
        """Multiplicative inverse of nonzero ``a`` (a^(2^k - 2))."""
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^k)")
        return self.pow(a, self.order - 2)

    def mul_matrix_rows(self, w: int) -> list[int]:
        """Return the GF(2) matrix of the linear map ``s -> s * w``.

        Row ``i`` (an integer bitset over the k input bits of ``s``) gives
        output bit ``i`` of the product as a parity of input bits:
        ``bit_i(s*w) = parity(rows[i] & s)``.  This is the bridge from field
        multiplication to the GF(2) solver.
        """
        # Column j of the map is e_j * w; transpose into row bitsets.
        cols = [self.mul(1 << j, w) for j in range(self.k)]
        rows = []
        for i in range(self.k):
            row = 0
            for j in range(self.k):
                if (cols[j] >> i) & 1:
                    row |= 1 << j
            rows.append(row)
        return rows
