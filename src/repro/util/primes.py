"""Prime utilities for the cover-free-family constructions.

The Arb-Linial color reduction (Section 6.1) encodes colors as low-degree
polynomials over a prime field F_q; we need deterministic primality testing
and next-prime search for moderate q (up to ~2^40 in any realistic run).
"""

from __future__ import annotations

__all__ = ["is_prime", "next_prime"]

# Deterministic Miller-Rabin witness sets (Sinclair / Jaeschke bounds).
_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic primality test, exact for all 64-bit integers."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # These witnesses are sufficient for n < 3.3 * 10^24.
    for a in _SMALL_PRIMES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Return the smallest prime >= n."""
    if n <= 2:
        return 2
    candidate = n | 1  # make it odd
    while not is_prime(candidate):
        candidate += 2
    return candidate
