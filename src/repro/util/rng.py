"""Deterministic pseudo-random number generation.

Every randomized *generator* in this library (graph generators, workload
builders) draws from :class:`SplitMix64`, a tiny, fast, splittable PRNG with
a fully specified bit-level behaviour.  Using our own PRNG instead of
:mod:`random` guarantees that benchmark workloads are reproducible across
Python versions and platforms.

The paper's algorithms themselves are deterministic; randomness only appears
in workload construction.
"""

from __future__ import annotations

__all__ = ["SplitMix64"]

_MASK64 = (1 << 64) - 1


class SplitMix64:
    """SplitMix64 PRNG (Steele, Lea & Flood 2014).

    Produces a deterministic stream of 64-bit values from a seed.  Supports
    the handful of distributions the graph generators need.
    """

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        """Return the next raw 64-bit output."""
        self._state = (self._state + 0x9E3779B97F4A7C15) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def randrange(self, n: int) -> int:
        """Return a uniform integer in ``[0, n)``.

        Uses rejection sampling to avoid modulo bias.
        """
        if n <= 0:
            raise ValueError("randrange requires n >= 1")
        # Largest multiple of n that fits in 64 bits.
        limit = (_MASK64 + 1) - ((_MASK64 + 1) % n)
        while True:
            value = self.next_u64()
            if value < limit:
                return value % n

    def randint(self, lo: int, hi: int) -> int:
        """Return a uniform integer in ``[lo, hi]`` (inclusive)."""
        if hi < lo:
            raise ValueError("randint requires lo <= hi")
        return lo + self.randrange(hi - lo + 1)

    def random(self) -> float:
        """Return a uniform float in ``[0, 1)`` with 53 bits of precision."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def shuffle(self, items: list) -> None:
        """Fisher-Yates shuffle of ``items`` in place."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randrange(i + 1)
            items[i], items[j] = items[j], items[i]

    def sample(self, n: int, k: int) -> list[int]:
        """Return ``k`` distinct integers drawn uniformly from ``[0, n)``.

        Uses Floyd's algorithm, so the cost is ``O(k)`` expected regardless
        of ``n``.
        """
        if k < 0 or k > n:
            raise ValueError("sample requires 0 <= k <= n")
        chosen: set[int] = set()
        result: list[int] = []
        for j in range(n - k, n):
            t = self.randrange(j + 1)
            if t in chosen:
                t = j
            chosen.add(t)
            result.append(t)
        self.shuffle(result)
        return result

    def split(self) -> "SplitMix64":
        """Return an independent child PRNG (for parallel workloads)."""
        return SplitMix64(self.next_u64() ^ 0xA5A5A5A5A5A5A5A5)
