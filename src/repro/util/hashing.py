"""Pairwise-independent hash families over GF(2^k).

Theorem 1.5 derandomizes a randomized color trial whose only requirement is
*pairwise independence* of the node colors.  We realise the trial with

    h_{s1,s2}(u) = top_c_bits(s1 * u' + s2)      (arithmetic in GF(2^k))

where ``u' = u + 1`` (shifting node ids away from 0 so the map u -> u' is
injective and nonzero).  For s1, s2 uniform, (h(u), h(v)) is uniform on
pairs for u != v, giving collision probability exactly 2^-c.

Crucially, since the field has characteristic 2,

    h(u) = h(v)  <=>  top_c_bits(s1 * (u' ^ v')) = 0,

an event that is a conjunction of c GF(2)-linear constraints on the bits of
``s1`` alone.  :meth:`PairwiseHashFamily.collision_constraints` exposes those
constraints so the method of conditional expectations can evaluate exact
probabilities under partially fixed seeds.
"""

from __future__ import annotations

from repro.util.gf2k import GF2kField

__all__ = ["PairwiseHashFamily"]


class PairwiseHashFamily:
    """The family ``h(u) = top_c_bits(s1 * (u+1) + s2)`` over GF(2^k).

    Parameters
    ----------
    universe_size:
        Hash inputs are node ids in ``[0, universe_size)``.
    num_colors_log2:
        Output is ``c = num_colors_log2`` bits, i.e. a color in
        ``[0, 2^c)``.
    """

    def __init__(self, universe_size: int, num_colors_log2: int) -> None:
        if universe_size < 1:
            raise ValueError("universe_size must be >= 1")
        if num_colors_log2 < 1:
            raise ValueError("need at least one output bit")
        # Need k bits to represent u+1 for u in [0, universe_size), and at
        # least c output bits.
        k = max(universe_size.bit_length(), num_colors_log2)
        self.field = GF2kField(k)
        self.k = k
        self.c = num_colors_log2
        self.universe_size = universe_size
        # The seed is (s1, s2): 2k bits total.  Bits 0..k-1 are s1,
        # bits k..2k-1 are s2.
        self.seed_bits = 2 * k

    @property
    def num_colors(self) -> int:
        """Size of the output palette, ``2^c``."""
        return 1 << self.c

    def _encode(self, u: int) -> int:
        if not 0 <= u < self.universe_size:
            raise ValueError(f"input {u} outside universe")
        return u + 1

    def evaluate(self, seed: int, u: int) -> int:
        """Hash ``u`` under the given ``seed`` (an integer of seed_bits)."""
        k = self.k
        s1 = seed & ((1 << k) - 1)
        s2 = (seed >> k) & ((1 << k) - 1)
        y = self.field.mul(s1, self._encode(u)) ^ s2
        return y >> (k - self.c)

    def collision_constraints(self, u: int, v: int) -> tuple[list[int], list[int]]:
        """Return GF(2) equations over the seed equivalent to ``h(u)==h(v)``.

        The returned ``(rows, rhs)`` has one equation per output bit; rows
        are bitsets over the ``seed_bits`` seed variables (only s1 bits have
        nonzero coefficients).  ``h(u) == h(v)`` holds iff every equation
        ``rows[i] . seed = rhs[i]`` holds.
        """
        if u == v:
            raise ValueError("collision of a node with itself is trivial")
        w = self._encode(u) ^ self._encode(v)
        mat = self.field.mul_matrix_rows(w)
        # Output bits are the top c bits: indices k-1 .. k-c of s1*w.
        rows = [mat[self.k - 1 - i] for i in range(self.c)]
        rhs = [0] * self.c
        return rows, rhs

    def value_constraints(self, u: int, color: int) -> tuple[list[int], list[int]]:
        """GF(2) equations over the seed equivalent to ``h(u) == color``.

        Unlike collisions, this event involves s2: output bit j of h(u) is
        ``parity(mat_u[k-c+j] & s1) XOR bit_{k-c+j}(s2)``.  Needed when an
        uncolored vertex must avoid an already-fixed neighbor color
        (Theorem 1.5's later phases).
        """
        if not 0 <= color < self.num_colors:
            raise ValueError(f"color {color} outside palette")
        k, c = self.k, self.c
        mat = self.field.mul_matrix_rows(self._encode(u))
        rows = []
        rhs = []
        for j in range(c):
            t = k - c + j  # bit position in y = s1*u' + s2
            rows.append(mat[t] | (1 << (k + t)))
            rhs.append((color >> j) & 1)
        return rows, rhs

    def collision_probability(self) -> float:
        """Exact collision probability for distinct inputs (``2^-c``)."""
        return 2.0 ** (-self.c)
