"""Disjoint-set union (union-find) with path halving and union by size.

Used by the forest-decomposition peeler and spanning-forest generators to
detect cycles while assembling certified-arboricity workloads.
"""

from __future__ import annotations

__all__ = ["DisjointSetUnion"]


class DisjointSetUnion:
    """Classic DSU over elements ``0..n-1``."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self._parent = list(range(n))
        self._size = [1] * n
        self._components = n

    @property
    def components(self) -> int:
        """Number of disjoint sets currently maintained."""
        return self._components

    def find(self, x: int) -> int:
        """Return the representative of the set containing ``x``."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; return False if already merged."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """Return True if ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def set_size(self, x: int) -> int:
        """Return the size of the set containing ``x``."""
        return self._size[self.find(x)]
