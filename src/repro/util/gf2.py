"""Linear algebra over GF(2), with rows stored as Python integers (bitsets).

The derandomized MPC coloring (Theorem 1.5) reduces conditional-expectation
computations to *counting solutions* of small linear systems over GF(2):
given a partial assignment to the seed bits of a pairwise-independent hash
function, the probability that an edge is monochromatic is
``(#solutions of A s = b consistent with the fixed bits) / 2^{free bits}``.

Rows are integers whose bit ``i`` is the coefficient of variable ``i``; this
keeps row operations O(1) word-ops per 64 variables and needs no numpy.
"""

from __future__ import annotations

__all__ = ["GF2System", "gf2_rank", "gf2_solution_count_log2"]


def gf2_rank(rows: list[int]) -> int:
    """Return the rank of the GF(2) matrix given as bitset rows."""
    basis: list[int] = []
    for row in rows:
        cur = row
        for b in basis:
            cur = min(cur, cur ^ b)
        if cur:
            basis.append(cur)
            basis.sort(reverse=True)
    return len(basis)


def gf2_solution_count_log2(rows: list[int], rhs: list[int], nvars: int) -> int | None:
    """Solve ``A x = b`` over GF(2); return log2(#solutions), or None.

    ``rows[i]`` is the bitset of coefficients of equation ``i`` and
    ``rhs[i]`` its right-hand side bit.  Returns ``None`` when the system is
    inconsistent; otherwise the number of solutions is ``2**result`` with
    ``result = nvars - rank``.
    """
    # Gaussian elimination maintaining (row, rhs) pairs.
    basis: list[tuple[int, int]] = []  # (pivot row, rhs bit), pivot-sorted
    for row, b in zip(rows, rhs):
        cur, cb = row, b & 1
        for brow, bb in basis:
            if cur ^ brow < cur:
                cur ^= brow
                cb ^= bb
        if cur:
            basis.append((cur, cb))
            basis.sort(key=lambda t: t[0], reverse=True)
        elif cb:
            return None
    return nvars - len(basis)


class GF2System:
    """Incrementally built GF(2) linear system with consistency queries.

    Supports adding equations one at a time and asking, after each addition,
    how many assignments of the ``nvars`` variables satisfy all equations so
    far.  Used to condition edge-collision events on already-fixed seed bits.
    """

    def __init__(self, nvars: int) -> None:
        if nvars < 0:
            raise ValueError("nvars must be non-negative")
        self.nvars = nvars
        self._basis: list[tuple[int, int]] = []
        self._inconsistent = False

    @property
    def consistent(self) -> bool:
        """True while the accumulated system has at least one solution."""
        return not self._inconsistent

    @property
    def rank(self) -> int:
        """Rank of the accumulated coefficient matrix."""
        return len(self._basis)

    def add_equation(self, row: int, rhs: int) -> None:
        """Add the equation ``row . x = rhs`` (rhs in {0, 1})."""
        if self._inconsistent:
            return
        cur, cb = row, rhs & 1
        for brow, bb in self._basis:
            if cur ^ brow < cur:
                cur ^= brow
                cb ^= bb
        if cur:
            self._basis.append((cur, cb))
            self._basis.sort(key=lambda t: t[0], reverse=True)
        elif cb:
            self._inconsistent = True

    def solution_count_log2(self) -> int | None:
        """Return log2 of the number of satisfying assignments, or None."""
        if self._inconsistent:
            return None
        return self.nvars - len(self._basis)

    def probability_with(self, rows: list[int], rhs: list[int]) -> float:
        """Probability that extra equations hold, conditioned on this system.

        Given that the current system holds (uniform over its solutions),
        return the probability that all of ``rows[i] . x = rhs[i]`` also
        hold.  This is exactly ``2^{log2(joint) - log2(current)}``.
        """
        base = self.solution_count_log2()
        if base is None:
            raise ValueError("conditioning on an inconsistent system")
        joint = GF2System(self.nvars)
        joint._basis = list(self._basis)
        for row, b in zip(rows, rhs):
            joint.add_equation(row, b)
        top = joint.solution_count_log2()
        if top is None:
            return 0.0
        return 2.0 ** (top - base)

    def copy(self) -> "GF2System":
        """Return an independent copy of this system."""
        clone = GF2System(self.nvars)
        clone._basis = list(self._basis)
        clone._inconsistent = self._inconsistent
        return clone
