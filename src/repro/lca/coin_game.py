"""The (x, β, F)-coin dropping game — Section 4.1, Algorithm 1.

The game is played from the perspective of a single node v.  It maintains a
set S_v of *explored* vertices (full adjacency known), initially {v}.  Each
super-iteration:

1. computes the S_v-induced β-partition σ (Definition 3.6) from the local
   view — possible because σ needs only G[S_v] plus true degrees;
2. computes forwarding sets F(σ, u) (Definition 4.1);
3. drops x coins on v and forwards them: any u ∈ S_v holding x' >= |F(σ,u)|
   coins sends x'/|F(σ,u)| to each member of F(σ, u); coins reaching
   vertices outside S_v stop there;
4. every outside vertex holding coins is explored and added to S_v.

After x² super-iterations (Lemma 4.4) the simulated layer σ_{S_v}(v) equals
the natural layer ℓ_β(v) for every v with |D(ℓ_β, v)| <= x² and
ℓ_β(v) <= log_{β+1} x.

Engineering notes (documented in DESIGN.md):

- Coin amounts are exact rationals represented as *bounded-denominator
  scaled integers*: after t hops every denominator divides
  ``lcm(1..β+1) ** t`` (each hop divides by one set size ``|F| <= β+1``),
  so integer counts of ``1/scale`` units are exact.  Two interchangeable
  scale policies implement this, and the differential tests pin them
  against each other and against the seed's :class:`~fractions.Fraction`
  coins:

  * **Shared fixed scale** (:func:`fixed_coin_scale`) —
    ``lcm(1..β+1) ** horizon``, precomputed once per (β, horizon).
    Amounts stay machine-word-sized whenever that scale fits in 63 bits
    (small β/x regimes); past 63 bits Python integers widen to bigints
    automatically — exact, just proportionally slower.  Every division
    is a plain exact ``//``.  This is what the columnar round engine
    (:func:`repro.core.columnar_rounds.play_coin_game`) runs: on
    bench-shaped inputs inexact divisions are the *common* case, so a
    branch-free fixed scale beats dynamic rescaling even when it makes
    amounts multi-digit.
  * **Dynamic per-game escalation**
    (:meth:`CoinDroppingGame._forward_scaled_ints`) — the scale starts
    at 1 and, once per hop, escalates by the smallest factor that makes
    that hop's divisions exact (the lcm of the per-division deficits
    ``|F| / gcd(amount, |F|)``).  Amounts stay single-digit until a game
    actually demands more, and :attr:`CoinDroppingGame.peak_coin_scale`
    records how far a game escalated — through 63 bits and beyond, the
    overflow path is ordinary bigint arithmetic.  The oracle game runs
    this policy, so dict-vs-columnar equivalence doubles as a
    differential check of the two representations.

  Games with a huge forwarding horizon (strict mode uses |V| iterations)
  keep Fraction coins instead: the fixed scale would be an astronomical
  bigint, a dynamic scale never shrinks, and Fractions' per-op gcd
  normalization is the safe representation over thousands of ping-pong
  hops.
- If a super-iteration adds no vertex, S_v is a fixed point (σ and F depend
  only on S_v), so remaining super-iterations are no-ops and we exit early.
  ``strict=True`` disables this and the forwarding-horizon cap below.
- Algorithm 1 forwards for |V| iterations; the progress proof (Lemma 4.2)
  only needs the first wave to travel ceil(log_{β+1} x) hops, so the
  default horizon is a generous multiple of that.  Coins ping-ponging
  inside S_v beyond the horizon cannot add new vertices they would not add
  within it unless they first leave S_v — which the horizon already allows.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field
from fractions import Fraction

from repro.lca.forwarding import forwarding_set
from repro.lca.oracle import GraphOracle
from repro.partition.beta_partition import INFINITY, PartialBetaPartition
from repro.partition.induced import induced_partition_from_view

__all__ = [
    "CoinGameResult",
    "CoinDroppingGame",
    "INT_COIN_HORIZON_CAP",
    "fixed_coin_scale",
    "max_provable_layer",
]

# Forwarding horizons up to this many hops run the scaled-integer coin
# fast path; deeper horizons (strict mode uses |V| iterations) keep
# Fraction coins, whose per-op gcd normalization bounds coefficient
# growth over thousands of ping-pong hops.
INT_COIN_HORIZON_CAP = 64


@functools.lru_cache(maxsize=256)
def fixed_coin_scale(beta: int, horizon: int) -> int | None:
    """Shared fixed scale for (β, horizon): every game of a round reuses it.

    ``lcm(1..β+1) ** horizon`` clears every denominator any amount can
    acquire within the horizon, so all share divisions are exact ``//``.
    It fits machine words when small parameters keep it under 63 bits and
    widens to a bigint otherwise (see the module docstring).  None means
    "horizon too deep for any scaled-integer representation" — such games
    keep Fraction coins.
    """
    if horizon > INT_COIN_HORIZON_CAP:
        return None
    return math.lcm(*range(1, beta + 2)) ** horizon


def max_provable_layer(x: int, beta: int) -> int:
    """floor(log_{β+1} x): the deepest layer the game certifies (Lemma 4.4)."""
    if x < 1:
        raise ValueError("x must be >= 1")
    return int(math.floor(math.log(x) / math.log(beta + 1) + 1e-9)) if x > 1 else 0


@dataclass
class CoinGameResult:
    """Outcome of one full game for a node v."""

    root: int
    layer: float  # certified layer of v, or INFINITY
    proof: PartialBetaPartition  # ℓ_v of Remark 4.8 (clipped to provable layers)
    explored: set[int] = field(default_factory=set)  # final S_v
    super_iterations: int = 0
    queries: int = 0
    edges_seen: int = 0  # |E(G[S_v])| at the end (Lemma 4.6 bound: x^6)


class CoinDroppingGame:
    """Plays the (x, β, F)-coin dropping game for one root node."""

    def __init__(
        self,
        oracle: GraphOracle,
        root: int,
        x: int,
        beta: int,
        strict: bool = False,
        forward_iterations: int | None = None,
    ) -> None:
        if x < 1:
            raise ValueError("x must be >= 1")
        if beta < 1:
            raise ValueError("beta must be >= 1")
        self.oracle = oracle
        self.root = root
        self.x = x
        self.beta = beta
        self.strict = strict
        if forward_iterations is not None:
            self.forward_iterations = forward_iterations
        elif strict:
            self.forward_iterations = oracle.num_vertices
        else:
            # Wave horizon: the Lemma 4.2 path has length <= log_{β+1} x;
            # a 4x-plus-slack multiple keeps us safely past it.
            self.forward_iterations = 4 * (max_provable_layer(x, beta) + 2)
        # Coin representation: dynamically-scaled exact integers for
        # bench-sized horizons (amounts are counts of 1/scale units; the
        # scale starts at 1 and escalates only when a division demands
        # it — see the module docstring), Fraction coins for deep
        # horizons where an ever-growing scale could turn every op into
        # giant-bigint arithmetic.
        self._int_coins = self.forward_iterations <= INT_COIN_HORIZON_CAP
        # Largest scale any forwarding run of this game reached: 1 means
        # every division was exact; > 2**63 means the game escalated past
        # machine words into bigints (still exact — just slower).
        self.peak_coin_scale = 1
        # Explored state: full adjacency list of every vertex in S_v.
        self._adjacency: dict[int, list[int]] = {}
        self._degree: dict[int, int] = {}
        self._explore(root)

    # -- exploration -------------------------------------------------------

    def _explore(self, v: int) -> None:
        neighbors = self.oracle.explore(v)
        self._adjacency[v] = neighbors
        self._degree[v] = len(neighbors)

    def _local_view(self) -> tuple[dict[int, list[int]], dict[int, int]]:
        inside = {
            v: [w for w in nbrs if w in self._adjacency]
            for v, nbrs in self._adjacency.items()
        }
        return inside, dict(self._degree)

    def current_partition(self) -> PartialBetaPartition:
        """σ_{S_v, β} for the current S_v."""
        inside, degrees = self._local_view()
        return induced_partition_from_view(inside, degrees, self.beta)

    @property
    def explored_vertices(self) -> set[int]:
        """The current S_v (copies; safe to mutate)."""
        return set(self._adjacency)

    # -- the game ----------------------------------------------------------

    def super_iteration(self) -> int:
        """One round of Algorithm 1; returns the number of new vertices.

        Exposed for step-by-step inspection (see examples/lca_exploration.py);
        :meth:`run` drives the full game.
        """
        sigma = self.current_partition()
        explored = self._adjacency.keys()
        fsets = {
            u: forwarding_set(nbrs, sigma.layers, explored, self.beta)
            for u, nbrs in self._adjacency.items()
        }
        if self._int_coins:
            coins = self._forward_scaled_ints(fsets)
        else:
            coins = self._forward_fractions(fsets)
        newcomers = [u for u, amount in coins.items() if u not in self._adjacency and amount > 0]
        for u in sorted(newcomers):
            self._explore(u)
        return len(newcomers)

    def _forward_scaled_ints(self, fsets: dict[int, list[int]]) -> dict[int, int]:
        """Run the forwarding loop on dynamically-scaled integer coins.

        Amounts count units of ``1/scale``; the scale starts at 1 and,
        once per hop, escalates by the smallest factor that makes every
        forwarder's share division of that hop exact (the lcm of the
        per-division deficits ``|F| / gcd(amount, |F|)``).  The factor is
        folded into the hop's single rebuild of the coins map, so an
        escalation costs no extra pass.  Thresholds, shares, and the
        final "holds > 0 coins" test are value-for-value identical to
        Fraction arithmetic.
        """
        gcd = math.gcd
        scale = 1
        coins: dict[int, int] = {self.root: self.x}
        for _ in range(self.forward_iterations):
            # First pass: find this hop's forwarders and the one factor
            # that clears every remainder (1 when all divisions are exact).
            factor = 1
            forwarding: dict[int, int] = {}
            for u, amount in coins.items():
                fset = fsets.get(u)
                if fset and amount >= len(fset) * scale:
                    k = len(fset)
                    forwarding[u] = k
                    remainder = amount % k
                    if remainder:
                        need = k // gcd(remainder, k)
                        if factor % need:
                            factor = factor // gcd(factor, need) * need
            if not forwarding:
                break
            if factor > 1:
                scale *= factor
                if scale > self.peak_coin_scale:
                    self.peak_coin_scale = scale
            # Second pass: rebuild the map at the (possibly escalated)
            # scale — forwarders split exactly, everyone else rests.
            next_coins: dict[int, int] = {}
            get = next_coins.get
            for u, amount in coins.items():
                k = forwarding.get(u)
                if k is None:
                    # Outside S_v, too few coins, or isolated: coins rest.
                    next_coins[u] = get(u, 0) + amount * factor
                else:
                    share = amount * factor // k  # exact by choice of factor
                    for w in fsets[u]:
                        next_coins[w] = get(w, 0) + share
            coins = next_coins
        return coins

    def _forward_fractions(self, fsets: dict[int, list[int]]) -> dict[int, Fraction]:
        """The Fraction-coin forwarding loop (deep-horizon fallback)."""
        coins: dict[int, Fraction] = {self.root: Fraction(self.x)}
        for _ in range(self.forward_iterations):
            moved = False
            next_coins: dict[int, Fraction] = {}
            get = next_coins.get
            for u, amount in coins.items():
                fset = fsets.get(u)
                if fset and amount >= len(fset):
                    share = amount / len(fset)
                    for w in fset:
                        next_coins[w] = get(w, 0) + share
                    moved = True
                else:
                    next_coins[u] = get(u, 0) + amount
            coins = next_coins
            if not moved:
                break
        return coins

    def run(self) -> CoinGameResult:
        """Play x² super-iterations (early-exit on fixpoint unless strict)."""
        start_queries = self.oracle.stats.total
        performed = 0
        for _ in range(self.x * self.x):
            added = self.super_iteration()
            performed += 1
            if added == 0 and not self.strict:
                break
        sigma = self.current_partition()
        clip = max_provable_layer(self.x, self.beta)
        proof_layers = {
            u: lay
            for u, lay in sigma.layers.items()
            if lay != INFINITY and lay <= clip
        }
        proof = PartialBetaPartition(proof_layers)
        layer = proof.layer(self.root)
        edges_seen = (
            sum(
                sum(1 for w in nbrs if w in self._adjacency)
                for nbrs in self._adjacency.values()
            )
            // 2
        )
        return CoinGameResult(
            root=self.root,
            layer=layer,
            proof=proof,
            explored=set(self._adjacency),
            super_iterations=performed,
            queries=self.oracle.stats.total - start_queries,
            edges_seen=edges_seen,
        )
