"""The (x, β, F)-coin dropping game — Section 4.1, Algorithm 1.

The game is played from the perspective of a single node v.  It maintains a
set S_v of *explored* vertices (full adjacency known), initially {v}.  Each
super-iteration:

1. computes the S_v-induced β-partition σ (Definition 3.6) from the local
   view — possible because σ needs only G[S_v] plus true degrees;
2. computes forwarding sets F(σ, u) (Definition 4.1);
3. drops x coins on v and forwards them: any u ∈ S_v holding x' >= |F(σ,u)|
   coins sends x'/|F(σ,u)| to each member of F(σ, u); coins reaching
   vertices outside S_v stop there;
4. every outside vertex holding coins is explored and added to S_v.

After x² super-iterations (Lemma 4.4) the simulated layer σ_{S_v}(v) equals
the natural layer ℓ_β(v) for every v with |D(ℓ_β, v)| <= x² and
ℓ_β(v) <= log_{β+1} x.

Engineering notes (documented in DESIGN.md):

- Coin amounts are exact rationals represented as *scaled integers*: every
  amount is stored multiplied by ``lcm(1..β+1) ** forward_iterations``.
  Each forwarding step divides by a set size ``|F| <= β+1`` at most once
  per hop, so every division is exact integer division, and the "holds at
  least |F|" / "received > 0" thresholds compare integers — the same exact
  semantics as the seed's :class:`~fractions.Fraction` coins at a fraction
  of the cost (no gcd normalization per op).  Games with a huge forwarding
  horizon (strict mode uses |V| iterations) keep Fraction coins instead,
  where that scale factor would itself be a giant bigint.
- If a super-iteration adds no vertex, S_v is a fixed point (σ and F depend
  only on S_v), so remaining super-iterations are no-ops and we exit early.
  ``strict=True`` disables this and the forwarding-horizon cap below.
- Algorithm 1 forwards for |V| iterations; the progress proof (Lemma 4.2)
  only needs the first wave to travel ceil(log_{β+1} x) hops, so the
  default horizon is a generous multiple of that.  Coins ping-ponging
  inside S_v beyond the horizon cannot add new vertices they would not add
  within it unless they first leave S_v — which the horizon already allows.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field
from fractions import Fraction

from repro.lca.forwarding import forwarding_set
from repro.lca.oracle import GraphOracle
from repro.partition.beta_partition import INFINITY, PartialBetaPartition
from repro.partition.induced import induced_partition_from_view

__all__ = ["CoinGameResult", "CoinDroppingGame", "max_provable_layer"]


@functools.lru_cache(maxsize=256)
def _coin_scale(beta: int, horizon: int) -> int | None:
    """Shared scale for (β, horizon): every game in an LCA round reuses it.

    None means "horizon too deep for a scaled-integer representation" —
    the game keeps Fraction coins instead.
    """
    if horizon > 64:
        return None
    return math.lcm(*range(1, beta + 2)) ** horizon


def max_provable_layer(x: int, beta: int) -> int:
    """floor(log_{β+1} x): the deepest layer the game certifies (Lemma 4.4)."""
    if x < 1:
        raise ValueError("x must be >= 1")
    return int(math.floor(math.log(x) / math.log(beta + 1) + 1e-9)) if x > 1 else 0


@dataclass
class CoinGameResult:
    """Outcome of one full game for a node v."""

    root: int
    layer: float  # certified layer of v, or INFINITY
    proof: PartialBetaPartition  # ℓ_v of Remark 4.8 (clipped to provable layers)
    explored: set[int] = field(default_factory=set)  # final S_v
    super_iterations: int = 0
    queries: int = 0
    edges_seen: int = 0  # |E(G[S_v])| at the end (Lemma 4.6 bound: x^6)


class CoinDroppingGame:
    """Plays the (x, β, F)-coin dropping game for one root node."""

    def __init__(
        self,
        oracle: GraphOracle,
        root: int,
        x: int,
        beta: int,
        strict: bool = False,
        forward_iterations: int | None = None,
    ) -> None:
        if x < 1:
            raise ValueError("x must be >= 1")
        if beta < 1:
            raise ValueError("beta must be >= 1")
        self.oracle = oracle
        self.root = root
        self.x = x
        self.beta = beta
        self.strict = strict
        if forward_iterations is not None:
            self.forward_iterations = forward_iterations
        elif strict:
            self.forward_iterations = oracle.num_vertices
        else:
            # Wave horizon: the Lemma 4.2 path has length <= log_{β+1} x;
            # a 4x-plus-slack multiple keeps us safely past it.
            self.forward_iterations = 4 * (max_provable_layer(x, beta) + 2)
        # Coin scale: amounts are integers counting units of 1/_coin_scale.
        # Any amount after t hops is x divided by t forwarding-set sizes,
        # each <= β+1, and the loop runs <= forward_iterations hops — so
        # lcm(1..β+1)**forward_iterations clears every denominator and all
        # divisions below are exact.  For huge horizons (strict mode sets
        # forward_iterations = |V|) that scale would be an astronomically
        # large bigint, so those games fall back to Fraction coins
        # (_coin_scale = None) — same exact semantics, seed-era speed.
        self._coin_scale = _coin_scale(beta, self.forward_iterations)
        # Explored state: full adjacency list of every vertex in S_v.
        self._adjacency: dict[int, list[int]] = {}
        self._degree: dict[int, int] = {}
        self._explore(root)

    # -- exploration -------------------------------------------------------

    def _explore(self, v: int) -> None:
        neighbors = self.oracle.explore(v)
        self._adjacency[v] = neighbors
        self._degree[v] = len(neighbors)

    def _local_view(self) -> tuple[dict[int, list[int]], dict[int, int]]:
        inside = {
            v: [w for w in nbrs if w in self._adjacency]
            for v, nbrs in self._adjacency.items()
        }
        return inside, dict(self._degree)

    def current_partition(self) -> PartialBetaPartition:
        """σ_{S_v, β} for the current S_v."""
        inside, degrees = self._local_view()
        return induced_partition_from_view(inside, degrees, self.beta)

    @property
    def explored_vertices(self) -> set[int]:
        """The current S_v (copies; safe to mutate)."""
        return set(self._adjacency)

    # -- the game ----------------------------------------------------------

    def super_iteration(self) -> int:
        """One round of Algorithm 1; returns the number of new vertices.

        Exposed for step-by-step inspection (see examples/lca_exploration.py);
        :meth:`run` drives the full game.
        """
        sigma = self.current_partition()
        explored = self._adjacency.keys()
        fsets = {
            u: forwarding_set(nbrs, sigma.layers, explored, self.beta)
            for u, nbrs in self._adjacency.items()
        }
        if self._coin_scale is not None:
            scale = self._coin_scale
            coins = {self.root: self.x * scale}
            divide = int.__floordiv__  # exact: see _coin_scale
        else:
            scale = 1
            coins = {self.root: Fraction(self.x)}
            divide = Fraction.__truediv__
        for _ in range(self.forward_iterations):
            moved = False
            next_coins: dict[int, int | Fraction] = {}
            get = next_coins.get
            for u, amount in coins.items():
                fset = fsets.get(u)
                if fset and amount >= len(fset) * scale:
                    share = divide(amount, len(fset))
                    for w in fset:
                        next_coins[w] = get(w, 0) + share
                    moved = True
                else:
                    # Outside S_v, too few coins, or isolated: coins rest.
                    next_coins[u] = get(u, 0) + amount
            coins = next_coins
            if not moved:
                break
        newcomers = [u for u, amount in coins.items() if u not in self._adjacency and amount > 0]
        for u in sorted(newcomers):
            self._explore(u)
        return len(newcomers)

    def run(self) -> CoinGameResult:
        """Play x² super-iterations (early-exit on fixpoint unless strict)."""
        start_queries = self.oracle.stats.total
        performed = 0
        for _ in range(self.x * self.x):
            added = self.super_iteration()
            performed += 1
            if added == 0 and not self.strict:
                break
        sigma = self.current_partition()
        clip = max_provable_layer(self.x, self.beta)
        proof_layers = {
            u: lay
            for u, lay in sigma.layers.items()
            if lay != INFINITY and lay <= clip
        }
        proof = PartialBetaPartition(proof_layers)
        layer = proof.layer(self.root)
        edges_seen = (
            sum(
                sum(1 for w in nbrs if w in self._adjacency)
                for nbrs in self._adjacency.values()
            )
            // 2
        )
        return CoinGameResult(
            root=self.root,
            layer=layer,
            proof=proof,
            explored=set(self._adjacency),
            super_iterations=performed,
            queries=self.oracle.stats.total - start_queries,
            edges_seen=edges_seen,
        )
