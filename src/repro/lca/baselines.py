"""Exploration strategies that *fail* on skewed dependency graphs (§2.1).

The paper motivates its adaptive forwarding rule by showing three natural
strategies break: DFS can dive outside the dependency graph, BFS drowns in
a single high-degree neighbor, and naive volume-based coin dropping (split
coins equally over *all* neighbors) exhausts its budget within ~log_fan(x)
hops of a fan-heavy chain.  We implement all three under the same probe
accounting so experiment F2 can measure exactly how much of D(ℓ_β, v) each
discovers per query spent.
"""

from __future__ import annotations

import math
from collections import deque
from fractions import Fraction

from repro.lca.oracle import GraphOracle

__all__ = ["bfs_explore", "dfs_explore", "naive_coin_explore"]

# Once the shared denominator of the scaled-integer coins outgrows this
# many bits, amounts convert (exactly) to Fractions: resting holders would
# otherwise be multiplied by an ever-growing lcm every iteration.
_SCALE_BIT_CAP = 4096


def bfs_explore(oracle: GraphOracle, root: int, query_budget: int) -> set[int]:
    """Breadth-first exploration until the probe budget is exhausted.

    Returns the set of fully explored vertices.
    """
    start = oracle.stats.total
    explored: set[int] = set()
    queue = deque([root])
    enqueued = {root}
    while queue and oracle.stats.total - start < query_budget:
        v = queue.popleft()
        explored.add(v)
        for w in oracle.explore(v):
            if w not in enqueued:
                enqueued.add(w)
                queue.append(w)
    return explored


def dfs_explore(oracle: GraphOracle, root: int, query_budget: int) -> set[int]:
    """Depth-first exploration until the probe budget is exhausted."""
    start = oracle.stats.total
    explored: set[int] = set()
    stack = [root]
    on_stack = {root}
    while stack and oracle.stats.total - start < query_budget:
        v = stack.pop()
        if v in explored:
            continue
        explored.add(v)
        # Push neighbors in reverse id order so low ids are explored first,
        # mirroring an adversarially arbitrary adjacency-list order.
        for w in reversed(oracle.explore(v)):
            if w not in explored and w not in on_stack:
                on_stack.add(w)
                stack.append(w)
    return explored


def naive_coin_explore(
    oracle: GraphOracle, root: int, x: int, max_iterations: int | None = None
) -> set[int]:
    """§2.1's naive volume-based coin dropping (the strawman).

    Every explored vertex holding x' >= deg coins forwards x'/deg coins to
    *each* neighbor — no σ-guidance, no β-sized forwarding set.  Vertices
    that receive a coin get explored on arrival, and the process repeats
    until coins can no longer be divided.  On skewed gadgets the coins are
    spent after ~log_fan(x) chain hops (Figure 2b).

    Coin amounts are exact rationals represented as *scaled integers*
    (the representation the coin game itself adopted): every amount is an
    integer count of ``1/scale`` units, and each iteration multiplies
    ``scale`` by the lcm of this iteration's forwarding degrees so all
    divisions stay exact.  Same dynamics as the seed's
    :class:`~fractions.Fraction` coins — kept verbatim below as
    :func:`_naive_coin_explore_fractions`, the cross-check oracle — minus
    a gcd normalization per arithmetic op.  Long-circulating runs grow
    the shared scale, so once it passes :data:`_SCALE_BIT_CAP` bits the
    amounts convert exactly to Fractions mid-run (the counterpart of the
    coin game's Fraction fallback for horizons past
    :data:`repro.lca.coin_game.INT_COIN_HORIZON_CAP`).
    """
    if max_iterations is None:
        max_iterations = oracle.num_vertices
    explored: set[int] = set()
    adjacency: dict[int, list[int]] = {}

    def explore(v: int) -> None:
        adjacency[v] = oracle.explore(v)
        explored.add(v)

    explore(root)
    scale = 1
    coins: dict[int, int | Fraction] = {root: x}
    scaled = True  # False once amounts have converted to Fractions
    for _ in range(max_iterations):
        if scaled and scale.bit_length() > _SCALE_BIT_CAP:
            coins = {u: Fraction(amount, scale) for u, amount in coins.items()}
            scale = 1
            scaled = False
        # A holder forwards iff its true amount covers one coin per
        # neighbor: amount/scale >= deg, i.e. amount >= deg * scale.
        forward_degrees = [
            len(nbrs)
            for u, amount in coins.items()
            if (nbrs := adjacency.get(u)) and amount >= len(nbrs) * scale
        ]
        if not forward_degrees:
            break  # matches the oracle: nothing moved, coins are stuck
        rescale = math.lcm(*forward_degrees) if scaled else 1
        next_coins: dict[int, int | Fraction] = {}
        for u, amount in coins.items():
            nbrs = adjacency.get(u)
            if nbrs and amount >= len(nbrs) * scale:
                if scaled:
                    share = amount * (rescale // len(nbrs))  # exact by lcm
                else:
                    share = amount / len(nbrs)
                for w in nbrs:
                    next_coins[w] = next_coins.get(w, 0) + share
            else:
                next_coins[u] = next_coins.get(u, 0) + amount * rescale
        scale *= rescale
        coins = next_coins
        for u in sorted(coins):
            if coins[u] > 0 and u not in explored:
                explore(u)
    return explored


def _naive_coin_explore_fractions(
    oracle: GraphOracle, root: int, x: int, max_iterations: int | None = None
) -> set[int]:
    """The seed Fraction-coin implementation (equivalence oracle)."""
    if max_iterations is None:
        max_iterations = oracle.num_vertices
    explored: set[int] = set()
    adjacency: dict[int, list[int]] = {}

    def explore(v: int) -> None:
        adjacency[v] = oracle.explore(v)
        explored.add(v)

    explore(root)
    coins: dict[int, Fraction] = {root: Fraction(x)}
    for _ in range(max_iterations):
        moved = False
        next_coins: dict[int, Fraction] = {}
        for u, amount in coins.items():
            nbrs = adjacency.get(u)
            if nbrs and amount >= len(nbrs):
                share = amount / len(nbrs)
                for w in nbrs:
                    next_coins[w] = next_coins.get(w, Fraction(0)) + share
                moved = True
            else:
                next_coins[u] = next_coins.get(u, Fraction(0)) + amount
        coins = next_coins
        for u in sorted(coins):
            if coins[u] > 0 and u not in explored:
                explore(u)
        if not moved:
            break
    return explored
