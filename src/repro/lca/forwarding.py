"""Forwarding sets — Definition 4.1 — the game's adaptive steering rule.

``F(σ, u)`` is any ``min(deg(u), β+1)`` neighbors of u with the *highest*
σ-layers, where unexplored or unlayered neighbors count as ∞.  The paper
leaves ties among ∞-neighbors free ("a node can forward the coins to any
such β+1 neighbors"); we break them deterministically, preferring
*unexplored* neighbors (they are the ones that grow S_v) and then lower
vertex ids.  Experiments E1/F2 exercise both this rule and the naive
alternatives it replaces.
"""

from __future__ import annotations

from typing import Container, Mapping, Sequence

from repro.partition.beta_partition import INFINITY

__all__ = ["forwarding_set"]


def forwarding_set(
    neighbors: Sequence[int],
    layers: Mapping[int, float],
    explored: Container[int],
    beta: int,
) -> list[int]:
    """Choose the forwarding set for a node with the given neighbors.

    ``layers`` supplies σ-values for explored vertices (missing = ∞);
    ``explored`` distinguishes known-∞ vertices from never-seen ones for
    tie-breaking only.
    """
    want = min(len(neighbors), beta + 1)
    if want == len(neighbors):
        return list(neighbors)

    def sort_key(w: int) -> tuple[float, int, int]:
        layer = layers.get(w, INFINITY)
        # Highest layer first; among equals prefer unexplored, then low id.
        return (-layer if layer != INFINITY else float("-inf"), w in explored, w)

    return sorted(neighbors, key=sort_key)[:want]
