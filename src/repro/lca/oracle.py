"""Query-access oracle for LCA algorithms (the model of [RTVX11]).

An LCA may ask two kinds of probes about the input graph:

- ``degree(v)`` — the degree of v;
- ``neighbor(v, i)`` — the i-th entry of v's adjacency list.

The oracle counts both so experiments can verify Lemma 4.7's query bound.
``explore(v)`` is the common composite: learn v's full adjacency list
(1 degree probe + deg(v) neighbor probes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.graph import Graph

__all__ = ["GraphOracle", "QueryStats"]


@dataclass
class QueryStats:
    """Probe counters for one LCA invocation."""

    degree_probes: int = 0
    neighbor_probes: int = 0

    @property
    def total(self) -> int:
        """All probes combined."""
        return self.degree_probes + self.neighbor_probes

    def reset(self) -> None:
        """Zero the counters."""
        self.degree_probes = 0
        self.neighbor_probes = 0


class GraphOracle:
    """Probe-counting wrapper around a :class:`Graph`.

    A fresh oracle (or a :meth:`reset`) starts a new accounting period; the
    per-node query bound of Lemma 4.7 applies to one period.
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self.stats = QueryStats()

    @property
    def num_vertices(self) -> int:
        """Number of vertices (global knowledge: n is public in the model)."""
        return self._graph.num_vertices

    def degree(self, v: int) -> int:
        """Degree probe."""
        self.stats.degree_probes += 1
        return self._graph.degree(v)

    def neighbor(self, v: int, i: int) -> int:
        """Adjacency-list probe."""
        self.stats.neighbor_probes += 1
        return self._graph.neighbor(v, i)

    def explore(self, v: int) -> list[int]:
        """Learn v's entire neighborhood (deg + adjacency probes)."""
        deg = self.degree(v)
        return [self.neighbor(v, i) for i in range(deg)]

    def reset(self) -> None:
        """Start a new accounting period."""
        self.stats.reset()
