"""The sublinear LCA for partial β-partitions — Lemma 4.7 / Remark 4.8.

When queried about a vertex v, the LCA plays the (x, β, F)-coin dropping
game from v and outputs

- ``layer(v)`` — the S_v-induced layer of v clipped to the provable range
  ``[0, log_{β+1} x]`` (∞ otherwise), and
- a *proof* ℓ_v: a partial β-partition on the explored subgraph that any
  third party can merge with other proofs via pointwise minimum
  (Lemma 4.10) to obtain a globally consistent partial β-partition.

Guarantees (Lemma 4.7): at most x⁶ queries per invocation, and the set of
vertices receiving finite layers covers at least a
``1 - 2^{1 - log x / log_{β/2α}(β+1)}`` fraction of V whenever
β >= (2+ε)α.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.graph import Graph
from repro.lca.coin_game import CoinDroppingGame, CoinGameResult, max_provable_layer
from repro.lca.oracle import GraphOracle
from repro.partition.beta_partition import PartialBetaPartition, merge_min

__all__ = ["PartialPartitionLCA", "lca_success_fraction_bound"]


def lca_success_fraction_bound(x: int, beta: int, alpha: int) -> float:
    """Lemma 4.7's guaranteed fraction of layered vertices.

    Returns ``max(0, 1 - 2^{1 - log x / log_{β/2α}(β+1)})``; the logs are
    base 2 (the paper's exponent is unit-free, any common base works).
    """
    import math

    if beta <= 2 * alpha:
        return 0.0
    log_ratio = math.log(beta + 1) / math.log(beta / (2 * alpha))
    exponent = 1 - math.log2(x) / log_ratio
    return max(0.0, 1.0 - 2.0**exponent)


@dataclass
class PartialPartitionLCA:
    """Stateless per-vertex LCA; ``query(v)`` is independent across v.

    Parameters mirror Lemma 4.7: exploration budget parameter ``x`` (the
    query bound is x⁶) and degree bound ``beta``.
    """

    graph: Graph
    x: int
    beta: int
    strict: bool = False

    def query(self, v: int) -> CoinGameResult:
        """Answer an LCA query about vertex v (fresh probe accounting)."""
        oracle = GraphOracle(self.graph)
        game = CoinDroppingGame(
            oracle, v, self.x, self.beta, strict=self.strict
        )
        return game.run()

    def query_all(self, vertices=None) -> tuple[PartialBetaPartition, dict[int, CoinGameResult]]:
        """Query every vertex and min-merge the proofs (Remark 4.8).

        Returns the merged partial β-partition λ(v) = min_u ℓ_u(v) and the
        per-vertex results.  The merge is what the AMPC algorithm of
        Theorem 1.2 performs inside the distributed data store.
        """
        if vertices is None:
            vertices = self.graph.vertices()
        results = {v: self.query(v) for v in vertices}
        merged = merge_min([r.proof for r in results.values()])
        return merged, results

    @property
    def max_layer(self) -> int:
        """Deepest certifiable layer, floor(log_{β+1} x)."""
        return max_provable_layer(self.x, self.beta)
