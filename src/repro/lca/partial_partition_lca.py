"""The sublinear LCA for partial β-partitions — Lemma 4.7 / Remark 4.8.

When queried about a vertex v, the LCA plays the (x, β, F)-coin dropping
game from v and outputs

- ``layer(v)`` — the S_v-induced layer of v clipped to the provable range
  ``[0, log_{β+1} x]`` (∞ otherwise), and
- a *proof* ℓ_v: a partial β-partition on the explored subgraph that any
  third party can merge with other proofs via pointwise minimum
  (Lemma 4.10) to obtain a globally consistent partial β-partition.

Guarantees (Lemma 4.7): at most x⁶ queries per invocation, and the set of
vertices receiving finite layers covers at least a
``1 - 2^{1 - log x / log_{β/2α}(β+1)}`` fraction of V whenever
β >= (2+ε)α.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.lca.coin_game import (
    CoinDroppingGame,
    CoinGameResult,
    fixed_coin_scale,
    max_provable_layer,
)
from repro.lca.oracle import GraphOracle
from repro.partition.beta_partition import PartialBetaPartition, merge_min

__all__ = ["PartialPartitionLCA", "lca_success_fraction_bound"]


def lca_success_fraction_bound(x: int, beta: int, alpha: int) -> float:
    """Lemma 4.7's guaranteed fraction of layered vertices.

    Returns ``max(0, 1 - 2^{1 - log x / log_{β/2α}(β+1)})``; the logs are
    base 2 (the paper's exponent is unit-free, any common base works).
    """
    import math

    if beta <= 2 * alpha:
        return 0.0
    log_ratio = math.log(beta + 1) / math.log(beta / (2 * alpha))
    exponent = 1 - math.log2(x) / log_ratio
    return max(0.0, 1.0 - 2.0**exponent)


@dataclass
class PartialPartitionLCA:
    """Stateless per-vertex LCA; ``query(v)`` is independent across v.

    Parameters mirror Lemma 4.7: exploration budget parameter ``x`` (the
    query bound is x⁶) and degree bound ``beta``.  ``engine`` selects how
    :meth:`query_all` executes its queries: ``"batched"`` (the default)
    runs every game in one lockstep sweep over the graph's CSR
    (:mod:`repro.core.batched_games` — the same kernels the Theorem 1.2
    lca rounds run), ``"compiled"`` plays each cohort in one fused C
    pass (:mod:`repro.core.native`; warned downgrade to ``"batched"``
    when the kernel cannot load), ``"scalar"`` replays the per-vertex
    :class:`~repro.lca.coin_game.CoinDroppingGame` oracle.  All produce
    identical results — layers, proofs, explored sets, probe counts —
    and strict-mode queries always take the scalar path (its unbounded
    forwarding horizon is the oracle's own regime).
    """

    graph: Graph
    x: int
    beta: int
    strict: bool = False
    engine: str = "batched"
    # Incremental-replay counters of the most recent batched
    # :meth:`query_all` sweep (replayed_waves / fresh_waves /
    # replayed_entries / fresh_entries / redo_games plus the derived
    # cone_fraction); None until a batched sweep ran.  E1/F2 plot these
    # against graph shape.
    last_replay_stats: dict | None = None

    def __post_init__(self) -> None:
        if self.engine not in ("batched", "compiled", "scalar"):
            raise ValueError(
                'engine must be "batched", "compiled" or "scalar"'
            )
        if self.engine == "compiled":
            from repro.core import native

            if not native.available():
                native.warn_fallback("PartialPartitionLCA")
                self.engine = "batched"

    def query(self, v: int) -> CoinGameResult:
        """Answer an LCA query about vertex v (fresh probe accounting)."""
        oracle = GraphOracle(self.graph)
        game = CoinDroppingGame(
            oracle, v, self.x, self.beta, strict=self.strict
        )
        return game.run()

    def query_all(self, vertices=None) -> tuple[PartialBetaPartition, dict[int, CoinGameResult]]:
        """Query every vertex and min-merge the proofs (Remark 4.8).

        Returns the merged partial β-partition λ(v) = min_u ℓ_u(v) and the
        per-vertex results.  The merge is what the AMPC algorithm of
        Theorem 1.2 performs inside the distributed data store.
        """
        if vertices is None:
            vertices = self.graph.vertices()
        vertices = list(vertices)
        if (
            self.engine in ("batched", "compiled")
            and not self.strict and vertices
        ):
            return self._query_all_batched(vertices)
        results = {v: self.query(v) for v in vertices}
        merged = merge_min([r.proof for r in results.values()])
        return merged, results

    def _query_all_batched(
        self, vertices: list[int]
    ) -> tuple[PartialBetaPartition, dict[int, CoinGameResult]]:
        """All queries as one lockstep sweep (byte-identical results).

        The per-game records carry the explored set in exploration order
        and the clipped proof, so full :class:`CoinGameResult` objects
        come back out; the min-merge falls out of the engine's layer
        fold.  Games run in the same cache-resident game-index cohorts
        as the round kernel (:data:`repro.core.columnar_rounds.
        COHORT_GAMES`), and games the engine ejects (coin-scale
        overflow) replay through the scalar oracle — exactly the game
        the scalar path would have run.
        """
        from repro.core.batched_games import (
            csr_transpose_positions,
            play_games_batched,
            replay_cone_fraction,
        )
        from repro.core.columnar_rounds import COHORT_GAMES

        offsets, targets = self.graph.csr()
        n = self.graph.num_vertices
        clip = self.max_layer
        horizon = 4 * (clip + 2)
        scale = fixed_coin_scale(self.beta, horizon)
        out_layer = np.full(n, float("inf"))
        out_count = np.zeros(n, dtype=np.int64)
        roots = np.asarray(vertices, dtype=np.int64)
        if self.engine == "compiled":
            from repro.core.native import play_games_compiled

            play_cohort = play_games_compiled
            transpose_pos = None
        else:
            play_cohort = play_games_batched
            transpose_pos = csr_transpose_positions(offsets, targets)
        records: list = []
        super_iterations: list[np.ndarray] = []
        edges_seen: list[np.ndarray] = []
        ejected: set[int] = set()
        replay_stats: dict = {}
        for start in range(0, len(roots), COHORT_GAMES):
            block = play_cohort(
                offsets, targets, roots[start:start + COHORT_GAMES],
                x=self.x, beta=self.beta, clip=clip, horizon=horizon,
                scale=scale, out_layer=out_layer, out_count=out_count,
                want_records=True, transpose_pos=transpose_pos,
                replay_stats=replay_stats,
            )
            records.extend(block.records)
            super_iterations.append(block.super_iterations)
            edges_seen.append(block.edges_seen)
            ejected.update((block.ejected + start).tolist())
        replay_stats["cone_fraction"] = replay_cone_fraction(replay_stats)
        self.last_replay_stats = replay_stats
        all_super_iterations = np.concatenate(super_iterations)
        all_edges_seen = np.concatenate(edges_seen)
        # CoinGameResult.queries starts counting *after* the game's
        # constructor explored the root (Lemma 4.7 charges per query);
        # the engine's reads include that first exploration, as the AMPC
        # machine accounting does.
        root_probes = 1 + np.diff(offsets)[roots]
        results: dict[int, CoinGameResult] = {}
        for i, v in enumerate(vertices):
            if i in ejected:
                res = self.query(v)
                for u, lay in res.proof.layers.items():
                    if lay < out_layer[u]:
                        out_layer[u] = lay
                results[v] = res
                continue
            members, proof_entries, game_reads, __ = records[i]
            proof = PartialBetaPartition(dict(proof_entries))
            results[v] = CoinGameResult(
                root=v,
                layer=proof.layer(v),
                proof=proof,
                explored=set(members),
                super_iterations=int(all_super_iterations[i]),
                queries=game_reads - int(root_probes[i]),
                edges_seen=int(all_edges_seen[i]),
            )
        assigned = np.flatnonzero(np.isfinite(out_layer))
        merged = PartialBetaPartition(
            {int(u): int(out_layer[u]) for u in assigned}
        )
        return merged, results

    @property
    def max_layer(self) -> int:
        """Deepest certifiable layer, floor(log_{β+1} x)."""
        return max_provable_layer(self.x, self.beta)
