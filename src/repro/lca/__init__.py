"""Sublinear LCA for partial β-partitions (Section 4) plus baselines."""

from repro.lca.baselines import bfs_explore, dfs_explore, naive_coin_explore
from repro.lca.coin_game import CoinDroppingGame, CoinGameResult, max_provable_layer
from repro.lca.forwarding import forwarding_set
from repro.lca.oracle import GraphOracle, QueryStats
from repro.lca.partial_partition_lca import (
    PartialPartitionLCA,
    lca_success_fraction_bound,
)

__all__ = [
    "CoinDroppingGame",
    "CoinGameResult",
    "GraphOracle",
    "PartialPartitionLCA",
    "QueryStats",
    "bfs_explore",
    "dfs_explore",
    "forwarding_set",
    "lca_success_fraction_bound",
    "max_provable_layer",
    "naive_coin_explore",
]
