"""The paper's core AMPC contributions: Theorem 1.2 and Lemma 5.1."""

from repro.core.beta_partition_ampc import (
    BetaPartitionOutcome,
    beta_partition_ampc,
    default_game_budget,
)
from repro.core.guessing import GuessedPartitionOutcome, beta_partition_unknown_alpha
from repro.core.orientation import Orientation, orient_by_partition

__all__ = [
    "BetaPartitionOutcome",
    "GuessedPartitionOutcome",
    "Orientation",
    "beta_partition_ampc",
    "beta_partition_unknown_alpha",
    "default_game_budget",
    "orient_by_partition",
]
