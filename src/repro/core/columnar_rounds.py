"""Columnar round kernels for Theorem 1.2 — batched machine execution.

This module is the array-native engine behind
:func:`repro.core.beta_partition_ampc.beta_partition_ampc`'s columnar
path.  It replaces three per-element Python walks of the dict-backed
path with bulk kernels, while reproducing its observable behavior —
assignments, round counts, per-machine read/write counts, store words —
*exactly* (the equivalence tests in ``tests/test_core_beta_partition_ampc``
assert this against the dict-backed oracle):

- :func:`residual_csr` — the residual graph G_i = G[alive] as one
  alive-mask gather over the frozen CSR core, instead of the per-edge
  ``_residual_store_pairs`` generator;
- :func:`peel_round_kernel` — the Barenboim-Elkin peel as a degree-mask
  array kernel (every machine: one deg read, one conditional layer write);
- :func:`lca_round_kernel` — one machine per alive vertex playing the
  (x, β, F)-coin dropping game against the store's columns.  The game
  itself (:func:`play_coin_game`) is a re-derivation of
  :class:`repro.lca.coin_game.CoinDroppingGame` specialized for the
  store-backed oracle: identical exploration order, coin arithmetic
  (exact scaled integers, Fraction fallback for deep horizons), proofs,
  and probe counts, with three exactness-preserving shortcuts:

  1. σ_{S_v} is computed lazily — forwarding sets of vertices with at
     most β+1 neighbors do not depend on σ (Definition 4.1 takes all
     neighbors), so the per-super-iteration peel runs only when a
     high-degree vertex must actually rank its neighbors, and once for
     the final proof;
  2. coins resting *outside* S_v never move again (their holders have no
     forwarding set), so the engine tracks outside holders as a touched
     set instead of carrying their exact amounts — the newcomer set is
     identical because every delivered share is positive;
  3. forwarding happens over a worklist of vertices whose amount changed
     (a vertex below its threshold stays below it until it receives), so
     an iteration costs O(#forwarders + #shares), not O(#holders).
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.ampc.machine import BatchMachineContext
from repro.graphs.graph import Graph
from repro.lca.coin_game import _coin_scale, max_provable_layer

__all__ = [
    "lca_round_kernel",
    "peel_round_kernel",
    "play_coin_game",
    "residual_adjacency_lists",
    "residual_csr",
]

_INF = float("inf")


def residual_csr(
    graph: Graph, alive: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """CSR of G[alive] over the full vertex universe (dead rows empty).

    Vertex ids are preserved (no remapping), matching the
    ``("adj", v, j)`` encoding of Theorem 1.2's proof.  One vectorized
    gather + mask instead of a per-edge Python filter.
    """
    n = graph.num_vertices
    if len(alive) == n:
        return graph.csr()
    mask = np.zeros(n, dtype=bool)
    mask[alive] = True
    nbrs, boundaries = graph.neighbors_of(alive)
    keep = mask[nbrs]
    targets = nbrs[keep]
    kept = np.zeros(len(nbrs) + 1, dtype=np.int64)
    np.cumsum(keep, out=kept[1:])
    counts = kept[boundaries[1:]] - kept[boundaries[:-1]]
    degrees = np.zeros(n, dtype=np.int64)
    degrees[alive] = counts
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    return offsets, targets


def residual_adjacency_lists(
    offsets: np.ndarray, targets: np.ndarray, alive: np.ndarray
) -> list[list[int] | None]:
    """Python adjacency lists over a residual CSR (None for dead rows).

    The coin-game engine probes adjacency millions of times per round;
    list slices of a pre-converted flat list beat per-probe numpy
    indexing by an order of magnitude.
    """
    flat = targets.tolist()
    offs = offsets.tolist()
    adj: list[list[int] | None] = [None] * (len(offsets) - 1)
    for v in alive.tolist():
        adj[v] = flat[offs[v]:offs[v + 1]]
    return adj


def peel_round_kernel(batch: BatchMachineContext, beta: int) -> None:
    """One Barenboim-Elkin peel round as an array kernel.

    Machine M_v reads its residual degree (one probe) and writes
    ``("layer", v) <- 0`` when deg <= β.  The layer column is min-folded
    on write, so the round's ``reducer=min`` is a no-op by construction.
    """
    alive = batch.machine_ids
    offsets, __ = batch.previous.adjacency_csr()
    degs = offsets[alive + 1] - offsets[alive]
    assigned = alive[degs <= beta]
    batch.target.fold_layer_proposals(assigned, np.zeros(len(assigned)))
    reads = np.ones(len(alive), dtype=np.int64)
    writes = (degs <= beta).astype(np.int64)
    batch.account(reads, writes)


def lca_round_kernel(batch: BatchMachineContext, beta: int, x: int) -> None:
    """One LCA round: every alive machine plays the coin game.

    Proof layers are min-folded into the target's layer column as each
    game finishes (the DDS-side merge of Remark 4.8 + Lemma 4.10); probe
    and write counts are accounted per machine, exactly as the scalar
    :class:`~repro.ampc.machine.MachineContext` would have charged them.
    """
    alive = batch.machine_ids
    offsets, targets = batch.previous.adjacency_csr()
    adj = residual_adjacency_lists(offsets, targets, alive)
    n = len(adj)
    clip = max_provable_layer(x, beta)
    horizon = 4 * (clip + 2)
    scale = _coin_scale(beta, horizon)
    out_layer = [_INF] * n
    out_count = [0] * n
    reads = np.zeros(len(alive), dtype=np.int64)
    writes = np.zeros(len(alive), dtype=np.int64)
    for i, v in enumerate(alive.tolist()):
        reads[i], writes[i] = play_coin_game(
            adj, v, x, beta, clip, horizon, scale, out_layer, out_count
        )
    minima = np.array(out_layer)
    counts = np.asarray(out_count, dtype=np.int64)
    batch.target.install_layer_column(minima, counts)
    batch.account(reads, writes)


def play_coin_game(
    adj: list[list[int] | None],
    root: int,
    x: int,
    beta: int,
    clip: int,
    horizon: int,
    scale: int | None,
    out_layer: list[float],
    out_count: list[int],
) -> tuple[int, int]:
    """Play one (x, β, F)-coin dropping game against residual adjacency.

    Mirrors :class:`repro.lca.coin_game.CoinDroppingGame` exactly (same
    S_v evolution, same proof, same probe counts — see the module
    docstring for the three exactness-preserving shortcuts), folding the
    clipped proof into ``out_layer``/``out_count`` and returning the
    machine's ``(reads, writes)``.
    """
    bp1 = beta + 1
    inside: dict[int, list[int]] = {}
    inside_get = inside.get
    # Forwarding-set records (inside split, outside split, |F|, threshold),
    # persisted across super-iterations and patched as S_v grows; records
    # whose F required a σ-ranking are invalidated instead (σ changed).
    recs: dict[int, tuple[list[int], set[int], int, object]] = {}
    recs_get = recs.get
    sigma_recs: list[int] = []

    def explore(u: int) -> None:
        ins = []
        for w in adj[u]:
            il = inside_get(w)
            if il is not None:
                il.append(u)
                ins.append(w)
                rec = recs_get(w)
                if rec is not None:
                    out_m = rec[1]
                    if u in out_m:
                        # u crossed into S_v; splits are unordered (share
                        # addition commutes, touched is a set).
                        out_m.discard(u)
                        rec[0].append(u)
        inside[u] = ins

    explore(root)
    reads = 1 + len(adj[root])

    if scale is not None:
        start_amount: object = x * scale
        int_coins = True
    else:
        start_amount = Fraction(x)
        int_coins = False

    sigma: dict[int, float] | None = None
    grew = True
    for __ in range(x * x):
        sigma = None  # S_v changed since the last super-iteration
        if sigma_recs:
            for u in sigma_recs:
                del recs[u]
            sigma_recs = []
        coins: dict[int, object] = {root: start_amount}
        hot: tuple[int, ...] | set[int] = (root,)
        touched: set[int] = set()
        for __h in range(horizon):
            fwds = None
            for u in hot:
                rec = recs_get(u)
                if rec is None:
                    nbrs = adj[u]
                    if len(nbrs) <= bp1:
                        fset = nbrs
                    else:
                        if sigma is None:
                            sigma = _induced_sigma(inside, adj, beta)
                        sg = sigma.get

                        def key(w: int):
                            lay = sg(w, _INF)
                            return (
                                -lay if lay != _INF else float("-inf"),
                                w in inside,
                                w,
                            )

                        fset = sorted(nbrs, key=key)[:bp1]
                        sigma_recs.append(u)
                    ins_m: list[int] = []
                    out_m: set[int] = set()
                    for w in fset:
                        if w in inside:
                            ins_m.append(w)
                        else:
                            out_m.add(w)
                    k = len(fset)
                    rec = (ins_m, out_m, k, k * scale if int_coins else k)
                    recs[u] = rec
                amount = coins[u]
                if rec[2] and amount >= rec[3]:
                    if fwds is None:
                        fwds = [(u, amount, rec)]
                    else:
                        fwds.append((u, amount, rec))
            if fwds is None:
                break  # nothing can move: a fixed point for this horizon
            new_hot: set[int] = set()
            new_hot_add = new_hot.add
            for u, amount, rec in fwds:
                share = amount // rec[2] if int_coins else amount / rec[2]
                coins[u] -= amount
                for w in rec[0]:
                    if w in coins:
                        coins[w] += share
                    else:
                        coins[w] = share
                    new_hot_add(w)
                out_m = rec[1]
                if out_m:
                    touched.update(out_m)
            hot = new_hot
        if not touched:
            grew = False
            break
        for u in sorted(touched):
            explore(u)
            reads += 1 + len(adj[u])
    if grew or sigma is None:
        sigma = _induced_sigma(inside, adj, beta)
    writes = 0
    for u, lay in sigma.items():
        if lay <= clip:  # ∞ never passes; proofs are clipped (Lemma 4.4)
            writes += 1
            if lay < out_layer[u]:
                out_layer[u] = lay
            out_count[u] += 1
    return reads, writes


def _induced_sigma(
    inside: dict[int, list[int]], adj: list[list[int] | None], beta: int
) -> dict[int, float]:
    """σ_{S_v,β} by synchronous peeling of the incrementally-kept view.

    Semantics of :func:`repro.partition.induced.induced_partition_from_view`
    with the adjacency-closure validation elided (the engine builds the
    closed view itself) and true degrees read off the residual lists.
    """
    sigma = dict.fromkeys(inside, _INF)
    inf_count = {}
    frontier = []
    for u in inside:
        d = len(adj[u])
        if d <= beta:
            frontier.append(u)
        else:
            inf_count[u] = d
    layer_index = 0
    while frontier:
        nxt = []
        for u in frontier:
            sigma[u] = layer_index
        for u in frontier:
            for w in inside[u]:
                if sigma[w] == _INF:
                    c = inf_count[w] - 1
                    inf_count[w] = c
                    if c == beta:
                        nxt.append(w)
        frontier = nxt
        layer_index += 1
    return sigma
