"""Columnar round kernels for Theorem 1.2 — batched machine execution.

This module is the array-native engine behind
:func:`repro.core.beta_partition_ampc.beta_partition_ampc`'s columnar
path.  It replaces three per-element Python walks of the dict-backed
path with bulk kernels, while reproducing its observable behavior —
assignments, round counts, per-machine read/write counts, store words —
*exactly* (the equivalence tests in ``tests/test_core_beta_partition_ampc``
and ``tests/test_parallel_equivalence`` assert this against the
dict-backed oracle):

- :func:`residual_csr` — the residual graph G_i = G[alive] as one
  alive-mask gather over the frozen CSR core, instead of the per-edge
  ``_residual_store_pairs`` generator;
- :func:`peel_round_kernel` — the Barenboim-Elkin peel as a degree-mask
  array kernel (every machine: one deg read, one conditional layer write);
- :func:`lca_round_kernel` — one machine per alive vertex playing the
  (x, β, F)-coin dropping game against the store's columns.  The game
  itself (:func:`play_coin_game`) is a re-derivation of
  :class:`repro.lca.coin_game.CoinDroppingGame` specialized for the
  store-backed oracle: identical exploration order, coin arithmetic
  (fixed-scale exact integers, Fraction fallback for deep
  horizons), proofs, and probe counts, with three exactness-preserving
  shortcuts:

  1. σ_{S_v} is computed lazily — forwarding sets of vertices with at
     most β+1 neighbors do not depend on σ (Definition 4.1 takes all
     neighbors), so the per-super-iteration peel runs only when a
     high-degree vertex must actually rank its neighbors, and once for
     the final proof;
  2. coins resting *outside* S_v never move again (their holders have no
     forwarding set), so the engine tracks outside holders as a touched
     set instead of carrying their exact amounts — the newcomer set is
     identical because every delivered share is positive;
  3. forwarding happens over a worklist of vertices whose amount changed
     (a vertex below its threshold stays below it until it receives), so
     an iteration costs O(#forwarders + #shares), not O(#holders).

Two scaling layers sit on top of the game engine:

- **Cross-round proof memoization** (:class:`GameCache`).  A game's
  entire transcript — exploration order, coin dynamics, probes, and the
  final proof σ_{S_v} — is a pure function of the residual adjacency
  lists of its final explored set S_v.  Residual graphs only ever *lose*
  vertices between rounds, so ``adj[u]`` is unchanged exactly when u is
  still alive with the same residual degree.  A machine whose cached
  (S_v, degrees) snapshot still matches therefore replays its recorded
  proof and (reads, writes) charge instead of re-running the game —
  bit-identical by construction, including the accounting.
- **Process-pool machine sharding** (:class:`repro.ampc.pool.CoinGamePool`).
  Machines within a round are independent (they all read D_{i-1} only),
  so the fleet shards across worker processes; the kernel folds each
  shard's layer-proposal deltas and per-machine counts back through the
  same min/+ accumulators the serial loop uses, making the result
  independent of shard completion order.
"""

from __future__ import annotations

import time
from fractions import Fraction

import numpy as np

from repro.ampc.machine import BatchMachineContext
from repro.ampc.pool import min_pool_games_for
from repro.core.batched_games import (
    csr_transpose_positions,
    play_games_batched,
)
from repro.graphs.graph import Graph
from repro.lca.coin_game import fixed_coin_scale, max_provable_layer

__all__ = [
    "GameCache",
    "LazyAdjacency",
    "lca_round_kernel",
    "peel_round_kernel",
    "play_coin_game",
    "residual_adjacency_lists",
    "residual_csr",
]

# A game record is the plain tuple
#     (explored, proof, reads, writes)
# where ``explored`` lists the final S_v in exploration order, ``proof``
# the clipped (vertex, layer) proof entries, and reads/writes the
# machine's communication charge.  Plain lists/ints keep record
# construction out of the per-game hot path and make shard pickles
# cheap.  The game transcript is a pure function of the residual degrees
# over S_v at game time; GameCache validates that degree snapshot
# round-over-round, so records need not carry it themselves.

_INF = float("inf")

# Lockstep games run in game-index blocks of this size so each block's
# struct-of-arrays arena stays cache-resident (see
# run_games_batched_with_fallback); a pure throughput knob.
COHORT_GAMES = 8192


def residual_csr(
    graph: Graph, alive: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """CSR of G[alive] over the full vertex universe (dead rows empty).

    Vertex ids are preserved (no remapping), matching the
    ``("adj", v, j)`` encoding of Theorem 1.2's proof.  One vectorized
    gather + mask instead of a per-edge Python filter.
    """
    n = graph.num_vertices
    if len(alive) == n:
        return graph.csr()
    mask = np.zeros(n, dtype=bool)
    mask[alive] = True
    nbrs, boundaries = graph.neighbors_of(alive)
    keep = mask[nbrs]
    targets = nbrs[keep]
    kept = np.zeros(len(nbrs) + 1, dtype=np.int64)
    np.cumsum(keep, out=kept[1:])
    counts = kept[boundaries[1:]] - kept[boundaries[:-1]]
    degrees = np.zeros(n, dtype=np.int64)
    degrees[alive] = counts
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    return offsets, targets


def residual_adjacency_lists(
    offsets: np.ndarray, targets: np.ndarray, alive: np.ndarray | None = None
) -> list[list[int] | None]:
    """Python adjacency lists over a residual CSR (None for dead rows).

    The coin-game engine probes adjacency millions of times per round;
    list slices of a pre-converted flat list beat per-probe numpy
    indexing by an order of magnitude.  ``alive=None`` converts every
    row (dead rows become empty lists — they are never probed, because
    residual targets only ever point at alive vertices); pool workers
    use that form so shard payloads need not carry the alive set.
    """
    flat = targets.tolist()
    offs = offsets.tolist()
    if alive is None:
        return [flat[offs[v]:offs[v + 1]] for v in range(len(offsets) - 1)]
    adj: list[list[int] | None] = [None] * (len(offsets) - 1)
    for v in alive.tolist():
        adj[v] = flat[offs[v]:offs[v + 1]]
    return adj


class GameCache:
    """Cross-round S_v/σ memoization for the coin games of one partition.

    Rounds only remove vertices from the residual graph, so a vertex u's
    residual adjacency list is unchanged between rounds iff u is still
    alive and its residual degree is unchanged (filtered CSR order is
    stable under deletions elsewhere).  A cached game is valid when that
    holds for every member of its explored set — equivalently, when the
    round's *invalidation cone* (the vertices whose residual row changed:
    everything assigned last round plus its still-alive neighbors) does
    not intersect the record's explored ball.  :meth:`lookup_all`
    evaluates that cone test for the whole fleet in one vectorized sweep
    over the concatenated member arenas of the candidate records — the
    arena payload each record carries since the engines produce them —
    instead of a per-member Python scan per machine.

    Records do not snapshot degrees themselves.  Every live record is
    either looked up or evicted in every round (its root is alive or
    assigned), and an invalid record is dropped on sight — so validating
    "this round's degrees == last round's degrees on S_v" against one
    shared per-round view (:meth:`advance`) chains transitively back to
    the game-time view.

    The cache arms itself only after the first round: round-1 records
    could not be consulted before round 2 anyway, and the first round is
    the bulk of the work in shallow instances (a single-round partition
    pays zero recording overhead), so the warm-up costs at most one
    round of potential replays on deep instances.
    """

    def __init__(self) -> None:
        self._records: dict[int, tuple] = {}
        self._member_arenas: dict[int, np.ndarray] = {}
        self._proof_arrays: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._prev_degrees = None
        self.armed = False  # becomes True after the first lca round
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._records)

    def _drop(self, root: int) -> None:
        del self._records[root]
        self._member_arenas.pop(root, None)
        self._proof_arrays.pop(root, None)

    def lookup(
        self, root: int, alive_flags: list[bool], degrees: list[int]
    ) -> tuple | None:
        """The valid record for ``root``, or None (stale records drop).

        Scalar counterpart of :meth:`lookup_all` (kept for single-probe
        callers and as executable documentation of the validity rule):
        ``alive_flags``/``degrees`` are indexable views over the vertex
        universe, scanned with early exit per member.
        """
        record = self._records.get(root)
        if record is not None:
            previous = self._prev_degrees
            for u in record[0]:
                if not alive_flags[u] or degrees[u] != previous[u]:
                    self._drop(root)
                    break
            else:
                self.hits += 1
                return record
        self.misses += 1
        return None

    def lookup_all(
        self,
        roots: np.ndarray,
        degrees: np.ndarray,
        alive_mask: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Cone-aware batch validation of every record rooted in ``roots``.

        Builds the round's dirty set (vertices dead or with a changed
        residual degree since :meth:`advance`), intersects it with each
        candidate record's member arena in one ``reduceat`` sweep, drops
        the stale records, and returns the surviving replays as arrays:
        ``(positions into roots, reads, writes, proof vertices, proof
        layers)`` with the proof entries concatenated in position order
        (ready for one min/+ scatter fold).
        """
        empty = np.empty(0, dtype=np.int64)
        if not len(self._records):
            self.misses += len(roots)
            return empty, empty, empty, empty, empty
        prev = np.asarray(self._prev_degrees)
        dirty = np.asarray(degrees) != prev
        dirty |= ~alive_mask
        positions: list[int] = []
        cand_roots: list[int] = []
        arenas: list[np.ndarray] = []
        records = self._records
        arenas_by_root = self._member_arenas
        for i, v in enumerate(roots.tolist()):
            if v in records:
                positions.append(i)
                cand_roots.append(v)
                arenas.append(arenas_by_root[v])
        self.misses += len(roots) - len(positions)
        if not positions:
            return empty, empty, empty, empty, empty
        lengths = np.fromiter(
            (len(a) for a in arenas), dtype=np.int64, count=len(arenas)
        )
        bounds = np.cumsum(lengths) - lengths
        stale_counts = np.add.reduceat(
            dirty[np.concatenate(arenas)], bounds
        )
        valid = stale_counts == 0
        self.hits += int(valid.sum())
        self.misses += len(positions) - int(valid.sum())
        proof_u: list[np.ndarray] = []
        proof_l: list[np.ndarray] = []
        reads: list[int] = []
        writes: list[int] = []
        hit_positions: list[int] = []
        for ok, i, v in zip(valid.tolist(), positions, cand_roots):
            if not ok:
                self._drop(v)
                continue
            record = records[v]
            hit_positions.append(i)
            reads.append(record[2])
            writes.append(record[3])
            pu, pl = self._proof_arrays[v]
            proof_u.append(pu)
            proof_l.append(pl)
        if not hit_positions:
            return empty, empty, empty, empty, empty
        return (
            np.asarray(hit_positions, dtype=np.int64),
            np.asarray(reads, dtype=np.int64),
            np.asarray(writes, dtype=np.int64),
            np.concatenate(proof_u) if proof_u else empty,
            np.concatenate(proof_l) if proof_l else empty,
        )

    def advance(self, degrees) -> None:
        """Install this round's degree view (next round validates against it)."""
        self._prev_degrees = degrees

    def store(self, root: int, record: tuple) -> None:
        self._records[root] = record
        self._member_arenas[root] = np.asarray(record[0], dtype=np.int64)
        proof = record[1]
        self._proof_arrays[root] = (
            np.fromiter(
                (u for u, __ in proof), dtype=np.int64, count=len(proof)
            ),
            np.fromiter(
                (lay for __, lay in proof), dtype=np.int64, count=len(proof)
            ),
        )

    def evict(self, vertices) -> None:
        """Drop records rooted at assigned (now dead) vertices."""
        for v in vertices:
            if v in self._records:
                self._drop(v)


def peel_round_kernel(batch: BatchMachineContext, beta: int) -> None:
    """One Barenboim-Elkin peel round as an array kernel.

    Machine M_v reads its residual degree (one probe) and writes
    ``("layer", v) <- 0`` when deg <= β.  The layer column is min-folded
    on write, so the round's ``reducer=min`` is a no-op by construction.
    """
    alive = batch.machine_ids
    offsets, __ = batch.previous.adjacency_csr()
    degs = offsets[alive + 1] - offsets[alive]
    assigned = alive[degs <= beta]
    batch.target.fold_layer_proposals(assigned, np.zeros(len(assigned)))
    reads = np.ones(len(alive), dtype=np.int64)
    writes = (degs <= beta).astype(np.int64)
    batch.account(reads, writes)


class LazyAdjacency:
    """Residual adjacency rows materialized (and memoized) on demand.

    Ejected-game replays probe only the few dozen rows of one game's
    ball; converting the whole residual CSR to flat lists for them would
    dwarf the replay itself.  Supports exactly the ``adj[u]`` access
    :func:`play_coin_game` performs.
    """

    def __init__(self, offsets: np.ndarray, targets: np.ndarray) -> None:
        self._offsets = offsets
        self._targets = targets
        self._rows: dict[int, list[int]] = {}

    def __getitem__(self, v: int) -> list[int]:
        row = self._rows.get(v)
        if row is None:
            start, stop = int(self._offsets[v]), int(self._offsets[v + 1])
            row = self._targets[start:stop].tolist()
            self._rows[v] = row
        return row


def run_games_batched_with_fallback(
    offsets: np.ndarray,
    targets: np.ndarray,
    roots: np.ndarray,
    *,
    x: int,
    beta: int,
    clip: int,
    horizon: int,
    scale: int | None,
    out_layer: np.ndarray,
    out_count: np.ndarray,
    want_records: bool,
    phases: dict | None = None,
    transpose_pos: np.ndarray | None = None,
    replay_stats: dict | None = None,
    config=None,
    engine: str = "batched",
) -> tuple[np.ndarray, np.ndarray, list | None]:
    """An array engine plus its per-game scalar escape hatch.

    Games the array engine ejects (coin scales past the machine-word
    budget — see :mod:`repro.core.batched_games`) replay through
    :func:`play_coin_game`, whose fixed-scale Python integers widen to
    bigints (or Fractions for deep horizons); both paths fold into the
    same ``out_layer``/``out_count`` accumulators.  ``transpose_pos``
    lets callers that run many fleets against one residual CSR (pool
    workers, chiefly) reuse the per-round transpose map.  ``engine``
    picks the cohort player: ``"batched"`` (numpy lockstep) or
    ``"compiled"`` (the fused C kernel of :mod:`repro.core.native`,
    bit-identical, no transpose map needed).
    """
    # Cohort blocking: the engine's state is gathered/scattered millions
    # of times per round, and a whole-fleet arena (hundreds of MB at
    # bench scale) turns every access into a cache miss.  Games are
    # independent and every fold is commutative, so running the fleet as
    # cache-sized game-index blocks is observationally identical — each
    # block's arena stays resident the way a scalar game's dicts do.
    num_games = len(roots)
    block = COHORT_GAMES if config is None else config.cohort_games
    cone_cutoff = None if config is None else config.replay_cone_cutoff
    poor_streak = None if config is None else config.replay_poor_streak
    all_reads = np.zeros(num_games, dtype=np.int64)
    all_writes = np.zeros(num_games, dtype=np.int64)
    records: list | None = [None] * num_games if want_records else None
    ejected: list[int] = []
    if engine == "compiled":
        from repro.core.native import play_games_compiled

        play_cohort = play_games_compiled
    else:
        play_cohort = play_games_batched
        if transpose_pos is None:
            transpose_pos = csr_transpose_positions(offsets, targets)
    arena_hint = [0, 0]
    for start in range(0, num_games, block):
        stop = min(start + block, num_games)
        info = play_cohort(
            offsets, targets, roots[start:stop],
            x=x, beta=beta, clip=clip, horizon=horizon, scale=scale,
            out_layer=out_layer, out_count=out_count,
            want_records=want_records, phases=phases,
            transpose_pos=transpose_pos, arena_hint=arena_hint,
            replay_stats=replay_stats,
            cone_cutoff=cone_cutoff, poor_streak=poor_streak,
        )
        all_reads[start:stop] = info.reads
        all_writes[start:stop] = info.writes
        if records is not None:
            records[start:stop] = info.records
        ejected.extend((info.ejected + start).tolist())
    if ejected:
        adj = LazyAdjacency(offsets, targets)
        for gi in ejected:
            reads, writes, record = play_coin_game(
                adj, int(roots[gi]), x, beta, clip, horizon, scale,
                out_layer, out_count, want_records,
            )
            all_reads[gi] = reads
            all_writes[gi] = writes
            if records is not None:
                records[gi] = record
    return all_reads, all_writes, records


def lca_round_kernel(
    batch: BatchMachineContext,
    beta: int,
    x: int,
    pool=None,
    cache: GameCache | None = None,
    engine: str = "batched",
    min_pool_games: int | None = None,
    phases: dict | None = None,
    reuse: dict | None = None,
    fabric=None,
    comm: dict | None = None,
    config=None,
) -> None:
    """One LCA round: every alive machine plays the coin game.

    Proof layers are min-folded into the target's layer column as each
    game finishes (the DDS-side merge of Remark 4.8 + Lemma 4.10); probe
    and write counts are accounted per machine, exactly as the scalar
    :class:`~repro.ampc.machine.MachineContext` would have charged them.

    ``engine`` selects how the fleet's games execute: ``"batched"`` runs
    them in lockstep as array kernels (:mod:`repro.core.batched_games`),
    ``"compiled"`` plays each cohort in one fused C pass
    (:mod:`repro.core.native`, bit-identical to batched), ``"scalar"``
    interprets them one at a time (:func:`play_coin_game`, the PR 2/3
    engine, kept verbatim as the oracle).  ``cache`` (a
    :class:`GameCache`) replays memoized games whose explored view is
    unchanged since the previous round; ``pool`` (a
    :class:`repro.ampc.pool.CoinGamePool`) shards the remaining fleet
    across worker processes at cohort granularity — unless the round has
    fewer than ``min_pool_games`` games left (None: the engine-aware
    :func:`repro.ampc.pool.min_pool_games_for` cutoff — the batched
    kernels amortize dispatch only on much larger rounds than the
    scalar interpreter), where dispatch overhead would exceed the games
    themselves and the round runs in-process.  All layers fold through
    the same min/+ accumulators, so partitions, per-round stats, and
    word counts are identical for every knob combination.

    ``reuse``, when given, accumulates the round's incremental-replay
    counters (``replayed_waves`` / ``fresh_waves`` / ``replayed_entries``
    / ``fresh_entries`` / ``redo_games``, plus ``game_cache_hits`` for
    memoized cross-round replays) — from worker shards too.

    ``phases``, when given, accumulates per-phase wall-clock seconds
    (``explore`` / ``forward`` / ``fold`` from the batched engine plus
    ``cache`` for memoized-replay handling).  Worker shards are not
    instrumented: rounds dispatched to the pool contribute only to
    ``cache`` (all four keys are always present, so a run whose games
    all went to workers reads as zeros, not missing keys).

    ``fabric`` (a :class:`repro.ampc.messaging.MessageFabric`) replaces
    the pool with owner-hashed message-passing shards — every pending
    game dispatches (no ``min_pool_games`` gate: the fabric models the
    memory/communication discipline, not throughput), the round's
    communication counters accumulate into ``comm``, and the fold path
    is shared with the pool since both return ``(positions,
    ShardResult)`` pairs.  ``config`` (an
    :class:`repro.ampc.engine_config.EngineConfig`) pins the run's
    cohort/replay/dispatch knobs; None falls back to the module
    constants.
    """
    alive = batch.machine_ids
    offsets, targets = batch.previous.adjacency_csr()
    n = len(offsets) - 1
    clip = max_provable_layer(x, beta)
    horizon = 4 * (clip + 2)
    scale = fixed_coin_scale(beta, horizon)
    want_records = cache is not None and cache.armed
    if min_pool_games is None:
        min_pool_games = min_pool_games_for(engine, config)
    alive_list = alive.tolist()
    clock = time.perf_counter if phases is not None else None
    if phases is not None:
        keys = (
            ("cache", "native", "fold") if engine == "compiled"
            else ("cache", "explore", "forward", "fold")
        )
        for key in keys:
            phases.setdefault(key, 0.0)
    replay_stats: dict | None = reuse if reuse is not None else None
    if replay_stats is not None:
        for key in (
            "replayed_waves", "fresh_waves", "replayed_entries",
            "fresh_entries", "redo_games",
        ):
            replay_stats.setdefault(key, 0)

    # Memoized proofs are collected first and folded in bulk below, so
    # both engines share one fold path.
    pending: list[int] | np.ndarray
    rep_u = rep_lay = None
    t0 = clock() if clock else 0.0
    if want_records and len(cache):
        degrees = np.diff(offsets)
        alive_mask = np.zeros(n, dtype=bool)
        alive_mask[alive] = True
        hit_pos, hit_reads, hit_writes, rep_u, rep_lay = cache.lookup_all(
            alive, degrees, alive_mask
        )
        if hit_pos.size:
            batch.account_at(hit_pos, hit_reads, hit_writes)
            hit_mask = np.zeros(len(alive_list), dtype=bool)
            hit_mask[hit_pos] = True
            pending = np.flatnonzero(~hit_mask).tolist()
        else:
            pending = list(range(len(alive_list)))
        cache.advance(degrees)
        if replay_stats is not None:
            replay_stats["game_cache_hits"] = (
                replay_stats.get("game_cache_hits", 0) + int(hit_pos.size)
            )
    else:
        pending = list(range(len(alive_list)))
        if want_records:
            cache.advance(np.diff(offsets))
        elif cache is not None:
            cache.armed = True  # record from the next round onward
    if clock:
        phases["cache"] = phases.get("cache", 0.0) + clock() - t0

    # Both array engines share the ndarray accumulators and dispatch
    # branches; only the numpy lockstep engine wants the transpose map.
    batched = engine in ("batched", "compiled")
    if batched:
        out_layer: object = np.full(n, _INF)
        out_count: object = np.zeros(n, dtype=np.int64)
        if rep_u is not None and rep_u.size:
            np.minimum.at(out_layer, rep_u, rep_lay)
            np.add.at(out_count, rep_u, 1)
    else:
        out_layer = [_INF] * n
        out_count = [0] * n
        if rep_u is not None:
            for u, lay in zip(rep_u.tolist(), rep_lay.tolist()):
                if lay < out_layer[u]:
                    out_layer[u] = lay
                out_count[u] += 1

    def _fold_shards(shards):
        # Shared merge for pool and fabric shard results: every piece is
        # a commutative min/+ scatter, so arrival order is irrelevant.
        for shard_positions, shard in shards:
            if batched:
                np.minimum.at(out_layer, shard.fold_vertices, shard.fold_minima)
                np.add.at(out_count, shard.fold_vertices, shard.fold_counts)
            else:
                for u, minimum, count in zip(
                    shard.fold_vertices.tolist(),
                    shard.fold_minima.tolist(),
                    shard.fold_counts.tolist(),
                ):
                    if minimum < out_layer[u]:
                        out_layer[u] = minimum
                    out_count[u] += count
            batch.account_at(shard_positions, shard.reads, shard.writes)
            if replay_stats is not None and shard.replay_stats:
                for key, value in shard.replay_stats.items():
                    replay_stats[key] = replay_stats.get(key, 0) + value
            if want_records:
                for i, record in zip(shard_positions.tolist(), shard.records):
                    cache.store(alive_list[i], record)

    if pending and fabric is not None:
        positions = np.asarray(pending, dtype=np.int64)
        _fold_shards(fabric.run_round(
            offsets,
            targets,
            alive[positions],
            positions,
            x=x,
            beta=beta,
            clip=clip,
            horizon=horizon,
            scale=scale,
            want_records=want_records,
            engine=engine,
            config=config,
            comm=comm,
            # Shard chains dispatch to pool workers above the same
            # amortization cutoff the pool path uses; smaller rounds
            # (the long tail) run the shards in-process.  Either way
            # the fabric's observables and counters are identical.
            pool=(
                pool if pool is not None and len(pending) >= min_pool_games
                else None
            ),
        ))
    elif pending and pool is not None and len(pending) >= min_pool_games:
        positions = np.asarray(pending, dtype=np.int64)
        transpose_pos = (
            csr_transpose_positions(offsets, targets)
            if engine == "batched" else None
        )
        cohort = (
            COHORT_GAMES if config is None else config.cohort_games
        )
        _fold_shards(pool.run_games(
            offsets,
            targets,
            alive[positions],
            positions,
            x=x,
            beta=beta,
            clip=clip,
            horizon=horizon,
            scale=scale,
            want_records=want_records,
            engine=engine,
            transpose_pos=transpose_pos,
            cohort_games=cohort if batched else None,
            config=config,
        ))
    elif pending and batched:
        positions = np.asarray(pending, dtype=np.int64)
        reads, writes, records = run_games_batched_with_fallback(
            offsets, targets, alive[positions],
            x=x, beta=beta, clip=clip, horizon=horizon, scale=scale,
            out_layer=out_layer, out_count=out_count,
            want_records=want_records, phases=phases,
            replay_stats=replay_stats, config=config, engine=engine,
        )
        batch.account_at(positions, reads, writes)
        if want_records:
            for i, record in zip(pending, records):
                cache.store(alive_list[i], record)
    elif pending:
        adj = residual_adjacency_lists(offsets, targets, alive)
        reads = np.zeros(len(pending), dtype=np.int64)
        writes = np.zeros(len(pending), dtype=np.int64)
        for slot, i in enumerate(pending):
            v = alive_list[i]
            reads[slot], writes[slot], record = play_coin_game(
                adj, v, x, beta, clip, horizon, scale,
                out_layer, out_count, want_records,
            )
            if want_records:
                cache.store(v, record)
        batch.account_at(np.asarray(pending, dtype=np.int64), reads, writes)

    minima = out_layer if batched else np.array(out_layer)
    counts = np.asarray(out_count, dtype=np.int64)
    batch.target.install_layer_column(minima, counts)


def play_coin_game(
    adj: list[list[int] | None],
    root: int,
    x: int,
    beta: int,
    clip: int,
    horizon: int,
    scale: int | None,
    out_layer,
    out_count,
    want_record: bool = False,
) -> tuple[int, int, tuple | None]:
    """Play one (x, β, F)-coin dropping game against residual adjacency.

    Mirrors :class:`repro.lca.coin_game.CoinDroppingGame` exactly (same
    S_v evolution, same proof, same probe counts — see the module
    docstring for the three exactness-preserving shortcuts), folding the
    clipped proof into ``out_layer``/``out_count`` (any pair of
    indexables supporting min-update and +=; both the serial kernel and
    pool workers pass dense universe-sized lists) and returning the
    ``(reads, writes, record)`` — ``record`` is a replayable game record
    tuple when ``want_record``, else None.

    Coins are fixed-scale exact integers (``scale`` from
    :func:`repro.lca.coin_game.fixed_coin_scale`; every share division
    is exact ``//``) or Fractions when ``scale`` is None (deep-horizon
    games).
    """
    bp1 = beta + 1
    inside: dict[int, list[int]] = {}
    inside_get = inside.get
    # Forwarding-set records (inside split, outside split, |F|, forwarding
    # threshold |F|*scale), persisted across super-iterations and patched
    # as S_v grows.  Records are created *threshold-only* (splits None):
    # the hot loop needs just |F|*scale to test a holder, and most
    # holders — high-degree vertices especially, whose split would force
    # a σ-ranking — never accumulate (β+1)·scale coins.  The split is
    # materialized on a record's first forward of the current σ-epoch;
    # σ is constant within a super-iteration and explore-time patches
    # exactly simulate an earlier build, so deferral is value-invisible.
    # Records whose split required a σ-ranking are downgraded back to
    # threshold-only at the next super-iteration (σ changed; |F| didn't).
    recs: dict[int, tuple[list[int] | None, set[int] | None, int, object]] = {}
    recs_get = recs.get
    sigma_recs: list[int] = []

    def explore(u: int) -> int:
        """Add u to S_v; returns its probe charge (1 degree + deg reads)."""
        nbrs = adj[u]
        ins = []
        for w in nbrs:
            il = inside_get(w)
            if il is not None:
                il.append(u)
                ins.append(w)
                rec = recs_get(w)
                if rec is not None:
                    out_m = rec[1]
                    if out_m is not None and u in out_m:
                        # u crossed into S_v; splits are unordered (share
                        # addition commutes, touched is a set).
                        out_m.discard(u)
                        rec[0].append(u)
        inside[u] = ins
        return 1 + len(nbrs)

    reads = explore(root)

    if scale is not None:
        start_amount: object = x * scale
        int_coins = True
    else:
        scale = 1
        start_amount = Fraction(x)
        int_coins = False

    def build_split(u: int, rec):
        """Materialize a threshold-only record's (inside, outside) split."""
        nonlocal sigma
        nbrs = adj[u]
        if len(nbrs) <= bp1:
            fset = nbrs
        else:
            if sigma is None:
                sigma = _induced_sigma(inside, adj, beta)
            sg = sigma.get

            def key(w: int):
                lay = sg(w, _INF)
                return (
                    -lay if lay != _INF else float("-inf"),
                    w in inside,
                    w,
                )

            fset = sorted(nbrs, key=key)[:bp1]
            sigma_recs.append(u)
        ins_m: list[int] = []
        out_m: set[int] = set()
        for w in fset:
            if w in inside:
                ins_m.append(w)
            else:
                out_m.add(w)
        rec = (ins_m, out_m, rec[2], rec[3])
        recs[u] = rec
        return rec

    sigma: dict[int, float] | None = None
    grew = True
    for __ in range(x * x):
        sigma = None  # S_v changed since the last super-iteration
        if sigma_recs:
            for u in sigma_recs:
                old = recs[u]
                recs[u] = (None, None, old[2], old[3])
            sigma_recs = []
        coins: dict[int, object] = {root: start_amount}
        hot: tuple[int, ...] | set[int] = (root,)
        touched: set[int] = set()
        for __h in range(horizon):
            fwds = None
            for u in hot:
                rec = recs_get(u)
                if rec is None:
                    k = len(adj[u])
                    if k > bp1:
                        k = bp1
                    # Threshold |F|*scale; an isolated root (k = 0, only
                    # possible for the root) gets an unreachable sentinel
                    # so the hot loop needs no emptiness test.
                    if k:
                        threshold = k * scale if int_coins else k
                    else:
                        threshold = _INF
                    rec = (None, None, k, threshold)
                    recs[u] = rec
                amount = coins[u]
                if amount >= rec[3]:
                    if rec[0] is None:
                        rec = build_split(u, rec)
                    if fwds is None:
                        fwds = [(u, amount, rec)]
                    else:
                        fwds.append((u, amount, rec))
            if fwds is None:
                break  # nothing can move: a fixed point for this horizon
            new_hot: set[int] = set()
            new_hot_add = new_hot.add
            for u, amount, rec in fwds:
                share = amount // rec[2] if int_coins else amount / rec[2]
                coins[u] -= amount
                for w in rec[0]:
                    if w in coins:
                        coins[w] += share
                    else:
                        coins[w] = share
                    new_hot_add(w)
                out_m = rec[1]
                if out_m:
                    touched.update(out_m)
            hot = new_hot
        # Only vertices not yet in S_v are growth.  On a symmetric
        # adjacency this is a no-op: explore() patches every record's
        # outside split when a member crosses inside, so touched never
        # intersects S_v.  Fabric shards replay games against held rows
        # with missing rows read as empty (repro.ampc.messaging) — there
        # the reverse edge that would trigger the patch may be missing,
        # and an unpatched outside split would re-touch inside vertices
        # every super-iteration, driving the loop to its x² bound.
        touched.difference_update(inside)
        if not touched:
            grew = False
            break
        for u in sorted(touched):
            reads += explore(u)
    if grew or sigma is None:
        sigma = _induced_sigma(inside, adj, beta)
    writes = 0
    proof: list[tuple[int, int]] | None = [] if want_record else None
    for u, lay in sigma.items():
        if lay <= clip:  # ∞ never passes; proofs are clipped (Lemma 4.4)
            writes += 1
            if lay < out_layer[u]:
                out_layer[u] = lay
            out_count[u] += 1
            if proof is not None:
                proof.append((u, lay))
    record = None
    if want_record:
        record = (list(inside), proof, reads, writes)
    return reads, writes, record


def _induced_sigma(
    inside: dict[int, list[int]], adj: list[list[int] | None], beta: int
) -> dict[int, float]:
    """σ_{S_v,β} by synchronous peeling of the incrementally-kept view.

    Semantics of :func:`repro.partition.induced.induced_partition_from_view`
    with the adjacency-closure validation elided (the engine builds the
    closed view itself) and true degrees read off the residual lists.
    """
    sigma = dict.fromkeys(inside, _INF)
    inf_count = {}
    frontier = []
    for u in inside:
        d = len(adj[u])
        if d <= beta:
            frontier.append(u)
        else:
            inf_count[u] = d
    layer_index = 0
    while frontier:
        nxt = []
        for u in frontier:
            sigma[u] = layer_index
        for u in frontier:
            for w in inside[u]:
                if sigma[w] == _INF:
                    c = inf_count[w] - 1
                    inf_count[w] = c
                    if c == beta:
                        nxt.append(w)
        frontier = nxt
        layer_index += 1
    return sigma
