"""Theorem 1.2: deterministic β-partitioning in low-space AMPC.

The algorithm alternates AMPC rounds, each of which:

1. stores the current residual graph G_i (induced by still-unlayered
   vertices) in the data store D_i as ``("deg", v)`` / ``("adj", v, j)``
   key-value pairs — the exact encoding in the proof of Theorem 1.2;
2. assigns one machine M_v per unlayered vertex; M_v plays the
   (x, β, F)-coin dropping game *against the store* (its graph probes are
   adaptive DDS reads, the defining capability of AMPC) and writes the
   provable entries of its proof partition ℓ_v to D_{i+1};
3. lets the DDS-side sorting machines keep the per-vertex minimum
   (Remark 4.8 + Lemma 4.10), yielding a globally consistent partial
   β-partition of G_i;
4. appends the new layers above all previously assigned ones and recurses
   on the vertices that remain unlayered.

For huge arboricity (β comparable to the local space) the coin game is
useless and the algorithm switches to the Barenboim-Elkin peeling fallback:
one AMPC round per layer, each vertex machine reading only its residual
degree (the last paragraph of the proof of Theorem 1.2).

Two execution fabrics implement the loop:

- ``store="columnar"`` (the default) runs on array-backed
  :class:`~repro.ampc.columnar.ColumnStore` stores with batched round
  kernels (:mod:`repro.core.columnar_rounds`): the residual graph is one
  CSR gather, the peel round is a degree-mask kernel, and the coin games
  run against flat adjacency lists.  lca rounds memoize finished games
  across rounds and, with ``workers > 1``, shard their machine fleet
  over a persistent process pool (:mod:`repro.ampc.pool`) — machines
  within a round are independent, so sharding is invisible to every
  observable.
- ``store="dict"`` is the original dict-of-lists path, kept verbatim as
  the semantics oracle: the columnar path reproduces its partitions,
  round counts, and per-round statistics exactly (asserted by the
  equivalence tests on randomized inputs, for every ``workers`` value).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Literal

import numpy as np

from repro.ampc.engine_config import EngineConfig
from repro.ampc.machine import MachineContext
from repro.ampc.messaging import MessageFabric
from repro.ampc.pool import defer_full_gc, resolve_workers, shared_pool
from repro.ampc.simulator import AMPCSimulator
from repro.core import native
from repro.core.batched_games import replay_cone_fraction
from repro.core.columnar_rounds import (
    GameCache,
    lca_round_kernel,
    peel_round_kernel,
    residual_csr,
)
from repro.graphs.graph import Graph
from repro.lca.coin_game import CoinDroppingGame, max_provable_layer
from repro.lca.oracle import QueryStats
from repro.partition.beta_partition import PartialBetaPartition

__all__ = ["BetaPartitionOutcome", "beta_partition_ampc", "default_game_budget"]

Mode = Literal["auto", "lca", "peel"]
StoreKind = Literal["columnar", "dict"]


@dataclass
class BetaPartitionOutcome:
    """Result of the AMPC β-partitioning."""

    partition: PartialBetaPartition  # complete: every vertex finite
    beta: int
    rounds: int  # AMPC rounds consumed
    mode: str  # "lca" or "peel"
    x: int  # game budget used (0 in peel mode)
    simulator: AMPCSimulator | None = None
    unlayered_per_round: list[int] = field(default_factory=list)
    workers: int = 1  # worker processes the lca rounds sharded across
    game_cache_hits: int = 0  # coin games replayed from the cross-round cache
    engine: str = "scalar"  # execution: "batched", "compiled" or "scalar"
    transport: str = "shm"  # sharding fabric: "shm" (shared CSR) or "message"
    shards: int = 0  # message-fabric shard count (0 under transport="shm")
    # transport="message": one dict per lca round with the fabric's typed
    # communication counters (messages / words / subrounds / row_requests
    # / max_shard_words / max_held_words / …, see
    # repro.ampc.messaging.MessageFabric) — empty dicts for rounds the
    # fabric never saw (all games cache-replayed).
    round_comm: list[dict] = field(default_factory=list)
    # transport="message": lifetime peak of any shard's guarded held
    # words — what the configured S budget binds against.
    max_held_words: int = 0
    # Per-lca-round incremental-replay reuse (batched engine): each entry
    # holds the round's replayed_waves / fresh_waves / replayed_entries /
    # fresh_entries / redo_games / game_cache_hits counters plus the
    # derived cone_fraction (fresh share of the delivery volume; lower =
    # more wave reuse) — what the E1/F2 sweeps plot against graph shape.
    round_reuse: list[dict] = field(default_factory=list)
    # workers > 1: the pool supervisor's recovery counters accumulated
    # over this run (retries / respawns / deadline_kills /
    # checksum_rejects / worker_faults / degraded_shards /
    # recovery_wall_s) — all zero on an undisturbed run, and accounting
    # every injected or real fault otherwise.  Empty dict when no pool
    # was used.
    round_recovery: dict = field(default_factory=dict)

    @property
    def num_layers(self) -> int:
        """Size of the produced β-partition."""
        return self.partition.size()


class _StoreOracle:
    """Graph oracle whose probes are adaptive reads against a data store.

    Drop-in replacement for :class:`repro.lca.oracle.GraphOracle`: the coin
    game's exploration becomes a chain of dependent DDS reads, exactly the
    access pattern the AMPC model charges for.
    """

    def __init__(self, ctx: MachineContext, num_vertices: int) -> None:
        self._ctx = ctx
        self.num_vertices = num_vertices
        self.stats = QueryStats()

    def degree(self, v: int) -> int:
        self.stats.degree_probes += 1
        return self._ctx.read(("deg", v))

    def neighbor(self, v: int, i: int) -> int:
        self.stats.neighbor_probes += 1
        return self._ctx.read(("adj", v, i))

    def explore(self, v: int) -> list[int]:
        deg = self.degree(v)
        return [self.neighbor(v, i) for i in range(deg)]


def default_game_budget(beta: int) -> int:
    """Default x: deep enough to certify two layers per application.

    Theory uses x = n^{δ/c}; at bench scale that is tiny, so we anchor on
    the layer depth instead: x = (β+1)² certifies layers up to 2 per round.
    """
    return (beta + 1) ** 2


def _residual_store_pairs(graph: Graph, alive: list[int]):
    """Key-value pairs encoding G_i = G[alive] (Theorem 1.2's format)."""
    alive_set = set(alive)
    adjacency = {
        v: [int(w) for w in graph.neighbors(v) if int(w) in alive_set]
        for v in alive
    }
    for v in alive:
        nbrs = adjacency[v]
        yield ("deg", v), len(nbrs)
        for j, u in enumerate(nbrs):
            yield ("adj", v, j), u


def beta_partition_ampc(
    graph: Graph,
    beta: int,
    delta: float = 0.5,
    x: int | None = None,
    mode: Mode = "auto",
    strict_space: bool = False,
    max_rounds: int | None = None,
    store: StoreKind = "columnar",
    workers: int | str | None = None,
    engine: str | None = None,
    min_pool_games: int | None = None,
    phases: dict | None = None,
    transport: str = "shm",
    shards: int | None = None,
    shard_budget: int | None = None,
    config=None,
) -> BetaPartitionOutcome:
    """Compute a complete β-partition of ``graph`` in simulated AMPC.

    Parameters
    ----------
    graph, beta:
        Inputs; β >= (2+ε)α gives the Theorem 1.2 guarantees, but any β
        for which the natural β-partition is complete will terminate.
    delta:
        Local-space exponent of the simulated machines.
    x:
        Coin-game budget (default :func:`default_game_budget`).
    mode:
        "lca" (coin game), "peel" (BE fallback), or "auto" (peel only when
        the game could not certify even one layer within the space budget).
    max_rounds:
        Safety cap; raises RuntimeError when exceeded (indicates β below
        the graph's peeling threshold).
    store:
        Execution fabric: "columnar" (array-backed stores, batched round
        kernels) or "dict" (the original per-machine path — the oracle the
        columnar path is tested against).
    workers:
        Worker processes the columnar lca rounds shard their machine
        fleet across (:mod:`repro.ampc.pool`); None reads
        ``$REPRO_WORKERS``, defaulting to ``"auto"`` (the CPU count, so
        1-core hosts stay serial).  A pure throughput knob: results are
        bit-identical for every value.  The dict-backed oracle accepts
        the knob but always replays its machines serially — it exists to
        pin down the semantics the sharded path must reproduce.
    engine:
        Coin-game execution for the columnar lca rounds: ``"batched"``
        (the default — all of a round's games advance in lockstep as
        array kernels, :mod:`repro.core.batched_games`),
        ``"compiled"`` (each cohort fused into one C pass,
        :mod:`repro.core.native`; silently-but-warned downgraded to
        ``"batched"`` when the kernel cannot load — the outcome's
        ``engine`` field reports what actually ran) or ``"scalar"``
        (one adaptive Python interpretation per game, the PR 2/3 engine
        kept verbatim as the oracle).  None reads ``$REPRO_ENGINE``
        before falling back to ``"batched"``.  A pure throughput knob —
        every observable is bit-identical.  The dict-backed store
        ignores it (its machines always run the per-vertex
        :class:`~repro.lca.coin_game.CoinDroppingGame`).
    min_pool_games:
        Rounds with fewer pending games than this run in-process even
        when workers > 1 (None: the engine-aware
        :func:`repro.ampc.pool.min_pool_games_for` cutoff — the batched
        kernels amortize pool dispatch only on much larger rounds than
        the scalar interpreter).
    phases:
        Optional dict accumulating per-phase wall-clock seconds of the
        lca rounds (``explore`` / ``forward`` / ``fold`` / ``cache``;
        all keys always present).  Worker shards are not instrumented,
        so pool-dispatched rounds contribute only to ``cache`` — time
        phase breakdowns with ``workers=1``, as the benchmark does.
    transport:
        Sharding fabric for the columnar lca rounds: ``"shm"`` (each
        pool worker attaches the whole shared-memory CSR — the oracle
        path) or ``"message"`` (owner-hashed shards holding only their
        residual slice plus a bounded ghost fringe, exchanging typed
        size-capped delta messages — :mod:`repro.ampc.messaging`).  A
        pure memory/communication-discipline knob: every observable is
        bit-identical to ``"shm"`` for any shard count.  ``"message"``
        requires the columnar store and replaces the process pool.
    shards:
        Shard count under ``transport="message"`` (default: ``workers``,
        floored at 2).
    shard_budget:
        Per-shard S budget in words under ``transport="message"``; every
        array a shard holds is accounted against it and
        :class:`repro.ampc.messaging.MemoryGuardError` is raised loudly
        on violation.  None (default from
        ``$REPRO_SHARD_BUDGET_WORDS``): account but never raise.
    config:
        An :class:`repro.ampc.engine_config.EngineConfig` pinning every
        engine knob for this run; None snapshots the module-constant
        defaults with ``REPRO_*`` env overrides applied
        (:meth:`~repro.ampc.engine_config.EngineConfig.from_env`).
    """
    if beta < 1:
        raise ValueError("beta must be >= 1")
    if store not in ("columnar", "dict"):
        raise ValueError('store must be "columnar" or "dict"')
    if engine not in (None, "batched", "compiled", "scalar"):
        raise ValueError('engine must be "batched", "compiled" or "scalar"')
    if transport not in ("shm", "message"):
        raise ValueError('transport must be "shm" or "message"')
    if transport == "message" and store != "columnar":
        raise ValueError(
            'transport="message" requires store="columnar" (the dict store '
            "is the serial semantics oracle and never shards)"
        )
    workers = resolve_workers(workers)
    if config is None:
        config = EngineConfig.from_env()
    if engine is None and config.engine is not None:
        if config.engine not in ("batched", "compiled", "scalar"):
            raise ValueError(
                'REPRO_ENGINE must be "batched", "compiled" or "scalar"'
            )
        engine = config.engine
    engine = engine or "batched"
    if engine == "compiled" and not native.available():
        # Graceful degradation: the numpy oracle is bit-identical, so
        # only throughput changes.  The outcome reports the engine that
        # actually ran.
        native.warn_fallback("beta_partition_ampc")
        engine = "batched"
    if shard_budget is None:
        shard_budget = config.shard_budget_words
    n = graph.num_vertices
    if n == 0:
        return BetaPartitionOutcome(
            partition=PartialBetaPartition({}), beta=beta, rounds=0, mode="lca", x=0,
            workers=workers, engine=engine if store == "columnar" else "scalar",
            transport=transport,
        )
    input_size = n + graph.num_edges
    sim = AMPCSimulator(
        input_size,
        delta=delta,
        strict_space=strict_space,
        store=store,
        num_vertices=n if store == "columnar" else None,
    )
    if x is None:
        x = default_game_budget(beta)
    if mode == "auto":
        # The game needs x >= β+1 to certify even layer 1; if that already
        # dwarfs the space budget the theory prescribes peeling.
        mode = "peel" if (beta + 1) ** 6 > sim.space_limit and beta > sim.space_limit else "lca"
    if max_rounds is None:
        max_rounds = 4 * (n.bit_length() + 2) + 8

    # Acquire the pool before suspending full GC: CoinGamePool snapshots
    # the gc thresholds its workers should restore at fork time.  The
    # message fabric models the memory/communication discipline; with
    # workers > 1 its shard chains run on the same persistent pool
    # (each worker plays one shard's BSP rounds, the driver replays the
    # communication), so transport and workers compose.
    fabric = None
    if transport == "message" and mode == "lca" and store == "columnar":
        fabric = MessageFabric(
            shards if shards is not None else max(2, workers),
            budget_words=shard_budget,
            cap_words=config.message_cap_words,
            cache_words=config.ghost_cache_words,
        )
    pool = (
        shared_pool(workers)
        if store == "columnar" and workers > 1 and mode == "lca"
        else None
    )
    with defer_full_gc():
        if store == "columnar":
            return _run_columnar(
                graph, sim, beta, x, mode, max_rounds, workers, pool,
                engine, min_pool_games, phases, fabric, transport, config,
            )
        return _run_dict(graph, sim, beta, x, mode, max_rounds, workers)


def _run_dict(
    graph: Graph,
    sim: AMPCSimulator,
    beta: int,
    x: int,
    mode: str,
    max_rounds: int,
    workers: int,
) -> BetaPartitionOutcome:
    """The original per-machine dict-store loop (the semantics oracle).

    Machines replay serially whatever ``workers`` says: this path defines
    the observable semantics the sharded columnar engine must reproduce,
    and staying single-process keeps it trivially trustworthy.
    """
    final_layers: dict[int, float] = {}
    alive = list(graph.vertices())
    layer_offset = 0
    unlayered_history: list[int] = []

    while alive:
        if len(sim.stats.rounds) >= max_rounds:
            raise RuntimeError(
                f"β-partition did not complete within {max_rounds} rounds "
                f"(β={beta} likely below the peeling threshold)"
            )
        unlayered_history.append(len(alive))
        # Round 0 reads the input from D_0; later rounds read the residual
        # graph the DDS machinery ported into the latest store.
        if len(sim.stores) == 1:
            sim.load_input(_residual_store_pairs(graph, alive))
        else:
            sim.port_to_current(_residual_store_pairs(graph, alive))

        if mode == "peel":
            assigned = _peel_round(sim, alive, beta)
        else:
            assigned = _lca_round(sim, graph, alive, beta, x)

        if not assigned:
            raise RuntimeError(
                f"no vertex became layered in a round (β={beta} too small "
                f"for graph with min residual degree > β)"
            )
        max_new = 0
        for v, lay in assigned.items():
            final_layers[v] = layer_offset + lay
            max_new = max(max_new, int(lay))
        layer_offset += max_new + 1
        assigned_set = set(assigned)
        alive = [v for v in alive if v not in assigned_set]

    partition = PartialBetaPartition(final_layers)
    return BetaPartitionOutcome(
        partition=partition,
        beta=beta,
        rounds=sim.stats.num_rounds,
        mode=mode,
        x=x if mode == "lca" else 0,
        simulator=sim,
        unlayered_per_round=unlayered_history,
        workers=workers,
    )


def _run_columnar(
    graph: Graph,
    sim: AMPCSimulator,
    beta: int,
    x: int,
    mode: str,
    max_rounds: int,
    workers: int,
    pool,
    engine: str,
    min_pool_games: int | None,
    phases: dict | None,
    fabric=None,
    transport: str = "shm",
    config=None,
) -> BetaPartitionOutcome:
    """The batched columnar loop — observationally identical to the dict
    path, with the residual re-encode, peel round, and DDS-side min-merge
    running as array kernels.  lca rounds additionally memoize finished
    coin games across rounds (:class:`GameCache`) and, with workers > 1,
    shard the remaining fleet over the persistent process pool — both
    transparent to every observable."""
    final_layers: dict[int, float] = {}
    alive = np.arange(graph.num_vertices, dtype=np.int64)
    layer_offset = 0
    unlayered_history: list[int] = []
    round_reuse: list[dict] = []
    round_comm: list[dict] = []
    game_cache = GameCache() if mode == "lca" else None
    recovery_base = pool.recovery_snapshot() if pool is not None else None

    while alive.size:
        if len(sim.stats.rounds) >= max_rounds:
            raise RuntimeError(
                f"β-partition did not complete within {max_rounds} rounds "
                f"(β={beta} likely below the peeling threshold)"
            )
        unlayered_history.append(int(alive.size))
        offsets, targets = residual_csr(graph, alive)
        sim.port_residual_csr(alive, offsets, targets)

        comm = None
        if mode == "peel":
            kernel = partial(peel_round_kernel, beta=beta)
        else:
            reuse = None
            if engine == "batched":
                reuse = {}
                round_reuse.append(reuse)
            if fabric is not None:
                comm = {}
                round_comm.append(comm)
            kernel = partial(
                lca_round_kernel, beta=beta, x=x, pool=pool, cache=game_cache,
                engine=engine, min_pool_games=min_pool_games, phases=phases,
                reuse=reuse, fabric=fabric, comm=comm, config=config,
            )
        target = sim.round_vectorized(alive, kernel, reducer=min)
        assigned_vs, assigned_layers = target.layer_assignments()

        if not assigned_vs.size:
            raise RuntimeError(
                f"no vertex became layered in a round (β={beta} too small "
                f"for graph with min residual degree > β)"
            )
        for v, lay in zip(assigned_vs.tolist(), assigned_layers.tolist()):
            final_layers[v] = layer_offset + int(lay)
        layer_offset += int(assigned_layers.max()) + 1
        keep = np.ones(graph.num_vertices, dtype=bool)
        keep[assigned_vs] = False
        alive = alive[keep[alive]]
        if game_cache is not None:
            game_cache.evict(assigned_vs.tolist())
        if fabric is not None:
            # Retirement notices ride the round boundary: every shard
            # prunes its owned slice down to the next residual graph.
            fabric.retire(assigned_vs, comm)

    for reuse in round_reuse:
        reuse["cone_fraction"] = replay_cone_fraction(reuse)
    partition = PartialBetaPartition(final_layers)
    return BetaPartitionOutcome(
        partition=partition,
        beta=beta,
        rounds=sim.stats.num_rounds,
        mode=mode,
        x=x if mode == "lca" else 0,
        simulator=sim,
        unlayered_per_round=unlayered_history,
        workers=workers,
        game_cache_hits=game_cache.hits if game_cache is not None else 0,
        engine=engine,
        round_reuse=round_reuse,
        transport=transport,
        shards=fabric.num_shards if fabric is not None else 0,
        round_comm=round_comm,
        max_held_words=fabric.peak_held_words if fabric is not None else 0,
        round_recovery=(
            pool.recovery_delta(recovery_base) if pool is not None else {}
        ),
    )


def _lca_round(
    sim: AMPCSimulator, graph: Graph, alive: list[int], beta: int, x: int
) -> dict[int, float]:
    """One LCA round: every alive vertex plays the game against the store."""
    clip = max_provable_layer(x, beta)

    def make_task(v: int):
        def run(ctx: MachineContext) -> None:
            oracle = _StoreOracle(ctx, num_vertices=len(alive))
            game = CoinDroppingGame(oracle, v, x, beta)
            result = game.run()
            for u, lay in result.proof.layers.items():
                if lay <= clip:
                    ctx.write(("layer", u), lay)

        return v, run

    store = sim.round((make_task(v) for v in alive), reducer=min)
    assigned: dict[int, float] = {}
    for key, values in store.items():
        if isinstance(key, tuple) and key[0] == "layer":
            assigned[key[1]] = values[0]
    return assigned


def _peel_round(sim: AMPCSimulator, alive: list[int], beta: int) -> dict[int, float]:
    """One Barenboim-Elkin peel: vertices of residual degree <= β take
    layer 0 of this round (appended above earlier layers by the caller)."""

    def make_task(v: int):
        def run(ctx: MachineContext) -> None:
            if ctx.read(("deg", v)) <= beta:
                ctx.write(("layer", v), 0)

        return v, run

    store = sim.round((make_task(v) for v in alive), reducer=min)
    assigned: dict[int, float] = {}
    for key, values in store.items():
        if isinstance(key, tuple) and key[0] == "layer":
            assigned[key[1]] = values[0]
    return assigned
