"""Lemma 5.1: β-partitioning without knowing the arboricity.

Two phases, exactly as in the paper:

1. *Sequential doubling*: run Theorem 1.2 with guesses α_i = 2^(2^i)
   (β_i = (2+ε)·α_i), each with a round cap proportional to its own
   expected round bound; stop at the first guess a_k that completes.
   The double-exponential growth makes the total round cost a geometric
   series dominated by the last (successful) run, and guarantees
   a_k < α².
2. *Parallel refinement*: try guesses sqrt(a_k)·(1+ε)^i for
   i = 0..log_{1+ε}(sqrt(a_k)) "in parallel" (the AMPC round cost is the
   max over instances, the space cost their sum) and keep the smallest
   guess that completes — which is at most (1+ε)·α.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.beta_partition_ampc import BetaPartitionOutcome, beta_partition_ampc
from repro.graphs.graph import Graph

__all__ = ["GuessedPartitionOutcome", "beta_partition_unknown_alpha"]


@dataclass
class GuessedPartitionOutcome:
    """Result of the arboricity-oblivious algorithm."""

    outcome: BetaPartitionOutcome  # the winning run
    guessed_alpha: int  # the accepted guess (within (1+ε)² of true α)
    sequential_rounds: int  # sum over phase-1 attempts
    parallel_rounds: int  # max over phase-2 instances
    attempts: list[tuple[int, bool]] = field(default_factory=list)  # (guess, ok)

    @property
    def total_rounds(self) -> int:
        """AMPC rounds: sequential attempts sum + parallel phase max."""
        return self.sequential_rounds + self.parallel_rounds


def _try_guess(
    graph: Graph, alpha_guess: int, eps: float, delta: float, round_cap: int
) -> BetaPartitionOutcome | None:
    beta = max(1, math.ceil((2 + eps) * alpha_guess))
    try:
        return beta_partition_ampc(
            graph, beta, delta=delta, max_rounds=round_cap
        )
    except RuntimeError:
        return None


def beta_partition_unknown_alpha(
    graph: Graph,
    eps: float = 1.0,
    delta: float = 0.5,
    round_cap_factor: int = 4,
) -> GuessedPartitionOutcome:
    """β-partition ``graph`` without an arboricity hint (Lemma 5.1)."""
    n = graph.num_vertices
    if n == 0:
        raise ValueError("empty graph")
    attempts: list[tuple[int, bool]] = []
    sequential_rounds = 0

    # Phase 1: guesses 2^(2^i).  A guess's round cap scales with log n and
    # the guess's own O(log_{β/2α}(β)) bound: for β = (2+ε)α_guess the
    # ratio β/(2α_guess) is the constant (2+ε)/2, so the cap is
    # round_cap_factor * log n for every attempt.
    cap = max(4, round_cap_factor * (n.bit_length() + 1))
    coarse: BetaPartitionOutcome | None = None
    coarse_guess = 0
    i = 0
    while True:
        guess = 2 ** (2**i)
        outcome = _try_guess(graph, guess, eps, delta, cap)
        ok = outcome is not None
        attempts.append((guess, ok))
        if ok:
            sequential_rounds += outcome.rounds
            coarse = outcome
            coarse_guess = guess
            break
        sequential_rounds += cap
        i += 1
        if 2**i > max(2, n).bit_length() + 1:
            raise RuntimeError("guessing scheme exhausted (should be impossible)")

    # Phase 2: refine in [sqrt(a_k), a_k] by (1+ε) factors, in parallel.
    base = max(1.0, math.sqrt(coarse_guess))
    guesses: list[int] = []
    g = base
    while g <= coarse_guess + 1e-9:
        guesses.append(max(1, math.ceil(g)))
        g *= 1 + eps
    guesses = sorted(set(guesses))
    best: BetaPartitionOutcome | None = None
    best_guess = coarse_guess
    parallel_rounds = 0
    for guess in guesses:
        outcome = _try_guess(graph, guess, eps, delta, cap)
        ok = outcome is not None
        attempts.append((guess, ok))
        if ok:
            parallel_rounds = max(parallel_rounds, outcome.rounds)
            if best is None:  # guesses ascend: first success is smallest
                best = outcome
                best_guess = guess
        else:
            parallel_rounds = max(parallel_rounds, cap)
    if best is None:
        best = coarse
        best_guess = coarse_guess
    return GuessedPartitionOutcome(
        outcome=best,
        guessed_alpha=best_guess,
        sequential_rounds=sequential_rounds,
        parallel_rounds=parallel_rounds,
        attempts=attempts,
    )
