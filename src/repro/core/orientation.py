"""Acyclic low-out-degree orientations from β-partitions.

A complete β-partition yields the orientation every Section 6 coloring
algorithm consumes: orient each edge from the lower layer to the higher
layer, breaking within-layer ties by vertex id.  Every vertex then has
out-degree <= β (its out-neighbors are a subset of its same-or-higher-layer
neighbors), and the orientation is acyclic because (layer, id) strictly
increases along directed edges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.graph import Graph
from repro.partition.beta_partition import INFINITY, PartialBetaPartition

__all__ = ["Orientation", "orient_by_partition"]


@dataclass
class Orientation:
    """Acyclic orientation with per-vertex out-neighbor lists."""

    graph: Graph
    out_neighbors: list[list[int]]

    def max_out_degree(self) -> int:
        """Largest out-degree."""
        return max((len(o) for o in self.out_neighbors), default=0)

    def in_neighbors(self) -> list[list[int]]:
        """Reverse adjacency (computed on demand)."""
        incoming: list[list[int]] = [[] for _ in range(self.graph.num_vertices)]
        for v, outs in enumerate(self.out_neighbors):
            for w in outs:
                incoming[w].append(v)
        return incoming

    def topological_order(self) -> list[int]:
        """Vertices in an order where edges point forward; raises on cycle."""
        n = self.graph.num_vertices
        indegree = [0] * n
        for outs in self.out_neighbors:
            for w in outs:
                indegree[w] += 1
        stack = [v for v in range(n) if indegree[v] == 0]
        order: list[int] = []
        while stack:
            v = stack.pop()
            order.append(v)
            for w in self.out_neighbors[v]:
                indegree[w] -= 1
                if indegree[w] == 0:
                    stack.append(w)
        if len(order) != n:
            raise ValueError("orientation contains a cycle")
        return order

    def is_acyclic(self) -> bool:
        """True when no directed cycle exists."""
        try:
            self.topological_order()
        except ValueError:
            return False
        return True


def orient_by_partition(graph: Graph, partition: PartialBetaPartition) -> Orientation:
    """Orient lower layer -> higher layer, within-layer by vertex id.

    Requires a complete partition (no ∞ layers); the resulting out-degree
    is at most β whenever ``partition`` is a valid β-partition.
    """
    out: list[list[int]] = [[] for _ in range(graph.num_vertices)]
    for v in graph.vertices():
        lay_v = partition.layer(v)
        if lay_v == INFINITY:
            raise ValueError(f"vertex {v} is unlayered; complete the partition first")
        for w in graph.neighbors(v):
            w = int(w)
            if (partition.layer(w), w) > (lay_v, v):
                out[v].append(w)
    return Orientation(graph=graph, out_neighbors=out)
