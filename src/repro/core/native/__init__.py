"""Compiled per-cohort wave kernel (cffi + C) with import-time fallback.

This package surfaces ``engine="compiled"``: a single C pass per cohort
that fuses the per-wave hot path of the lockstep engine — threshold
test, exact scaled-integer coin split, membership probe, sigma-ranked
top-(beta+1) forwarding selection, and delivery scatter with
``minimum``-folds — over the caller's existing struct-of-arrays
buffers.  The numpy batched engine stays verbatim as the differential
oracle; every observable here is bit-identical to it and to the scalar
interpreter.

C ABI (``_wave_kernel.c`` / ``_build.CDEF``, version ``ABI_VERSION``)
=====================================================================

``repro_play_cohort`` plays one cohort of coin-dropping games against a
single CSR and returns ``0`` on success or ``1`` on allocation failure
(on failure every output buffer is untouched or rolled back and the
caller must fall back to the numpy engine).

Array layouts (all ``int64`` little-endian C-contiguous unless noted):

- ``offsets[n+1]`` / ``targets[m]`` — the CSR adjacency, targets sorted
  ascending within each row (the kernel's membership probes and the
  deterministic forwarding tie-break both rely on row order only for
  reproducibility of iteration, correctness needs no sorting).
- ``roots[num_games]`` — one game per root; game order is roots order
  and every per-game output array below is indexed by it.
- ``out_layer[n]`` (float64) / ``out_count[n]`` — fold accumulators
  over the vertex universe: provable layers ``<= clip`` are min-folded
  into ``out_layer`` and counted into ``out_count`` exactly as the
  scalar ``play_coin_game`` folds them one game at a time.
- ``reads`` / ``writes`` / ``super_iters`` / ``edges_seen`` /
  ``mem_counts`` / ``proof_counts`` (``[num_games]``) and
  ``ejected[num_games]`` (uint8) — per-game observables, zeroed at
  ejected games.

Ownership: every buffer above is allocated by the *caller* (numpy
arrays passed through ``ffi.from_buffer``) and only written by the
kernel.  The three arena outputs — ``mem_out`` (explored vertices,
game-major, exploration order), ``proof_u_out`` / ``proof_l_out``
(clipped proof entries, same layout) — are malloc'd by the *kernel*,
handed to the caller through out-pointers with their lengths in
``arena_lens[2]``, and must be released with ``repro_buffers_free``
(the wrapper copies them into Python record tuples and frees them
before returning).

Ejection contract: any game whose exact coin arithmetic would escalate
its scale beyond ``scale_cap`` (the int64 word budget) is ejected
mid-game — its members are rolled back out of the arena, all its
observables and fold contributions are zeroed, and its index is flagged
in ``ejected``.  The caller replays exactly those games through the
scalar bigint/Fraction escape hatch, so results stay bit-for-bit exact.
The incremental-lcm overflow guard is division-based and produces the
same ejection set as the lockstep engine's ``_escalate`` regardless of
forwarder iteration order.

Why no per-cohort GIL release is needed: cffi already drops the GIL for
the duration of every C call, the kernel never calls back into Python,
and one call covers an entire cohort (thousands of games), so the
no-Python window is a single long, bounded span — there is nothing left
to release by hand, and the process pool's worker processes sidestep
the question entirely.

Loading and fallback
====================

The kernel is compiled at build time (setup.py ``cffi_modules``) or
lazily at first use (direct ``gcc -shared`` + ``dlopen``, cached under
``$REPRO_NATIVE_CACHE``).  :func:`available` gates dispatch:
``engine="compiled"`` degrades to ``"batched"`` with a one-time warning
when the kernel cannot be loaded, ``REPRO_NATIVE_DISABLE=1`` forces
that degradation, and a corrupt or missing shared object only flips
:func:`available` to ``False`` — it never breaks ``import repro``.
"""

from __future__ import annotations

import math
import os
import time
import warnings

import numpy as np

from repro.core import batched_games
from repro.core.batched_games import BatchedGamesInfo

ABI_VERSION = 1

_ffi = None
_lib = None
_load_error: BaseException | None = None
_load_attempted = False
_warned_fallback = False


def _load():
    """Attempt (once) to load the compiled kernel; never raises."""
    global _ffi, _lib, _load_error, _load_attempted
    if _load_attempted:
        return
    _load_attempted = True
    if os.environ.get("REPRO_NATIVE_DISABLE", "").strip():
        _load_error = RuntimeError("disabled via REPRO_NATIVE_DISABLE")
        return
    try:
        from repro.core.native import _build

        ffi, lib = _build.load()
        got = int(lib.repro_abi_version())
        if got != ABI_VERSION:
            raise RuntimeError(
                f"wave kernel ABI mismatch: built {got}, expected "
                f"{ABI_VERSION}"
            )
        _ffi, _lib = ffi, lib
    except BaseException as exc:  # degrade, never break `import repro`
        _load_error = exc


def available() -> bool:
    """True when the compiled wave kernel is loadable on this host."""
    _load()
    return _lib is not None


def load_error() -> BaseException | None:
    """The exception that made :func:`available` false, if any."""
    _load()
    return _load_error


def warn_fallback(context: str) -> None:
    """One-time warning that ``engine="compiled"`` degraded to batched."""
    global _warned_fallback
    if _warned_fallback:
        return
    _warned_fallback = True
    warnings.warn(
        f"compiled wave kernel unavailable ({load_error()!r}); "
        f"{context} falling back to engine='batched'",
        RuntimeWarning,
        stacklevel=3,
    )


def _reset_for_tests() -> None:
    """Forget loader state (tests re-drive the gate with env patched)."""
    global _ffi, _lib, _load_error, _load_attempted, _warned_fallback
    _ffi = None
    _lib = None
    _load_error = None
    _load_attempted = False
    _warned_fallback = False


def _list_records_to_raw(info: BatchedGamesInfo) -> BatchedGamesInfo:
    """Flatten list-form records into the ``raw_records`` array tuple
    (used when a cohort falls back to the numpy oracle)."""
    mems: list[int] = []
    pus: list[int] = []
    pls: list[int] = []
    mem_counts: list[int] = []
    proof_counts: list[int] = []
    for rec in info.records:
        if rec is None:
            mem_counts.append(0)
            proof_counts.append(0)
            continue
        mems.extend(rec[0])
        mem_counts.append(len(rec[0]))
        pus.extend(u for u, __ in rec[1])
        pls.extend(lay for __, lay in rec[1])
        proof_counts.append(len(rec[1]))
    return info._replace(records=(
        np.asarray(mems, dtype=np.int64),
        np.asarray(pus, dtype=np.int64),
        np.asarray(pls, dtype=np.int64),
        np.asarray(mem_counts, dtype=np.int64),
        np.asarray(proof_counts, dtype=np.int64),
    ))


def play_games_compiled(
    offsets: np.ndarray,
    targets: np.ndarray,
    roots: np.ndarray,
    *,
    x: int,
    beta: int,
    clip: int,
    horizon: int,
    scale: int | None,
    out_layer: np.ndarray,
    out_count: np.ndarray,
    want_records: bool = False,
    raw_records: bool = False,
    phases: dict | None = None,
    transpose_pos: np.ndarray | None = None,
    replay_stats: dict | None = None,
    arena_hint: list | None = None,
    cone_cutoff: float | None = None,
    poor_streak: int | None = None,
) -> BatchedGamesInfo:
    """Drop-in for :func:`repro.core.batched_games.play_games_batched`.

    Same signature, same :class:`BatchedGamesInfo` shape, bit-identical
    observables.  ``transpose_pos`` / ``replay_stats`` / ``arena_hint``
    / ``cone_cutoff`` / ``poor_streak`` are accepted for signature
    compatibility and ignored — the fused kernel has no numpy scatter
    to transpose and no cross-wave replay cache.  ``phases`` gains a
    single ``native`` bucket: fusing removes the explore/forward/fold
    phase boundaries by construction.

    ``raw_records=True`` (with ``want_records``) skips the per-game
    python-list marshalling: ``records`` is instead one flat tuple
    ``(mem, proof_u, proof_layer, mem_counts, proof_counts)`` of int64
    arrays — game ``g``'s members/proof are the ``counts``-delimited
    segments (empty at ejected games).  The message fabric consumes
    this directly: it remaps ids and filters invalid games vectorized,
    so list records for games it will discard are never built.
    """
    del transpose_pos, replay_stats, arena_hint, cone_cutoff, poor_streak
    _load()
    if _lib is None:
        raise RuntimeError(
            "compiled wave kernel unavailable"
        ) from _load_error

    roots = np.ascontiguousarray(roots, dtype=np.int64)
    num_games = len(roots)
    if not num_games:
        empty = np.empty(0, dtype=np.int64)
        if not want_records:
            recs = None
        elif raw_records:
            recs = tuple(empty.copy() for __ in range(5))
        else:
            recs = []
        return BatchedGamesInfo(
            empty, empty.copy(), recs,
            empty.copy(), empty.copy(), empty.copy(),
        )

    offsets = np.ascontiguousarray(offsets, dtype=np.int64)
    targets = np.ascontiguousarray(targets, dtype=np.int64)
    n = len(offsets) - 1

    # Exact word-budget bookkeeping, replicated from _Lockstep.__init__
    # in Python-int arithmetic (x may exceed int64 ranges mid-formula).
    bp1 = beta + 1
    # Dynamic lookup: tests shrink batched_games.SCALE_LIMIT to force
    # ejections, and both engines must see the same word budget.
    scale_cap = batched_games.SCALE_LIMIT // max(1, x * (beta + 2))
    if scale is not None and scale <= scale_cap:
        init_scale = scale
    else:
        base = math.lcm(*range(1, bp1 + 1)) if beta >= 1 else 1
        headroom = scale_cap // (base * base) if base > 1 else 0
        init = 1
        while init * base <= headroom:
            init *= base
        init_scale = init
    if scale_cap < 1:
        # Every game needs bigint coins from hop zero; the batched
        # engine's all-ejected early path is already exact — use it.
        from repro.core.batched_games import play_games_batched

        info = play_games_batched(
            offsets, targets, roots, x=x, beta=beta, clip=clip,
            horizon=horizon, scale=scale, out_layer=out_layer,
            out_count=out_count, want_records=want_records, phases=phases,
        )
        if want_records and raw_records:
            info = _list_records_to_raw(info)
        return info

    max_super = min(x * x, n + 2)

    ffi, lib = _ffi, _lib
    reads = np.zeros(num_games, dtype=np.int64)
    writes = np.zeros(num_games, dtype=np.int64)
    super_iters = np.zeros(num_games, dtype=np.int64)
    edges_seen = np.zeros(num_games, dtype=np.int64)
    ejected_flags = np.zeros(num_games, dtype=np.uint8)
    mem_counts = np.zeros(num_games, dtype=np.int64)
    proof_counts = np.zeros(num_games, dtype=np.int64)
    mem_pp = ffi.new("int64_t **")
    pu_pp = ffi.new("int64_t **")
    pl_pp = ffi.new("int64_t **")
    arena_lens = ffi.new("int64_t[2]")

    def wbuf(arr, ctype="int64_t[]"):
        return ffi.from_buffer(ctype, arr, require_writable=True)

    t0 = time.perf_counter() if phases is not None else 0.0
    rc = lib.repro_play_cohort(
        ffi.from_buffer("int64_t[]", offsets),
        ffi.from_buffer("int64_t[]", targets),
        n,
        ffi.from_buffer("int64_t[]", roots),
        num_games,
        x, beta, clip, horizon,
        max_super, init_scale, scale_cap,
        wbuf(out_layer, "double[]"),
        wbuf(out_count),
        wbuf(reads), wbuf(writes),
        wbuf(super_iters), wbuf(edges_seen),
        wbuf(ejected_flags, "uint8_t[]"),
        1 if want_records else 0,
        wbuf(mem_counts), wbuf(proof_counts),
        mem_pp, pu_pp, pl_pp, arena_lens,
    )
    if phases is not None:
        phases["native"] = (
            phases.get("native", 0.0) + time.perf_counter() - t0
        )
    if rc != 0:
        # Allocation failure mid-cohort: outputs were rolled back, so
        # the numpy oracle can simply take over this cohort.
        from repro.core.batched_games import play_games_batched

        info = play_games_batched(
            offsets, targets, roots, x=x, beta=beta, clip=clip,
            horizon=horizon, scale=scale, out_layer=out_layer,
            out_count=out_count, want_records=want_records, phases=phases,
        )
        if want_records and raw_records:
            info = _list_records_to_raw(info)
        return info

    records = None
    if want_records:
        def arena(pp, length):
            if not length:
                return np.empty(0, dtype=np.int64)
            return np.frombuffer(
                ffi.buffer(pp[0], length * 8), dtype=np.int64
            )

        mem_flat = arena(mem_pp, arena_lens[0])
        pu_flat = arena(pu_pp, arena_lens[1])
        pl_flat = arena(pl_pp, arena_lens[1])
        if raw_records:
            # Copies: the frombuffer views die with repro_buffers_free.
            records = (
                mem_flat.copy(), pu_flat.copy(), pl_flat.copy(),
                mem_counts, proof_counts,
            )
        else:
            mem_ends = np.cumsum(mem_counts)
            proof_ends = np.cumsum(proof_counts)
            records = []
            mo = 0
            po = 0
            for g in range(num_games):
                if ejected_flags[g]:
                    records.append(None)
                    continue
                me = int(mem_ends[g])
                pe = int(proof_ends[g])
                proof = list(zip(
                    pu_flat[po:pe].tolist(), pl_flat[po:pe].tolist()
                ))
                records.append(
                    (mem_flat[mo:me].tolist(), proof, int(reads[g]),
                     int(writes[g]))
                )
                mo = me
                po = pe
    lib.repro_buffers_free(mem_pp[0])
    lib.repro_buffers_free(pu_pp[0])
    lib.repro_buffers_free(pl_pp[0])

    return BatchedGamesInfo(
        reads=reads,
        writes=writes,
        records=records,
        super_iterations=super_iters,
        edges_seen=edges_seen,
        ejected=np.nonzero(ejected_flags)[0].astype(np.int64),
    )
