"""Build glue for the native wave kernel — two compilation paths.

1. **Packaged (API mode).**  ``setup.py`` lists
   ``repro.core.native._build:ffibuilder`` under ``cffi_modules``; an
   installed build ships ``repro.core.native._wave_kernel_cffi`` as a
   real extension module and the loader imports it directly.
2. **Lazy (ABI mode).**  Source checkouts (tier-1 runs with
   ``PYTHONPATH=src``) compile the self-contained C file with a direct
   ``gcc -O2 -shared`` at first import and ``dlopen`` the result — no
   setuptools machinery, no Python headers, just libc.  The shared
   object is cached under ``$REPRO_NATIVE_CACHE`` (default
   ``~/.cache/repro/native``) keyed by a hash of the C source and the
   declared ABI, so rebuilds happen only when the kernel changes;
   concurrent builders race benignly via atomic ``os.replace``.

Both paths compile the same ``_wave_kernel.c`` against the same
``CDEF``; :func:`load` prefers the packaged module and falls back to
the lazy build.  Every failure mode (no gcc, read-only cache, corrupt
cached object) raises out of :func:`load` and is caught by the package
loader, which degrades to ``native.available() == False``.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import tempfile
from pathlib import Path

CDEF = """
int repro_play_cohort(
    const int64_t *offsets, const int64_t *targets, int64_t n,
    const int64_t *roots, int64_t num_games,
    int64_t x, int64_t beta, int64_t clip, int64_t horizon,
    int64_t max_super, int64_t init_scale, int64_t scale_cap,
    double *out_layer, int64_t *out_count,
    int64_t *reads, int64_t *writes,
    int64_t *super_iters, int64_t *edges_seen, uint8_t *ejected,
    int64_t want_records,
    int64_t *mem_counts, int64_t *proof_counts,
    int64_t **mem_out, int64_t **proof_u_out, int64_t **proof_l_out,
    int64_t *arena_lens);
void repro_buffers_free(int64_t *p);
int64_t repro_abi_version(void);
"""

_SOURCE_PATH = Path(__file__).with_name("_wave_kernel.c")


def _source() -> str:
    return _SOURCE_PATH.read_text()


def _make_ffibuilder():
    """API-mode builder for setup.py ``cffi_modules`` (requires cffi)."""
    import cffi

    builder = cffi.FFI()
    builder.cdef(CDEF)
    builder.set_source(
        "repro.core.native._wave_kernel_cffi", _source(),
        extra_compile_args=["-O2"],
    )
    return builder


# setup.py resolves this attribute lazily at sdist/wheel build time; a
# missing cffi there fails the *packaged* path only (the lazy path never
# reads it).
try:  # pragma: no cover - exercised by setup.py builds, not tier-1
    ffibuilder = _make_ffibuilder()
except Exception:  # pragma: no cover
    ffibuilder = None


def cache_dir() -> Path:
    env = os.environ.get("REPRO_NATIVE_CACHE", "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "native"


def so_path() -> Path:
    """Cache location of the ABI-mode shared object for this source."""
    digest = hashlib.sha256(
        (CDEF + "\x00" + _source()).encode()
    ).hexdigest()[:16]
    return cache_dir() / f"_wave_kernel-{digest}.so"


def _build_shared_object(path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        suffix=".so", prefix="_wave_kernel-", dir=str(path.parent)
    )
    os.close(fd)
    try:
        subprocess.run(
            [
                "gcc", "-O2", "-fPIC", "-shared",
                str(_SOURCE_PATH), "-o", tmp,
            ],
            check=True,
            capture_output=True,
            text=True,
        )
        os.replace(tmp, path)  # atomic: concurrent builders race benignly
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load():
    """``(ffi, lib)`` for the wave kernel; raises on any failure.

    Tries the packaged API-mode extension first, then the cached (or
    freshly gcc-compiled) ABI-mode shared object.
    """
    try:
        from repro.core.native import _wave_kernel_cffi  # type: ignore

        return _wave_kernel_cffi.ffi, _wave_kernel_cffi.lib
    except ImportError:
        pass

    import cffi

    path = so_path()
    if not path.exists():
        _build_shared_object(path)
    ffi = cffi.FFI()
    ffi.cdef(CDEF)
    lib = ffi.dlopen(str(path))
    return ffi, lib
