/* Fused per-cohort wave kernel for the (x, beta, F)-coin dropping game.
 *
 * One call plays a cohort of games sequentially, each game as the exact
 * scalar cascade (threshold test -> scaled-integer coin split ->
 * membership probe -> sigma-ranked top-(beta+1) forwarding -> delivery
 * scatter -> touched-set exploration), fused into a single pass over
 * the caller's CSR buffers.  Observables (reads, writes, proofs,
 * super-iteration counts, inside-edge counts, layer folds) are
 * bit-identical to both the numpy lockstep engine and the per-game
 * Python interpreter: coin values are scale-invariant exact rationals,
 * so any exact int64 strategy with ejection-on-overflow produces the
 * same observable transcript.  See repro/core/native/__init__.py for
 * the full ABI contract.
 *
 * Plain C99 + libc only: the library is built either by cffi's API mode
 * (setup.py cffi_modules) or by a direct `gcc -shared` at first import
 * (ABI mode dlopen); neither path may depend on Python headers here.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef int64_t i64;
typedef uint8_t u8;

#define SIGMA_INF INT64_MAX

static i64 gcd64(i64 a, i64 b) {
    while (b) { i64 t = a % b; a = b; b = t; }
    return a;
}

/* Growable i64 buffer (amortized doubling). */
typedef struct { i64 *data; i64 len; i64 cap; } vec64;

static int vec_reserve(vec64 *v, i64 need) {
    i64 cap;
    i64 *p;
    if (need <= v->cap) return 0;
    cap = v->cap ? v->cap : 64;
    while (cap < need) cap <<= 1;
    p = (i64 *)realloc(v->data, (size_t)cap * sizeof(i64));
    if (!p) return -1;
    v->data = p;
    v->cap = cap;
    return 0;
}

static int vec_push(vec64 *v, i64 x) {
    if (v->len == v->cap && vec_reserve(v, v->len + 1)) return -1;
    v->data[v->len++] = x;
    return 0;
}

/* Forwarding-set sort candidate: Definition 4.1's deterministic
 * tie-break — highest sigma-layer first (SIGMA_INF, i.e. unexplored or
 * unlayered, counts highest), then unexplored before explored, then low
 * vertex id.  The comparator is a total order (vertex ids are unique
 * within a row), so qsort's instability is irrelevant. */
typedef struct { i64 lay; i64 w; i64 mem; } fscand;

static int fscand_cmp(const void *pa, const void *pb) {
    const fscand *a = (const fscand *)pa;
    const fscand *b = (const fscand *)pb;
    if (a->lay != b->lay) return (a->lay > b->lay) ? -1 : 1;
    if (a->mem != b->mem) return (a->mem < b->mem) ? -1 : 1;
    return (a->w < b->w) ? -1 : 1;
}

static int i64_cmp(const void *pa, const void *pb) {
    i64 a = *(const i64 *)pa, b = *(const i64 *)pb;
    return (a < b) ? -1 : (a > b);
}

/* Per-slot scratch, capacity-grown with the largest ball seen so far
 * and reused across the cohort's games (a game's state is dead once it
 * retires or ejects). */
typedef struct {
    i64 cap;
    i64 *amount;     /* coin amount at the game's current scale */
    i64 *kcap;       /* |F| = min(deg, beta+1) */
    i64 *deg;        /* true residual degree */
    i64 *sigma;      /* sigma_{S_v} (SIGMA_INF = unlayered) */
    i64 *peelcnt;    /* peel countdown buffer */
    i64 *fs_epoch;   /* super-iteration a slot's fset was built in */
    i64 *fs_off;     /* offset of that fset in the fset arena */
    i64 *recv_epoch; /* hop id of the slot's last delivery (hot dedup) */
    i64 *hot;        /* worklist of slots whose amount changed */
    i64 *nhot;
    i64 *fwd;        /* this hop's forwarders */
    i64 *famt;       /* their snapshot amounts */
    i64 *front;      /* peel frontier double buffer */
    i64 *nfront;
} slots_t;

static int slots_reserve(slots_t *s, i64 need) {
    i64 cap;
    if (need <= s->cap) return 0;
    cap = s->cap ? s->cap : 64;
    while (cap < need) cap <<= 1;
#define GROW(f) do { \
        i64 *p = (i64 *)realloc(s->f, (size_t)cap * sizeof(i64)); \
        if (!p) return -1; \
        s->f = p; \
    } while (0)
    GROW(amount); GROW(kcap); GROW(deg); GROW(sigma); GROW(peelcnt);
    GROW(fs_epoch); GROW(fs_off); GROW(recv_epoch);
    GROW(hot); GROW(nhot); GROW(fwd); GROW(famt); GROW(front); GROW(nfront);
#undef GROW
    s->cap = cap;
    return 0;
}

static void slots_free(slots_t *s) {
    free(s->amount); free(s->kcap); free(s->deg); free(s->sigma);
    free(s->peelcnt); free(s->fs_epoch); free(s->fs_off);
    free(s->recv_epoch); free(s->hot); free(s->nhot); free(s->fwd);
    free(s->famt); free(s->front); free(s->nfront);
}

void repro_buffers_free(i64 *p) { free(p); }

i64 repro_abi_version(void) { return 1; }

/* Synchronous sigma-peel of game g's current ball (members
 * mv[0..mem_count), stamps identify membership).  Matches the scalar
 * `_induced_sigma`: counts start at the TRUE residual degree, the whole
 * frontier is assigned its layer before any decrement, and a member
 * enqueues exactly when its countdown hits beta from above. */
static void sigma_peel(
    const i64 *offsets, const i64 *targets, i64 gstamp,
    const i64 *mstamp, const i64 *mslot,
    const i64 *mv, i64 mem_count, i64 beta, slots_t *S
) {
    i64 i, layer, fl, nl;
    i64 *front = S->front, *nfront = S->nfront;
    fl = 0;
    for (i = 0; i < mem_count; i++) {
        S->sigma[i] = SIGMA_INF;
        S->peelcnt[i] = S->deg[i];
        if (S->deg[i] <= beta) front[fl++] = i;
    }
    layer = 0;
    while (fl) {
        for (i = 0; i < fl; i++) S->sigma[front[i]] = layer;
        nl = 0;
        for (i = 0; i < fl; i++) {
            i64 v = mv[front[i]];
            i64 p, end = offsets[v + 1];
            for (p = offsets[v]; p < end; p++) {
                i64 w = targets[p];
                if (mstamp[w] == gstamp) {
                    i64 ws = mslot[w];
                    if (S->sigma[ws] == SIGMA_INF
                            && --S->peelcnt[ws] == beta) {
                        nfront[nl++] = ws;
                    }
                }
            }
        }
        { i64 *t = front; front = nfront; nfront = t; }
        fl = nl;
        layer++;
    }
}

/* Play one cohort of games.  Returns 0 on success, 1 on allocation
 * failure (all output buffers are then untouched or rolled back; the
 * caller falls back to the numpy engine). */
int repro_play_cohort(
    const i64 *offsets,      /* [n+1] CSR row offsets */
    const i64 *targets,      /* CSR targets (sorted per row) */
    i64 n,
    const i64 *roots,        /* [num_games] */
    i64 num_games,
    i64 x, i64 beta, i64 clip, i64 horizon,
    i64 max_super,           /* min(x*x, n+2): super-iteration cap */
    i64 init_scale, i64 scale_cap,
    double *out_layer,       /* [n] min-fold accumulator */
    i64 *out_count,          /* [n] add-fold accumulator */
    i64 *reads, i64 *writes, /* [num_games] */
    i64 *super_iters,        /* [num_games] */
    i64 *edges_seen,         /* [num_games] */
    u8 *ejected,             /* [num_games] flags */
    i64 want_records,
    i64 *mem_counts,         /* [num_games] members per game */
    i64 *proof_counts,       /* [num_games] proof entries per game */
    i64 **mem_out,           /* game-major concatenated explored sets */
    i64 **proof_u_out, i64 **proof_l_out,
    i64 *arena_lens          /* [2] lengths of mem / proof arenas */
) {
    i64 *mstamp = NULL, *mslot = NULL, *tstamp = NULL;
    vec64 members = {0}, touched = {0}, fsets = {0}, pu = {0}, pl = {0};
    slots_t S;
    fscand *cand = NULL;
    i64 cand_cap = 0;
    i64 g, epoch = 0, hop_id = 0;
    int rc = 1;

    memset(&S, 0, sizeof(S));
    mstamp = (i64 *)calloc((size_t)n, sizeof(i64));
    mslot = (i64 *)malloc((size_t)n * sizeof(i64));
    tstamp = (i64 *)calloc((size_t)n, sizeof(i64));
    if (!mstamp || !mslot || !tstamp) goto done;

    for (g = 0; g < num_games; g++) {
        i64 gstamp = g + 1;
        i64 mem_start = members.len;
        i64 mem_count = 0;
        i64 greads = 0, gedges = 0;
        i64 retired_s = max_super;
        i64 s;
        int eject = 0;
        i64 *mv; /* members.data + mem_start; refreshed after growth */

        /* explore(root) */
        {
            i64 v = roots[g], p, end;
            if (vec_push(&members, v)) goto done;
            if (slots_reserve(&S, 1)) goto done;
            mv = members.data + mem_start;
            mstamp[v] = gstamp;
            mslot[v] = 0;
            mem_count = 1;
            S.deg[0] = offsets[v + 1] - offsets[v];
            S.kcap[0] = S.deg[0] < beta + 1 ? S.deg[0] : beta + 1;
            S.fs_epoch[0] = -1;
            S.recv_epoch[0] = -1;
            greads += 1 + S.deg[0];
            end = offsets[v + 1];
            for (p = offsets[v]; p < end; p++) {
                if (mstamp[targets[p]] == gstamp
                        && targets[p] != v) gedges++;
            }
        }

        for (s = 0; s < max_super; s++) {
            i64 gscale = init_scale;
            i64 hot_len, h, i;
            int sigma_valid = 0;
            epoch++;
            fsets.len = 0;
            touched.len = 0;
            for (i = 0; i < mem_count; i++) S.amount[i] = 0;
            S.amount[0] = x * gscale;
            S.hot[0] = 0;
            hot_len = 1;

            for (h = 0; h < horizon && hot_len; h++) {
                i64 nf = 0, nhot_len = 0, factor = 1, j;
                hop_id++;
                /* Phase 1: collect forwarders (snapshot amounts). */
                for (i = 0; i < hot_len; i++) {
                    i64 slot = S.hot[i];
                    i64 k = S.kcap[slot];
                    if (k > 0 && S.amount[slot] >= k * gscale) {
                        S.fwd[nf] = slot;
                        S.famt[nf] = S.amount[slot];
                        nf++;
                    }
                }
                if (!nf) break;
                /* Phase 2: escalate the game scale so every division of
                 * this hop is exact — the lcm of the per-division
                 * deficits |F|/gcd(a,|F|), ejecting instead of
                 * overflowing the word budget (identical policy and
                 * ejection set to the lockstep engine's _escalate). */
                for (j = 0; j < nf; j++) {
                    i64 k = S.kcap[S.fwd[j]];
                    i64 r = S.famt[j] % k;
                    if (r) {
                        i64 need = k / gcd64(r, k);
                        i64 mul = need / gcd64(factor, need);
                        if (mul > 1 && factor > scale_cap / mul) {
                            /* factor*mul > scale_cap >= scale_cap/gscale:
                             * the gscale check below would eject too. */
                            eject = 1;
                            break;
                        }
                        factor *= mul;
                    }
                }
                if (!eject && factor > 1) {
                    if (factor > scale_cap / gscale) {
                        eject = 1;
                    } else {
                        gscale *= factor;
                        for (i = 0; i < mem_count; i++)
                            S.amount[i] *= factor;
                        for (j = 0; j < nf; j++) S.famt[j] *= factor;
                    }
                }
                if (eject) break;
                /* Phase 3: zero forwarders, then deliver shares.  The
                 * scalar engine interleaves `coins[u] -= amount` with
                 * deliveries; subtraction of the snapshot commutes with
                 * the share additions, so zero-then-scatter is exact. */
                for (j = 0; j < nf; j++) S.amount[S.fwd[j]] = 0;
                for (j = 0; j < nf; j++) {
                    i64 slot = S.fwd[j];
                    i64 k = S.kcap[slot];
                    i64 share = S.famt[j] / k;
                    i64 v = mv[slot];
                    if (S.deg[slot] <= beta + 1) {
                        /* Forwarding set = the whole row; membership via
                         * the stamp array is the fused join. */
                        i64 p, end = offsets[v + 1];
                        for (p = offsets[v]; p < end; p++) {
                            i64 w = targets[p];
                            if (mstamp[w] == gstamp) {
                                i64 ds = mslot[w];
                                S.amount[ds] += share;
                                if (S.recv_epoch[ds] != hop_id) {
                                    S.recv_epoch[ds] = hop_id;
                                    S.nhot[nhot_len++] = ds;
                                }
                            } else if (tstamp[w] != epoch) {
                                tstamp[w] = epoch;
                                if (vec_push(&touched, w)) goto done;
                            }
                        }
                    } else {
                        /* sigma-ranked top-(beta+1), cached per slot per
                         * super-iteration (sigma and S_v are constant
                         * within one). */
                        i64 q, off;
                        if (S.fs_epoch[slot] != epoch) {
                            i64 d = S.deg[slot], p, end = offsets[v + 1];
                            if (d > cand_cap) {
                                fscand *nc = (fscand *)realloc(
                                    cand, (size_t)d * sizeof(fscand));
                                if (!nc) goto done;
                                cand = nc;
                                cand_cap = d;
                            }
                            if (!sigma_valid) {
                                sigma_peel(offsets, targets, gstamp,
                                           mstamp, mslot, mv, mem_count,
                                           beta, &S);
                                sigma_valid = 1;
                            }
                            for (p = offsets[v], q = 0; p < end; p++, q++) {
                                i64 w = targets[p];
                                int ism = mstamp[w] == gstamp;
                                cand[q].lay =
                                    ism ? S.sigma[mslot[w]] : SIGMA_INF;
                                cand[q].mem = ism;
                                cand[q].w = w;
                            }
                            qsort(cand, (size_t)d, sizeof(fscand),
                                  fscand_cmp);
                            S.fs_off[slot] = fsets.len;
                            S.fs_epoch[slot] = epoch;
                            if (vec_reserve(&fsets, fsets.len + beta + 1))
                                goto done;
                            for (q = 0; q < beta + 1; q++)
                                fsets.data[fsets.len++] = cand[q].w;
                        }
                        off = S.fs_off[slot];
                        for (q = 0; q < beta + 1; q++) {
                            i64 w = fsets.data[off + q];
                            if (mstamp[w] == gstamp) {
                                i64 ds = mslot[w];
                                S.amount[ds] += share;
                                if (S.recv_epoch[ds] != hop_id) {
                                    S.recv_epoch[ds] = hop_id;
                                    S.nhot[nhot_len++] = ds;
                                }
                            } else if (tstamp[w] != epoch) {
                                tstamp[w] = epoch;
                                if (vec_push(&touched, w)) goto done;
                            }
                        }
                    }
                }
                { i64 *t = S.hot; S.hot = S.nhot; S.nhot = t; }
                hot_len = nhot_len;
            }
            if (eject) break;
            if (!touched.len) {
                retired_s = s + 1;
                break;
            }
            /* Explore the touched set in ascending vertex order (the
             * scalar engine's sorted(touched)), counting each inside
             * edge once — at the exploration of its second endpoint. */
            qsort(touched.data, (size_t)touched.len, sizeof(i64), i64_cmp);
            if (vec_reserve(&members, members.len + touched.len))
                goto done;
            if (slots_reserve(&S, mem_count + touched.len)) goto done;
            mv = members.data + mem_start;
            for (i = 0; i < touched.len; i++) {
                i64 w = touched.data[i];
                i64 slot = mem_count++;
                i64 p, end, d;
                members.data[members.len++] = w;
                mstamp[w] = gstamp;
                mslot[w] = slot;
                d = offsets[w + 1] - offsets[w];
                S.deg[slot] = d;
                S.kcap[slot] = d < beta + 1 ? d : beta + 1;
                S.fs_epoch[slot] = -1;
                S.recv_epoch[slot] = -1;
                greads += 1 + d;
                end = offsets[w + 1];
                for (p = offsets[w]; p < end; p++) {
                    if (mstamp[targets[p]] == gstamp
                            && targets[p] != w) gedges++;
                }
            }
        }

        if (eject) {
            /* Roll the game's members out of the arena; the caller
             * replays it through the scalar bigint/Fraction engine with
             * every output zeroed here (matching the lockstep engine's
             * ejection contract). */
            members.len = mem_start;
            reads[g] = 0;
            writes[g] = 0;
            super_iters[g] = 0;
            edges_seen[g] = 0;
            ejected[g] = 1;
            mem_counts[g] = 0;
            proof_counts[g] = 0;
            continue;
        }

        /* Final sigma-peel + clipped proof fold, members in exploration
         * order (slot order). */
        sigma_peel(offsets, targets, gstamp, mstamp, mslot, mv,
                   mem_count, beta, &S);
        {
            i64 w_count = 0, i;
            i64 pstart = pu.len;
            for (i = 0; i < mem_count; i++) {
                i64 lay = S.sigma[i];
                if (lay <= clip) { /* SIGMA_INF never passes */
                    i64 v = mv[i];
                    w_count++;
                    if ((double)lay < out_layer[v])
                        out_layer[v] = (double)lay;
                    out_count[v]++;
                    if (want_records) {
                        if (vec_push(&pu, v) || vec_push(&pl, lay))
                            goto done;
                    }
                }
            }
            reads[g] = greads;
            writes[g] = w_count;
            super_iters[g] = retired_s;
            edges_seen[g] = gedges;
            ejected[g] = 0;
            mem_counts[g] = mem_count;
            proof_counts[g] = want_records ? pu.len - pstart : 0;
        }
    }

    /* Hand the arenas to the caller (freed via repro_buffers_free). */
    *mem_out = members.data;
    *proof_u_out = pu.data;
    *proof_l_out = pl.data;
    arena_lens[0] = members.len;
    arena_lens[1] = pu.len;
    members.data = NULL;
    pu.data = NULL;
    pl.data = NULL;
    rc = 0;

done:
    free(mstamp);
    free(mslot);
    free(tstamp);
    free(members.data);
    free(touched.data);
    free(fsets.data);
    free(pu.data);
    free(pl.data);
    free(cand);
    slots_free(&S);
    return rc;
}
