"""Lockstep batched coin-game engine — whole game frontiers as array kernels.

:func:`repro.core.columnar_rounds.play_coin_game` interprets one
(x, β, F)-coin dropping game at a time; at bench scale the per-vertex
Python control flow is the entire lca-round wall clock.  This module
advances **all** of a round's games simultaneously: per program point a
handful of numpy kernels act on game-indexed struct-of-arrays state, so
the interpreter cost is paid per *wave*, not per vertex.

Lockstep invariant
------------------
Every active game sits at the same program point ``(super-iteration s,
forwarding hop h)`` at all times.  The engine's wave loop is the scalar
game loop with the game index turned into an array axis:

- a game whose hop has no forwarder simply contributes nothing to the
  wave (the scalar engine's early ``break`` is a no-op transition, so
  idling is observationally identical);
- a game whose super-iteration touched no outside vertex *retires from
  the batch* at the end of that super-iteration: its final σ_{S_v} is
  computed (in the batched σ-peel, together with every other game
  retiring that wave), its provable layers are min-folded into the
  round's layer column, and its slots stop participating;
- the remaining games advance to super-iteration s+1 together.

Since coin amounts, explored sets, and σ-ranks of one game never feed
into another game's transitions, running games columns-at-a-time visits
exactly the per-game state sequence of the scalar interpreter; every
observable (S_v evolution, probe counts, proof layers, write counts) is
bit-identical.  The differential tests assert this against the scalar
oracle over the full (store, engine, workers) matrix.

Exact within-round exploration sharing
--------------------------------------
All games of a round play against the *same* residual graph G_i, probed
through the same ``("deg", v)`` / ``("adj", v, j)`` store columns.  Two
overlapping games therefore demand **identical** ``(vertex →
sorted-adjacency, degree)`` views of every vertex they both explore.
The engine exploits that with one shared, round-scoped arena:

- the residual CSR ``(offsets, targets)`` is the canonical explored-row
  store: a vertex's sorted adjacency row is referenced in place by
  every game that explores it, never rebuilt per game;
- each (game, vertex) exploration claims one *slot*, and the **row
  arena** materializes that slot's view of its CSR row exactly once —
  each entry resolved to the in-game destination slot (inside S_v) or
  -1 (outside).  Resolution happens a single time per explored
  adjacency entry: entries toward already-explored vertices are
  resolved when the row is claimed, and the matching reverse entries in
  older rows are *patched* in O(1) through a per-round CSR
  transpose-position map (the reverse entry of CSR position p is at a
  fixed position independent of any game).  Afterwards the entire hop
  loop — thresholds, splits, deliveries, touched detection — and the
  final σ-peel run as pure gathers against the arena, with no
  membership search anywhere.

The sharing is **exact**, not approximate, for two reasons.  First, a
round's residual graph is immutable while its machines run (machines of
round i read D_{i-1} and write only layer proposals to D_i — Section
3.1), so the shared row a game reads at hop h is byte-for-byte the row
a private copy would hold.  Second, a game transcript is a pure
function of its root and of the residual adjacency rows restricted to
its explored set (the same purity argument
:class:`~repro.core.columnar_rounds.GameCache` relies on across
rounds); the arena reproduces those rows verbatim and per-game slot
state is disjoint by construction (slots are keyed by the pair
``game · n + vertex``), so no game can observe another game's presence
and every transcript is unchanged.  What is *not* shared is anything
σ-dependent: σ_{S_v} ranks neighbors relative to the game-local
explored set, so σ-ranked forwarding sets are built per game (and only
for the rare holders with more than β+1 residual neighbors that
actually forward).

Exact incremental cascade replay
--------------------------------
The game is adaptive but *locally stable*: between consecutive
super-iterations the root drops the same x coins against the same
thresholds (residual degrees are fixed within a round), so a game's
interior coin flow is unchanged unless its explored ball actually grew
into it.  The engine exploits that with a per-cohort **replay arena**:
every super-iteration records its wave state — per hop, the forwarders,
their per-forward shares, and the per-forwarder segments of resolved
inside deliveries ``(dst slot, amount)`` — and the next super-iteration
replays all untouched interior flow straight from that snapshot (one
scatter per hop of the shared arrays; fully-clean pieces are reused
without copying) while *simulating only the perturbation cone*:

- **Seeds.**  The cone starts at the rows patched by the explore wave in
  between (the patch log of :meth:`_Lockstep._explore`): a snapshot
  forwarder whose row gained inside entries delivers the same
  per-neighbor share to each newly explored member (a *patch extra*) —
  nothing else about its forward changes, because shares are
  per-neighbor and the old entries' resolutions are untouched.
- **Propagation.**  A slot becomes *deviated* the moment its delivery
  stream differs from the snapshot — it receives a patch extra or a
  fresh-cone delivery, or a withheld segment skips it.  Deviated slots
  are threshold-tested at every subsequent receipt (the fresh engine's
  worklist invariant: amounts only change on receipt, so testing on
  receipt is exact; testing a slot that received nothing is a no-op
  because a resting slot is always below its threshold), and when they
  forward, they forward fresh — full row expansion against the current
  row arena.  Their own snapshot segments at later hops are withheld
  (subtracted back out of the hop's scatter) and marked stale in place,
  which is what makes deviation *transitive*: the recipients of a
  withheld segment deviate in turn.
- **Exactness.**  Clean slots follow the snapshot trajectory exactly by
  induction over hops (their inflow is bit-identical, thresholds are
  per-round constants, and coin values are scale-invariant exact
  rationals); deviated slots carry true amounts maintained by the same
  scatters a fresh run would perform.  Clean forwarders emit no touched
  vertices — every forwarder of the previous super-iteration emitted
  its whole outside set then, and all of it was explored and patched,
  so its rows hold no outside entries now (rows never regain ``-1``
  resolutions) — hence the touched set of a replayed super-iteration is
  produced entirely by the cone, exactly as a fresh run would produce
  it.

**Invalidation rules.**  A game leaves the replay arena (and re-runs
through the verbatim fresh engine, re-recording as it goes) when its
snapshot can no longer stand in for a fresh run:

- a >β+1-degree member forwarded (its σ-ranked forwarding set may shift
  as S_v grows — σ-dependent selections are never replayed);
- its cone demanded a coin-scale escalation mid-replay (a *redo*: the
  game's partial pass is discarded — its flow is per-game disjoint —
  and the fresh engine re-runs it from the super-iteration's start);
- it was ejected to the scalar bigint/Fraction escape hatch (the game
  drops out of the arena entirely and replays scalar-side);
- it retired (its segments are pruned so dying flow is not re-applied).

Snapshots are stored at each game's *final* coin scale of the recorded
super-iteration, padded by the largest ``lcm(1..β+1)`` power the word
budget allows: scale choice is invisible (coin values are exact
rationals at every scale), replaying at the final scale makes every
interior division exact by construction (escalation factors divide it),
and the padding clears the p-adic headroom cone divisions want, so
redos are rare.  Because replay reuse is workload-dependent — balls
that grow back-feed coins into the interior, and the deviation cascade
can cover most of the flow — an adaptive gate
(:data:`REPLAY_CONE_CUTOFF`) measures each wave's cone fraction and
drops a cohort back to the pure fresh engine when replay stops paying;
the gate chooses between two exact strategies, so every observable is
bit-identical for any gate decision, which the differential matrix
asserts over the full (store, engine, workers) space.

Coin representation
-------------------
Coins are exact scaled integers.  When the round's shared fixed scale
``lcm(1..β+1)^horizon`` (:func:`repro.lca.coin_game.fixed_coin_scale`)
fits the engine's machine-word budget, every game starts at that scale
and every share division is exact by construction — the escalation
machinery below never fires.  Past the budget (β = 9 at the default
horizon already needs ~180 bits) each game instead starts at scale 1
and escalates per hop by the smallest factor that clears that hop's
remainders — the dynamic policy of
:meth:`repro.lca.coin_game.CoinDroppingGame._forward_scaled_ints`,
vectorized with ``np.gcd``/``np.lcm.at`` — so amounts stay
machine-word-sized unless a game truly demands more.  Because every
representation is exact, thresholds, shares, and touched sets are
value-identical across all of them (the PR 3 differential tests pinned
this), so the choice is invisible to every observable.  A game whose
escalation would overflow the budget is *ejected*: the caller replays
it through the scalar engine, whose fixed-scale Python integers widen
to bigints (or to Fractions for deep horizons) — the per-game bigint
escape hatch.

When the full fixed scale does not fit, games do not start at scale 1
either: they start at the largest power ``lcm(1..β+1)^j`` that leaves
escalation headroom within the word budget.  Scale choice is invisible
(coin values are exact rationals at every scale), and the power-of-lcm
start clears the p-adic valuations any realistic division chain
acquires — a share division's denominator growth per hop divides
``lcm(1..β+1)`` — so escalations (and with them per-hop gcd/lcm work
and stamp normalization) essentially never fire outside adversarial
convergent-path constructions, which the backstop still handles
exactly.  All amounts are kept below 2^61 so every int64 product and
scatter-fold in the engine stays exact.
"""

from __future__ import annotations

import math
import time
from typing import NamedTuple

import numpy as np

__all__ = [
    "BatchedGamesInfo",
    "SCALE_LIMIT",
    "csr_transpose_positions",
    "play_games_batched",
    "replay_cone_fraction",
]


def replay_cone_fraction(stats: dict) -> float | None:
    """Fresh (perturbation-cone) share of a run's delivery volume.

    The one shared definition every reporting surface derives from
    (``BENCH_ampc.json``, ``BetaPartitionOutcome.round_reuse``,
    ``PartialPartitionLCA.last_replay_stats``): lower = more wave reuse;
    None when no deliveries were counted.  Note ``fresh_entries``
    includes the flow of games that ran fresh for *any* reason
    (σ-invalidated, snapshot-ineligible, redo re-runs — a redo game's
    partial replay-pass cone is also re-counted by its fresh re-run, so
    ``redo_games`` bounds that bias), which is exactly the "work the
    replay arena did not save" reading the counters are for.
    """
    replayed = stats.get("replayed_entries", 0)
    fresh = stats.get("fresh_entries", 0)
    total = replayed + fresh
    return round(fresh / total, 4) if total else None

_INF = float("inf")

# Amounts (and therefore scales, thresholds, and per-slot share sums) are
# kept strictly below 2**61: together with the mass-conservation bound
# (no slot ever holds more than the game's total x·scale), every int64
# sum, product, and scatter-add in the engine is overflow-free.
SCALE_LIMIT = 1 << 61

# np.lcm.at accumulates per-game escalation factors in int64; factors are
# lcms of divisor deficits <= beta+1, bounded by lcm(1..beta+1), which
# fits comfortably only up to beta+1 = 36 (lcm(1..36) ~ 1.4e14).  Larger
# betas fold their factors in Python bigints instead.
_VECTOR_LCM_MAX_BP1 = 36

# Adaptive replay gate: a cohort stops snapshotting and replaying once
# this many consecutive replayed super-iterations measured a perturbation
# cone above the cutoff fraction of the wave's delivery volume.  Replays
# at a large cone re-simulate most of the flow anyway and the snapshot
# bookkeeping then costs more than it saves, so the cohort falls back to
# the pure fresh engine — observables are identical either way (the gate
# only picks between two exact execution strategies).
REPLAY_CONE_CUTOFF = 0.35
REPLAY_POOR_STREAK = 1


class BatchedGamesInfo(NamedTuple):
    """Per-game outputs of one lockstep run (game order = ``roots`` order)."""

    reads: np.ndarray  # probe counts (0 at ejected games)
    writes: np.ndarray  # proof-entry writes (0 at ejected games)
    records: list | None  # replayable record tuples (None at ejected games)
    super_iterations: np.ndarray  # super-iterations played per game
    edges_seen: np.ndarray  # |E(G[S_v])| per game
    ejected: np.ndarray  # game indices the caller must replay scalar-side


_IOTA = np.empty(0, dtype=np.int64)


def _iota(total: int) -> np.ndarray:
    """Read-only ``arange(total)`` from a shared grow-once buffer."""
    global _IOTA
    if len(_IOTA) < total:
        _IOTA = np.arange(max(total, 2 * len(_IOTA), 4096), dtype=np.int64)
    return _IOTA[:total]


def _segment_indices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat gather indices for rows ``[starts[i], starts[i]+counts[i])``."""
    total = int(counts.sum())
    if not total:
        return np.empty(0, dtype=np.int64)
    out = np.repeat(starts - (np.cumsum(counts) - counts), counts)
    out += _iota(total)
    return out


def csr_transpose_positions(
    offsets: np.ndarray, targets: np.ndarray
) -> np.ndarray:
    """Position of each CSR entry's reverse: entry p = (v→w) ↦ (w→v).

    Rows are sorted and the edge set is symmetric, so sorting entries by
    (target, source) enumerates exactly the reverse entries in CSR
    order.  A per-round constant — this is what makes row-arena patches
    O(1) per entry (see the module docstring).
    """
    m = len(targets)
    src = np.repeat(
        np.arange(len(offsets) - 1, dtype=np.int64), np.diff(offsets)
    )
    transpose_pos = np.empty(m, dtype=np.int64)
    transpose_pos[np.lexsort((src, targets))] = np.arange(m, dtype=np.int64)
    return transpose_pos


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    """``np.unique`` via quicksort (much faster than the hash path here)."""
    if not values.size:
        return values
    ordered = np.sort(values)
    keep = np.empty(len(ordered), dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


def _grown(buf: np.ndarray, need: int, fill) -> np.ndarray:
    """``buf`` with capacity >= ``need`` (amortized doubling, contents kept).

    Arena arrays grow every explore wave; reallocating at exact size would
    copy the whole arena per wave.  New capacity is initialized to
    ``fill`` so buffer invariants (zeroed delta, -1 tags, ...) extend to
    fresh slots without per-wave resets.
    """
    if len(buf) >= need:
        return buf
    cap = max(need, 2 * len(buf), 1024)
    out = np.empty(cap, dtype=buf.dtype)
    out[: len(buf)] = buf
    out[len(buf):] = fill
    return out


class _Lockstep:
    """State and wave kernels of one batched run (see module docstring)."""

    def __init__(
        self,
        offsets: np.ndarray,
        targets: np.ndarray,
        roots: np.ndarray,
        x: int,
        beta: int,
        clip: int,
        horizon: int,
        scale: int | None,
        out_layer: np.ndarray,
        out_count: np.ndarray,
        want_records: bool,
        transpose_pos: np.ndarray | None = None,
        arena_hint: tuple[int, int] | None = None,
        cone_cutoff: float | None = None,
        poor_streak: int | None = None,
    ) -> None:
        self.arena_hint = arena_hint or (0, 0)
        # Adaptive-replay gate knobs: per-run overrides beat the module
        # constants (read here, at construction time, so monkeypatched
        # constants flow through when no override is given).
        self.cone_cutoff = (
            REPLAY_CONE_CUTOFF if cone_cutoff is None else cone_cutoff
        )
        self.poor_streak_limit = (
            REPLAY_POOR_STREAK if poor_streak is None else poor_streak
        )
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.targets = np.asarray(targets, dtype=np.int64)
        self.n = len(offsets) - 1
        self.deg = np.diff(self.offsets)
        self.num_games = len(roots)
        self.x = x
        self.beta = beta
        self.bp1 = beta + 1
        self.clip = clip
        self.horizon = horizon
        self.out_layer = out_layer
        self.out_count = out_count
        self.want_records = want_records

        self.scale_cap = SCALE_LIMIT // max(1, x * (beta + 2))
        self._lcm_base = math.lcm(*range(1, self.bp1 + 1)) if beta >= 1 else 1
        if scale is not None and scale <= self.scale_cap:
            self.init_scale = scale
        else:
            # Largest lcm(1..β+1) power that leaves two escalations of
            # headroom: clears every realistic denominator up front (see
            # module docstring) while the backstop still has room to fire.
            base = self._lcm_base
            headroom = self.scale_cap // (base * base) if base > 1 else 0
            init = 1
            while init * base <= headroom:
                init *= base
            self.init_scale = init

        # Per-game accumulators (game order = roots order).
        g = self.num_games
        self.reads = np.zeros(g, dtype=np.int64)
        self.writes = np.zeros(g, dtype=np.int64)
        self.super_iters = np.zeros(g, dtype=np.int64)
        self.edges_seen = np.zeros(g, dtype=np.int64)
        self.edge_dirs = np.zeros(g, dtype=np.int64)  # directed inside edges
        self.records: list | None = [None] * g if want_records else None
        self.active_mask = np.ones(g, dtype=bool)
        self.ejected: list[int] = []
        self.gscale = np.full(g, self.init_scale, dtype=np.int64)

        if transpose_pos is None:
            transpose_pos = csr_transpose_positions(self.offsets, self.targets)
        self.transpose_pos = transpose_pos

        # Member arena: slot -> (game, vertex, min(deg, β+1), forwarding
        # threshold, row region); append order within a game is the
        # scalar exploration order.  All arena arrays are capacity
        # buffers (amortized doubling); ``self.arena`` is the live count.
        # Capacity hints from the previous cohort's final sizes skip the
        # doubling-growth copy chain (cohorts of one fleet end up with
        # similar arena footprints).
        slot_hint, row_hint = self.arena_hint
        self.arena = 0
        self.mem_game = np.empty(slot_hint, dtype=np.int64)
        self.mem_vertex = np.empty(slot_hint, dtype=np.int64)
        self.mem_kcap = np.empty(slot_hint, dtype=np.int64)
        self.mem_thresh = np.empty(slot_hint, dtype=np.int64)
        self.mem_high = np.empty(slot_hint, dtype=bool)
        self.region_start = np.empty(slot_hint, dtype=np.int64)
        self.row_len = 0
        # Row arena: per-slot view of its CSR row, each entry resolved to
        # the in-game destination slot or -1 (outside S_v); target
        # vertices are read off the CSR itself via each slot's fixed
        # arena→CSR offset, never copied.
        self.row_dst = np.empty(row_hint, dtype=np.int64)
        # Membership index: fused keys game*n+vertex, sorted, with the
        # owning slot as payload (sentinel keeps searches in-bounds).
        # Queried only at exploration time — the engine's single largest
        # search volume — so keys narrow to int32 whenever the fused key
        # space fits (half the memory traffic per binary-search level).
        self.key32 = self.num_games * self.n < 2**31 - 1
        key_dtype = np.int32 if self.key32 else np.int64
        sentinel = 2**31 - 1 if self.key32 else 1 << 62
        self.skeys = np.asarray([sentinel], dtype=key_dtype)
        self.sslots = np.asarray([-1], dtype=np.int64)
        self._targets_k = self.targets.astype(key_dtype, copy=False)

        # Per-super-iteration coin state and scratch buffers, capacity
        # grown with the arena.  Invariants between waves: amounts/delta/
        # countbuf all zero, tagbuf all -1, emit/devbuf all False, sigbuf
        # all +inf — each consumer restores what it dirtied.
        self.amounts = np.empty(0, dtype=np.int64)
        self.stamps = np.empty(0, dtype=np.int64)
        self.delta = np.empty(0, dtype=np.int64)
        self.tagbuf = np.empty(0, dtype=np.int64)
        self.emit = np.empty(0, dtype=bool)
        self.devbuf = np.empty(0, dtype=bool)
        self.patch_done = np.empty(0, dtype=bool)
        self.sigbuf = np.empty(0)
        self.countbuf = np.empty(0, dtype=np.int64)

        # Deferred retirement: games stop participating the moment their
        # super-iteration touches nothing, but their final σ-peel, layer
        # fold, and record construction happen once, in one batch, at the
        # end of the run (a retired game's slots and rows never change
        # again, so σ_{S_v} is the same either way).
        self.retired: list[np.ndarray] = []

        # Replay arena (see "Exact incremental cascade replay" in the
        # module docstring): wave-state snapshot of the previous
        # super-iteration, per-game replay validity and coin scales, and
        # the patch log of the explore wave in between.
        self.snap_hops: list[tuple] | None = None
        self.snap_scale = np.full(g, self.init_scale, dtype=np.int64)
        self.snap_ok = np.zeros(g, dtype=bool)
        self.next_ok = np.ones(g, dtype=bool)
        self.replay_enabled = True
        self.patched_flag = np.zeros(slot_hint, dtype=bool)
        self._patch_slots = np.empty(0, dtype=np.int64)
        self._patch_offsets = np.zeros(1, dtype=np.int64)
        self._patch_dst = np.empty(0, dtype=np.int64)
        self.stats: dict | None = None

        self._explore(np.arange(g, dtype=np.int64) * self.n + roots)

    # -- exploration ------------------------------------------------------

    def _explore(self, keys: np.ndarray) -> None:
        """Add the (game, vertex) pairs in ``keys`` (unique, sorted) to S.

        Charges the probe reads, claims arena slots, merges the
        membership index, materializes the new rows into the row arena,
        and patches older rows whose entries just became inside — the
        one place in the engine that performs membership resolution.
        """
        n = self.n
        g_new = keys // n
        v_new = keys % n
        cnt = self.deg[v_new]
        # g_new is sorted (keys are), so a bincount fold beats np.add.at.
        self.reads += np.bincount(
            g_new, weights=1 + cnt, minlength=self.num_games
        ).astype(np.int64)

        first = self.arena
        self.arena = first + len(keys)
        self.mem_game = _grown(self.mem_game, self.arena, 0)
        self.mem_vertex = _grown(self.mem_vertex, self.arena, 0)
        self.mem_kcap = _grown(self.mem_kcap, self.arena, 0)
        self.mem_thresh = _grown(self.mem_thresh, self.arena, 0)
        self.mem_high = _grown(self.mem_high, self.arena, False)
        self.region_start = _grown(self.region_start, self.arena, 0)
        self.patched_flag = _grown(self.patched_flag, self.arena, False)
        kcap = np.minimum(cnt, self.bp1)
        thresh = kcap * self.init_scale
        thresh[cnt == 0] = 1 << 62  # isolated root: unreachable sentinel
        self.mem_game[first:self.arena] = g_new
        self.mem_vertex[first:self.arena] = v_new
        self.mem_kcap[first:self.arena] = kcap
        self.mem_thresh[first:self.arena] = thresh
        self.mem_high[first:self.arena] = cnt > self.bp1
        self.region_start[first:self.arena] = self.row_len + np.cumsum(cnt) - cnt
        row_first = self.row_len
        self.row_len += int(cnt.sum())
        self.row_dst = _grown(self.row_dst, self.row_len, -1)

        new_slots = np.arange(first, self.arena, dtype=np.int64)
        key_dtype = self.skeys.dtype
        keys_k = keys.astype(key_dtype, copy=False)
        ins = np.searchsorted(self.skeys, keys_k)
        merged_len = len(self.skeys) + len(keys)
        at = ins + _iota(len(keys))
        put = np.ones(merged_len, dtype=bool)
        put[at] = False
        merged_keys = np.empty(merged_len, dtype=key_dtype)
        merged_slots = np.empty(merged_len, dtype=np.int64)
        merged_keys[at] = keys_k
        merged_keys[put] = self.skeys
        merged_slots[at] = new_slots
        merged_slots[put] = self.sslots
        self.skeys = merged_keys
        self.sslots = merged_slots

        # Classify the new rows: queries are grouped by game and the
        # fused keys cluster by game, so the searches stay cache-hot.
        member_idx = np.repeat(np.arange(len(keys), dtype=np.int64), cnt)
        csr_pos = _segment_indices(self.offsets[v_new], cnt)
        qkeys = self._targets_k[csr_pos]
        qkeys += (g_new * n).astype(key_dtype, copy=False)[member_idx]
        pos = np.searchsorted(self.skeys, qkeys)
        hit = self.skeys[pos] == qkeys
        dst = np.full(len(qkeys), -1, dtype=np.int64)
        dst[hit] = self.sslots[pos[hit]]
        self.row_dst[row_first:self.row_len] = dst

        # Patch the reverse entries of rows claimed in earlier waves
        # (same-wave pairs classify each other's entries directly), and
        # log the patches: they are this explore's perturbation seeds —
        # exactly the row entries whose delivery destination changes
        # between the previous super-iteration and the next one.
        self.patched_flag[self._patch_slots] = False
        old = (dst >= 0) & (dst < first)
        if old.any():
            du = dst[old]
            patch_pos = (
                self.transpose_pos[csr_pos[old]]
                - self.offsets[self.mem_vertex[du]]
                + self.region_start[du]
            )
            patch_dst = first + member_idx[old]
            self.row_dst[patch_pos] = patch_dst
            self.edge_dirs += np.bincount(
                self.mem_game[du], minlength=self.num_games
            )
            # Patch log grouped by patched slot (stable order within).
            order = np.argsort(du, kind="stable")
            du_sorted = du[order]
            bounds = np.flatnonzero(
                np.diff(du_sorted, prepend=du_sorted[0] - 1)
            )
            self._patch_slots = du_sorted[bounds]
            self._patch_offsets = np.append(bounds, len(du_sorted))
            self._patch_dst = patch_dst[order]
            self.patched_flag[self._patch_slots] = True
        else:
            self._patch_slots = np.empty(0, dtype=np.int64)
            self._patch_offsets = np.zeros(1, dtype=np.int64)
            self._patch_dst = np.empty(0, dtype=np.int64)
        if hit.any():
            self.edge_dirs += np.bincount(
                g_new[member_idx[hit]], minlength=self.num_games
            )

    # -- σ-peel (shared by retirement and mid-flight σ-ranking) -----------

    def _ensure_buffers(self) -> None:
        arena = max(self.arena, self.arena_hint[0])
        if len(self.amounts) < arena:
            self.amounts = _grown(self.amounts, arena, 0)
            self.stamps = _grown(self.stamps, arena, self.init_scale)
            self.delta = _grown(self.delta, arena, 0)
            self.tagbuf = _grown(self.tagbuf, arena, -1)
            self.emit = _grown(self.emit, arena, False)
            self.devbuf = _grown(self.devbuf, arena, False)
            self.patch_done = _grown(self.patch_done, arena, False)
            self.sigbuf = _grown(self.sigbuf, arena, _INF)
            self.countbuf = _grown(self.countbuf, arena, 0)

    def _dedup(self, slots: np.ndarray) -> np.ndarray:
        """Distinct entries of ``slots`` without sorting or arena scans.

        Scatter each position into the tag buffer (last write per slot
        wins), keep exactly the winners, reset.  Deterministic, and
        orders of magnitude cheaper than ``np.unique`` at per-hop sizes.
        """
        tag = self.tagbuf
        seq = _iota(len(slots))
        tag[slots] = seq
        out = slots[tag[slots] == seq]
        tag[out] = -1
        return out

    def _peel_games(self, games: np.ndarray):
        """σ_{S_v,β} for a cohort, via synchronous lockstep peeling.

        Returns ``(slots, game_per_slot, vertex_per_slot, sigma,
        directed_edge_count_per_game)`` with slots in arena order — the
        batched counterpart of
        :func:`repro.core.columnar_rounds._induced_sigma` for every game
        at once (a game with an exhausted frontier receives no
        decrements, so the global layer index advances each game exactly
        as its private peel would).  Inside adjacency comes straight
        from the row arena; no membership work happens here.
        """
        self._ensure_buffers()
        in_cohort = np.zeros(self.num_games, dtype=bool)
        in_cohort[games] = True
        sel = np.flatnonzero(in_cohort[self.mem_game[:self.arena]])
        gg = self.mem_game[sel]
        vv = self.mem_vertex[sel]
        dd = self.deg[vv]
        sigbuf, countbuf = self.sigbuf, self.countbuf
        countbuf[sel] = dd
        frontier = sel[dd <= self.beta]
        layer = 0
        while frontier.size:
            sigbuf[frontier] = layer
            dsts = self._inside_neighbors(frontier)
            if dsts.size:
                np.subtract.at(countbuf, dsts, 1)
                frontier = self._dedup(dsts[
                    np.isinf(sigbuf[dsts]) & (countbuf[dsts] <= self.beta)
                ])
            else:
                frontier = np.empty(0, dtype=np.int64)
            layer += 1
        sigma = sigbuf[sel].copy()
        sigbuf[sel] = _INF  # reset shared buffers for the next cohort
        countbuf[sel] = 0
        return sel, gg, vv, sigma, self.edge_dirs[games]

    def _inside_neighbors(self, slots: np.ndarray) -> np.ndarray:
        """Destination slots of every inside row entry of ``slots``."""
        idx = _segment_indices(
            self.region_start[slots], self.deg[self.mem_vertex[slots]]
        )
        dsts = self.row_dst[idx]
        return dsts[dsts >= 0]

    def _sigma_by_slot(self) -> np.ndarray:
        """σ of every member of an active game that owns a >β+1-degree slot.

        One cohort peel covers every game that could demand a σ-ranking
        this super-iteration; scattering the result by arena slot makes
        the per-hop forwarding-set builds pure gathers.  Eagerness is
        invisible: σ depends only on S_v (constant within the
        super-iteration), costs no probes, and games without high-degree
        members are excluded.
        """
        need = (
            self.mem_high[:self.arena]
            & self.active_mask[self.mem_game[:self.arena]]
        )
        sigma_by_slot = np.full(self.arena, _INF)
        games = _sorted_unique(self.mem_game[:self.arena][need])
        if games.size:
            sel, __g, __v, sigma, __e = self._peel_games(games)
            sigma_by_slot[sel] = sigma
        return sigma_by_slot

    def _build_fsets(
        self, need_slots: np.ndarray, sigma_by_slot: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """σ-top-(β+1) forwarding sets for >β+1-degree slots, batched.

        Definition 4.1 with the scalar oracle's deterministic tie-break:
        highest σ-layer first (∞ — unexplored or unlayered — counts
        highest), then unexplored before explored, then low vertex id.
        One lexsort ranks every slot's row at once; rows all exceed β+1
        entries, so the result is a pair of dense
        ``(len(need_slots), β+1)`` matrices (targets and their resolved
        destination slots) in rank order.
        """
        vv = self.mem_vertex[need_slots]
        cnt = self.deg[vv]
        idx = _segment_indices(self.region_start[need_slots], cnt)
        base = self.offsets[vv] - self.region_start[need_slots]
        row_t = self.targets[idx + np.repeat(base, cnt)]
        row_d = self.row_dst[idx]
        member = row_d >= 0
        lay = np.full(len(row_t), _INF)
        lay[member] = sigma_by_slot[row_d[member]]
        layer_rank = np.where(np.isinf(lay), -_INF, -lay)
        seg = np.repeat(np.arange(len(need_slots)), cnt)
        order = np.lexsort((row_t, member, layer_rank, seg))
        starts = np.cumsum(cnt) - cnt
        rank = np.arange(len(row_t)) - np.repeat(starts, cnt)
        pick = order[rank < self.bp1]
        return (
            row_t[pick].reshape(-1, self.bp1),
            row_d[pick].reshape(-1, self.bp1),
        )

    # -- retirement -------------------------------------------------------

    def _retire(self, games: np.ndarray, performed: int) -> None:
        """Mark ``games`` retired; the σ-peel and fold are deferred.

        A retired game's slots, rows, and inside-edge counts never change
        again (its game gets no new members, and patches are per-game),
        so its final σ_{S_v} can be computed at any later point — the run
        computes every retired game's σ in one batched peel at the end
        (:meth:`_retire_finalize`), instead of one peel per wave.
        """
        self.super_iters[games] = performed
        self.active_mask[games] = False
        self.retired.append(games)
        if self.snap_hops is not None:
            self._prune_snapshot(games)

    def _prune_snapshot(self, games: np.ndarray) -> None:
        """Mark ``games``' wave segments stale (their flow is over).

        Without this, a retirement wave leaves the bulk of a snapshot's
        volume to be applied and subtracted back out once before
        compaction evicts it.
        """
        flag = np.zeros(self.num_games, dtype=bool)
        flag[games] = True
        for hop in self.snap_hops:
            kept_pieces = []
            changed = False
            for piece in hop:
                stale = flag[self.mem_game[piece[0]]]
                if stale.any():
                    changed = True
                    if piece[6] is None:
                        piece[6] = stale
                    else:
                        piece[6] |= stale
                    if piece[6].all():
                        continue
                kept_pieces.append(piece)
            if changed:
                hop[:] = self._maybe_compact(kept_pieces)

    def _maybe_compact(self, ps: list) -> list:
        """Compaction policy: bound dead entry volume and piece count.

        Dead segments are re-applied and subtracted back out on every
        replay until evicted, and every piece pays a per-hop mask scan,
        so both are kept small.
        """
        dead_entries = sum(
            int(p[2][p[6]].sum()) for p in ps if p[6] is not None
        )
        entry_total = sum(len(p[4]) for p in ps)
        if entry_total and (len(ps) > 4 or dead_entries * 4 > entry_total):
            ps = [self._compact_pieces(ps)]
            ps = [p for p in ps if len(p[0])]
        return ps

    def _retire_finalize(self) -> None:
        """One batched σ-peel + layer fold + records for all retirees."""
        if not self.retired:
            return
        games = np.concatenate(self.retired)
        self.retired = []
        sel, gg, vv, sigma, edge_counts = self._peel_games(games)
        prov = sigma <= self.clip  # ∞ never passes; proofs clipped (Lemma 4.4)
        pv, pl = vv[prov], sigma[prov]
        if pv.size:
            np.minimum.at(self.out_layer, pv, pl)
            np.add.at(self.out_count, pv, 1)
        self.writes += np.bincount(gg[prov], minlength=self.num_games)
        self.edges_seen[games] = edge_counts // 2
        if self.records is not None:
            games = np.sort(games)
            order = np.argsort(gg, kind="stable")  # group by game, keep
            gg2 = gg[order]                        # exploration order
            vv2 = vv[order]
            sg2 = sigma[order]
            prov2 = sg2 <= self.clip
            pv2, pl2 = vv2[prov2], sg2[prov2].astype(np.int64)
            bounds = np.searchsorted(gg2, games)
            ends = np.append(bounds[1:], len(gg2))
            pbounds = np.searchsorted(gg2[prov2], games)
            pends = np.append(pbounds[1:], len(pv2))
            for gi, b0, b1, p0, p1 in zip(
                games.tolist(), bounds.tolist(), ends.tolist(),
                pbounds.tolist(), pends.tolist(),
            ):
                proof = list(zip(pv2[p0:p1].tolist(), pl2[p0:p1].tolist()))
                self.records[gi] = (
                    vv2[b0:b1].tolist(),
                    proof,
                    int(self.reads[gi]),
                    int(self.writes[gi]),
                )

    # -- incremental cascade replay ---------------------------------------

    def _replay_pass(
        self, rep: np.ndarray, record: list
    ) -> tuple[np.ndarray, np.ndarray]:
        """Replay one super-iteration for the snapshot-valid games ``rep``.

        Untouched interior flow is applied straight from the wave
        snapshot (per-hop masked scatters — no row gathers, no threshold
        tests, no division); only the perturbation cone simulates:
        patch-extra deliveries into newly explored members, and the
        fresh cascades those seeds grow (tracked by per-slot deviation
        flags).  Every game runs at its snapshot's padded final scale,
        so interior divisions are exact by construction; a game whose
        *cone* demands a scale escalation is handed back (``redo``) and
        re-runs through the fresh engine from scratch — see the module
        docstring for why each piece is exact.

        Appends this super-iteration's wave pieces per hop to ``record``
        and returns ``(touched keys, redo game indices)``.
        """
        self._ensure_buffers()
        stats = self.stats
        sc = self.snap_scale
        n = self.n
        mem_game = self.mem_game
        mem_kcap = self.mem_kcap
        rep_sel = np.zeros(self.num_games, dtype=bool)
        rep_sel[rep] = True
        redo_flag = np.zeros(self.num_games, dtype=bool)
        any_redo = False
        self.amounts[:self.arena] = 0
        self.amounts[rep] = self.x * sc[rep]  # root slot g == g
        dev = self.devbuf
        dev_marked: list[np.ndarray] = []
        fresh_hot = np.empty(0, dtype=np.int64)
        touched_chunks: list[np.ndarray] = []
        emitted: list[np.ndarray] = []
        sigma_by_slot: np.ndarray | None = None
        fsets: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        snap_hops = self.snap_hops
        replayed_waves = replayed_entries = fresh_entries = 0
        hop_patched: list[np.ndarray] = []

        for h in range(self.horizon):
            pieces: list[tuple] = []
            # Fresh (cone) side first: threshold tests on deviated slots
            # that received a real delivery last hop.  Remainders here
            # mean the cone left the scale headroom the snapshot scale
            # guarantees for interior flow — those games redo fresh, and
            # the redo marking must land before this hop's snapshot
            # masks so none of their interior flow is applied.
            fwd_f = np.empty(0, dtype=np.int64)
            shares_f = fgame_f = None
            if fresh_hot.size:
                if any_redo:
                    fresh_hot = fresh_hot[~redo_flag[mem_game[fresh_hot]]]
                amt = self.amounts[fresh_hot]
                k = mem_kcap[fresh_hot]
                can = (k > 0) & (amt >= k * sc[mem_game[fresh_hot]])
                fwd_f = fresh_hot[can]
            if fwd_f.size:
                famt = self.amounts[fwd_f]
                fk = mem_kcap[fwd_f]
                fgame_f = mem_game[fwd_f]
                shares_f, rem = np.divmod(famt, fk)
                if rem.any():
                    bad = _sorted_unique(fgame_f[rem > 0])
                    redo_flag[bad] = True
                    rep_sel[bad] = False
                    any_redo = True
                    keep = ~redo_flag[fgame_f]
                    fwd_f = fwd_f[keep]
                    shares_f = shares_f[keep]
                    fgame_f = fgame_f[keep]

            # Clean side: apply the snapshot's hop.  A piece whose live
            # segments are all clean applies *as is* — one scatter of the
            # shared arena arrays, no copies.  Segments of deviated
            # forwarders (and of games that lost replay eligibility) are
            # materialized individually and subtracted back out, then
            # marked dead in place — the piece stays shared and the
            # exclusion compounds into every later replay of it.
            # Recipients of withheld segments deviate but are not tested
            # (they did not receive — the fresh engine's worklist
            # invariant); recipients of dead segments were handled the
            # hop they died.
            # Scan the snapshot's pieces first — decide per segment
            # whether it replays, goes stale, or is withheld — without
            # touching coin state: the hop's forwarding decisions are
            # simultaneous, so the withheld-recipient deviation marks of
            # one piece must not leak into another piece's mask for the
            # same hop.
            any_clean = False
            applies: list[tuple] = []
            lost_chunks: list[np.ndarray] = []
            p_hot_chunks: list[np.ndarray] = []
            cdev_chunks: list[np.ndarray] = []
            if snap_hops is not None and h < len(snap_hops):
                for piece in snap_hops[h]:
                    sfwd, sshare, scnt, sstart, sdst, sval, sdead = piece
                    elig = rep_sel[mem_game[sfwd]]
                    if sdead is not None:
                        elig &= ~sdead
                    ok = elig & ~dev[sfwd]
                    lost_mask = elig & ~ok
                    if lost_mask.any():
                        nk = np.flatnonzero(lost_mask)
                        lost_chunks.append(
                            sdst[_segment_indices(sstart[nk], scnt[nk])]
                        )
                    if not ok.any():
                        continue  # piece drops out of the next snapshot
                    any_clean = True
                    applies.append((piece, ok))
            if not any_clean and not fwd_f.size:
                for lost in lost_chunks:
                    dev[lost] = True
                    dev_marked.append(lost)
                break

            # All of the hop's forwarders forward everything they hold
            # *before* any delivery lands — the fresh engine's intra-hop
            # order.
            for piece, ok in applies:
                self.amounts[piece[0][ok]] = 0
            if fwd_f.size:
                self.amounts[fwd_f] = 0

            if any_clean:
                replayed_waves += 1
            for piece, ok in applies:
                sfwd, sshare, scnt, sstart, sdst, sval, __ = piece
                np.add.at(self.amounts, sdst, sval)
                replayed_entries += len(sdst)
                excl = ~ok
                if excl.any():
                    nk = np.flatnonzero(excl)
                    ex_idx = _segment_indices(sstart[nk], scnt[nk])
                    # Apply-and-undo of withheld/dead segments is pure
                    # overhead, not reuse: keep it out of the counters
                    # (and so out of the adaptive gate's cone measure).
                    replayed_entries -= len(ex_idx)
                    np.subtract.at(self.amounts, sdst[ex_idx], sval[ex_idx])
                    # Everything not applied this super-iteration is
                    # stale forever (the snapshot is always *last*
                    # super-iteration's flow): the exclusion compounds
                    # in place on the shared piece.
                    piece[6] = excl
                pieces.append(piece)
                cdev_chunks.append(sdst)
                # Patch extras: a clean forwarder whose row gained inside
                # entries since the snapshot delivers the same per-member
                # share to each newly explored neighbor (those entries'
                # resolutions flipped from outside to a new slot; shares
                # are per-neighbor, so nothing else about its forward
                # changes).  ``patch_done`` dedups per hop: snapshot
                # pieces may list one slot several times within a hop
                # (earlier patch pieces), with equal shares by
                # construction.
                kept = sfwd[ok]
                pf = np.flatnonzero(self.patched_flag[kept])
                if pf.size:
                    tag = self.tagbuf
                    cand = kept[pf]
                    seq = np.arange(len(cand), dtype=np.int64)
                    tag[cand] = seq
                    first = tag[cand] == seq
                    tag[cand] = -1
                    pf = pf[first]
                    pf = pf[~self.patch_done[kept[pf]]]
                    p_slots = kept[pf]
                    p_share = sshare[ok][pf]
                    if p_slots.size:
                        self.patch_done[p_slots] = True
                        hop_patched.append(p_slots)
                        pos = np.searchsorted(self._patch_slots, p_slots)
                        pcnt = (
                            self._patch_offsets[pos + 1]
                            - self._patch_offsets[pos]
                        )
                        pidx = _segment_indices(
                            self._patch_offsets[pos], pcnt
                        )
                        p_dst = self._patch_dst[pidx]
                        p_val = np.repeat(p_share, pcnt)
                        np.add.at(self.amounts, p_dst, p_val)
                        dev[p_dst] = True
                        p_hot = self._dedup(p_dst)
                        dev_marked.append(p_hot)
                        p_hot_chunks.append(p_hot)
                        fresh_entries += len(p_dst)
                        pieces.append([
                            p_slots, p_share, pcnt,
                            np.cumsum(pcnt) - pcnt, p_dst, p_val, None,
                        ])
            for lost in lost_chunks:
                dev[lost] = True
                dev_marked.append(lost)
            for chunk in hop_patched:
                self.patch_done[chunk] = False
            hop_patched.clear()

            f_hot = np.empty(0, dtype=np.int64)
            if fwd_f.size:
                fr = ~self.emit[fwd_f]
                if fr.any():
                    newly = fwd_f[fr]
                    self.emit[newly] = True
                    emitted.append(newly)
                ds, sh2, tk, sigma_by_slot, seg = self._expand(
                    fwd_f, shares_f, fgame_f, fr, fsets, sigma_by_slot,
                    want_seg=True,
                )
                if tk is not None:
                    touched_chunks.append(tk)
                cnt_o = seg[2]
                pieces.append([
                    seg[0], seg[1], cnt_o, np.cumsum(cnt_o) - cnt_o,
                    ds, sh2, None,
                ])
                fresh_entries += len(ds)
                if ds.size:
                    np.add.at(self.amounts, ds, sh2)
                    f_hot = self._dedup(ds)
                    dev[f_hot] = True
                    dev_marked.append(f_hot)

            # Worklist: deviated slots are threshold-tested after *every*
            # receipt — fresh, patch-extra, or clean (a deviated slot's
            # amount differs from the snapshot trajectory, so its
            # forwarding schedule is no longer the snapshot's; clean
            # recipients that never deviated keep following the snapshot
            # and need no test).  Testing a slot that received nothing is
            # sound — it rests below its threshold (else it would have
            # forwarded at its last receipt) — so the withheld/dead
            # entries inside ``cdev_chunks`` cost a no-op test at most.
            hots = list(p_hot_chunks)
            if f_hot.size:
                hots.append(f_hot)
            for chunk in cdev_chunks:
                cdev = chunk[dev[chunk]]
                if cdev.size:
                    hots.append(self._dedup(cdev))
            if len(hots) > 1:
                fresh_hot = self._dedup(np.concatenate(hots))
            elif hots:
                fresh_hot = hots[0]
            else:
                fresh_hot = np.empty(0, dtype=np.int64)
            record.append(pieces)

        for chunk in dev_marked:
            dev[chunk] = False
        for chunk in emitted:
            self.emit[chunk] = False
        # The adaptive gate judges the replay pass on its own numbers:
        # the whole-wave counters also include games that ran fresh for
        # unrelated reasons (σ-invalidated, snapshot-ineligible).
        self._last_replay_cone = (replayed_entries, fresh_entries)
        if stats is not None:
            stats["replayed_waves"] = (
                stats.get("replayed_waves", 0) + replayed_waves
            )
            stats["replayed_entries"] = (
                stats.get("replayed_entries", 0) + replayed_entries
            )
            stats["fresh_entries"] = (
                stats.get("fresh_entries", 0) + fresh_entries
            )
            stats["redo_games"] = (
                stats.get("redo_games", 0) + int(redo_flag.sum())
            )
        redo = np.flatnonzero(redo_flag)
        if not touched_chunks:
            return np.empty(0, dtype=np.int64), redo
        return _sorted_unique(np.concatenate(touched_chunks)), redo

    def _finalize_snapshot(
        self,
        record: list,
        fresh_record: list | None,
        redo: np.ndarray,
        fresh_games: np.ndarray,
        rep: np.ndarray,
    ) -> None:
        """Merge this super-iteration's wave pieces into the next snapshot.

        Fresh-engine pieces are renormalized from their per-hop recording
        scales to each game's final scale, padded by the largest
        ``lcm(1..β+1)`` power that keeps ``x·(β+2)·scale`` inside the
        machine-word budget — the padding clears the p-adic headroom the
        next super-iteration's cone divisions will want, so replays
        rarely hand games back for a fresh redo.  Pieces recorded by the
        replay pass are already at those scales (clean-replay games never
        change scale); segments of redo games are dropped in favor of
        their fresh re-recording.
        """
        if redo.size:
            # A redo game's partial replay-pass pieces are superseded by
            # its fresh re-recording: its segments go stale in place.
            rflag = np.zeros(self.num_games, dtype=bool)
            rflag[redo] = True
            for hop in record:
                for piece in hop:
                    stale = rflag[self.mem_game[piece[0]]]
                    if stale.any():
                        if piece[6] is None:
                            piece[6] = stale
                        else:
                            piece[6] |= stale
        if fresh_games.size and fresh_record:
            esc_any = any(
                piece[7] is not None for hop in fresh_record for piece in hop
            )
            final = np.full(self.num_games, self.init_scale, dtype=np.int64)
            if esc_any:
                final[fresh_games] = self.gscale[fresh_games]
            # Pad with lcm powers while the word budget allows: the
            # headroom clears the cone divisions of coming replays.
            base = self._lcm_base
            if 1 < base <= self.scale_cap:
                limit = self.scale_cap // base
                padded = final[fresh_games]
                while True:
                    can = padded <= limit
                    if not can.any():
                        break
                    padded[can] *= base
                final[fresh_games] = padded
            self.snap_scale[fresh_games] = final[fresh_games]
            for hop in fresh_record:
                for piece in hop:
                    fwd, share, cnt = piece[0], piece[1], piece[2]
                    hs = piece[7]
                    fg = self.mem_game[fwd]
                    hop_scale = hs[fg] if hs is not None else self.init_scale
                    ratio = final[fg] // hop_scale
                    if (ratio != 1).any():
                        piece[1] = share * ratio
                        piece[5] = piece[5] * np.repeat(ratio, cnt)
                    piece[7] = None
        merged: list[list] = []
        n_hops = max(len(record), len(fresh_record or []))
        # (compaction below bounds both the piece count per hop and the
        # dead-segment fraction, so replays stay O(live flow).)
        for h in range(n_hops):
            ps = list(record[h]) if h < len(record) else []
            if fresh_record and h < len(fresh_record):
                ps.extend(p[:7] for p in fresh_record[h])
            ps = [p for p in ps if len(p[0])]
            merged.append(self._maybe_compact(ps))
        self.snap_hops = merged
        # Eligibility for the next super-iteration: a game replays iff it
        # was recorded this wave (clean replay or fresh run), no
        # >β+1-degree holder of it forwarded (σ-dependence), and it was
        # not ejected mid-wave.  Redo games re-recorded fresh, so they
        # are eligible again through ``fresh_games``.
        self.snap_ok[:] = False
        for arr in (rep, fresh_games):
            if arr.size:
                self.snap_ok[arr] = (
                    self.next_ok[arr] & self.active_mask[arr]
                )

    def _compact_pieces(self, pieces: list) -> list:
        """One piece holding every live segment of ``pieces`` (dead dropped)."""
        fwds, shares, cnts, dsts, vals = [], [], [], [], []
        for fwd, share, cnt, start, dst, val, dead in pieces:
            if dead is None or not dead.any():
                fwds.append(fwd)
                shares.append(share)
                cnts.append(cnt)
                dsts.append(dst)
                vals.append(val)
            else:
                keep = ~dead
                if not keep.any():
                    continue
                idx = _segment_indices(start[keep], cnt[keep])
                fwds.append(fwd[keep])
                shares.append(share[keep])
                cnts.append(cnt[keep])
                dsts.append(dst[idx])
                vals.append(val[idx])
        if not fwds:
            empty = np.empty(0, dtype=np.int64)
            return [empty, empty, empty, empty, empty, empty, None]
        cnt = np.concatenate(cnts)
        return [
            np.concatenate(fwds), np.concatenate(shares), cnt,
            np.cumsum(cnt) - cnt, np.concatenate(dsts),
            np.concatenate(vals), None,
        ]

    # -- the wave loop ----------------------------------------------------

    def run(
        self, phases: dict | None = None, stats: dict | None = None
    ) -> None:
        active = np.arange(self.num_games, dtype=np.int64)
        if self.scale_cap < 1:
            # No scaled-integer representation fits the word budget at
            # all (astronomical x): every game takes the escape hatch.
            self.ejected = active.tolist()
            self.active_mask[:] = False
            self.reads[:] = 0
            return
        # Counters always collected: the adaptive replay gate reads them.
        self.stats = {} if stats is None else stats
        self._poor_streak = 0
        self._replayed_rounds = 0
        self._last_replay_cone = (0, 0)
        if self.x * self.x < 2:
            self.replay_enabled = False  # single super-iteration: no reuse
        clock = time.perf_counter if phases is not None else None
        for s in range(self.x * self.x):
            if not active.size:
                break
            t0 = clock() if clock else 0.0
            touched = self._wave(active)
            if clock:
                phases["forward"] = phases.get("forward", 0.0) + clock() - t0
            active = active[self.active_mask[active]]  # drop mid-hop ejections
            if touched.size:
                touched = touched[self.active_mask[touched // self.n]]
            growing = (
                _sorted_unique(touched // self.n)
                if touched.size
                else np.empty(0, dtype=np.int64)
            )
            done = np.setdiff1d(active, growing, assume_unique=True)
            if done.size:
                self._retire(done, s + 1)
            active = growing
            if touched.size:
                t0 = clock() if clock else 0.0
                self._explore(touched)
                if clock:
                    phases["explore"] = (
                        phases.get("explore", 0.0) + clock() - t0
                    )
        if active.size:
            self._retire(active, self.x * self.x)
        t0 = clock() if clock else 0.0
        self._retire_finalize()
        if clock:
            phases["fold"] = phases.get("fold", 0.0) + clock() - t0
        self.reads[self.ejected] = 0
        self.writes[self.ejected] = 0
        self.super_iters[self.ejected] = 0
        self.edges_seen[self.ejected] = 0

    def _wave(self, active: np.ndarray) -> np.ndarray:
        """One super-iteration for every game in ``active``.

        Dispatches between the replay pass (games with a valid wave
        snapshot: untouched interior flow replays as array copies, only
        the perturbation cone simulates) and the fresh engine (everything
        else, including games the replay pass hands back because their
        cone demanded a scale escalation).  Both passes record the wave
        state they produce; :meth:`_finalize_snapshot` merges the pieces
        into the snapshot the *next* super-iteration replays from.
        """
        record: list[list] | None = [] if self.replay_enabled else None
        redo = np.empty(0, dtype=np.int64)
        touched_a = np.empty(0, dtype=np.int64)
        stats = self.stats
        if record is not None:
            self.next_ok[:] = True
        if self.snap_hops is not None and record is not None:
            rep = active[self.snap_ok[active]]
            fresh = active[~self.snap_ok[active]]
            if rep.size:
                touched_a, redo = self._replay_pass(rep, record)
                if redo.size:
                    fresh = np.sort(np.concatenate([fresh, redo]))
        else:
            rep = np.empty(0, dtype=np.int64)
            fresh = active
        fresh_record: list | None = [] if record is not None else None
        if fresh.size:
            touched_b = self._super_iteration(fresh, fresh_record)
            if touched_a.size:
                touched = _sorted_unique(
                    np.concatenate([touched_a, touched_b])
                )
            else:
                touched = touched_b
        else:
            touched = touched_a
        if record is not None:
            if rep.size:
                # Adaptive gate: measure the replay pass's own
                # perturbation cone (not the whole wave's fresh volume —
                # σ-invalidated and snapshot-ineligible games run fresh
                # for unrelated reasons); consistently large cones mean
                # replay re-simulates most of the flow while paying the
                # snapshot bookkeeping on top, so the cohort falls back
                # to the fresh engine.  The first replayed wave is never
                # judged — its snapshot is the initial cascade, which
                # barely reaches inside the one-hop balls, so its cone
                # reads high on every shape.
                self._replayed_rounds += 1
                wave_replayed, wave_fresh = self._last_replay_cone
                total = wave_fresh + wave_replayed
                if self._replayed_rounds >= 2 and total:
                    if wave_fresh > self.cone_cutoff * total:
                        self._poor_streak += 1
                    else:
                        self._poor_streak = 0
                if self._poor_streak >= self.poor_streak_limit:
                    self.replay_enabled = False
                    self.snap_hops = None
                    stats["replay_disabled"] = (
                        stats.get("replay_disabled", 0) + 1
                    )
                    return touched
            self._finalize_snapshot(record, fresh_record, redo, fresh, rep)
        return touched

    def _super_iteration(
        self, active: np.ndarray, record: list | None = None
    ) -> np.ndarray:
        """One fresh coin drop + forwarding cascade; returns touched keys.

        With ``record`` given, every hop's wave state — forwarders,
        per-forwarder shares, and the per-forwarder segments of resolved
        inside deliveries — is appended as ``(fwd, share, cnt, dst, val,
        hop_scale)`` pieces (``hop_scale`` is the per-game scale vector
        the values are expressed at, or None for the shared init scale);
        :meth:`_finalize_snapshot` normalizes them to each game's final
        scale so the next super-iteration can replay them verbatim.
        """
        self._ensure_buffers()
        stats = self.stats
        self.amounts[:self.arena] = 0
        self.amounts[active] = self.x * self.init_scale  # root slot g == g
        hot = active
        touched_chunks: list[np.ndarray] = []
        emitted: list[np.ndarray] = []
        # σ-ranked forwarding state, built lazily once per super-iteration
        # (σ and S_v are constant within one): σ scattered by arena slot,
        # then per-slot forwarding sets cached as they first forward.
        sigma_by_slot: np.ndarray | None = None
        fsets: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        # No game has escalated its scale yet: thresholds are the
        # precomputed per-slot k·init_scale and receipt merges skip
        # stamp normalization (ratios are all 1).  The lcm-power start
        # makes this the steady state (see module docstring).
        esc = False
        ej_dirty = False
        hops_run = 0

        for __ in range(self.horizon):
            if not hot.size:
                break
            if ej_dirty:
                hot = hot[self.active_mask[self.mem_game[hot]]]
            amt = self.amounts[hot]
            if not esc:
                can = amt >= self.mem_thresh[hot]
            else:
                k = self.mem_kcap[hot]
                can = (k > 0) & (amt >= k * self.gscale[self.mem_game[hot]])
            fwd = hot[can]
            if not fwd.size:
                break
            hops_run += 1
            famt = amt[can]
            fk = self.mem_kcap[fwd]
            fgame = self.mem_game[fwd]

            shares, rem = np.divmod(famt, fk)
            if rem.any():
                if not esc:
                    esc = True
                    self.gscale[:] = self.init_scale
                    self.stamps[:] = self.init_scale
                fwd, famt, fk, fgame, had_ejections = self._escalate(
                    fwd, famt, fk, fgame, rem
                )
                ej_dirty = ej_dirty or had_ejections
                if not fwd.size:
                    break
                shares = famt // fk  # exact by choice of escalation
            self.amounts[fwd] = 0

            fresh = ~self.emit[fwd]
            if fresh.any():
                newly = fwd[fresh]
                self.emit[newly] = True
                emitted.append(newly)

            ds, sh, touched, sigma_by_slot, seg = self._expand(
                fwd, shares, fgame, fresh, fsets, sigma_by_slot,
                want_seg=record is not None,
            )
            if record is not None:
                hop_scale = self.gscale.copy() if esc else None
                cnt_o = seg[2]
                record.append([[
                    seg[0], seg[1], cnt_o, np.cumsum(cnt_o) - cnt_o,
                    ds, sh, None, hop_scale,
                ]])
                if stats is not None:
                    stats["fresh_entries"] = (
                        stats.get("fresh_entries", 0) + len(ds)
                    )
            if touched is not None:
                touched_chunks.append(touched)
            if not ds.size:
                hot = np.empty(0, dtype=np.int64)
                continue
            np.add.at(self.delta, ds, sh)
            hot = self._dedup(ds)
            if not esc:
                self.amounts[hot] += self.delta[hot]
            else:
                gs = self.gscale[self.mem_game[hot]]
                self.amounts[hot] = (
                    self.amounts[hot] * (gs // self.stamps[hot])
                    + self.delta[hot]
                )
                self.stamps[hot] = gs
            self.delta[hot] = 0

        if stats is not None:
            stats["fresh_waves"] = stats.get("fresh_waves", 0) + hops_run
        for chunk in emitted:
            self.emit[chunk] = False
        if not touched_chunks:
            return np.empty(0, dtype=np.int64)
        return _sorted_unique(np.concatenate(touched_chunks))

    def _escalate(self, fwd, famt, fk, fgame, rem):
        """Raise per-game scales so every division of this hop is exact.

        The factor is the lcm of the per-division deficits |F|/gcd(a,|F|)
        (the dynamic policy of the scalar oracle); a game whose factor
        would push its scale past the word budget is ejected instead.
        """
        inexact = rem > 0
        need = fk[inexact] // np.gcd(rem[inexact], fk[inexact])
        esc_games = fgame[inexact]
        factors = np.ones(self.num_games, dtype=np.int64)
        if self.bp1 <= _VECTOR_LCM_MAX_BP1:
            np.lcm.at(factors, esc_games, need)
            bad_games = np.flatnonzero(factors > self.scale_cap // self.gscale)
        else:
            # Huge-β fallback: fold factors as Python bigints so the lcm
            # cannot silently wrap int64.
            folded: dict[int, int] = {}
            for gi, nd in zip(esc_games.tolist(), need.tolist()):
                folded[gi] = math.lcm(folded.get(gi, 1), nd)
            bad_list = []
            for gi, f in folded.items():
                if f > self.scale_cap // int(self.gscale[gi]):
                    bad_list.append(gi)
                else:
                    factors[gi] = f
            bad_games = np.asarray(sorted(bad_list), dtype=np.int64)
        had_ejections = bool(bad_games.size)
        if had_ejections:
            self.active_mask[bad_games] = False
            self.ejected.extend(bad_games.tolist())
            if self.bp1 <= _VECTOR_LCM_MAX_BP1:
                factors[bad_games] = 1
            keep = self.active_mask[fgame]
            fwd, famt, fk, fgame = (
                fwd[keep], famt[keep], fk[keep], fgame[keep]
            )
        grow = factors > 1
        if grow.any():
            self.gscale[grow] *= factors[grow]
            famt = famt * factors[fgame]
        return fwd, famt, fk, fgame, had_ejections

    def _expand(
        self, fwd, shares, fgame, fresh, fsets, sigma_by_slot,
        want_seg=False,
    ):
        """Forwarding targets: full rows for |adj| <= β+1, σ-top-(β+1) else.

        Pure row-arena gathers: inside deliveries come back as resolved
        destination slots with their shares; outside (touched) keys are
        emitted only on a slot's *first* forward of the super-iteration —
        its outside set is fixed within one, so later forwards re-touch
        the same vertices (set semantics make the skip exact).  σ is
        computed lazily — one batched cohort peel the first hop any
        >β+1-degree holder forwards (the batched counterpart of the
        scalar engine's lazy σ peel) — and forwarding sets are built in
        bulk for every such holder crossing its threshold this hop, then
        cached per slot for the rest of the super-iteration (σ and S_v
        are constant within one).  A game whose >β+1-degree holder
        forwards loses replay eligibility for the next super-iteration
        (its σ-ranked selections may shift as S_v grows — see the module
        docstring's invalidation rules).

        With ``want_seg``, also returns ``(fwd_o, share_o, cnt)`` — the
        forwarders in delivery order with per-forwarder inside-delivery
        counts, i.e. the segment structure of the returned ``(ds, sh)``.
        """
        high = self.mem_high[fwd]
        any_high = high.any()
        lo_m = ~high if any_high else slice(None)
        lo = fwd[lo_m]
        ins_dst = []
        ins_share = []
        ins_cnt = []
        touched = []
        if lo.size:
            v_lo = self.mem_vertex[lo]
            cnt = self.deg[v_lo]
            fidx = np.repeat(np.arange(len(lo), dtype=np.int64), cnt)
            idx = _segment_indices(self.region_start[lo], cnt)
            dst = self.row_dst[idx]
            inside = dst >= 0
            ins_dst.append(dst[inside])
            ins_share.append(shares[lo_m][fidx[inside]])
            if want_seg:
                ins_cnt.append(np.bincount(fidx[inside], minlength=len(lo)))
            fr = fresh[lo_m]
            if fr.any():
                out = fr[fidx] & ~inside
                if out.any():
                    base = self.offsets[v_lo] - self.region_start[lo]
                    fo = fidx[out]
                    touched.append(
                        fgame[lo_m][fo] * self.n
                        + self.targets[idx[out] + base[fo]]
                    )
        if any_high:
            hi_slots = fwd[high]
            self.next_ok[fgame[high]] = False  # σ-dependent flow
            missing = np.asarray(
                [s for s in hi_slots.tolist() if s not in fsets],
                dtype=np.int64,
            )
            if missing.size:
                if sigma_by_slot is None:
                    sigma_by_slot = self._sigma_by_slot()
                built_t, built_d = self._build_fsets(missing, sigma_by_slot)
                for i, slot in enumerate(missing.tolist()):
                    fsets[slot] = (built_t[i], built_d[i])
            rows = [fsets[s] for s in hi_slots.tolist()]
            dst_hi = np.concatenate([r[1] for r in rows])
            share_hi = np.repeat(shares[high], self.bp1)
            inside = dst_hi >= 0
            ins_dst.append(dst_hi[inside])
            ins_share.append(share_hi[inside])
            if want_seg:
                ins_cnt.append(inside.reshape(-1, self.bp1).sum(axis=1))
            frh = np.repeat(fresh[high], self.bp1)
            out = frh & ~inside
            if out.any():
                tgt_hi = np.concatenate([r[0] for r in rows])
                touched.append(
                    np.repeat(fgame[high], self.bp1)[out] * self.n
                    + tgt_hi[out]
                )
        ds = ins_dst[0] if len(ins_dst) == 1 else np.concatenate(ins_dst)
        sh = ins_share[0] if len(ins_share) == 1 else np.concatenate(ins_share)
        tk = None
        if touched:
            tk = touched[0] if len(touched) == 1 else np.concatenate(touched)
        seg = None
        if want_seg:
            if any_high:
                fwd_o = np.concatenate([lo, hi_slots])
                share_o = np.concatenate([shares[lo_m], shares[high]])
            else:
                fwd_o, share_o = fwd, shares
            cnt_o = (
                ins_cnt[0] if len(ins_cnt) == 1 else np.concatenate(ins_cnt)
            )
            seg = (fwd_o, share_o, cnt_o.astype(np.int64, copy=False))
        return ds, sh, tk, sigma_by_slot, seg


def play_games_batched(
    offsets: np.ndarray,
    targets: np.ndarray,
    roots: np.ndarray,
    *,
    x: int,
    beta: int,
    clip: int,
    horizon: int,
    scale: int | None,
    out_layer: np.ndarray,
    out_count: np.ndarray,
    want_records: bool = False,
    phases: dict | None = None,
    transpose_pos: np.ndarray | None = None,
    replay_stats: dict | None = None,
    arena_hint: list | None = None,
    cone_cutoff: float | None = None,
    poor_streak: int | None = None,
) -> BatchedGamesInfo:
    """Play every game rooted at ``roots`` in lockstep against one CSR.

    Provable layers are min-folded into ``out_layer``/``out_count``
    (float64/int64 arrays over the vertex universe) exactly as the
    scalar :func:`~repro.core.columnar_rounds.play_coin_game` would fold
    them one game at a time.  Games whose coin arithmetic cannot stay
    within the machine-word budget are listed in ``ejected`` with all
    their outputs zeroed; the caller replays them through the scalar
    engine (bigint/Fraction coins) — see the module docstring.

    ``phases``, when given, accumulates wall-clock seconds per engine
    phase under the keys ``explore`` / ``forward`` / ``fold``;
    ``replay_stats`` accumulates the incremental-replay counters
    (``replayed_waves`` / ``fresh_waves`` / ``replayed_entries`` /
    ``fresh_entries`` / ``redo_games``).
    """
    roots = np.asarray(roots, dtype=np.int64)
    if not len(roots):
        empty = np.empty(0, dtype=np.int64)
        return BatchedGamesInfo(
            empty, empty.copy(), [] if want_records else None,
            empty.copy(), empty.copy(), empty.copy(),
        )
    engine = _Lockstep(
        offsets, targets, roots, x, beta, clip, horizon, scale,
        out_layer, out_count, want_records, transpose_pos,
        tuple(arena_hint) if arena_hint else None,
        cone_cutoff, poor_streak,
    )
    engine.run(phases, replay_stats)
    if arena_hint is not None:
        # Mutable hint: hand this cohort's final footprint to the next
        # (same fleet, similar ball sizes), skipping its growth chain.
        arena_hint[:] = [engine.arena, engine.row_len]
    return BatchedGamesInfo(
        reads=engine.reads,
        writes=engine.writes,
        records=engine.records,
        super_iterations=engine.super_iters,
        edges_seen=engine.edges_seen,
        ejected=np.asarray(sorted(engine.ejected), dtype=np.int64),
    )
