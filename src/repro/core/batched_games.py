"""Lockstep batched coin-game engine — whole game frontiers as array kernels.

:func:`repro.core.columnar_rounds.play_coin_game` interprets one
(x, β, F)-coin dropping game at a time; at bench scale the per-vertex
Python control flow is the entire lca-round wall clock.  This module
advances **all** of a round's games simultaneously: per program point a
handful of numpy kernels act on game-indexed struct-of-arrays state, so
the interpreter cost is paid per *wave*, not per vertex.

Lockstep invariant
------------------
Every active game sits at the same program point ``(super-iteration s,
forwarding hop h)`` at all times.  The engine's wave loop is the scalar
game loop with the game index turned into an array axis:

- a game whose hop has no forwarder simply contributes nothing to the
  wave (the scalar engine's early ``break`` is a no-op transition, so
  idling is observationally identical);
- a game whose super-iteration touched no outside vertex *retires from
  the batch* at the end of that super-iteration: its final σ_{S_v} is
  computed (in the batched σ-peel, together with every other game
  retiring that wave), its provable layers are min-folded into the
  round's layer column, and its slots stop participating;
- the remaining games advance to super-iteration s+1 together.

Since coin amounts, explored sets, and σ-ranks of one game never feed
into another game's transitions, running games columns-at-a-time visits
exactly the per-game state sequence of the scalar interpreter; every
observable (S_v evolution, probe counts, proof layers, write counts) is
bit-identical.  The differential tests assert this against the scalar
oracle over the full (store, engine, workers) matrix.

Exact within-round exploration sharing
--------------------------------------
All games of a round play against the *same* residual graph G_i, probed
through the same ``("deg", v)`` / ``("adj", v, j)`` store columns.  Two
overlapping games therefore demand **identical** ``(vertex →
sorted-adjacency, degree)`` views of every vertex they both explore.
The engine exploits that with one shared, round-scoped arena:

- the residual CSR ``(offsets, targets)`` is the canonical explored-row
  store: a vertex's sorted adjacency row is referenced in place by
  every game that explores it, never rebuilt per game;
- each (game, vertex) exploration claims one *slot*, and the **row
  arena** materializes that slot's view of its CSR row exactly once —
  each entry resolved to the in-game destination slot (inside S_v) or
  -1 (outside).  Resolution happens a single time per explored
  adjacency entry: entries toward already-explored vertices are
  resolved when the row is claimed, and the matching reverse entries in
  older rows are *patched* in O(1) through a per-round CSR
  transpose-position map (the reverse entry of CSR position p is at a
  fixed position independent of any game).  Afterwards the entire hop
  loop — thresholds, splits, deliveries, touched detection — and the
  final σ-peel run as pure gathers against the arena, with no
  membership search anywhere.

The sharing is **exact**, not approximate, for two reasons.  First, a
round's residual graph is immutable while its machines run (machines of
round i read D_{i-1} and write only layer proposals to D_i — Section
3.1), so the shared row a game reads at hop h is byte-for-byte the row
a private copy would hold.  Second, a game transcript is a pure
function of its root and of the residual adjacency rows restricted to
its explored set (the same purity argument
:class:`~repro.core.columnar_rounds.GameCache` relies on across
rounds); the arena reproduces those rows verbatim and per-game slot
state is disjoint by construction (slots are keyed by the pair
``game · n + vertex``), so no game can observe another game's presence
and every transcript is unchanged.  What is *not* shared is anything
σ-dependent: σ_{S_v} ranks neighbors relative to the game-local
explored set, so σ-ranked forwarding sets are built per game (and only
for the rare holders with more than β+1 residual neighbors that
actually forward).

Coin representation
-------------------
Coins are exact scaled integers.  When the round's shared fixed scale
``lcm(1..β+1)^horizon`` (:func:`repro.lca.coin_game.fixed_coin_scale`)
fits the engine's machine-word budget, every game starts at that scale
and every share division is exact by construction — the escalation
machinery below never fires.  Past the budget (β = 9 at the default
horizon already needs ~180 bits) each game instead starts at scale 1
and escalates per hop by the smallest factor that clears that hop's
remainders — the dynamic policy of
:meth:`repro.lca.coin_game.CoinDroppingGame._forward_scaled_ints`,
vectorized with ``np.gcd``/``np.lcm.at`` — so amounts stay
machine-word-sized unless a game truly demands more.  Because every
representation is exact, thresholds, shares, and touched sets are
value-identical across all of them (the PR 3 differential tests pinned
this), so the choice is invisible to every observable.  A game whose
escalation would overflow the budget is *ejected*: the caller replays
it through the scalar engine, whose fixed-scale Python integers widen
to bigints (or to Fractions for deep horizons) — the per-game bigint
escape hatch.

When the full fixed scale does not fit, games do not start at scale 1
either: they start at the largest power ``lcm(1..β+1)^j`` that leaves
escalation headroom within the word budget.  Scale choice is invisible
(coin values are exact rationals at every scale), and the power-of-lcm
start clears the p-adic valuations any realistic division chain
acquires — a share division's denominator growth per hop divides
``lcm(1..β+1)`` — so escalations (and with them per-hop gcd/lcm work
and stamp normalization) essentially never fire outside adversarial
convergent-path constructions, which the backstop still handles
exactly.  All amounts are kept below 2^61 so every int64 product and
scatter-fold in the engine stays exact.
"""

from __future__ import annotations

import math
import time
from typing import NamedTuple

import numpy as np

__all__ = [
    "BatchedGamesInfo",
    "SCALE_LIMIT",
    "csr_transpose_positions",
    "play_games_batched",
]

_INF = float("inf")

# Amounts (and therefore scales, thresholds, and per-slot share sums) are
# kept strictly below 2**61: together with the mass-conservation bound
# (no slot ever holds more than the game's total x·scale), every int64
# sum, product, and scatter-add in the engine is overflow-free.
SCALE_LIMIT = 1 << 61

# np.lcm.at accumulates per-game escalation factors in int64; factors are
# lcms of divisor deficits <= beta+1, bounded by lcm(1..beta+1), which
# fits comfortably only up to beta+1 = 36 (lcm(1..36) ~ 1.4e14).  Larger
# betas fold their factors in Python bigints instead.
_VECTOR_LCM_MAX_BP1 = 36


class BatchedGamesInfo(NamedTuple):
    """Per-game outputs of one lockstep run (game order = ``roots`` order)."""

    reads: np.ndarray  # probe counts (0 at ejected games)
    writes: np.ndarray  # proof-entry writes (0 at ejected games)
    records: list | None  # replayable record tuples (None at ejected games)
    super_iterations: np.ndarray  # super-iterations played per game
    edges_seen: np.ndarray  # |E(G[S_v])| per game
    ejected: np.ndarray  # game indices the caller must replay scalar-side


def _segment_indices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat gather indices for rows ``[starts[i], starts[i]+counts[i])``."""
    total = int(counts.sum())
    if not total:
        return np.empty(0, dtype=np.int64)
    out = np.arange(total, dtype=np.int64)
    out += np.repeat(starts - (np.cumsum(counts) - counts), counts)
    return out


def csr_transpose_positions(
    offsets: np.ndarray, targets: np.ndarray
) -> np.ndarray:
    """Position of each CSR entry's reverse: entry p = (v→w) ↦ (w→v).

    Rows are sorted and the edge set is symmetric, so sorting entries by
    (target, source) enumerates exactly the reverse entries in CSR
    order.  A per-round constant — this is what makes row-arena patches
    O(1) per entry (see the module docstring).
    """
    m = len(targets)
    src = np.repeat(
        np.arange(len(offsets) - 1, dtype=np.int64), np.diff(offsets)
    )
    transpose_pos = np.empty(m, dtype=np.int64)
    transpose_pos[np.lexsort((src, targets))] = np.arange(m, dtype=np.int64)
    return transpose_pos


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    """``np.unique`` via quicksort (much faster than the hash path here)."""
    if not values.size:
        return values
    ordered = np.sort(values)
    keep = np.empty(len(ordered), dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


class _Lockstep:
    """State and wave kernels of one batched run (see module docstring)."""

    def __init__(
        self,
        offsets: np.ndarray,
        targets: np.ndarray,
        roots: np.ndarray,
        x: int,
        beta: int,
        clip: int,
        horizon: int,
        scale: int | None,
        out_layer: np.ndarray,
        out_count: np.ndarray,
        want_records: bool,
        transpose_pos: np.ndarray | None = None,
    ) -> None:
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.targets = np.asarray(targets, dtype=np.int64)
        self.n = len(offsets) - 1
        self.deg = np.diff(self.offsets)
        self.num_games = len(roots)
        self.x = x
        self.beta = beta
        self.bp1 = beta + 1
        self.clip = clip
        self.horizon = horizon
        self.out_layer = out_layer
        self.out_count = out_count
        self.want_records = want_records

        self.scale_cap = SCALE_LIMIT // max(1, x * (beta + 2))
        if scale is not None and scale <= self.scale_cap:
            self.init_scale = scale
        else:
            # Largest lcm(1..β+1) power that leaves two escalations of
            # headroom: clears every realistic denominator up front (see
            # module docstring) while the backstop still has room to fire.
            base = math.lcm(*range(1, self.bp1 + 1)) if beta >= 1 else 1
            headroom = self.scale_cap // (base * base) if base > 1 else 0
            init = 1
            while init * base <= headroom:
                init *= base
            self.init_scale = init

        # Per-game accumulators (game order = roots order).
        g = self.num_games
        self.reads = np.zeros(g, dtype=np.int64)
        self.writes = np.zeros(g, dtype=np.int64)
        self.super_iters = np.zeros(g, dtype=np.int64)
        self.edges_seen = np.zeros(g, dtype=np.int64)
        self.edge_dirs = np.zeros(g, dtype=np.int64)  # directed inside edges
        self.records: list | None = [None] * g if want_records else None
        self.active_mask = np.ones(g, dtype=bool)
        self.ejected: list[int] = []
        self.gscale = np.full(g, self.init_scale, dtype=np.int64)

        if transpose_pos is None:
            transpose_pos = csr_transpose_positions(self.offsets, self.targets)
        self.transpose_pos = transpose_pos

        # Member arena: slot -> (game, vertex, min(deg, β+1), forwarding
        # threshold, row region); append order within a game is the
        # scalar exploration order.
        self.mem_game = np.empty(0, dtype=np.int64)
        self.mem_vertex = np.empty(0, dtype=np.int64)
        self.mem_kcap = np.empty(0, dtype=np.int64)
        self.mem_thresh = np.empty(0, dtype=np.int64)
        self.mem_high = np.empty(0, dtype=bool)
        self.region_start = np.empty(0, dtype=np.int64)
        self.row_len = 0
        # Row arena: per-slot view of its CSR row, each entry resolved to
        # the in-game destination slot or -1 (outside S_v); target
        # vertices are read off the CSR itself via each slot's fixed
        # arena→CSR offset, never copied.
        self.row_dst = np.empty(0, dtype=np.int64)
        # Membership index: fused keys game*n+vertex, sorted, with the
        # owning slot as payload (sentinel keeps searches in-bounds).
        # Queried only at exploration time.
        self.skeys = np.asarray([1 << 62], dtype=np.int64)
        self.sslots = np.asarray([-1], dtype=np.int64)

        # Per-super-iteration coin state and scratch buffers, (re)sized
        # lazily as the arena grows.
        self.amounts = np.empty(0, dtype=np.int64)
        self.stamps = np.empty(0, dtype=np.int64)
        self.delta = np.empty(0, dtype=np.int64)
        self.tagbuf = np.empty(0, dtype=np.int64)
        self.emit = np.empty(0, dtype=bool)
        self.sigbuf = np.empty(0)
        self.countbuf = np.empty(0, dtype=np.int64)

        self._explore(np.arange(g, dtype=np.int64) * self.n + roots)

    # -- exploration ------------------------------------------------------

    def _explore(self, keys: np.ndarray) -> None:
        """Add the (game, vertex) pairs in ``keys`` (unique, sorted) to S.

        Charges the probe reads, claims arena slots, merges the
        membership index, materializes the new rows into the row arena,
        and patches older rows whose entries just became inside — the
        one place in the engine that performs membership resolution.
        """
        n = self.n
        g_new = keys // n
        v_new = keys % n
        cnt = self.deg[v_new]
        np.add.at(self.reads, g_new, 1 + cnt)

        first = len(self.mem_game)
        kcap = np.minimum(cnt, self.bp1)
        thresh = kcap * self.init_scale
        thresh[cnt == 0] = 1 << 62  # isolated root: unreachable sentinel
        self.mem_game = np.concatenate([self.mem_game, g_new])
        self.mem_vertex = np.concatenate([self.mem_vertex, v_new])
        self.mem_kcap = np.concatenate([self.mem_kcap, kcap])
        self.mem_thresh = np.concatenate([self.mem_thresh, thresh])
        self.mem_high = np.concatenate([self.mem_high, cnt > self.bp1])
        region = self.row_len + np.cumsum(cnt) - cnt
        self.region_start = np.concatenate([self.region_start, region])
        self.row_len += int(cnt.sum())

        new_slots = np.arange(first, first + len(keys), dtype=np.int64)
        ins = np.searchsorted(self.skeys, keys)
        self.skeys = np.insert(self.skeys, ins, keys)
        self.sslots = np.insert(self.sslots, ins, new_slots)

        # Classify the new rows: queries are grouped by game and the
        # fused keys cluster by game, so the searches stay cache-hot.
        member_idx = np.repeat(np.arange(len(keys), dtype=np.int64), cnt)
        csr_pos = _segment_indices(self.offsets[v_new], cnt)
        qkeys = self.targets[csr_pos]
        qkeys += (g_new * n)[member_idx]
        pos = np.searchsorted(self.skeys, qkeys)
        hit = self.skeys[pos] == qkeys
        dst = np.full(len(qkeys), -1, dtype=np.int64)
        dst[hit] = self.sslots[pos[hit]]
        self.row_dst = np.concatenate([self.row_dst, dst])

        # Patch the reverse entries of rows claimed in earlier waves
        # (same-wave pairs classify each other's entries directly).
        old = (dst >= 0) & (dst < first)
        if old.any():
            du = dst[old]
            patch_pos = (
                self.transpose_pos[csr_pos[old]]
                - self.offsets[self.mem_vertex[du]]
                + self.region_start[du]
            )
            self.row_dst[patch_pos] = first + member_idx[old]
            np.add.at(self.edge_dirs, self.mem_game[du], 1)
        if hit.any():
            np.add.at(self.edge_dirs, g_new[member_idx[hit]], 1)

    # -- σ-peel (shared by retirement and mid-flight σ-ranking) -----------

    def _ensure_buffers(self) -> None:
        arena = len(self.mem_game)
        if len(self.amounts) != arena:
            self.amounts = np.zeros(arena, dtype=np.int64)
            self.stamps = np.full(arena, self.init_scale, dtype=np.int64)
            self.delta = np.zeros(arena, dtype=np.int64)
            self.tagbuf = np.full(arena, -1, dtype=np.int64)
            self.emit = np.zeros(arena, dtype=bool)
            self.sigbuf = np.full(arena, _INF)
            self.countbuf = np.zeros(arena, dtype=np.int64)

    def _dedup(self, slots: np.ndarray) -> np.ndarray:
        """Distinct entries of ``slots`` without sorting or arena scans.

        Scatter each position into the tag buffer (last write per slot
        wins), keep exactly the winners, reset.  Deterministic, and
        orders of magnitude cheaper than ``np.unique`` at per-hop sizes.
        """
        tag = self.tagbuf
        seq = np.arange(len(slots), dtype=np.int64)
        tag[slots] = seq
        out = slots[tag[slots] == seq]
        tag[out] = -1
        return out

    def _peel_games(self, games: np.ndarray):
        """σ_{S_v,β} for a cohort, via synchronous lockstep peeling.

        Returns ``(slots, game_per_slot, vertex_per_slot, sigma,
        directed_edge_count_per_game)`` with slots in arena order — the
        batched counterpart of
        :func:`repro.core.columnar_rounds._induced_sigma` for every game
        at once (a game with an exhausted frontier receives no
        decrements, so the global layer index advances each game exactly
        as its private peel would).  Inside adjacency comes straight
        from the row arena; no membership work happens here.
        """
        self._ensure_buffers()
        in_cohort = np.zeros(self.num_games, dtype=bool)
        in_cohort[games] = True
        sel = np.flatnonzero(in_cohort[self.mem_game])
        gg = self.mem_game[sel]
        vv = self.mem_vertex[sel]
        dd = self.deg[vv]
        sigbuf, countbuf = self.sigbuf, self.countbuf
        countbuf[sel] = dd
        frontier = sel[dd <= self.beta]
        layer = 0
        while frontier.size:
            sigbuf[frontier] = layer
            dsts = self._inside_neighbors(frontier)
            if dsts.size:
                np.subtract.at(countbuf, dsts, 1)
                frontier = self._dedup(dsts[
                    np.isinf(sigbuf[dsts]) & (countbuf[dsts] <= self.beta)
                ])
            else:
                frontier = np.empty(0, dtype=np.int64)
            layer += 1
        sigma = sigbuf[sel].copy()
        sigbuf[sel] = _INF  # reset shared buffers for the next cohort
        countbuf[sel] = 0
        return sel, gg, vv, sigma, self.edge_dirs[games]

    def _inside_neighbors(self, slots: np.ndarray) -> np.ndarray:
        """Destination slots of every inside row entry of ``slots``."""
        idx = _segment_indices(
            self.region_start[slots], self.deg[self.mem_vertex[slots]]
        )
        dsts = self.row_dst[idx]
        return dsts[dsts >= 0]

    def _sigma_by_slot(self) -> np.ndarray:
        """σ of every member of an active game that owns a >β+1-degree slot.

        One cohort peel covers every game that could demand a σ-ranking
        this super-iteration; scattering the result by arena slot makes
        the per-hop forwarding-set builds pure gathers.  Eagerness is
        invisible: σ depends only on S_v (constant within the
        super-iteration), costs no probes, and games without high-degree
        members are excluded.
        """
        need = self.mem_high & self.active_mask[self.mem_game]
        sigma_by_slot = np.full(len(self.mem_game), _INF)
        games = _sorted_unique(self.mem_game[need])
        if games.size:
            sel, __g, __v, sigma, __e = self._peel_games(games)
            sigma_by_slot[sel] = sigma
        return sigma_by_slot

    def _build_fsets(
        self, need_slots: np.ndarray, sigma_by_slot: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """σ-top-(β+1) forwarding sets for >β+1-degree slots, batched.

        Definition 4.1 with the scalar oracle's deterministic tie-break:
        highest σ-layer first (∞ — unexplored or unlayered — counts
        highest), then unexplored before explored, then low vertex id.
        One lexsort ranks every slot's row at once; rows all exceed β+1
        entries, so the result is a pair of dense
        ``(len(need_slots), β+1)`` matrices (targets and their resolved
        destination slots) in rank order.
        """
        vv = self.mem_vertex[need_slots]
        cnt = self.deg[vv]
        idx = _segment_indices(self.region_start[need_slots], cnt)
        base = self.offsets[vv] - self.region_start[need_slots]
        row_t = self.targets[idx + np.repeat(base, cnt)]
        row_d = self.row_dst[idx]
        member = row_d >= 0
        lay = np.full(len(row_t), _INF)
        lay[member] = sigma_by_slot[row_d[member]]
        layer_rank = np.where(np.isinf(lay), -_INF, -lay)
        seg = np.repeat(np.arange(len(need_slots)), cnt)
        order = np.lexsort((row_t, member, layer_rank, seg))
        starts = np.cumsum(cnt) - cnt
        rank = np.arange(len(row_t)) - np.repeat(starts, cnt)
        pick = order[rank < self.bp1]
        return (
            row_t[pick].reshape(-1, self.bp1),
            row_d[pick].reshape(-1, self.bp1),
        )

    # -- retirement -------------------------------------------------------

    def _retire(self, games: np.ndarray, performed: int) -> None:
        """Fold the final σ of every game in ``games`` and drop them."""
        sel, gg, vv, sigma, edge_counts = self._peel_games(games)
        prov = sigma <= self.clip  # ∞ never passes; proofs clipped (Lemma 4.4)
        pv, pl = vv[prov], sigma[prov]
        if pv.size:
            np.minimum.at(self.out_layer, pv, pl)
            np.add.at(self.out_count, pv, 1)
        self.writes += np.bincount(gg[prov], minlength=self.num_games)
        self.super_iters[games] = performed
        self.edges_seen[games] = edge_counts // 2
        self.active_mask[games] = False
        if self.records is not None:
            order = np.argsort(gg, kind="stable")  # group by game, keep
            gg2 = gg[order]                        # exploration order
            vv2 = vv[order]
            sg2 = sigma[order]
            prov2 = sg2 <= self.clip
            pv2, pl2 = vv2[prov2], sg2[prov2].astype(np.int64)
            bounds = np.searchsorted(gg2, games)
            ends = np.append(bounds[1:], len(gg2))
            pbounds = np.searchsorted(gg2[prov2], games)
            pends = np.append(pbounds[1:], len(pv2))
            for gi, b0, b1, p0, p1 in zip(
                games.tolist(), bounds.tolist(), ends.tolist(),
                pbounds.tolist(), pends.tolist(),
            ):
                proof = list(zip(pv2[p0:p1].tolist(), pl2[p0:p1].tolist()))
                self.records[gi] = (
                    vv2[b0:b1].tolist(),
                    proof,
                    int(self.reads[gi]),
                    int(self.writes[gi]),
                )

    # -- the wave loop ----------------------------------------------------

    def run(self, phases: dict | None = None) -> None:
        active = np.arange(self.num_games, dtype=np.int64)
        if self.scale_cap < 1:
            # No scaled-integer representation fits the word budget at
            # all (astronomical x): every game takes the escape hatch.
            self.ejected = active.tolist()
            self.active_mask[:] = False
            self.reads[:] = 0
            return
        clock = time.perf_counter if phases is not None else None
        for s in range(self.x * self.x):
            if not active.size:
                break
            t0 = clock() if clock else 0.0
            touched = self._super_iteration(active)
            if clock:
                phases["forward"] = phases.get("forward", 0.0) + clock() - t0
            active = active[self.active_mask[active]]  # drop mid-hop ejections
            if touched.size:
                touched = touched[self.active_mask[touched // self.n]]
            t0 = clock() if clock else 0.0
            growing = (
                _sorted_unique(touched // self.n)
                if touched.size
                else np.empty(0, dtype=np.int64)
            )
            done = np.setdiff1d(active, growing, assume_unique=True)
            if done.size:
                self._retire(done, s + 1)
            if clock:
                phases["fold"] = phases.get("fold", 0.0) + clock() - t0
            active = growing
            if touched.size:
                t0 = clock() if clock else 0.0
                self._explore(touched)
                if clock:
                    phases["explore"] = (
                        phases.get("explore", 0.0) + clock() - t0
                    )
        if active.size:
            t0 = clock() if clock else 0.0
            self._retire(active, self.x * self.x)
            if clock:
                phases["fold"] = phases.get("fold", 0.0) + clock() - t0
        self.reads[self.ejected] = 0
        self.writes[self.ejected] = 0
        self.super_iters[self.ejected] = 0
        self.edges_seen[self.ejected] = 0

    def _super_iteration(self, active: np.ndarray) -> np.ndarray:
        """One coin drop + forwarding cascade; returns touched keys."""
        self._ensure_buffers()
        self.amounts[:] = 0
        self.amounts[active] = self.x * self.init_scale  # root slot g == g
        hot = active
        touched_chunks: list[np.ndarray] = []
        emitted: list[np.ndarray] = []
        # σ-ranked forwarding state, built lazily once per super-iteration
        # (σ and S_v are constant within one): σ scattered by arena slot,
        # then per-slot forwarding sets cached as they first forward.
        sigma_by_slot: np.ndarray | None = None
        fsets: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        # No game has escalated its scale yet: thresholds are the
        # precomputed per-slot k·init_scale and receipt merges skip
        # stamp normalization (ratios are all 1).  The lcm-power start
        # makes this the steady state (see module docstring).
        esc = False
        ej_dirty = False

        for __ in range(self.horizon):
            if not hot.size:
                break
            if ej_dirty:
                hot = hot[self.active_mask[self.mem_game[hot]]]
            amt = self.amounts[hot]
            if not esc:
                can = amt >= self.mem_thresh[hot]
            else:
                k = self.mem_kcap[hot]
                can = (k > 0) & (amt >= k * self.gscale[self.mem_game[hot]])
            fwd = hot[can]
            if not fwd.size:
                break
            famt = amt[can]
            fk = self.mem_kcap[fwd]
            fgame = self.mem_game[fwd]

            shares, rem = np.divmod(famt, fk)
            if rem.any():
                if not esc:
                    esc = True
                    self.gscale[:] = self.init_scale
                    self.stamps[:] = self.init_scale
                fwd, famt, fk, fgame, had_ejections = self._escalate(
                    fwd, famt, fk, fgame, rem
                )
                ej_dirty = ej_dirty or had_ejections
                if not fwd.size:
                    break
                shares = famt // fk  # exact by choice of escalation
            self.amounts[fwd] = 0

            fresh = ~self.emit[fwd]
            if fresh.any():
                newly = fwd[fresh]
                self.emit[newly] = True
                emitted.append(newly)

            ds, sh, touched, sigma_by_slot = self._expand(
                fwd, shares, fgame, fresh, fsets, sigma_by_slot
            )
            if touched is not None:
                touched_chunks.append(touched)
            if not ds.size:
                hot = np.empty(0, dtype=np.int64)
                continue
            np.add.at(self.delta, ds, sh)
            hot = self._dedup(ds)
            if not esc:
                self.amounts[hot] += self.delta[hot]
            else:
                gs = self.gscale[self.mem_game[hot]]
                self.amounts[hot] = (
                    self.amounts[hot] * (gs // self.stamps[hot])
                    + self.delta[hot]
                )
                self.stamps[hot] = gs
            self.delta[hot] = 0

        for chunk in emitted:
            self.emit[chunk] = False
        if not touched_chunks:
            return np.empty(0, dtype=np.int64)
        return _sorted_unique(np.concatenate(touched_chunks))

    def _escalate(self, fwd, famt, fk, fgame, rem):
        """Raise per-game scales so every division of this hop is exact.

        The factor is the lcm of the per-division deficits |F|/gcd(a,|F|)
        (the dynamic policy of the scalar oracle); a game whose factor
        would push its scale past the word budget is ejected instead.
        """
        inexact = rem > 0
        need = fk[inexact] // np.gcd(rem[inexact], fk[inexact])
        esc_games = fgame[inexact]
        factors = np.ones(self.num_games, dtype=np.int64)
        if self.bp1 <= _VECTOR_LCM_MAX_BP1:
            np.lcm.at(factors, esc_games, need)
            bad_games = np.flatnonzero(factors > self.scale_cap // self.gscale)
        else:
            # Huge-β fallback: fold factors as Python bigints so the lcm
            # cannot silently wrap int64.
            folded: dict[int, int] = {}
            for gi, nd in zip(esc_games.tolist(), need.tolist()):
                folded[gi] = math.lcm(folded.get(gi, 1), nd)
            bad_list = []
            for gi, f in folded.items():
                if f > self.scale_cap // int(self.gscale[gi]):
                    bad_list.append(gi)
                else:
                    factors[gi] = f
            bad_games = np.asarray(sorted(bad_list), dtype=np.int64)
        had_ejections = bool(bad_games.size)
        if had_ejections:
            self.active_mask[bad_games] = False
            self.ejected.extend(bad_games.tolist())
            if self.bp1 <= _VECTOR_LCM_MAX_BP1:
                factors[bad_games] = 1
            keep = self.active_mask[fgame]
            fwd, famt, fk, fgame = (
                fwd[keep], famt[keep], fk[keep], fgame[keep]
            )
        grow = factors > 1
        if grow.any():
            self.gscale[grow] *= factors[grow]
            famt = famt * factors[fgame]
        return fwd, famt, fk, fgame, had_ejections

    def _expand(self, fwd, shares, fgame, fresh, fsets, sigma_by_slot):
        """Forwarding targets: full rows for |adj| <= β+1, σ-top-(β+1) else.

        Pure row-arena gathers: inside deliveries come back as resolved
        destination slots with their shares; outside (touched) keys are
        emitted only on a slot's *first* forward of the super-iteration —
        its outside set is fixed within one, so later forwards re-touch
        the same vertices (set semantics make the skip exact).  σ is
        computed lazily — one batched cohort peel the first hop any
        >β+1-degree holder forwards (the batched counterpart of the
        scalar engine's lazy σ peel) — and forwarding sets are built in
        bulk for every such holder crossing its threshold this hop, then
        cached per slot for the rest of the super-iteration (σ and S_v
        are constant within one).
        """
        high = self.mem_high[fwd]
        any_high = high.any()
        lo_m = ~high if any_high else slice(None)
        lo = fwd[lo_m]
        ins_dst = []
        ins_share = []
        touched = []
        if lo.size:
            v_lo = self.mem_vertex[lo]
            cnt = self.deg[v_lo]
            fidx = np.repeat(np.arange(len(lo), dtype=np.int64), cnt)
            idx = _segment_indices(self.region_start[lo], cnt)
            dst = self.row_dst[idx]
            inside = dst >= 0
            ins_dst.append(dst[inside])
            ins_share.append(shares[lo_m][fidx[inside]])
            fr = fresh[lo_m]
            if fr.any():
                out = fr[fidx] & ~inside
                if out.any():
                    base = self.offsets[v_lo] - self.region_start[lo]
                    fo = fidx[out]
                    touched.append(
                        fgame[lo_m][fo] * self.n
                        + self.targets[idx[out] + base[fo]]
                    )
        if any_high:
            hi_slots = fwd[high]
            missing = np.asarray(
                [s for s in hi_slots.tolist() if s not in fsets],
                dtype=np.int64,
            )
            if missing.size:
                if sigma_by_slot is None:
                    sigma_by_slot = self._sigma_by_slot()
                built_t, built_d = self._build_fsets(missing, sigma_by_slot)
                for i, slot in enumerate(missing.tolist()):
                    fsets[slot] = (built_t[i], built_d[i])
            rows = [fsets[s] for s in hi_slots.tolist()]
            dst_hi = np.concatenate([r[1] for r in rows])
            share_hi = np.repeat(shares[high], self.bp1)
            inside = dst_hi >= 0
            ins_dst.append(dst_hi[inside])
            ins_share.append(share_hi[inside])
            frh = np.repeat(fresh[high], self.bp1)
            out = frh & ~inside
            if out.any():
                tgt_hi = np.concatenate([r[0] for r in rows])
                touched.append(
                    np.repeat(fgame[high], self.bp1)[out] * self.n
                    + tgt_hi[out]
                )
        ds = ins_dst[0] if len(ins_dst) == 1 else np.concatenate(ins_dst)
        sh = ins_share[0] if len(ins_share) == 1 else np.concatenate(ins_share)
        tk = None
        if touched:
            tk = touched[0] if len(touched) == 1 else np.concatenate(touched)
        return ds, sh, tk, sigma_by_slot


def play_games_batched(
    offsets: np.ndarray,
    targets: np.ndarray,
    roots: np.ndarray,
    *,
    x: int,
    beta: int,
    clip: int,
    horizon: int,
    scale: int | None,
    out_layer: np.ndarray,
    out_count: np.ndarray,
    want_records: bool = False,
    phases: dict | None = None,
    transpose_pos: np.ndarray | None = None,
) -> BatchedGamesInfo:
    """Play every game rooted at ``roots`` in lockstep against one CSR.

    Provable layers are min-folded into ``out_layer``/``out_count``
    (float64/int64 arrays over the vertex universe) exactly as the
    scalar :func:`~repro.core.columnar_rounds.play_coin_game` would fold
    them one game at a time.  Games whose coin arithmetic cannot stay
    within the machine-word budget are listed in ``ejected`` with all
    their outputs zeroed; the caller replays them through the scalar
    engine (bigint/Fraction coins) — see the module docstring.

    ``phases``, when given, accumulates wall-clock seconds per engine
    phase under the keys ``explore`` / ``forward`` / ``fold``.
    """
    roots = np.asarray(roots, dtype=np.int64)
    if not len(roots):
        empty = np.empty(0, dtype=np.int64)
        return BatchedGamesInfo(
            empty, empty.copy(), [] if want_records else None,
            empty.copy(), empty.copy(), empty.copy(),
        )
    engine = _Lockstep(
        offsets, targets, roots, x, beta, clip, horizon, scale,
        out_layer, out_count, want_records, transpose_pos,
    )
    engine.run(phases)
    return BatchedGamesInfo(
        reads=engine.reads,
        writes=engine.writes,
        records=engine.records,
        super_iterations=engine.super_iters,
        edges_seen=engine.edges_seen,
        ejected=np.asarray(sorted(engine.ejected), dtype=np.int64),
    )
