"""Process-pool execution of a round's coin-game machine fleet.

Parallel execution model
------------------------

The AMPC model is round-synchronous: within round i every machine reads
only D_{i-1} and writes only D_i (Section 3.1), so machines of one round
share *no* state and can run in any order — or simultaneously.  The
simulator exploits exactly that freedom, nothing more:

- **Sharding.**  The driver splits the round's machine ids into
  contiguous shards and submits each to a persistent
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Under the batched
  engine, whenever the fleet spans more than one whole cohort per
  worker, shard boundaries fall on ``COHORT_GAMES`` multiples
  (cohort-granular sharding): each worker runs the very same
  cache-sized cohorts the serial kernel would run, instead of arbitrary
  re-slices whose partial cohorts amortize the lockstep kernels worse;
  smaller fleets fall back to evenly balanced slices, where keeping
  every worker busy beats cohort alignment.  Per-machine semantics are
  untouched — a shard is a game-index slice
  of the round's fleet, run through the very same engine the serial
  kernel runs (the lockstep struct-of-arrays kernels of
  :mod:`repro.core.batched_games`, or
  :func:`~repro.core.columnar_rounds.play_coin_game` for the scalar
  oracle).  Rounds smaller than :func:`min_pool_games_for`'s
  engine-aware cutoff skip dispatch entirely — at that size the pool's
  fixed cost exceeds the games.  The executor itself never runs more
  processes than the host has cores (``workers`` beyond that keeps
  shaping the shard layout but not the process count): results are
  bit-identical at any process count, and oversubscribed CPU-bound
  workers only time-slice the same cores while multiplying kernel
  page-fault overhead — the shape of the old superlinear
  ``columnar_workers_s`` regression on 1-core hosts.
- **Shared read-only round state.**  The round's residual CSR
  (offsets, targets) — plus, for the batched engine, the per-round CSR
  transpose-position map its replay arenas patch through — is published
  once per round through :mod:`multiprocessing.shared_memory`; shard
  payloads carry only the segment names, and workers attach, copy
  (cached until the next round's segments arrive), and close, so no
  worker recomputes the per-round lexsort or adjacency conversion per
  shard.  Nothing is ever written to the shared segments, mirroring the
  model's read-only D_{i-1}.
- **Accounting fold.**  A shard returns ``(reads, writes)`` arrays for
  its machines plus its layer-proposal deltas as sparse
  ``(vertices, minima, counts)`` triples and (optionally) replayable
  game record tuples (see :mod:`repro.core.columnar_rounds`).  The driver
  scatters the counts through
  :meth:`~repro.ampc.machine.BatchMachineContext.account_at` and folds
  the deltas with the same min/+ accumulators the serial loop uses.
  Minimum and addition are commutative and associative, and counts
  scatter by machine position, so the folded store, the per-round
  statistics, and the strict-budget behavior are bit-identical to the
  serial schedule no matter how the OS interleaves shard completions.

Because every observable — partitions, layer values, round counts, probe
counts, per-store word accounting — is reproduced exactly, ``workers``
is a pure throughput knob: the differential harness
(``tests/test_parallel_equivalence.py``) asserts equality against the
serial dict-backed oracle for every (store, workers) combination.

Failure containment: any worker fault (an exception mid-shard, an
unpicklable result, a dead process) closes the pool — joining every
worker so no orphan processes survive — and surfaces as a single
:class:`WorkerPoolError` naming the cause.  ``workers=1`` never creates
processes at all; it is the serial in-process path.
"""

from __future__ import annotations

import atexit
import contextlib
import gc
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from multiprocessing.shared_memory import SharedMemory
from typing import NamedTuple

import numpy as np

from repro.ampc.messaging import MemoryGuardError

__all__ = [
    "CoinGamePool",
    "MIN_POOL_GAMES",
    "WorkerPoolError",
    "close_shared_pools",
    "defer_full_gc",
    "resolve_workers",
    "shared_pool",
]

# Test hook (see tests/test_failure_injection.py): set before the pool
# forks to make every worker shard misbehave in a controlled way.
_FAULT_ENV = "_REPRO_POOL_FAULT"

# Rounds with fewer pending games than this run in-process even when a
# pool is available: publishing the CSR, pickling shards, and collecting
# futures costs on the order of a millisecond — more than this many
# games cost under the scalar engine — so small rounds (the long tail
# of a multi-round partition, and everything on a 1-core host where
# extra workers only add overhead) skip dispatch entirely.  Callers can
# override per run via ``min_pool_games`` (tests pin it to 1 to force
# dispatch on tiny differential shapes).
MIN_POOL_GAMES = 256

# The batched engine's per-game cost is an order of magnitude below the
# scalar interpreter's, so pool dispatch amortizes only on much larger
# rounds: below this many pending games the fixed dispatch cost (CSR +
# transpose publication, worker attach, result pickles) exceeds what the
# lockstep kernels spend playing them, and the round stays in-process.
MIN_POOL_GAMES_BATCHED = 2048


def min_pool_games_for(engine: str, config=None) -> int:
    """Engine-aware dispatch-amortization threshold.

    ``config`` (an :class:`repro.ampc.engine_config.EngineConfig`)
    supplies the run's pinned thresholds; None reads the module
    constants above.
    """
    array_engine = engine in ("batched", "compiled")
    if config is not None:
        return (
            config.min_pool_games_batched
            if array_engine
            else config.min_pool_games
        )
    return MIN_POOL_GAMES_BATCHED if array_engine else MIN_POOL_GAMES


class WorkerPoolError(RuntimeError):
    """A coin-game worker pool failed; the round could not complete."""


@contextlib.contextmanager
def defer_full_gc():
    """Suspend *full* (gen-2) garbage collections for a game loop.

    The coin games churn millions of short-lived dicts, lists, and
    tuples next to a large static object graph (the residual adjacency
    lists are n+1 containers).  Young-generation collection handles the
    churn — game garbage is unreachable within a few hops, so memory
    stays bounded — but every full collection also rescans the static
    heap, which measurably dominates GC time at bench scale (~6% of
    lca-round wall clock at n = 10⁵).  Thresholds are restored on exit,
    so callers resume normal full collections.
    """
    gen0, gen1, gen2 = gc.get_threshold()
    gc.set_threshold(gen0, gen1, 1_000_000_000)
    try:
        yield
    finally:
        gc.set_threshold(gen0, gen1, gen2)


def resolve_workers(workers: int | str | None) -> int:
    """Normalize a ``workers`` knob: None -> $REPRO_WORKERS -> "auto".

    ``"auto"`` (the default when neither the caller nor the environment
    says otherwise) resolves to the machine's CPU count, so a 1-core
    host never pays pool-dispatch overhead while multi-core hosts shard
    by default; combined with :data:`MIN_POOL_GAMES` this is what the
    pipelines run with.  Explicit integers are taken as-is.
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        workers = env if env else "auto"
    if isinstance(workers, str):
        if workers == "auto":
            return max(1, os.cpu_count() or 1)
        workers = int(workers)
    workers = int(workers)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return workers


class ShardResult(NamedTuple):
    """What one worker shard reports back to the driver."""

    reads: np.ndarray  # per-machine probe counts, shard order
    writes: np.ndarray  # per-machine write counts, shard order
    fold_vertices: np.ndarray  # vertices with layer proposals
    fold_minima: np.ndarray  # min proposed layer per vertex
    fold_counts: np.ndarray  # number of proposals per vertex
    records: list | None  # game record tuple per machine when requested
    replay_stats: dict | None = None  # incremental-replay counters (batched)


# -- worker side -----------------------------------------------------------

# One-slot cache of the current round's residual CSR (and the flat
# adjacency lists the scalar engine derives from it), keyed by the
# shared-memory segment names (unique per round): the first shard a
# worker receives pays the copy/conversion, later shards of the same
# round reuse it.
_CSR_CACHE: dict[str, object] = {
    "key": None, "csr": None, "adj": None, "transpose": None
}


def _attached_array(name: str, count: int) -> tuple[SharedMemory, np.ndarray]:
    # Attaching registers the segment with the resource tracker a second
    # time, but pool workers share the driver's tracker process (its fd
    # is inherited through multiprocessing), whose cache is a set — the
    # re-register is idempotent and the driver's unlink clears it.
    shm = SharedMemory(name=name)
    return shm, np.frombuffer(shm.buf, dtype=np.int64, count=count)


def _load_csr(
    offsets_name: str, targets_name: str, num_offsets: int, num_targets: int
) -> tuple[np.ndarray, np.ndarray]:
    """This round's residual CSR as worker-private arrays (cached)."""
    key = (offsets_name, targets_name)
    if _CSR_CACHE["key"] == key:
        return _CSR_CACHE["csr"]
    off_shm, offsets = _attached_array(offsets_name, num_offsets)
    tgt_shm, targets = _attached_array(targets_name, num_targets)
    try:
        csr = (offsets.copy(), targets.copy())
    finally:
        del offsets, targets  # release the buffer views before closing
        off_shm.close()
        tgt_shm.close()
    _CSR_CACHE["key"] = key
    _CSR_CACHE["csr"] = csr
    _CSR_CACHE["adj"] = None
    _CSR_CACHE["transpose"] = None
    return csr


def _load_adjacency(csr_meta: tuple) -> list:
    offsets, targets = _load_csr(*csr_meta[:4])
    if _CSR_CACHE["adj"] is None:
        from repro.core.columnar_rounds import residual_adjacency_lists

        _CSR_CACHE["adj"] = residual_adjacency_lists(offsets, targets)
    return _CSR_CACHE["adj"]


def _load_transpose(csr_meta: tuple):
    """The round's CSR transpose-position map (per-round constant).

    The driver publishes the map through the round's shared-memory
    segment set (it computes it once; without that every worker would
    redo the same lexsort per round), so workers normally just attach
    and copy; computing locally is the fallback for metas without one.
    """
    offsets, targets = _load_csr(*csr_meta[:4])
    if _CSR_CACHE["transpose"] is None:
        transpose_name = csr_meta[4] if len(csr_meta) > 4 else None
        if transpose_name is not None:
            shm, view = _attached_array(transpose_name, len(targets))
            try:
                _CSR_CACHE["transpose"] = view.copy()
            finally:
                del view
                shm.close()
        else:
            from repro.core.batched_games import csr_transpose_positions

            _CSR_CACHE["transpose"] = csr_transpose_positions(
                offsets, targets
            )
    return _CSR_CACHE["transpose"]


def _play_shard(
    csr_meta: tuple,
    roots: np.ndarray,
    params: tuple[int, int, int, int, int | None, bool, str],
):
    """Run one shard of coin-game machines inside a worker process.

    With ``engine="batched"`` or ``"compiled"`` the shard is a
    game-index slice of the round's fleet run through the lockstep (or
    fused-C) engine against the shared CSR; with ``engine="scalar"``
    each game is interpreted one at a time.  All report the identical
    :class:`ShardResult` shape.
    """
    fault = os.environ.get(_FAULT_ENV, "")
    if fault == "raise":
        raise RuntimeError("injected worker fault (test hook)")
    if fault == "exit":  # pragma: no cover - exercised via subprocess
        os._exit(17)
    x, beta, clip, horizon, scale, want_records, engine, config = params
    if engine in ("batched", "compiled"):
        from repro.core.columnar_rounds import run_games_batched_with_fallback

        offsets, targets = _load_csr(*csr_meta[:4])
        n = len(offsets) - 1
        out_layer_arr = np.full(n, float("inf"))
        out_count_arr = np.zeros(n, dtype=np.int64)
        replay_stats: dict = {}
        with defer_full_gc():
            reads, writes, records = run_games_batched_with_fallback(
                offsets, targets, roots,
                x=x, beta=beta, clip=clip, horizon=horizon, scale=scale,
                out_layer=out_layer_arr, out_count=out_count_arr,
                want_records=want_records,
                transpose_pos=(
                    _load_transpose(csr_meta)
                    if engine == "batched" else None
                ),
                replay_stats=replay_stats,
                config=config,
                engine=engine,
            )
        fold_vertices = np.flatnonzero(out_count_arr)
        fold_minima = out_layer_arr[fold_vertices]
        fold_counts = out_count_arr[fold_vertices]
        if fault == "unpicklable":
            return lambda: None  # poisoned result: cannot cross the pipe
        return ShardResult(
            reads, writes, fold_vertices, fold_minima, fold_counts, records,
            replay_stats,
        )
    from repro.core.columnar_rounds import play_coin_game

    adj = _load_adjacency(csr_meta)
    # Dense accumulators exactly like the serial kernel's (plain list
    # indexing in the game's fold loop), sparsified vectorized below.
    n = len(adj)
    out_layer: list = [float("inf")] * n
    out_count: list = [0] * n
    reads = np.zeros(len(roots), dtype=np.int64)
    writes = np.zeros(len(roots), dtype=np.int64)
    records: list | None = [] if want_records else None
    with defer_full_gc():  # same scoped tradeoff the serial driver makes
        for slot, v in enumerate(roots.tolist()):
            reads[slot], writes[slot], record = play_coin_game(
                adj, v, x, beta, clip, horizon, scale,
                out_layer, out_count, want_records,
            )
            if records is not None:
                records.append(record)
    counts = np.asarray(out_count, dtype=np.int64)
    fold_vertices = np.flatnonzero(counts)
    fold_minima = np.array(out_layer)[fold_vertices]
    fold_counts = counts[fold_vertices]
    if fault == "unpicklable":
        return lambda: None  # poisoned result: cannot cross the pipe
    return ShardResult(
        reads, writes, fold_vertices, fold_minima, fold_counts, records
    )


def _play_fabric_shard(
    csr_meta: tuple,
    sid: int,
    roots: np.ndarray,
    positions: np.ndarray,
    payload: dict,
):
    """Run one message-fabric shard's BSP chain inside a worker process.

    The chain itself lives in :func:`repro.ampc.messaging.run_shard_chain`
    — the worker only attaches the round's shared CSR (cached across the
    round's shards) and applies the same fault hooks as
    :func:`_play_shard`, so the failure-containment tests exercise both
    dispatch paths identically.
    """
    fault = os.environ.get(_FAULT_ENV, "")
    if fault == "raise":
        raise RuntimeError("injected worker fault (test hook)")
    if fault == "exit":  # pragma: no cover - exercised via subprocess
        os._exit(17)
    from repro.ampc.messaging import run_shard_chain

    offsets, targets = _load_csr(*csr_meta[:4])
    with defer_full_gc():
        result = run_shard_chain(
            offsets, targets, sid, roots=roots, positions=positions,
            **payload,
        )
    if fault == "unpicklable":
        return lambda: None  # poisoned result: cannot cross the pipe
    return result


# -- driver side -----------------------------------------------------------


class CoinGamePool:
    """A persistent worker pool executing coin-game machine shards.

    The executor is created lazily on first use and reused across rounds
    (and, via :func:`shared_pool`, across partition calls).  Any shard
    failure closes the pool — joining all workers — and raises
    :class:`WorkerPoolError`.
    """

    def __init__(self, workers: int, chunks_per_worker: int = 4) -> None:
        workers = int(workers)
        if workers < 2:
            raise ValueError(
                "CoinGamePool needs workers >= 2; workers=1 is the serial "
                "in-process path and never constructs a pool"
            )
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be >= 1")
        self.workers = workers
        self.chunks_per_worker = chunks_per_worker
        # Requested parallelism and executor size are separate knobs:
        # ``workers`` keeps driving the sharding math (so shard shapes
        # — and therefore the dispatch pattern — depend only on what
        # the caller asked for), while the executor never forks more
        # processes than the host has cores.  Every observable is
        # bit-identical at any process count, so processes beyond the
        # cores can only add cost: each extra runnable CPU-bound worker
        # time-slices the same cores and roughly doubles its kernel
        # time in page-fault handling of freshly mapped kernel arenas
        # (the tracked 1-core sweep recorded 11.3/31.4/102.6 s at
        # workers 1/2/4 before this cap — a 9x blow-up where dispatch
        # cost predicts ~1x).
        self.procs = max(1, min(workers, os.cpu_count() or 1))
        self.closed = False
        self._executor: ProcessPoolExecutor | None = None
        # Snapshot of the GC thresholds workers should run with.  The
        # executor forks lazily — possibly inside a driver's
        # defer_full_gc() window — so each worker explicitly restores
        # the construction-time thresholds instead of inheriting a
        # temporarily gen-2-disabled configuration for its lifetime.
        self._worker_gc_threshold = gc.get_threshold()

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            # Pin the fork start method where the platform offers it: the
            # shared-memory cleanup story relies on workers inheriting the
            # driver's resource-tracker fd (see _attached_array), which
            # spawn/forkserver children do not.  Elsewhere fall back to
            # the default context — functional, at the cost of tracker
            # noise at worker exit.
            try:
                mp_context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-fork platforms
                mp_context = None
            self._executor = ProcessPoolExecutor(
                max_workers=self.procs,
                mp_context=mp_context,
                initializer=gc.set_threshold,
                initargs=self._worker_gc_threshold,
            )
        return self._executor

    def run_games(
        self,
        offsets: np.ndarray,
        targets: np.ndarray,
        roots: np.ndarray,
        positions: np.ndarray,
        *,
        x: int,
        beta: int,
        clip: int,
        horizon: int,
        scale: int | None,
        want_records: bool,
        engine: str = "scalar",
        transpose_pos: np.ndarray | None = None,
        cohort_games: int | None = None,
        config=None,
    ) -> list[tuple[np.ndarray, ShardResult]]:
        """Play the games rooted at ``roots`` across the worker fleet.

        ``positions`` carries each root's index into the round's machine
        array; the return value pairs every shard's position slice with
        its :class:`ShardResult` so the caller can scatter accounting and
        fold layer deltas (both order-independent operations).
        ``engine`` selects the per-shard execution (lockstep
        ``"batched"`` kernels, the fused-C ``"compiled"`` cohort player,
        or the one-game-at-a-time ``"scalar"`` interpreter).

        ``cohort_games`` shards the fleet at cohort granularity when it
        spans more than one whole cohort per worker: shard boundaries
        fall on multiples of the engine's cohort size, so each worker
        runs whole cache-sized cohorts — the same slices the serial
        kernel runs — instead of arbitrary re-slices whose partial
        cohorts amortize worse.  Smaller fleets use evenly balanced
        slices instead (idle workers cost more than partial cohorts
        there).  ``transpose_pos`` (batched engine) is published through
        the round's shared-memory segment set alongside the CSR, so
        every worker attaches instead of recomputing the per-round
        lexsort.
        """
        if self.closed:
            raise WorkerPoolError("coin-game worker pool is closed")
        if not len(roots):
            return []
        segments: list[SharedMemory] = []
        try:
            executor = self._ensure_executor()
            csr_meta, segments = self._publish_csr(
                offsets, targets, transpose_pos
            )
            params = (
                x, beta, clip, horizon, scale, want_records, engine, config
            )
            max_shards = min(
                len(roots), self.workers * self.chunks_per_worker
            )
            if cohort_games and len(roots) > cohort_games * self.workers:
                bounds = list(range(cohort_games, len(roots), cohort_games))
                root_chunks = np.split(roots, bounds)
                position_chunks = np.split(positions, bounds)
            else:
                root_chunks = np.array_split(roots, max_shards)
                position_chunks = np.array_split(positions, max_shards)
            futures = {
                executor.submit(_play_shard, csr_meta, root_chunk, params):
                    position_chunk
                for root_chunk, position_chunk in zip(
                    root_chunks, position_chunks
                )
            }
            return [
                (futures[done], done.result()) for done in as_completed(futures)
            ]
        except WorkerPoolError:
            raise
        except Exception as exc:
            # Any fault — a worker exception, an unpicklable result, a
            # dead process (BrokenProcessPool) — poisons the round: close
            # the pool (joining every worker, so nothing is orphaned) and
            # surface one clear error.
            self.close(cancel=True)
            raise WorkerPoolError(
                f"coin-game worker pool failed mid-round: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        finally:
            for shm in segments:
                shm.close()
                shm.unlink()

    def run_fabric_round(
        self,
        offsets: np.ndarray,
        targets: np.ndarray,
        jobs: list[tuple[int, np.ndarray, np.ndarray]],
        payload: dict,
        on_result,
    ) -> None:
        """Run message-fabric shard chains across the worker fleet.

        ``jobs`` is ``[(sid, roots, positions), …]``; each dispatches
        one :func:`repro.ampc.messaging.run_shard_chain` against the
        round's shared CSR.  ``on_result(sid, result, others_running)``
        fires in completion order, so the driver replays a finished
        shard's communication accounting while the remaining shards are
        still playing.

        :class:`~repro.ampc.messaging.MemoryGuardError` passes through
        verbatim — a budget violation is a protocol outcome the serial
        fabric would have raised identically, not a pool fault, so the
        executor stays healthy for the next run.  Any other fault closes
        the pool (joining every worker) and raises
        :class:`WorkerPoolError`, exactly like :meth:`run_games`.
        """
        if self.closed:
            raise WorkerPoolError("coin-game worker pool is closed")
        if not jobs:
            return
        segments: list[SharedMemory] = []
        futures: dict = {}
        try:
            executor = self._ensure_executor()
            csr_meta, segments = self._publish_csr(offsets, targets)
            futures = {
                executor.submit(
                    _play_fabric_shard, csr_meta, sid, roots, positions,
                    payload,
                ): sid
                for sid, roots, positions in jobs
            }
            outstanding = len(futures)
            for done in as_completed(futures):
                outstanding -= 1
                on_result(futures[done], done.result(), outstanding > 0)
        except MemoryGuardError:
            for future in futures:
                future.cancel()
            raise
        except WorkerPoolError:
            raise
        except Exception as exc:
            self.close(cancel=True)
            raise WorkerPoolError(
                f"coin-game worker pool failed mid-round: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        finally:
            for shm in segments:
                shm.close()
                shm.unlink()

    @staticmethod
    def _publish_csr(
        offsets: np.ndarray,
        targets: np.ndarray,
        transpose_pos: np.ndarray | None = None,
    ) -> tuple[tuple, list[SharedMemory]]:
        """Copy the residual CSR (and replay arena maps) into shared
        read-only segments.

        ``transpose_pos`` — the batched engine's per-round CSR
        transpose-position map — rides along in its own segment so
        worker shards replay against it without each recomputing the
        per-round lexsort.  Either every segment is returned (the caller
        owns their cleanup) or none survive: a failure publishing a
        later array unlinks the earlier ones before re-raising, so a
        /dev/shm-full round cannot leak a named OS segment.
        """
        arrays = [offsets, targets]
        if transpose_pos is not None:
            arrays.append(transpose_pos)
        segments: list[SharedMemory] = []
        names = []
        try:
            for array in arrays:
                array = np.ascontiguousarray(array, dtype=np.int64)
                shm = SharedMemory(create=True, size=max(1, array.nbytes))
                segments.append(shm)
                if len(array):
                    np.frombuffer(
                        shm.buf, dtype=np.int64, count=len(array)
                    )[:] = array
                names.append(shm.name)
        except BaseException:
            for shm in segments:
                shm.close()
                shm.unlink()
            raise
        meta = (
            names[0], names[1], len(offsets), len(targets),
            names[2] if transpose_pos is not None else None,
        )
        return meta, segments

    def close(self, cancel: bool = False) -> None:
        """Shut the executor down and join every worker process."""
        self.closed = True
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=cancel)

    def __enter__(self) -> "CoinGamePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


_SHARED_POOLS: dict[int, CoinGamePool] = {}


def shared_pool(workers: int) -> CoinGamePool:
    """The process-wide pool for ``workers`` (recreated if it broke).

    Sharing one executor across partition calls keeps the fork cost a
    one-time charge — exactly the "persistent pool" a long-running
    service would hold — while a pool poisoned by a worker fault is
    dropped and lazily replaced on the next request.
    """
    pool = _SHARED_POOLS.get(workers)
    if pool is None or pool.closed:
        pool = CoinGamePool(workers)
        _SHARED_POOLS[workers] = pool
    return pool


def close_shared_pools() -> None:
    """Close every shared pool (idempotent; also runs at interpreter exit)."""
    for pool in list(_SHARED_POOLS.values()):
        pool.close()
    _SHARED_POOLS.clear()


atexit.register(close_shared_pools)
