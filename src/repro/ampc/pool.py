"""Process-pool execution of a round's coin-game machine fleet.

Parallel execution model
------------------------

The AMPC model is round-synchronous: within round i every machine reads
only D_{i-1} and writes only D_i (Section 3.1), so machines of one round
share *no* state and can run in any order — or simultaneously.  The
simulator exploits exactly that freedom, nothing more:

- **Sharding.**  The driver splits the round's machine ids into
  contiguous shards and submits each to a persistent
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Under the batched
  engine, whenever the fleet spans more than one whole cohort per
  worker, shard boundaries fall on ``COHORT_GAMES`` multiples
  (cohort-granular sharding): each worker runs the very same
  cache-sized cohorts the serial kernel would run, instead of arbitrary
  re-slices whose partial cohorts amortize the lockstep kernels worse;
  smaller fleets fall back to evenly balanced slices, where keeping
  every worker busy beats cohort alignment.  Per-machine semantics are
  untouched — a shard is a game-index slice
  of the round's fleet, run through the very same engine the serial
  kernel runs (the lockstep struct-of-arrays kernels of
  :mod:`repro.core.batched_games`, or
  :func:`~repro.core.columnar_rounds.play_coin_game` for the scalar
  oracle).  Rounds smaller than :func:`min_pool_games_for`'s
  engine-aware cutoff skip dispatch entirely — at that size the pool's
  fixed cost exceeds the games.  The executor itself never runs more
  processes than the host has cores (``workers`` beyond that keeps
  shaping the shard layout but not the process count): results are
  bit-identical at any process count, and oversubscribed CPU-bound
  workers only time-slice the same cores while multiplying kernel
  page-fault overhead — the shape of the old superlinear
  ``columnar_workers_s`` regression on 1-core hosts.
- **Shared read-only round state.**  The round's residual CSR
  (offsets, targets) — plus, for the batched engine, the per-round CSR
  transpose-position map its replay arenas patch through — is published
  once per round through :mod:`multiprocessing.shared_memory`; shard
  payloads carry only the segment names, and workers attach, copy
  (cached until the next round's segments arrive), and close, so no
  worker recomputes the per-round lexsort or adjacency conversion per
  shard.  Nothing is ever written to the shared segments, mirroring the
  model's read-only D_{i-1}.
- **Accounting fold.**  A shard returns ``(reads, writes)`` arrays for
  its machines plus its layer-proposal deltas as sparse
  ``(vertices, minima, counts)`` triples and (optionally) replayable
  game record tuples (see :mod:`repro.core.columnar_rounds`).  The driver
  scatters the counts through
  :meth:`~repro.ampc.machine.BatchMachineContext.account_at` and folds
  the deltas with the same min/+ accumulators the serial loop uses.
  Minimum and addition are commutative and associative, and counts
  scatter by machine position, so the folded store, the per-round
  statistics, and the strict-budget behavior are bit-identical to the
  serial schedule no matter how the OS interleaves shard completions.

Because every observable — partitions, layer values, round counts, probe
counts, per-store word accounting — is reproduced exactly, ``workers``
is a pure throughput knob: the differential harness
(``tests/test_parallel_equivalence.py``) asserts equality against the
serial dict-backed oracle for every (store, workers) combination.

Fault tolerance: the round supervisor
--------------------------------------

Dispatch is supervised (:meth:`CoinGamePool._run_supervised`): every
shard future carries a ``(dispatch round, shard, attempt)`` identity,
and a shard that is *lost* — a worker exception, a dead process
(``BrokenProcessPool``), an unpicklable result, a checksum mismatch, or
a future that outlives its deadline — is re-dispatched up to
``max_shard_retries`` times with seed-jittered exponential backoff
before the driver runs it inline as the last resort.  The whole scheme
rests on one invariant, proved by the pooled-fabric work: **a shard is
a pure function of its inputs** (the published round CSR, its roots,
and the run's config), so re-executing lost work — in a fresh worker,
a respawned pool, or inline on the driver — produces bit-identical
results, and the commutative min/+ result folds make the retry
*schedule* (which attempt finally landed, in what order) invisible to
every observable.  Concretely:

- **Deadlines / hang detection.**  Each running future is held to
  ``pool_deadline_s``, tightened to ``pool_deadline_scale ×`` the
  slowest completed sibling once one lands.  Expiry kills the worker
  processes (a running future cannot be cancelled), counts a
  ``deadline_kill``, and re-queues every in-flight shard.
- **Self-healing.**  A broken or killed executor is torn down — workers
  terminated and reaped, so nothing is orphaned — and respawned with
  backoff on the next submission instead of poisoning subsequent
  rounds; the round's shared-memory segments stay owned by the driver
  (published before dispatch, unlinked in one ``finally``), so
  respawns and retries re-attach to the same segments and no fault
  schedule can leak a ``/dev/shm`` entry.
- **Integrity.**  Workers stamp an xxhash-style checksum
  (:func:`repro.ampc.faults.payload_checksum`) over every result array;
  the driver re-verifies before folding, so a corrupted result becomes
  a ``checksum_reject`` retry, never a wrong partition.
- **Graceful degradation.**  A shard still failing after
  ``max_shard_retries`` runs inline on the driver (serial execution of
  the same pure function — bit-identical, just not parallel);
  :class:`WorkerPoolError` is reserved for inline execution itself
  failing, or for ``pool_degrade=False`` callers who prefer fail-fast.
  It then carries structured context (round, shard, attempts,
  per-attempt outcomes) with ``__cause__`` chained.
- **Protocol outcomes pass through.**  A deterministic outcome the
  serial path would raise identically —
  :class:`~repro.ampc.messaging.MemoryGuardError` — is never retried:
  replaying a pure function cannot change it.

Recovery is observable-invisible but not silent: the pool counts
retries, respawns, deadline kills, checksum rejects, worker faults,
degraded shards, and recovery wall time (:attr:`CoinGamePool.recovery`,
surfaced per run as ``BetaPartitionOutcome.round_recovery`` and in the
bench's ``recovery`` block).  Chaos schedules are injected
deterministically via :mod:`repro.ampc.faults` (``FaultPlan``; CI runs
the suite under ``REPRO_FAULT_PLAN``).  ``workers=1`` never creates
processes at all; it is the serial in-process path.
"""

from __future__ import annotations

import atexit
import contextlib
import gc
import multiprocessing
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from multiprocessing.shared_memory import SharedMemory
from typing import NamedTuple

import numpy as np

from repro.ampc import faults
from repro.ampc.faults import ChecksumError, payload_checksum
from repro.ampc.messaging import MemoryGuardError

__all__ = [
    "CoinGamePool",
    "MIN_POOL_GAMES",
    "WorkerPoolError",
    "close_shared_pools",
    "defer_full_gc",
    "new_recovery_counters",
    "resolve_workers",
    "shared_pool",
]

# Rounds with fewer pending games than this run in-process even when a
# pool is available: publishing the CSR, pickling shards, and collecting
# futures costs on the order of a millisecond — more than this many
# games cost under the scalar engine — so small rounds (the long tail
# of a multi-round partition, and everything on a 1-core host where
# extra workers only add overhead) skip dispatch entirely.  Callers can
# override per run via ``min_pool_games`` (tests pin it to 1 to force
# dispatch on tiny differential shapes).
MIN_POOL_GAMES = 256

# The batched engine's per-game cost is an order of magnitude below the
# scalar interpreter's, so pool dispatch amortizes only on much larger
# rounds: below this many pending games the fixed dispatch cost (CSR +
# transpose publication, worker attach, result pickles) exceeds what the
# lockstep kernels spend playing them, and the round stays in-process.
MIN_POOL_GAMES_BATCHED = 2048

# Round-supervisor defaults (EngineConfig fields / REPRO_* env overrides
# of the same names thread per-run values through; see the module
# docstring's fault-tolerance section).  How many re-dispatches a lost
# shard gets before the driver degrades it to inline execution:
MAX_SHARD_RETRIES = 2
# Base of the seed-jittered exponential backoff between re-dispatches
# (and before an executor respawn):
RETRY_BACKOFF_S = 0.05
# Hard wall-clock deadline for one running shard future.  Generous by
# design — production rounds are seconds, so the hard cap only catches
# true hangs; the adaptive bound below does the fine-grained work:
POOL_DEADLINE_S = 300.0
# Once any sibling shard of the same dispatch has completed, a
# still-running shard is presumed hung after this multiple of the
# slowest completed sibling (floored at 1s so millisecond shards cannot
# trip it on scheduler noise):
POOL_DEADLINE_SCALE = 25.0
# Whether a shard that exhausts its retries degrades to inline driver
# execution (True: the round still completes bit-identically) or raises
# a structured WorkerPoolError (False: fail-fast semantics):
POOL_DEGRADE = True


def new_recovery_counters() -> dict:
    """A zeroed copy of the supervisor's recovery-counter schema."""
    return {
        "retries": 0,           # shard re-dispatches (any loss reason)
        "respawns": 0,          # executor teardown + recreate cycles
        "deadline_kills": 0,    # futures killed past their deadline
        "checksum_rejects": 0,  # results rejected by integrity check
        "worker_faults": 0,     # worker exceptions / broken-pool events
        "degraded_shards": 0,   # shards run inline after max retries
        "recovery_wall_s": 0.0,  # driver time spent recovering (+ checks)
    }


def min_pool_games_for(engine: str, config=None) -> int:
    """Engine-aware dispatch-amortization threshold.

    ``config`` (an :class:`repro.ampc.engine_config.EngineConfig`)
    supplies the run's pinned thresholds; None reads the module
    constants above.
    """
    array_engine = engine in ("batched", "compiled")
    if config is not None:
        return (
            config.min_pool_games_batched
            if array_engine
            else config.min_pool_games
        )
    return MIN_POOL_GAMES_BATCHED if array_engine else MIN_POOL_GAMES


class WorkerPoolError(RuntimeError):
    """A coin-game worker pool failed; the round could not complete.

    Carries the supervisor's structured context when one shard chain
    exhausted recovery: the pool dispatch sequence number (``round``),
    the failing ``shard`` index, how many ``attempts`` it got, the
    per-attempt loss ``outcomes`` (strings, oldest first), and the last
    underlying ``cause`` (also chained as ``__cause__``).  Errors from
    outside the per-shard loop (a closed pool, a failed CSR publish)
    leave the shard fields None.
    """

    def __init__(
        self,
        message: str,
        *,
        round: int | None = None,
        shard: int | None = None,
        attempts: int | None = None,
        outcomes: list[str] | None = None,
        cause: BaseException | None = None,
    ) -> None:
        super().__init__(message)
        self.round = round
        self.shard = shard
        self.attempts = attempts
        self.outcomes = list(outcomes or [])
        self.cause = cause


@contextlib.contextmanager
def defer_full_gc():
    """Suspend *full* (gen-2) garbage collections for a game loop.

    The coin games churn millions of short-lived dicts, lists, and
    tuples next to a large static object graph (the residual adjacency
    lists are n+1 containers).  Young-generation collection handles the
    churn — game garbage is unreachable within a few hops, so memory
    stays bounded — but every full collection also rescans the static
    heap, which measurably dominates GC time at bench scale (~6% of
    lca-round wall clock at n = 10⁵).  Thresholds are restored on exit,
    so callers resume normal full collections.
    """
    gen0, gen1, gen2 = gc.get_threshold()
    gc.set_threshold(gen0, gen1, 1_000_000_000)
    try:
        yield
    finally:
        gc.set_threshold(gen0, gen1, gen2)


def resolve_workers(workers: int | str | None) -> int:
    """Normalize a ``workers`` knob: None -> $REPRO_WORKERS -> "auto".

    ``"auto"`` (the default when neither the caller nor the environment
    says otherwise) resolves to the machine's CPU count, so a 1-core
    host never pays pool-dispatch overhead while multi-core hosts shard
    by default; combined with :data:`MIN_POOL_GAMES` this is what the
    pipelines run with.  Explicit integers are taken as-is.
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        workers = env if env else "auto"
    if isinstance(workers, str):
        if workers == "auto":
            return max(1, os.cpu_count() or 1)
        workers = int(workers)
    workers = int(workers)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return workers


class ShardResult(NamedTuple):
    """What one worker shard reports back to the driver."""

    reads: np.ndarray  # per-machine probe counts, shard order
    writes: np.ndarray  # per-machine write counts, shard order
    fold_vertices: np.ndarray  # vertices with layer proposals
    fold_minima: np.ndarray  # min proposed layer per vertex
    fold_counts: np.ndarray  # number of proposals per vertex
    records: list | None  # game record tuple per machine when requested
    replay_stats: dict | None = None  # incremental-replay counters (batched)
    # Integrity digest over the numeric payload arrays (reads, writes,
    # fold triples), stamped worker-side and re-verified by the driver
    # before any fold; see repro.ampc.faults.payload_checksum.
    checksum: int | None = None


# -- worker side -----------------------------------------------------------

# One-slot cache of the current round's residual CSR (and the flat
# adjacency lists the scalar engine derives from it), keyed by the
# shared-memory segment names (unique per round): the first shard a
# worker receives pays the copy/conversion, later shards of the same
# round reuse it.
_CSR_CACHE: dict[str, object] = {
    "key": None, "csr": None, "adj": None, "transpose": None
}


def _attached_array(name: str, count: int) -> tuple[SharedMemory, np.ndarray]:
    # Attaching registers the segment with the resource tracker a second
    # time, but pool workers share the driver's tracker process (its fd
    # is inherited through multiprocessing), whose cache is a set — the
    # re-register is idempotent and the driver's unlink clears it.
    shm = SharedMemory(name=name)
    return shm, np.frombuffer(shm.buf, dtype=np.int64, count=count)


def _load_csr(
    offsets_name: str, targets_name: str, num_offsets: int, num_targets: int
) -> tuple[np.ndarray, np.ndarray]:
    """This round's residual CSR as worker-private arrays (cached)."""
    key = (offsets_name, targets_name)
    if _CSR_CACHE["key"] == key:
        return _CSR_CACHE["csr"]
    off_shm, offsets = _attached_array(offsets_name, num_offsets)
    tgt_shm, targets = _attached_array(targets_name, num_targets)
    try:
        csr = (offsets.copy(), targets.copy())
    finally:
        del offsets, targets  # release the buffer views before closing
        off_shm.close()
        tgt_shm.close()
    _CSR_CACHE["key"] = key
    _CSR_CACHE["csr"] = csr
    _CSR_CACHE["adj"] = None
    _CSR_CACHE["transpose"] = None
    return csr


def _load_adjacency(csr_meta: tuple) -> list:
    offsets, targets = _load_csr(*csr_meta[:4])
    if _CSR_CACHE["adj"] is None:
        from repro.core.columnar_rounds import residual_adjacency_lists

        _CSR_CACHE["adj"] = residual_adjacency_lists(offsets, targets)
    return _CSR_CACHE["adj"]


def _load_transpose(csr_meta: tuple):
    """The round's CSR transpose-position map (per-round constant).

    The driver publishes the map through the round's shared-memory
    segment set (it computes it once; without that every worker would
    redo the same lexsort per round), so workers normally just attach
    and copy; computing locally is the fallback for metas without one.
    """
    offsets, targets = _load_csr(*csr_meta[:4])
    if _CSR_CACHE["transpose"] is None:
        transpose_name = csr_meta[4] if len(csr_meta) > 4 else None
        if transpose_name is not None:
            shm, view = _attached_array(transpose_name, len(targets))
            try:
                _CSR_CACHE["transpose"] = view.copy()
            finally:
                del view
                shm.close()
        else:
            from repro.core.batched_games import csr_transpose_positions

            _CSR_CACHE["transpose"] = csr_transpose_positions(
                offsets, targets
            )
    return _CSR_CACHE["transpose"]


def _shard_checksum(
    reads, writes, fold_vertices, fold_minima, fold_counts
) -> int:
    """Integrity digest of a :class:`ShardResult`'s numeric payload.

    Shared by the worker (stamping) and the driver (re-verifying), so
    the two sides cannot drift.  Scope: every array the driver folds —
    game records are driver-opaque tuples that only feed the
    cross-round cache, whose replay validation re-derives them.
    """
    return payload_checksum(reads, writes, fold_vertices, fold_minima,
                            fold_counts)


def _fabric_checksum(res: dict) -> int:
    """Integrity digest of one fabric shard-chain result dict.

    Covers everything the driver adopts or replays: per-game charges,
    proof entries, the full request trace (whose ids drive comm-counter
    replay), the scalar counters, and the guard state merged into
    :meth:`~repro.ampc.messaging.MemoryGuard.adopt` — so a corrupted
    payload is rejected *before* any driver state mutates.
    """
    items = [res["reads"], res["writes"], res["proof_u"], res["proof_l"],
             res["proof_c"]]
    for miss, extra in res["trace"]:
        items.append(miss)
        items.append(extra)
    items.append(res["cache_ids"])
    items.append(res["cache_rounds"])
    items.append(np.asarray(
        [res["ejected_games"], res["ball_max"], res["guard_peak"],
         res["cache_words"], res["cache_hits"], res["cache_evicted"]],
        dtype=np.int64,
    ))
    items.append(repr(sorted(res["guard_held"].items())).encode())
    return payload_checksum(*items)


def _corrupted(spec, result):
    """Apply a fault's *post-play* effect to a worker's finished result.

    ``garbage`` flips one element of a checksummed array (after the
    checksum was stamped, so the driver's re-check must catch it);
    ``unpicklable`` poisons the pipe crossing.  Everything else already
    fired in :func:`repro.ampc.faults.apply_pre`.
    """
    if spec is None:
        return result
    if spec.kind == "unpicklable":
        return lambda: None  # poisoned result: cannot cross the pipe
    if spec.kind != "garbage":
        return result
    if isinstance(result, ShardResult):
        for name in ("reads", "writes", "fold_vertices", "fold_counts"):
            arr = getattr(result, name)
            if len(arr):
                bad = arr.copy()
                bad[0] += 1
                return result._replace(**{name: bad})
        return result._replace(
            fold_minima=np.append(result.fold_minima, 1.0)
        )
    for name in ("reads", "writes", "proof_u", "proof_l"):
        if len(result[name]):
            bad = result[name].copy()
            bad[0] += 1
            result[name] = bad
            return result
    result["ball_max"] += 1
    return result


def _play_shard(
    csr_meta: tuple,
    roots: np.ndarray,
    params: tuple[int, int, int, int, int | None, bool, str],
    fault_key: tuple[int, int, int] | None = None,
    plan=None,
):
    """Run one shard of coin-game machines inside a worker process.

    With ``engine="batched"`` or ``"compiled"`` the shard is a
    game-index slice of the round's fleet run through the lockstep (or
    fused-C) engine against the shared CSR; with ``engine="scalar"``
    each game is interpreted one at a time.  All report the identical
    :class:`ShardResult` shape.  ``fault_key``/``plan`` are the
    supervisor's chaos hook (:mod:`repro.ampc.faults`): inline degraded
    execution passes neither, so the last-resort path never faults.
    """
    spec = (
        plan.lookup(*fault_key)
        if plan is not None and fault_key is not None else None
    )
    faults.apply_pre(spec)
    x, beta, clip, horizon, scale, want_records, engine, config = params
    if engine in ("batched", "compiled"):
        from repro.core.columnar_rounds import run_games_batched_with_fallback

        offsets, targets = _load_csr(*csr_meta[:4])
        n = len(offsets) - 1
        out_layer_arr = np.full(n, float("inf"))
        out_count_arr = np.zeros(n, dtype=np.int64)
        replay_stats: dict = {}
        with defer_full_gc():
            reads, writes, records = run_games_batched_with_fallback(
                offsets, targets, roots,
                x=x, beta=beta, clip=clip, horizon=horizon, scale=scale,
                out_layer=out_layer_arr, out_count=out_count_arr,
                want_records=want_records,
                transpose_pos=(
                    _load_transpose(csr_meta)
                    if engine == "batched" else None
                ),
                replay_stats=replay_stats,
                config=config,
                engine=engine,
            )
        fold_vertices = np.flatnonzero(out_count_arr)
        fold_minima = out_layer_arr[fold_vertices]
        fold_counts = out_count_arr[fold_vertices]
        return _corrupted(spec, ShardResult(
            reads, writes, fold_vertices, fold_minima, fold_counts, records,
            replay_stats,
            checksum=_shard_checksum(
                reads, writes, fold_vertices, fold_minima, fold_counts
            ),
        ))
    from repro.core.columnar_rounds import play_coin_game

    adj = _load_adjacency(csr_meta)
    # Dense accumulators exactly like the serial kernel's (plain list
    # indexing in the game's fold loop), sparsified vectorized below.
    n = len(adj)
    out_layer: list = [float("inf")] * n
    out_count: list = [0] * n
    reads = np.zeros(len(roots), dtype=np.int64)
    writes = np.zeros(len(roots), dtype=np.int64)
    records: list | None = [] if want_records else None
    with defer_full_gc():  # same scoped tradeoff the serial driver makes
        for slot, v in enumerate(roots.tolist()):
            reads[slot], writes[slot], record = play_coin_game(
                adj, v, x, beta, clip, horizon, scale,
                out_layer, out_count, want_records,
            )
            if records is not None:
                records.append(record)
    counts = np.asarray(out_count, dtype=np.int64)
    fold_vertices = np.flatnonzero(counts)
    fold_minima = np.array(out_layer)[fold_vertices]
    fold_counts = counts[fold_vertices]
    return _corrupted(spec, ShardResult(
        reads, writes, fold_vertices, fold_minima, fold_counts, records,
        checksum=_shard_checksum(
            reads, writes, fold_vertices, fold_minima, fold_counts
        ),
    ))


def _play_fabric_shard(
    csr_meta: tuple,
    sid: int,
    roots: np.ndarray,
    positions: np.ndarray,
    cache_ids: np.ndarray,
    cache_rounds: np.ndarray,
    payload: dict,
    fault_key: tuple[int, int, int] | None = None,
    plan=None,
):
    """Run one message-fabric shard's BSP chain inside a worker process.

    The chain itself lives in :func:`repro.ampc.messaging.run_shard_chain`
    — the worker only attaches the round's shared CSR (cached across the
    round's shards), reconstructs the shard's cross-round ghost cache
    from it, stamps the result's integrity checksum, and applies the
    same fault hooks as :func:`_play_shard`, so the chaos harness
    exercises both dispatch paths identically.  A ``"slab"`` fault is
    threaded into the chain itself: it corrupts the first served row
    slab post-stamp, so the in-chain checksum verify rejects it.
    """
    spec = (
        plan.lookup(*fault_key)
        if plan is not None and fault_key is not None else None
    )
    faults.apply_pre(spec)
    from repro.ampc.messaging import run_shard_chain

    offsets, targets = _load_csr(*csr_meta[:4])
    with defer_full_gc():
        result = run_shard_chain(
            offsets, targets, sid, roots=roots, positions=positions,
            cache_ids=cache_ids, cache_rounds=cache_rounds,
            fault=spec if spec is not None and spec.kind == "slab" else None,
            **payload,
        )
    result["checksum"] = _fabric_checksum(result)
    return _corrupted(spec, result)


# -- driver side -----------------------------------------------------------

# Supervisor wait-loop granularity: how often deadline expiry and
# newly-running futures are checked while shards are in flight.  wait()
# returns immediately on any completion, so the zero-fault fast path
# only ever pays this while a shard is genuinely still computing.
_SUPERVISOR_POLL_S = 0.1


def _supervisor_knobs(config) -> tuple[int, float, float, float, bool]:
    """(max_retries, backoff_s, deadline_s, deadline_scale, degrade)."""
    if config is None:
        return (MAX_SHARD_RETRIES, RETRY_BACKOFF_S, POOL_DEADLINE_S,
                POOL_DEADLINE_SCALE, POOL_DEGRADE)
    return (config.max_shard_retries, config.retry_backoff_s,
            config.pool_deadline_s, config.pool_deadline_scale,
            config.pool_degrade)


def _verify_shard_result(result) -> None:
    """Driver-side integrity check of one :class:`ShardResult`."""
    if not isinstance(result, ShardResult) or result.checksum is None:
        raise ChecksumError(
            f"worker returned {type(result).__name__} without a payload "
            "checksum"
        )
    expected = _shard_checksum(
        result.reads, result.writes, result.fold_vertices,
        result.fold_minima, result.fold_counts,
    )
    if expected != result.checksum:
        raise ChecksumError("shard result failed its integrity check")


def _verify_fabric_result(result) -> None:
    """Driver-side integrity check of one fabric shard-chain result."""
    if not isinstance(result, dict) or result.get("checksum") is None:
        raise ChecksumError(
            f"worker returned {type(result).__name__} without a payload "
            "checksum"
        )
    if _fabric_checksum(result) != result["checksum"]:
        raise ChecksumError(
            "fabric shard result failed its integrity check"
        )


class CoinGamePool:
    """A persistent worker pool executing coin-game machine shards.

    The executor is created lazily on first use and reused across rounds
    (and, via :func:`shared_pool`, across partition calls).  Any shard
    failure closes the pool — joining all workers — and raises
    :class:`WorkerPoolError`.
    """

    def __init__(self, workers: int, chunks_per_worker: int = 4) -> None:
        workers = int(workers)
        if workers < 2:
            raise ValueError(
                "CoinGamePool needs workers >= 2; workers=1 is the serial "
                "in-process path and never constructs a pool"
            )
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be >= 1")
        self.workers = workers
        self.chunks_per_worker = chunks_per_worker
        # Requested parallelism and executor size are separate knobs:
        # ``workers`` keeps driving the sharding math (so shard shapes
        # — and therefore the dispatch pattern — depend only on what
        # the caller asked for), while the executor never forks more
        # processes than the host has cores.  Every observable is
        # bit-identical at any process count, so processes beyond the
        # cores can only add cost: each extra runnable CPU-bound worker
        # time-slices the same cores and roughly doubles its kernel
        # time in page-fault handling of freshly mapped kernel arenas
        # (the tracked 1-core sweep recorded 11.3/31.4/102.6 s at
        # workers 1/2/4 before this cap — a 9x blow-up where dispatch
        # cost predicts ~1x).
        self.procs = max(1, min(workers, os.cpu_count() or 1))
        self.closed = False
        # Monotonic dispatch sequence number — the "round" coordinate of
        # the supervisor's (round, shard, attempt) fault/retry keys.
        self.dispatch_seq = 0
        # Lifetime recovery counters (see new_recovery_counters); callers
        # snapshot/delta them per run (BetaPartitionOutcome.round_recovery).
        self.recovery = new_recovery_counters()
        self._executor: ProcessPoolExecutor | None = None
        # Snapshot of the GC thresholds workers should run with.  The
        # executor forks lazily — possibly inside a driver's
        # defer_full_gc() window — so each worker explicitly restores
        # the construction-time thresholds instead of inheriting a
        # temporarily gen-2-disabled configuration for its lifetime.
        self._worker_gc_threshold = gc.get_threshold()

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            # Pin the fork start method where the platform offers it: the
            # shared-memory cleanup story relies on workers inheriting the
            # driver's resource-tracker fd (see _attached_array), which
            # spawn/forkserver children do not.  Elsewhere fall back to
            # the default context — functional, at the cost of tracker
            # noise at worker exit.
            try:
                mp_context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-fork platforms
                mp_context = None
            self._executor = ProcessPoolExecutor(
                max_workers=self.procs,
                mp_context=mp_context,
                initializer=gc.set_threshold,
                initargs=self._worker_gc_threshold,
            )
        return self._executor

    def _teardown_executor(self) -> None:
        """Kill and reap the executor's workers (the self-healing path).

        Used when workers must die *now* — a future past its deadline,
        a broken pool — rather than drain: terminate every worker
        process first (a running future cannot be cancelled), then let
        ``shutdown`` observe the broken pool and join its management
        thread, then reap the processes.  The pool stays open: the next
        submission lazily respawns a fresh executor.  Shared-memory
        segments are untouched — the driver owns them and unlinks in
        the dispatch's ``finally`` — so no fault schedule can orphan a
        ``/dev/shm`` entry or a worker process.
        """
        executor, self._executor = self._executor, None
        if executor is None:
            return
        procs = list(getattr(executor, "_processes", {}).values())
        for proc in procs:
            with contextlib.suppress(Exception):
                proc.terminate()
        with contextlib.suppress(Exception):
            executor.shutdown(wait=True, cancel_futures=True)
        for proc in procs:
            with contextlib.suppress(Exception):
                proc.join(5.0)

    # -- recovery accounting ---------------------------------------------

    def recovery_snapshot(self) -> dict:
        """A copy of the lifetime recovery counters (for later delta)."""
        return dict(self.recovery)

    def recovery_delta(self, snapshot: dict) -> dict:
        """Recovery counters accumulated since ``snapshot``."""
        return {
            key: self.recovery[key] - snapshot.get(key, 0)
            for key in self.recovery
        }

    @staticmethod
    def _backoff_delay(
        base: float, rnd: int, shard: int, attempt: int
    ) -> float:
        """Seed-jittered exponential backoff window before a re-dispatch.

        Deterministic in the (round, shard, attempt) key — same
        splitmix64 mix as the fault plans — so a replayed chaos
        schedule backs off identically; the jitter (±50% around the
        exponential base) keeps retried shards of one round from
        hammering the respawned executor in lockstep.
        """
        if base <= 0.0:
            return 0.0
        h = faults._mix64(
            faults._mix64(rnd + 0x9E3779B97F4A7C15)
            ^ (shard * 0x100000001B3 + attempt)
        )
        frac = (h >> 11) / float(1 << 53)
        return base * (2.0 ** min(attempt - 1, 6)) * (0.5 + frac)

    def _run_supervised(
        self,
        num_jobs: int,
        submit,
        inline,
        deliver,
        verify,
        config,
        passthrough: tuple = (),
    ) -> None:
        """The fault-tolerant dispatch loop both entry points share.

        ``submit(executor, key, fault_key, plan)`` dispatches shard
        ``key``; ``verify(result)`` raises
        :class:`~repro.ampc.faults.ChecksumError` on a corrupted
        payload; ``deliver(key, result, others_running)`` hands one
        verified result to the caller (exactly once per shard);
        ``inline(key)`` is the degraded last resort, executed on the
        driver with no fault plan.  Exceptions whose type is in
        ``passthrough`` are deterministic protocol outcomes (the serial
        path would raise them identically), re-raised immediately
        without retry and without closing the pool.

        See the module docstring for the recovery semantics; the
        summary is that every loss — worker exception, broken pool,
        unpicklable result, checksum mismatch, deadline expiry — turns
        into a bounded, backoff-spaced, bit-identical re-execution, and
        the counters in :attr:`recovery` account each one.
        """
        (max_retries, backoff_s, deadline_s, deadline_scale,
         degrade) = _supervisor_knobs(config)
        plan = faults.active_plan()
        rnd = self.dispatch_seq
        self.dispatch_seq += 1
        rec = self.recovery
        attempts = [0] * num_jobs
        outcomes: list[list[str]] = [[] for _ in range(num_jobs)]
        last_cause: list[BaseException | None] = [None] * num_jobs
        pending = list(range(num_jobs))
        degraded: list[int] = []
        inflight: dict = {}  # future -> shard key
        started: dict = {}  # future -> perf_counter when seen running
        defer: dict[int, float] = {}  # key -> earliest re-submit time
        resume_at = 0.0  # pool-wide respawn backoff gate
        slowest_done: float | None = None
        respawns_here = 0

        def lose(key, label, cause, counter=None):
            outcomes[key].append(label)
            last_cause[key] = cause
            attempts[key] += 1
            pending.append(key)
            if counter is not None:
                rec[counter] += 1

        while pending or inflight:
            now = time.perf_counter()
            requeue, pending = pending, []
            for key in requeue:
                if attempts[key] > max_retries:
                    if not degrade:
                        self.close(cancel=True)
                        raise WorkerPoolError(
                            f"shard {key} of pool dispatch {rnd} lost "
                            f"after {attempts[key]} attempts "
                            f"({'; '.join(outcomes[key])})",
                            round=rnd, shard=key, attempts=attempts[key],
                            outcomes=outcomes[key], cause=last_cause[key],
                        ) from last_cause[key]
                    degraded.append(key)
                    defer.pop(key, None)
                    continue
                if attempts[key] > 0 and key not in defer:
                    # Backoff is *scheduled*, never slept inline: the
                    # key waits out its window in ``pending`` while the
                    # loop keeps collecting sibling results and running
                    # deadline/hang detection.
                    delay = self._backoff_delay(
                        backoff_s, rnd, key, attempts[key]
                    )
                    defer[key] = now + delay
                    rec["retries"] += 1
                    rec["recovery_wall_s"] += delay
                if max(defer.get(key, 0.0), resume_at) > now:
                    pending.append(key)  # backoff window still open
                    continue
                defer.pop(key, None)
                try:
                    fut = submit(
                        self._ensure_executor(), key,
                        (rnd, key, attempts[key]), plan,
                    )
                except BrokenExecutor as exc:
                    # The executor can break *between* submissions of
                    # one dispatch (a worker died while this loop was
                    # still handing out siblings), in which case submit
                    # raises synchronously instead of returning a
                    # failed future.  Same recovery as an in-flight
                    # break: count the loss, reap, gate resubmission
                    # behind the respawn backoff, re-queue.
                    lose(key, f"broken pool at submit: {exc}", exc)
                    self._teardown_executor()
                    rec["worker_faults"] += 1
                    rec["respawns"] += 1
                    respawns_here += 1
                    delay = self._backoff_delay(
                        backoff_s, rnd, num_jobs, respawns_here
                    )
                    resume_at = time.perf_counter() + delay
                    rec["recovery_wall_s"] += delay
                    continue
                inflight[fut] = key
            if not inflight:
                # Nothing in flight: either every shard is delivered or
                # degraded (the ``while`` condition ends the loop), or
                # the still-pending shards are all waiting out backoff
                # windows — sleep until the earliest one opens, then
                # resubmit.  Never ``break`` here: dropping a non-empty
                # ``pending`` would silently lose shards and complete
                # the round with a wrong partition.
                if pending:
                    now = time.perf_counter()
                    wake = min(
                        max(defer.get(key, 0.0), resume_at)
                        for key in pending
                    )
                    if wake > now:
                        time.sleep(min(wake - now, _SUPERVISOR_POLL_S))
                continue
            limit = deadline_s
            if slowest_done is not None:
                # Adaptive hang detection: once a sibling shard of this
                # dispatch has landed, the rest are bounded by a multiple
                # of the slowest observed success (floored so millisecond
                # shards cannot trip the bound on scheduler noise).
                limit = min(limit, max(1.0, deadline_scale * slowest_done))
            done, not_done = wait(
                set(inflight), timeout=_SUPERVISOR_POLL_S,
                return_when=FIRST_COMPLETED,
            )
            now = time.perf_counter()
            for fut in not_done:
                # Deadlines run from when a future is first *seen*
                # running — queue wait behind a busy worker is not hang
                # evidence.
                if fut not in started and fut.running():
                    started[fut] = now
            broken: BaseException | None = None
            for fut in done:
                key = inflight.pop(fut)
                tstart = started.pop(fut, None)
                exc = fut.exception()
                if exc is None:
                    result = fut.result()
                    t0 = time.perf_counter()
                    try:
                        verify(result)
                    except ChecksumError as cerr:
                        rec["recovery_wall_s"] += time.perf_counter() - t0
                        lose(key, f"checksum: {cerr}", cerr,
                             "checksum_rejects")
                        continue
                    rec["recovery_wall_s"] += time.perf_counter() - t0
                    if tstart is not None:
                        span = now - tstart
                        slowest_done = (
                            span if slowest_done is None
                            else max(slowest_done, span)
                        )
                    deliver(key, result, bool(inflight or pending))
                elif isinstance(exc, passthrough):
                    # Deterministic protocol outcome: retrying a pure
                    # function cannot change it.  Cancel what can still
                    # be cancelled and surface it; the pool stays
                    # healthy.
                    for other in inflight:
                        other.cancel()
                    raise exc
                elif isinstance(exc, BrokenExecutor):
                    broken = exc
                    lose(key, f"broken pool: {exc}", exc)
                else:
                    lose(key, f"{type(exc).__name__}: {exc}", exc,
                         "worker_faults")
            if broken is not None:
                # A dead worker breaks the whole executor: every
                # in-flight future fails, so mark them all lost, reap
                # the wreckage, and gate resubmission behind the
                # respawn backoff.
                for fut, key in list(inflight.items()):
                    lose(key, "lost to broken pool", broken)
                inflight.clear()
                started.clear()
                self._teardown_executor()
                rec["worker_faults"] += 1
                rec["respawns"] += 1
                respawns_here += 1
                delay = self._backoff_delay(
                    backoff_s, rnd, num_jobs, respawns_here
                )
                resume_at = time.perf_counter() + delay
                rec["recovery_wall_s"] += delay
                continue
            expired = {
                fut for fut in inflight
                if fut in started and not fut.done()
                and now - started[fut] > limit
            }
            if expired:
                # Hang detected.  Running futures cannot be cancelled,
                # so the only kill is tearing the executor down; other
                # in-flight shards are collateral and simply re-queued
                # (their re-execution is bit-identical).
                t0 = time.perf_counter()
                for fut, key in list(inflight.items()):
                    if fut in expired:
                        rec["deadline_kills"] += 1
                        cause: BaseException = TimeoutError(
                            f"shard {key} of pool dispatch {rnd} "
                            f"exceeded its {limit:.3f}s deadline"
                        )
                        lose(key, f"deadline: exceeded {limit:.3f}s",
                             cause)
                    else:
                        lose(key, "lost to deadline teardown",
                             TimeoutError(
                                 "shard lost when a sibling's deadline "
                                 "expired"
                             ))
                inflight.clear()
                started.clear()
                self._teardown_executor()
                rec["respawns"] += 1
                respawns_here += 1
                rec["recovery_wall_s"] += time.perf_counter() - t0

        # Graceful degradation: whatever exhausted its retries runs
        # inline on the driver — the same pure function, serially, with
        # no fault plan — so the round completes bit-identically.  Only
        # inline execution itself failing raises.
        for idx, key in enumerate(degraded):
            rec["degraded_shards"] += 1
            t0 = time.perf_counter()
            try:
                result = inline(key)
            except passthrough:
                rec["recovery_wall_s"] += time.perf_counter() - t0
                raise
            except Exception as exc:
                rec["recovery_wall_s"] += time.perf_counter() - t0
                self.close(cancel=True)
                raise WorkerPoolError(
                    f"shard {key} of pool dispatch {rnd} failed inline "
                    f"after {attempts[key]} pool attempts "
                    f"({'; '.join(outcomes[key])})",
                    round=rnd, shard=key, attempts=attempts[key],
                    outcomes=outcomes[key], cause=exc,
                ) from exc
            rec["recovery_wall_s"] += time.perf_counter() - t0
            # ``others_running`` reflects the degraded shards still to
            # run inline, keeping the fabric's comm-overlap accounting
            # on its "exactly one per shard" semantics.
            deliver(key, result, idx + 1 < len(degraded))

    def run_games(
        self,
        offsets: np.ndarray,
        targets: np.ndarray,
        roots: np.ndarray,
        positions: np.ndarray,
        *,
        x: int,
        beta: int,
        clip: int,
        horizon: int,
        scale: int | None,
        want_records: bool,
        engine: str = "scalar",
        transpose_pos: np.ndarray | None = None,
        cohort_games: int | None = None,
        config=None,
    ) -> list[tuple[np.ndarray, ShardResult]]:
        """Play the games rooted at ``roots`` across the worker fleet.

        ``positions`` carries each root's index into the round's machine
        array; the return value pairs every shard's position slice with
        its :class:`ShardResult` so the caller can scatter accounting and
        fold layer deltas (both order-independent operations).
        ``engine`` selects the per-shard execution (lockstep
        ``"batched"`` kernels, the fused-C ``"compiled"`` cohort player,
        or the one-game-at-a-time ``"scalar"`` interpreter).

        ``cohort_games`` shards the fleet at cohort granularity when it
        spans more than one whole cohort per worker: shard boundaries
        fall on multiples of the engine's cohort size, so each worker
        runs whole cache-sized cohorts — the same slices the serial
        kernel runs — instead of arbitrary re-slices whose partial
        cohorts amortize worse.  Smaller fleets use evenly balanced
        slices instead (idle workers cost more than partial cohorts
        there).  ``transpose_pos`` (batched engine) is published through
        the round's shared-memory segment set alongside the CSR, so
        every worker attaches instead of recomputing the per-round
        lexsort.
        """
        if self.closed:
            raise WorkerPoolError("coin-game worker pool is closed")
        if not len(roots):
            return []
        segments: list[SharedMemory] = []
        try:
            csr_meta, segments = self._publish_csr(
                offsets, targets, transpose_pos
            )
            params = (
                x, beta, clip, horizon, scale, want_records, engine, config
            )
            max_shards = min(
                len(roots), self.workers * self.chunks_per_worker
            )
            if cohort_games and len(roots) > cohort_games * self.workers:
                bounds = list(range(cohort_games, len(roots), cohort_games))
                root_chunks = np.split(roots, bounds)
                position_chunks = np.split(positions, bounds)
            else:
                root_chunks = np.array_split(roots, max_shards)
                position_chunks = np.array_split(positions, max_shards)
            results: list[tuple[np.ndarray, ShardResult]] = []

            def submit(executor, key, fault_key, plan):
                return executor.submit(
                    _play_shard, csr_meta, root_chunks[key], params,
                    fault_key, plan,
                )

            def inline(key):
                return _play_shard(csr_meta, root_chunks[key], params)

            def deliver(key, result, _others):
                results.append((position_chunks[key], result))

            self._run_supervised(
                len(root_chunks), submit, inline, deliver,
                _verify_shard_result, config,
            )
            return results
        except WorkerPoolError:
            raise
        except Exception as exc:
            # A fault the supervisor cannot recover from — publishing
            # the CSR failed, or the retry budget was exhausted without
            # degradation — poisons the round: close the pool (joining
            # every worker, so nothing is orphaned) and surface one
            # clear error.
            self.close(cancel=True)
            raise WorkerPoolError(
                f"coin-game worker pool failed mid-round: "
                f"{type(exc).__name__}: {exc}",
                cause=exc,
            ) from exc
        finally:
            for shm in segments:
                shm.close()
                shm.unlink()

    def run_fabric_round(
        self,
        offsets: np.ndarray,
        targets: np.ndarray,
        jobs: list[tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
        payload: dict,
        on_result,
        config=None,
    ) -> None:
        """Run message-fabric shard chains across the worker fleet.

        ``jobs`` is ``[(sid, roots, positions, cache_ids, cache_rounds),
        …]``; each dispatches
        one :func:`repro.ampc.messaging.run_shard_chain` against the
        round's shared CSR.  ``on_result(sid, result, others_running)``
        fires in completion order, so the driver replays a finished
        shard's communication accounting while the remaining shards are
        still playing.

        :class:`~repro.ampc.messaging.MemoryGuardError` passes through
        verbatim — a budget violation is a protocol outcome the serial
        fabric would have raised identically, not a pool fault, so it is
        never retried and the executor stays healthy for the next run.
        Any other fault goes through the supervisor's retry /
        degradation ladder; only an unrecoverable one closes the pool
        and raises :class:`WorkerPoolError`, exactly like
        :meth:`run_games`.  ``config`` defaults to
        ``payload["config"]``, so the supervisor honors the same run
        configuration the shard chains execute under.
        """
        if self.closed:
            raise WorkerPoolError("coin-game worker pool is closed")
        if not jobs:
            return
        if config is None:
            config = payload.get("config")
        segments: list[SharedMemory] = []
        try:
            csr_meta, segments = self._publish_csr(offsets, targets)

            def submit(executor, key, fault_key, plan):
                sid, roots, positions, cache_ids, cache_rounds = jobs[key]
                return executor.submit(
                    _play_fabric_shard, csr_meta, sid, roots, positions,
                    cache_ids, cache_rounds, payload, fault_key, plan,
                )

            def inline(key):
                sid, roots, positions, cache_ids, cache_rounds = jobs[key]
                return _play_fabric_shard(
                    csr_meta, sid, roots, positions, cache_ids,
                    cache_rounds, payload,
                )

            def deliver(key, result, others_running):
                on_result(jobs[key][0], result, others_running)

            self._run_supervised(
                len(jobs), submit, inline, deliver,
                _verify_fabric_result, config,
                passthrough=(MemoryGuardError,),
            )
        except (MemoryGuardError, WorkerPoolError):
            raise
        except Exception as exc:
            self.close(cancel=True)
            raise WorkerPoolError(
                f"coin-game worker pool failed mid-round: "
                f"{type(exc).__name__}: {exc}",
                cause=exc,
            ) from exc
        finally:
            for shm in segments:
                shm.close()
                shm.unlink()

    @staticmethod
    def _publish_csr(
        offsets: np.ndarray,
        targets: np.ndarray,
        transpose_pos: np.ndarray | None = None,
    ) -> tuple[tuple, list[SharedMemory]]:
        """Copy the residual CSR (and replay arena maps) into shared
        read-only segments.

        ``transpose_pos`` — the batched engine's per-round CSR
        transpose-position map — rides along in its own segment so
        worker shards replay against it without each recomputing the
        per-round lexsort.  Either every segment is returned (the caller
        owns their cleanup) or none survive: a failure publishing a
        later array unlinks the earlier ones before re-raising, so a
        /dev/shm-full round cannot leak a named OS segment.
        """
        arrays = [offsets, targets]
        if transpose_pos is not None:
            arrays.append(transpose_pos)
        segments: list[SharedMemory] = []
        names = []
        try:
            for array in arrays:
                array = np.ascontiguousarray(array, dtype=np.int64)
                shm = SharedMemory(create=True, size=max(1, array.nbytes))
                segments.append(shm)
                if len(array):
                    np.frombuffer(
                        shm.buf, dtype=np.int64, count=len(array)
                    )[:] = array
                names.append(shm.name)
        except BaseException:
            for shm in segments:
                shm.close()
                shm.unlink()
            raise
        meta = (
            names[0], names[1], len(offsets), len(targets),
            names[2] if transpose_pos is not None else None,
        )
        return meta, segments

    def close(self, cancel: bool = False) -> None:
        """Shut the executor down and join every worker process."""
        self.closed = True
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=cancel)

    def __enter__(self) -> "CoinGamePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


_SHARED_POOLS: dict[int, CoinGamePool] = {}


def shared_pool(workers: int) -> CoinGamePool:
    """The process-wide pool for ``workers`` (recreated if it broke).

    Sharing one executor across partition calls keeps the fork cost a
    one-time charge — exactly the "persistent pool" a long-running
    service would hold — while a pool poisoned by a worker fault is
    dropped and lazily replaced on the next request.
    """
    pool = _SHARED_POOLS.get(workers)
    if pool is None or pool.closed:
        pool = CoinGamePool(workers)
        _SHARED_POOLS[workers] = pool
    return pool


def close_shared_pools() -> None:
    """Close every shared pool (idempotent; also runs at interpreter exit)."""
    for pool in list(_SHARED_POOLS.values()):
        pool.close()
    _SHARED_POOLS.clear()


atexit.register(close_shared_pools)
