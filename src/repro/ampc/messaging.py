"""Message-passing shard fabric — owner-hashed partitions, bounded deltas.

The process-pool path (:mod:`repro.ampc.pool`) parallelizes a round's
machine fleet but cheats the AMPC memory model: every worker attaches
the *entire* residual CSR through shared memory, so the per-machine
space budget S is fictional.  This module replaces that with a
simulated distributed fabric in which each shard holds only

- its **owned residual rows** — the hash partition
  ``owner(v) = splitmix64(v) mod p`` assigns every vertex (and the coin
  game rooted at it) to exactly one of ``p`` shards; a shard stores the
  residual adjacency rows of its owned vertices and nothing else;
- a **bounded ghost fringe** — rows of foreign vertices a shard's games
  explored this round, fetched on demand and evicted as soon as no
  still-unresolved game pins them (see *ghost-fringe invalidation*
  below); ghosts never survive a round boundary;
- **round-local scratch** — the compacted local CSR and fold
  accumulators of the games currently replaying.

Every array a shard holds is accounted by tag against a configurable S
budget through :class:`MemoryGuard`, which raises :class:`MemoryGuardError`
the moment the shard's held words exceed the budget — the budget
*binds*: a graph whose full CSR exceeds one shard's budget still colors
correctly with enough shards, and an under-budgeted shard fails fast
instead of silently over-holding.

Message types
-------------

All communication is typed, owner-routed, and size-capped (payloads
larger than ``cap_words`` ship as multiple delivery segments; row
resolutions split at row boundaries, so one oversized row still ships
whole).  Word counts are payload words (int64 slots); per-round totals
are surfaced through the ``comm`` dict and
``BetaPartitionOutcome.round_comm``.

``placement``
    Driver → shard, once at fabric initialization: the shard's owned
    slice of the residual CSR ``(ids, offsets, targets)``.
``assignment``
    Driver → shard, per round: the roots of the shard's owned games.
``row-request``
    Shard → owner, per sub-round: the vertex ids of rows that games
    explored but the shard does not hold.
``row-resolution``
    Owner → shard: the requested residual rows, ``(id, len, targets…)``
    per row, packed into ≤ ``cap_words`` delivery segments.
``layer-proposal fold``
    Shard → owner, end of round: the ``(u, layer)`` proof entries of
    its finished games, routed to ``owner(u)``; owners min/+-fold them
    and forward one folded ``(u, min, count)`` triple per vertex to the
    driver's DDS merge.
``result``
    Shard → driver, end of round: per-game ``(reads, writes)`` charges
    and (when the driver's cross-round cache is recording) the game
    record tuples.
``retirement``
    Driver → shards, at the round boundary: the vertices assigned this
    round.  Each shard drops its retired owned rows and prunes retired
    ids out of its remaining rows — order-preserving, so the pruned
    slice stays exactly the owner partition of the next round's
    residual CSR and placement is paid only once.

Ordering and commutativity of the folds
---------------------------------------

Shards finish games in arbitrary order, and fold messages arrive at
owners in arbitrary order.  The only cross-shard merges are the layer
min-fold and the proposal count: ``min`` and ``+`` are commutative and
associative with identity (``∞`` / ``0``), so the owner-side fold is
independent of arrival order, and the owner→driver triples scatter into
the same ``np.minimum.at`` / ``np.add.at`` accumulators the serial
kernel uses.  Per-game charges scatter by machine position
(position-disjoint across shards), and records key by root (one writer
each).  Hence every observable — partitions, layers, probe counts,
per-round stats, store words — is bit-identical to the shared-memory
path for any shard count, which the differential tests assert.

Game execution and exactness
----------------------------

A coin game's transcript is a pure function of the residual rows of its
final explored set S_v — both engines read a row (content or degree)
only for vertices they have explored (outside coin holders are tracked
as a touched *set*; forwarding sets, σ-rankings, and proofs read
explored rows only).  The fabric exploits this: each shard runs its
games against its *partial* view with missing rows empty, then checks
each game's recorded explored set against the rows actually held.  A
game whose explored set is fully held produced the exact transcript —
commit it; otherwise the run is discarded, the missing rows are
requested from their owners, and the game re-runs next sub-round.  The
batched engine runs on an order-preserving compaction of the held rows
(global ids → ranks; every order-dependent tie-break is preserved under
a monotone remap, so committed transcripts map back exactly), closed
with synthetic reverse rows for fringe vertices so its transpose-based
replay arena stays well-formed — synthetic rows are only ever read by
games that explored a fringe vertex, i.e. games that are discarded.

Ghost-fringe invalidation rules
-------------------------------

1.  Ghosts are round-local: cleared before a round's first sub-round
    (the next round's games explore different balls, and retirement
    would stale them anyway).
2.  A game *pins* every row it has ever requested; pins drop when the
    game commits.  After each exchange a shard evicts all ghosts with
    no live pin — this bounds the fringe by the unresolved games' balls
    while guaranteeing termination: a game's held set grows
    monotonically, and each re-run either commits or requests a row it
    never held, so sub-rounds are bounded by the largest ball.
3.  Owned rows are never ghosted (the owner serves its own reads), and
    a ghost is always a verbatim copy of the owner's current row —
    rows only change at retirement, which happens between rounds, when
    no ghosts exist.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MESSAGE_CAP_WORDS",
    "MemoryGuard",
    "MemoryGuardError",
    "MessageFabric",
    "owner_of",
]

# Default payload cap of one delivery segment, in int64 words.  Purely a
# counting granularity (segments of one logical payload ship together);
# EngineConfig.message_cap_words / $REPRO_MESSAGE_CAP_WORDS override it.
MESSAGE_CAP_WORDS = 1 << 15

_EMPTY = np.empty(0, dtype=np.int64)
_INF = float("inf")

_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def owner_of(vertices: np.ndarray, num_shards: int) -> np.ndarray:
    """Owner shard of each vertex: ``splitmix64(v) mod num_shards``.

    A fixed deterministic mix (not Python's randomized ``hash``) keeps
    the partition reproducible across processes and runs; splitmix64
    scatters consecutive vertex ids so contiguous graph regions spread
    over shards instead of landing on one.
    """
    z = np.asarray(vertices, dtype=np.int64).astype(np.uint64) + _GAMMA
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    z ^= z >> np.uint64(31)
    return (z % np.uint64(num_shards)).astype(np.int64)


class MemoryGuardError(RuntimeError):
    """A shard's held words exceeded its configured S budget."""


class MemoryGuard:
    """Tag-based words accounting for everything one shard holds.

    Every array a shard keeps is registered under a tag
    (``owned_rows``, ``ghost_fringe``, ``game_scratch``, …);
    :meth:`account` replaces the tag's charge and raises
    :class:`MemoryGuardError` the moment the total exceeds the budget.
    ``budget_words=None`` accounts (for the peak counters) but never
    raises.
    """

    def __init__(
        self, budget_words: int | None = None, name: str = "shard"
    ) -> None:
        if budget_words is not None and budget_words < 1:
            raise ValueError("budget_words must be >= 1 (or None)")
        self.budget_words = budget_words
        self.name = name
        self.current = 0
        self.peak = 0
        self.round_peak = 0
        self._held: dict[str, int] = {}

    def begin_round(self) -> None:
        """Reset the per-round peak (lifetime ``peak`` keeps running)."""
        self.round_peak = self.current

    def account(self, tag: str, words: int) -> None:
        """Set ``tag``'s held words; raise loudly on budget violation."""
        words = int(words)
        if words < 0:
            raise ValueError(f"negative words for tag {tag!r}")
        self.current += words - self._held.get(tag, 0)
        self._held[tag] = words
        if self.current > self.peak:
            self.peak = self.current
        if self.current > self.round_peak:
            self.round_peak = self.current
        if self.budget_words is not None and self.current > self.budget_words:
            held = ", ".join(
                f"{t}={w}" for t, w in sorted(self._held.items()) if w
            )
            raise MemoryGuardError(
                f"{self.name} holds {self.current} words, exceeding its "
                f"S budget of {self.budget_words} ({held})"
            )

    def release(self, tag: str) -> None:
        self.current -= self._held.pop(tag, 0)

    def held_words(self) -> int:
        return self.current


def _in_sorted(values: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Membership mask of ``values`` in the sorted id array ``keys``."""
    if not len(keys) or not len(values):
        return np.zeros(len(values), dtype=bool)
    pos = np.minimum(np.searchsorted(keys, values), len(keys) - 1)
    return keys[pos] == values


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    if not values.size:
        return values
    ordered = np.sort(values)
    keep = np.empty(len(ordered), dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


def _segment_indices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat indices covering rows ``[starts[i], starts[i]+counts[i])``."""
    total = int(counts.sum())
    if not total:
        return _EMPTY
    out = np.repeat(starts - (np.cumsum(counts) - counts), counts)
    out += np.arange(total, dtype=np.int64)
    return out


class _Shard:
    """One simulated machine: owned rows + ghost fringe, all guarded."""

    def __init__(self, sid: int, num_shards: int, budget_words: int | None):
        self.sid = sid
        self.num_shards = num_shards
        self.guard = MemoryGuard(budget_words, name=f"shard[{sid}]")
        self.row_ids = _EMPTY  # sorted owned ids with a stored row
        self.row_offsets = np.zeros(1, dtype=np.int64)
        self.row_targets = _EMPTY
        self.ghosts: dict[int, np.ndarray] = {}

    # -- owned rows --------------------------------------------------------

    def install_owned(
        self, ids: np.ndarray, offsets: np.ndarray, targets: np.ndarray
    ) -> int:
        self.row_ids = ids
        self.row_offsets = offsets
        self.row_targets = targets
        words = len(ids) + len(offsets) + len(targets)
        self.guard.account("owned_rows", words)
        return words

    def owned_row(self, v: int) -> np.ndarray:
        """The residual row of owned vertex ``v`` (implicitly empty rows
        — isolated alive vertices — are served as empty)."""
        i = int(np.searchsorted(self.row_ids, v))
        if i < len(self.row_ids) and self.row_ids[i] == v:
            return self.row_targets[
                self.row_offsets[i]:self.row_offsets[i + 1]
            ]
        return _EMPTY

    def retire(self, retired: np.ndarray) -> None:
        """Drop retired owned rows; prune retired ids from the rest.

        Filtering preserves target order, so the pruned slice equals the
        owner partition of the next round's residual CSR.
        """
        if not len(self.row_ids):
            return
        keep_rows = ~_in_sorted(self.row_ids, retired)
        keep_tgts = ~_in_sorted(self.row_targets, retired)
        row_index = np.repeat(
            np.arange(len(self.row_ids), dtype=np.int64),
            np.diff(self.row_offsets),
        )
        counts = np.bincount(
            row_index[keep_tgts], minlength=len(self.row_ids)
        )[keep_rows]
        self.row_targets = self.row_targets[keep_tgts & keep_rows[row_index]]
        self.row_ids = self.row_ids[keep_rows]
        self.row_offsets = np.zeros(len(self.row_ids) + 1, dtype=np.int64)
        np.cumsum(counts, out=self.row_offsets[1:])
        self.guard.account(
            "owned_rows",
            len(self.row_ids) + len(self.row_offsets) + len(self.row_targets),
        )

    # -- ghost fringe ------------------------------------------------------

    def install_ghosts(self, rows: list[tuple[int, np.ndarray]]) -> None:
        for v, row in rows:
            self.ghosts[v] = row
        self._account_ghosts()

    def evict_ghosts(self, pinned: set[int]) -> None:
        for v in [v for v in self.ghosts if v not in pinned]:
            del self.ghosts[v]
        self._account_ghosts()

    def clear_ghosts(self) -> None:
        self.ghosts.clear()
        self.guard.release("ghost_fringe")

    def _account_ghosts(self) -> None:
        self.guard.account(
            "ghost_fringe",
            sum(1 + len(row) for row in self.ghosts.values()),
        )

    def ghost_ids(self) -> np.ndarray:
        if not self.ghosts:
            return _EMPTY
        ids = np.fromiter(
            self.ghosts.keys(), dtype=np.int64, count=len(self.ghosts)
        )
        ids.sort()
        return ids

    def held_mask(
        self, vertices: np.ndarray, ghost_ids: np.ndarray
    ) -> np.ndarray:
        """Which of ``vertices`` this shard holds the residual row of."""
        mask = owner_of(vertices, self.num_shards) == self.sid
        mask |= _in_sorted(vertices, ghost_ids)
        return mask

    def row_of(self, v: int) -> np.ndarray | None:
        """Held row of ``v`` (owned or ghost), or None when not held."""
        if int(owner_of(np.asarray([v]), self.num_shards)[0]) == self.sid:
            return self.owned_row(v)
        return self.ghosts.get(v)


class _ShardRound:
    """Round-local game state of one shard (valid/invalid, pins, folds)."""

    def __init__(
        self, shard: _Shard, roots: np.ndarray, positions: np.ndarray,
        engine: str,
    ) -> None:
        self.shard = shard
        self.roots = roots
        self.positions = positions
        self.engine = engine
        g = len(roots)
        self.valid = np.zeros(g, dtype=bool)
        self.reads = np.zeros(g, dtype=np.int64)
        self.writes = np.zeros(g, dtype=np.int64)
        self.ball_words = np.zeros(g, dtype=np.int64)
        self.records: list = [None] * g
        self.missing: list[set[int]] = [set() for __ in range(g)]
        self.fetched: list[set[int]] = [set() for __ in range(g)]
        self.replay_stats: dict = {}
        self.ejected_games = 0
        shard.guard.account("game_assignments", 2 * g)

    def pending(self) -> np.ndarray:
        return np.flatnonzero(~self.valid)

    def missing_union(self) -> np.ndarray:
        wanted: set[int] = set()
        for i in self.pending().tolist():
            wanted |= self.missing[i]
            self.fetched[i] |= self.missing[i]
        if not wanted:
            return _EMPTY
        return np.asarray(sorted(wanted), dtype=np.int64)

    def pinned_ghosts(self) -> set[int]:
        pins: set[int] = set()
        for i in self.pending().tolist():
            pins |= self.fetched[i]
        return pins

    def finish(self) -> None:
        guard = self.shard.guard
        guard.release("game_assignments")
        guard.release("game_scratch")
        guard.release("fold_accumulators")

    # -- one sub-round of play --------------------------------------------

    def play(self, params: dict, config) -> None:
        if self.engine in ("batched", "compiled"):
            self._play_batched(params, config)
        else:
            self._play_scalar(params)

    def _commit(
        self, i: int, reads: int, writes: int, record: tuple,
        ball_words: int, ejected: bool,
    ) -> None:
        self.valid[i] = True
        self.missing[i] = set()
        self.reads[i] = reads
        self.writes[i] = writes
        self.records[i] = record
        self.ball_words[i] = ball_words
        if ejected:
            self.ejected_games += 1

    def _play_batched(self, params: dict, config) -> None:
        from repro.core.batched_games import play_games_batched
        from repro.core.columnar_rounds import LazyAdjacency, play_coin_game

        shard = self.shard
        need = self.pending()
        roots_g = self.roots[need]
        ghost_ids = shard.ghost_ids()
        ghost_rows = [shard.ghosts[v] for v in ghost_ids.tolist()]
        parts = [shard.row_ids, shard.row_targets, roots_g, ghost_ids]
        parts.extend(ghost_rows)
        universe = _sorted_unique(
            np.concatenate([p for p in parts if len(p)])
        )
        u_count = len(universe)
        held = shard.held_mask(universe, ghost_ids)

        # Held rows, compacted to local ids (global order preserved, so
        # every order-dependent tie-break is isomorphic to the global run).
        own_pos = np.searchsorted(universe, shard.row_ids)
        own_counts = np.diff(shard.row_offsets)
        ghost_pos = np.searchsorted(universe, ghost_ids)
        ghost_counts = np.fromiter(
            (len(r) for r in ghost_rows), dtype=np.int64, count=len(ghost_rows)
        )
        deg_held = np.zeros(u_count, dtype=np.int64)
        deg_held[own_pos] = own_counts
        deg_held[ghost_pos] = ghost_counts
        own_tgt = np.searchsorted(universe, shard.row_targets)
        ghost_tgt = (
            np.searchsorted(universe, np.concatenate(ghost_rows))
            if ghost_rows else _EMPTY
        )
        held_src = np.concatenate([
            np.repeat(own_pos, own_counts), np.repeat(ghost_pos, ghost_counts)
        ]) if u_count else _EMPTY
        held_tgt = np.concatenate([own_tgt, ghost_tgt])

        # Synthetic reverse rows close the held subgraph symmetrically:
        # the engine's transpose-position map assumes every edge's
        # reverse exists.  Only a game that explores a fringe vertex can
        # read one — and that game is invalid and discarded.
        fringe_edge = ~held[held_tgt]
        syn_src = held_tgt[fringe_edge]
        syn_tgt = held_src[fringe_edge]
        deg = deg_held + np.bincount(
            syn_src, minlength=u_count
        ) if syn_src.size else deg_held
        offsets_l = np.zeros(u_count + 1, dtype=np.int64)
        np.cumsum(deg, out=offsets_l[1:])
        targets_l = np.empty(int(offsets_l[-1]), dtype=np.int64)
        targets_l[_segment_indices(offsets_l[own_pos], own_counts)] = own_tgt
        targets_l[
            _segment_indices(offsets_l[ghost_pos], ghost_counts)
        ] = ghost_tgt
        if syn_src.size:
            order = np.lexsort((syn_tgt, syn_src))
            syn_rows = _sorted_unique(syn_src)
            targets_l[
                _segment_indices(
                    offsets_l[syn_rows],
                    np.bincount(syn_src, minlength=u_count)[syn_rows],
                )
            ] = syn_tgt[order]

        shard.guard.account(
            "game_scratch",
            (u_count + 1) + 2 * len(targets_l) + 3 * u_count,
        )

        from repro.core.batched_games import csr_transpose_positions

        if self.engine == "compiled":
            from repro.core.native import play_games_compiled

            play_cohort = play_games_compiled
            transpose = None
        else:
            play_cohort = play_games_batched
            transpose = csr_transpose_positions(offsets_l, targets_l)
        roots_l = np.searchsorted(universe, roots_g)
        out_layer = np.full(u_count, _INF)
        out_count = np.zeros(u_count, dtype=np.int64)
        k = len(roots_l)
        reads = np.zeros(k, dtype=np.int64)
        writes = np.zeros(k, dtype=np.int64)
        records: list = [None] * k
        ejected_flags = np.zeros(k, dtype=bool)
        block = config.cohort_games
        arena_hint = [0, 0]
        ejected: list[int] = []
        for start in range(0, k, block):
            stop = min(start + block, k)
            info = play_cohort(
                offsets_l, targets_l, roots_l[start:stop],
                x=params["x"], beta=params["beta"], clip=params["clip"],
                horizon=params["horizon"], scale=params["scale"],
                out_layer=out_layer, out_count=out_count,
                want_records=True, transpose_pos=transpose,
                replay_stats=self.replay_stats, arena_hint=arena_hint,
                cone_cutoff=config.replay_cone_cutoff,
                poor_streak=config.replay_poor_streak,
            )
            reads[start:stop] = info.reads
            writes[start:stop] = info.writes
            records[start:stop] = info.records
            ejected.extend((info.ejected + start).tolist())
        if ejected:
            adj = LazyAdjacency(offsets_l, targets_l)
            for gi in ejected:
                reads[gi], writes[gi], records[gi] = play_coin_game(
                    adj, int(roots_l[gi]), params["x"], params["beta"],
                    params["clip"], params["horizon"], params["scale"],
                    out_layer, out_count, True,
                )
                ejected_flags[gi] = True

        for j, i in enumerate(need.tolist()):
            record = records[j]
            explored_l = np.asarray(record[0], dtype=np.int64)
            miss = explored_l[~held[explored_l]]
            if miss.size:
                self.missing[i] = set(universe[miss].tolist())
                continue
            explored_g = universe[explored_l]
            proof_g = [
                (int(universe[u]), lay) for u, lay in record[1]
            ]
            # Real words of the held ball: one degree word plus the row
            # targets per explored vertex — identically the game's probe
            # charge, so strict-budget parity is checked against what a
            # shard genuinely held.
            ball = len(explored_l) + int(deg_held[explored_l].sum())
            self._commit(
                i, int(reads[j]), int(writes[j]),
                (explored_g.tolist(), proof_g, int(reads[j]), int(writes[j])),
                ball, bool(ejected_flags[j]),
            )
        shard.guard.release("game_scratch")

    def _play_scalar(self, params: dict) -> None:
        from repro.core.columnar_rounds import play_coin_game

        shard = self.shard
        adj = _GhostAdjacency(shard)
        out_layer = _MinScratch()
        out_count = _CountScratch()
        for i in self.pending().tolist():
            adj.missing = set()
            reads, writes, record = play_coin_game(
                adj, int(self.roots[i]), params["x"], params["beta"],
                params["clip"], params["horizon"], params["scale"],
                out_layer, out_count, True,
            )
            if adj.missing:
                self.missing[i] = adj.missing
                continue
            ball = len(record[0]) + sum(len(adj[u]) for u in record[0])
            self._commit(i, reads, writes, record, ball, False)
        shard.guard.account("game_scratch", adj.cached_words())
        shard.guard.release("game_scratch")


class _GhostAdjacency:
    """Global-id adjacency over one shard's held rows (missing → empty).

    The scalar engine probes ``adj[u]`` only for explored vertices; a
    probe of a row the shard does not hold returns an empty row and logs
    the id — the game is then invalid and the logged ids become the
    sub-round's row requests.
    """

    def __init__(self, shard: _Shard) -> None:
        self._shard = shard
        self._rows: dict[int, list[int]] = {}
        self.missing: set[int] = set()

    def __getitem__(self, v: int) -> list[int]:
        row = self._rows.get(v)
        if row is None:
            held = self._shard.row_of(v)
            if held is None:
                self.missing.add(v)
                return []
            row = held.tolist()
            self._rows[v] = row
        return row

    def cached_words(self) -> int:
        return sum(1 + len(row) for row in self._rows.values())


class _MinScratch(dict):
    """Dense-accumulator stand-in: missing keys read as +∞."""

    def __missing__(self, key):
        return _INF


class _CountScratch(dict):
    """Dense-accumulator stand-in: missing keys read as 0."""

    def __missing__(self, key):
        return 0


class MessageFabric:
    """The driver-side fabric: ``p`` owner-hashed shards + typed routing.

    Shards are simulated in-process (the fabric models the memory and
    communication discipline of a distributed run — throughput sharding
    is the process pool's job), but every byte a shard holds and every
    word that crosses a shard boundary is accounted as if they were
    separate machines.  ``run_round`` plugs into
    :func:`repro.core.columnar_rounds.lca_round_kernel` in place of the
    pool and returns the same ``(positions, ShardResult)`` pairs.
    """

    def __init__(
        self,
        num_shards: int,
        *,
        budget_words: int | None = None,
        cap_words: int | None = None,
    ) -> None:
        num_shards = int(num_shards)
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self.budget_words = budget_words
        self.cap_words = int(cap_words) if cap_words else MESSAGE_CAP_WORDS
        if self.cap_words < 4:
            raise ValueError("cap_words must be >= 4 (one row header)")
        self.shards = [
            _Shard(sid, num_shards, budget_words) for sid in range(num_shards)
        ]
        self.placed = False
        self.peak_held_words = 0
        self.total_messages = 0
        self.total_words = 0

    # -- counters ----------------------------------------------------------

    _COMM_KEYS = (
        "messages", "words", "subrounds", "row_requests", "rows_served",
        "placement_words", "retirement_words", "fold_words", "result_words",
        "max_shard_words", "max_game_ball_words", "max_held_words",
        "ejected_games",
    )

    def _init_comm(self, comm: dict) -> dict:
        for key in self._COMM_KEYS:
            comm.setdefault(key, 0)
        comm["shards"] = self.num_shards
        return comm

    def _send(
        self, comm: dict, shard_words: list[int], words: int,
        src: int | None = None, dst: int | None = None,
        messages: int | None = None,
    ) -> None:
        """Count one logical payload (``src``/``dst`` None = the driver)."""
        words = int(words)
        if messages is None:
            messages = max(1, -(-words // self.cap_words))
        comm["messages"] += messages
        comm["words"] += words
        self.total_messages += messages
        self.total_words += words
        if src is not None:
            shard_words[src] += words
        if dst is not None:
            shard_words[dst] += words

    def _row_segments(self, row_words: list[int]) -> int:
        """Delivery segments for rows packed greedily at the cap."""
        segments, used = 0, 0
        for w in row_words:
            if segments and used + w <= self.cap_words:
                used += w
            else:
                segments += 1
                used = w
        return max(1, segments)

    # -- lifecycle ---------------------------------------------------------

    def _distribute(
        self, offsets: np.ndarray, targets: np.ndarray, comm: dict,
        shard_words: list[int],
    ) -> None:
        """Initial placement: slice the residual CSR by owner hash."""
        deg = np.diff(offsets)
        sources = np.flatnonzero(deg > 0)
        owners = owner_of(sources, self.num_shards)
        for sid, shard in enumerate(self.shards):
            ids = sources[owners == sid]
            counts = deg[ids]
            row_offsets = np.zeros(len(ids) + 1, dtype=np.int64)
            np.cumsum(counts, out=row_offsets[1:])
            row_targets = targets[_segment_indices(offsets[ids], counts)]
            words = shard.install_owned(ids, row_offsets, row_targets)
            comm["placement_words"] += words
            self._send(comm, shard_words, words, dst=sid)
        self.placed = True

    def retire(self, assigned: np.ndarray, comm: dict | None = None) -> None:
        """Broadcast retirement notices for this round's assignments."""
        if not self.placed:
            return
        retired = np.sort(np.asarray(assigned, dtype=np.int64))
        if not retired.size:
            return
        if comm is not None:
            self._init_comm(comm)
        for shard in self.shards:
            shard.retire(retired)
            if comm is not None:
                comm["retirement_words"] += len(retired)
                self._send(
                    comm, [0] * self.num_shards, len(retired),
                    dst=shard.sid,
                )

    def run_round(
        self,
        offsets: np.ndarray,
        targets: np.ndarray,
        roots: np.ndarray,
        positions: np.ndarray,
        *,
        x: int,
        beta: int,
        clip: int,
        horizon: int,
        scale: int | None,
        want_records: bool,
        engine: str = "batched",
        config=None,
        comm: dict | None = None,
    ) -> list[tuple[np.ndarray, "object"]]:
        """Play one round's pending games through the shard fabric.

        Returns ``(positions, ShardResult)`` pairs exactly like
        :meth:`repro.ampc.pool.CoinGamePool.run_games` — reads/writes and
        records ride with the shard owning the *game*, layer folds with
        the shard owning the *vertex* (both scatter through commutative
        accumulators, so the split is invisible).
        """
        from repro.ampc.pool import ShardResult

        if config is None:
            from repro.ampc.engine_config import EngineConfig

            config = EngineConfig.from_env()
        comm = self._init_comm({} if comm is None else comm)
        shard_words = [0] * self.num_shards
        for shard in self.shards:
            shard.guard.begin_round()
            shard.clear_ghosts()
        if not self.placed:
            self._distribute(offsets, targets, comm, shard_words)

        owners = owner_of(roots, self.num_shards)
        runs: list[_ShardRound] = []
        for sid, shard in enumerate(self.shards):
            sel = np.flatnonzero(owners == sid)
            if sel.size:
                self._send(comm, shard_words, 2 * sel.size, dst=sid)
            runs.append(
                _ShardRound(shard, roots[sel], positions[sel], engine)
            )
        params = {
            "x": x, "beta": beta, "clip": clip, "horizon": horizon,
            "scale": scale,
        }

        # BSP sub-rounds: play, validate, exchange missing rows, repeat.
        while True:
            for run in runs:
                if run.pending().size:
                    run.play(params, config)
            requests: dict[int, dict[int, np.ndarray]] = {}
            total_missing = 0
            for sid, run in enumerate(runs):
                miss = run.missing_union()
                if miss.size:
                    total_missing += int(miss.size)
                    owners_m = owner_of(miss, self.num_shards)
                    for dst in _sorted_unique(owners_m).tolist():
                        requests.setdefault(dst, {})[sid] = (
                            miss[owners_m == dst]
                        )
            if not total_missing:
                break
            comm["subrounds"] += 1
            for dst in sorted(requests):
                owner = self.shards[dst]
                for src, ids in sorted(requests[dst].items()):
                    self._send(comm, shard_words, len(ids), src=src, dst=dst)
                    comm["row_requests"] += len(ids)
                    rows = [
                        (v, owner.owned_row(v).copy()) for v in ids.tolist()
                    ]
                    row_words = [2 + len(row) for __, row in rows]
                    self._send(
                        comm, shard_words, sum(row_words), src=dst, dst=src,
                        messages=self._row_segments(row_words),
                    )
                    comm["rows_served"] += len(rows)
                    self.shards[src].install_ghosts(rows)
            for run in runs:
                run.shard.evict_ghosts(run.pinned_ghosts())

        # Layer-proposal folds, routed by vertex owner; owners min/+-fold
        # and forward one (u, min, count) triple per vertex to the driver.
        fold_u: list[list[np.ndarray]] = [[] for __ in range(self.num_shards)]
        fold_l: list[list[np.ndarray]] = [[] for __ in range(self.num_shards)]
        for sid, run in enumerate(runs):
            proof_u: list[int] = []
            proof_l: list[int] = []
            for record in run.records:
                for u, lay in record[1]:
                    proof_u.append(u)
                    proof_l.append(lay)
            if not proof_u:
                continue
            pu = np.asarray(proof_u, dtype=np.int64)
            pl = np.asarray(proof_l, dtype=np.int64)
            owners_p = owner_of(pu, self.num_shards)
            for dst in _sorted_unique(owners_p).tolist():
                sel = owners_p == dst
                self._send(
                    comm, shard_words, 3 * int(sel.sum()), src=sid, dst=dst
                )
                comm["fold_words"] += 3 * int(sel.sum())
                fold_u[dst].append(pu[sel])
                fold_l[dst].append(pl[sel])

        results: list[tuple[np.ndarray, ShardResult]] = []
        max_ball = 0
        for sid, run in enumerate(runs):
            if fold_u[sid]:
                fu = np.concatenate(fold_u[sid])
                fl = np.concatenate(fold_l[sid])
                vertices = _sorted_unique(fu)
                slots = np.searchsorted(vertices, fu)
                minima = np.full(len(vertices), _INF)
                np.minimum.at(minima, slots, fl)
                counts = np.bincount(slots, minlength=len(vertices))
                self.shards[sid].guard.account(
                    "fold_accumulators", 3 * len(vertices)
                )
            else:
                vertices = _EMPTY
                minima = np.empty(0)
                counts = _EMPTY
            self._send(
                comm, shard_words, 3 * len(vertices), src=sid
            )
            result_words = 2 * len(run.roots)
            if want_records:
                result_words += sum(
                    2 + len(record[0]) + 2 * len(record[1])
                    for record in run.records
                )
            if len(run.roots):
                self._send(comm, shard_words, result_words, src=sid)
                comm["result_words"] += result_words
            if run.ball_words.size:
                max_ball = max(max_ball, int(run.ball_words.max()))
            comm["ejected_games"] += run.ejected_games
            results.append((
                run.positions,
                ShardResult(
                    run.reads, run.writes, vertices, minima, counts,
                    run.records if want_records else None,
                    run.replay_stats or None,
                ),
            ))
            run.finish()

        comm["max_shard_words"] = max(
            comm["max_shard_words"], max(shard_words)
        )
        comm["max_game_ball_words"] = max(
            comm["max_game_ball_words"], max_ball
        )
        round_peak = max(shard.guard.round_peak for shard in self.shards)
        comm["max_held_words"] = max(comm["max_held_words"], round_peak)
        self.peak_held_words = max(self.peak_held_words, round_peak)
        return results

    def max_held_words(self) -> int:
        """Current held words, maximized over shards."""
        return max(shard.guard.current for shard in self.shards)
