"""Message-passing shard fabric — owner-hashed partitions, bounded deltas.

The process-pool path (:mod:`repro.ampc.pool`) parallelizes a round's
machine fleet but cheats the AMPC memory model: every worker attaches
the *entire* residual CSR through shared memory, so the per-machine
space budget S is fictional.  This module replaces that with a
simulated distributed fabric in which each shard holds only

- its **owned residual rows** — the hash partition
  ``owner(v) = splitmix64(v) mod p`` assigns every vertex (and the coin
  game rooted at it) to exactly one of ``p`` shards; a shard stores the
  residual adjacency rows of its owned vertices and nothing else;
- a **bounded ghost fringe** — rows of foreign vertices a shard's games
  explored this round, fetched on demand and evicted as soon as no
  still-unresolved game pins them (see *ghost-fringe invalidation*
  below); ghosts never survive a round boundary;
- **round-local scratch** — the compacted local CSR and fold
  accumulators of the games currently replaying.

Every array a shard holds is accounted by tag against a configurable S
budget through :class:`MemoryGuard`, which raises :class:`MemoryGuardError`
the moment the shard's held words exceed the budget — the budget
*binds*: a graph whose full CSR exceeds one shard's budget still colors
correctly with enough shards, and an under-budgeted shard fails fast
instead of silently over-holding.

Message types
-------------

All communication is typed, owner-routed, and size-capped (payloads
larger than ``cap_words`` ship as multiple delivery segments; row
resolutions split at row boundaries, so one oversized row still ships
whole).  Word counts are payload words (int64 slots); per-round totals
are surfaced through the ``comm`` dict and
``BetaPartitionOutcome.round_comm``.

``placement``
    Driver → shard, once at fabric initialization: the shard's owned
    slice of the residual CSR ``(ids, offsets, targets)``.
``assignment``
    Driver → shard, per round: the roots of the shard's owned games.
``row-request``
    Shard → owner, per sub-round: the vertex ids of rows that games
    explored but the shard does not hold.
``row-resolution``
    Owner → shard: the requested residual rows, ``(id, len, targets…)``
    per row, packed into ≤ ``cap_words`` delivery segments.
``layer-proposal fold``
    Shard → owner, end of round: the ``(u, layer)`` proof entries of
    its finished games, routed to ``owner(u)``; owners min/+-fold them
    and forward one folded ``(u, min, count)`` triple per vertex to the
    driver's DDS merge.
``result``
    Shard → driver, end of round: per-game ``(reads, writes)`` charges
    and (when the driver's cross-round cache is recording) the game
    record tuples.
``retirement``
    Driver → shards, at the round boundary: the vertices assigned this
    round.  Each shard drops its retired owned rows and prunes retired
    ids out of its remaining rows — order-preserving, so the pruned
    slice stays exactly the owner partition of the next round's
    residual CSR and placement is paid only once.

Ordering and commutativity of the folds
---------------------------------------

Shards finish games in arbitrary order, and fold messages arrive at
owners in arbitrary order.  The only cross-shard merges are the layer
min-fold and the proposal count: ``min`` and ``+`` are commutative and
associative with identity (``∞`` / ``0``), so the owner-side fold is
independent of arrival order, and the owner→driver triples scatter into
the same ``np.minimum.at`` / ``np.add.at`` accumulators the serial
kernel uses.  Per-game charges scatter by machine position
(position-disjoint across shards), and records key by root (one writer
each).  Hence every observable — partitions, layers, probe counts,
per-round stats, store words — is bit-identical to the shared-memory
path for any shard count, which the differential tests assert.

Game execution and exactness
----------------------------

A coin game's transcript is a pure function of the residual rows of its
final explored set S_v — both engines read a row (content or degree)
only for vertices they have explored (outside coin holders are tracked
as a touched *set*; forwarding sets, σ-rankings, and proofs read
explored rows only).  The fabric exploits this: each shard runs its
games against its *partial* view with missing rows empty, then checks
each game's recorded explored set against the rows actually held.  A
game whose explored set is fully held produced the exact transcript —
commit it; otherwise the run is discarded, the missing rows are
requested from their owners, and the game re-runs next sub-round.  The
batched engine runs on an order-preserving compaction of the held rows
(global ids → ranks; every order-dependent tie-break is preserved under
a monotone remap, so committed transcripts map back exactly), closed
with synthetic reverse rows for fringe vertices so its transpose-based
replay arena stays well-formed — synthetic rows are only ever read by
games that explored a fringe vertex, i.e. games that are discarded.

Ghost-fringe invalidation rules
-------------------------------

1.  Ghosts are round-local: cleared before a round's first sub-round
    (the next round's games explore different balls, and retirement
    would stale them anyway).
2.  A game *pins* every row it has ever requested; pins drop when the
    game commits.  After each exchange a shard evicts all ghosts with
    no live pin — this bounds the fringe by the unresolved games' balls
    while guaranteeing termination: a game's held set grows
    monotonically, and each re-run either commits or requests a row it
    never held, so sub-rounds are bounded by the largest ball.
3.  Owned rows are never ghosted (the owner serves its own reads), and
    a ghost is always a verbatim copy of the owner's current row —
    rows only change at retirement, which happens between rounds, when
    no ghosts exist.

Parallel shard execution (the process-pool transport)
-----------------------------------------------------

With ``workers > 1`` the driver dispatches each shard's *whole* BSP
chain to the persistent worker pool
(:meth:`repro.ampc.pool.CoinGamePool.run_fabric_round` →
:func:`run_shard_chain`) instead of interleaving the shards in-process.
This is sound because a shard's chain is a pure function of
``(global residual CSR, its roots, shard count, engine, config,
budget)``: every row another shard would serve it is a verbatim slice
of that CSR (ghosts are exact copies and rows never change
mid-round), so a worker holding the round's shared CSR can serve its
own row requests — including the seeded first exchange and the
doubling speculative-prefetch balls (radius ``2^(k-1)`` capped at
:data:`PREFETCH_RADIUS_CAP`; budgeted shards never speculate) — and
replay exactly the sub-round chain the serial fabric would run.
Observable state stays honest on both sides of the process boundary:

- **Communication is replayed, not simulated.**  A worker returns its
  per-sub-round ``(missing, speculative)`` id trace; the driver routes
  each entry through the very same ``_send`` / row-serving helpers the
  serial fabric uses, so messages, words, segment counts, row
  requests/served, and the global sub-round count (a cross-shard
  *any* per lockstep iteration) are bit-identical to the serial
  transport.  Replay happens in shard-completion order, overlapped
  with the still-running shards' play — the only work that may
  overlap, since it touches no state another shard could observe
  (``comm_overlap_s`` records the hidden portion; ``shard_wall_s``
  the slowest worker's in-process chain).
- **Guard accounting is adopted, not recomputed.**  The worker's
  :class:`MemoryGuard` replays the exact op sequence (placement,
  round begin, assignments, exchanges, plays) against the same
  budget; the driver merges the returned round peak and end-of-round
  held words per tag onto its persistent shard guards
  (:meth:`MemoryGuard.adopt`), so driver-side fold accounting stacks
  on the correct current and ``max_held_words`` matches the serial
  fabric word for word.  A worker-side :class:`MemoryGuardError` is a
  protocol outcome, not a pool fault: it passes through verbatim and
  the pool stays healthy.
- **Folds stay commutative across workers.**  The driver-side merge
  of shard results is the same min/+ fold as ever — ``min`` and ``+``
  are commutative and associative, per-game charges are
  position-disjoint, and records key by root — so worker completion
  order (racy by nature) cannot perturb any observable.

Retry safety (the supervisor's failure contract)
------------------------------------------------

The same purity argument makes shard loss *recoverable*, not just
parallelizable: a crashed, hung, or corrupted shard chain is re-run
from the same ``(CSR, roots, shard count, engine, config, budget)``
inputs and produces the same result bit for bit, so the pool's round
supervisor (:meth:`repro.ampc.pool.CoinGamePool._run_supervised`) may
retry, respawn, or fall back to inline driver execution without any
observable noticing.  Three properties carry the argument across this
module's state:

- **Comm replay is exactly-once, not idempotent.**  Replaying a
  shard's ``(missing, speculative)`` trace twice would double the
  message counters, so the supervisor delivers each shard's result to
  the driver exactly once, only after its checksum verifies; a lost or
  corrupted attempt is discarded *before* any driver state mutates.
- **Guard adoption is protected by the same ordering.**  A faulted
  attempt never reaches :meth:`MemoryGuard.adopt` — verification runs
  first — so a fault "mid-adopt" cannot exist on the driver: the
  guard either adopts one verified attempt's peaks or none, and
  ``adopt`` itself is a pure max/assign merge per tag.
- **Row payloads are integrity-checked.**  Every worker result carries
  a splitmix64-chained CRC over its arrays and trace
  (:func:`repro.ampc.faults.payload_checksum`), and row-resolution
  deliveries into :meth:`_Shard.install_ghosts` verify a
  :func:`repro.ampc.faults.rows_checksum` when one is supplied —
  corruption becomes a detected retry, never a wrong partition.  The
  checksum parameter is the contract a real transport attaches to
  every row message; the in-process paths hand ``install_ghosts`` the
  very objects the serving side would digest, so they stamp one only
  under an active fault plan (:func:`_rows_stamp`) — keeping the
  verify path exercised by the chaos tier without paying a double
  digest on every fault-free delivery.

A :class:`MemoryGuardError` stays a deterministic protocol outcome:
the serial fabric would raise it identically, so the supervisor never
retries it and passes it through with the pool intact.

The BSP sub-round loop plus the typed, size-capped messages above are
deliberately the narrow waist: a true multi-host backend (sockets,
MPI) replaces the pool dispatch and the driver's replay loop with real
transport, and the supervisor is the failure contract such a backend
plugs into — it supplies loss detection (deadlines), bounded
re-execution, and degradation; the transport only has to report
faults.
"""

from __future__ import annotations

import time

import numpy as np

from repro.ampc import faults

__all__ = [
    "MESSAGE_CAP_WORDS",
    "MemoryGuard",
    "MemoryGuardError",
    "MessageFabric",
    "owner_of",
]

# Default payload cap of one delivery segment, in int64 words.  Purely a
# counting granularity (segments of one logical payload ship together);
# EngineConfig.message_cap_words / $REPRO_MESSAGE_CAP_WORDS override it.
MESSAGE_CAP_WORDS = 1 << 15

# Ceiling on the doubling speculative-service radius (see
# _Shard.expand_requests): by the time a game is this many fetch
# exchanges deep, one more doubling would ship most of the owner's slice.
PREFETCH_RADIUS_CAP = 16
# Request-union size below which the exchange switches from direct
# serving to cap-radius speculative balls (the deep-tail regime).
PREFETCH_TAIL_IDS = 2048

_EMPTY = np.empty(0, dtype=np.int64)
_INF = float("inf")

_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def owner_of(vertices: np.ndarray, num_shards: int) -> np.ndarray:
    """Owner shard of each vertex: ``splitmix64(v) mod num_shards``.

    A fixed deterministic mix (not Python's randomized ``hash``) keeps
    the partition reproducible across processes and runs; splitmix64
    scatters consecutive vertex ids so contiguous graph regions spread
    over shards instead of landing on one.
    """
    z = np.asarray(vertices, dtype=np.int64).astype(np.uint64) + _GAMMA
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    z ^= z >> np.uint64(31)
    return (z % np.uint64(num_shards)).astype(np.int64)


_M64 = (1 << 64) - 1


def owner_of_one(v: int, num_shards: int) -> int:
    """Scalar :func:`owner_of` for single-vertex probes (same mix)."""
    z = (v + 0x9E3779B97F4A7C15) & _M64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    z ^= z >> 31
    return z % num_shards


class MemoryGuardError(RuntimeError):
    """A shard's held words exceeded its configured S budget."""


class MemoryGuard:
    """Tag-based words accounting for everything one shard holds.

    Every array a shard keeps is registered under a tag
    (``owned_rows``, ``ghost_fringe``, ``game_scratch``, …);
    :meth:`account` replaces the tag's charge and raises
    :class:`MemoryGuardError` the moment the total exceeds the budget.
    ``budget_words=None`` accounts (for the peak counters) but never
    raises.
    """

    def __init__(
        self, budget_words: int | None = None, name: str = "shard"
    ) -> None:
        if budget_words is not None and budget_words < 1:
            raise ValueError("budget_words must be >= 1 (or None)")
        self.budget_words = budget_words
        self.name = name
        self.current = 0
        self.peak = 0
        self.round_peak = 0
        self._held: dict[str, int] = {}

    def begin_round(self) -> None:
        """Reset the per-round peak (lifetime ``peak`` keeps running)."""
        self.round_peak = self.current

    def account(self, tag: str, words: int) -> None:
        """Set ``tag``'s held words; raise loudly on budget violation.

        An over-budget charge is never committed: ``current``, ``peak``,
        and the tag's held words are untouched when this raises, so a
        caller that catches the error (the budget tests, a shard
        deciding to shed load) continues with accounting that still
        reflects what the shard actually holds.
        """
        words = int(words)
        if words < 0:
            raise ValueError(f"negative words for tag {tag!r}")
        attempted = self.current + words - self._held.get(tag, 0)
        if self.budget_words is not None and attempted > self.budget_words:
            held = ", ".join(
                f"{t}={w}"
                for t, w in sorted({**self._held, tag: words}.items())
                if w
            )
            raise MemoryGuardError(
                f"{self.name} holds {attempted} words, exceeding its "
                f"S budget of {self.budget_words} ({held})"
            )
        self.current = attempted
        self._held[tag] = words
        if self.current > self.peak:
            self.peak = self.current
        if self.current > self.round_peak:
            self.round_peak = self.current

    def release(self, tag: str) -> None:
        self.current -= self._held.pop(tag, 0)

    def adopt(self, round_peak: int, held: dict[str, int]) -> None:
        """Adopt a worker-side guard's round outcome onto this guard.

        The pooled fabric runs a shard's round inside a worker process
        whose guard replays the exact op sequence the serial fabric
        would have run (same budget, so a violation raised there first);
        the driver-side guard — which persists across rounds and still
        owes the round's fold accounting — takes over the worker's
        end-of-round holdings and folds its peak into the counters.
        """
        for tag, words in held.items():
            words = int(words)
            self.current += words - self._held.get(tag, 0)
            self._held[tag] = words
        self.peak = max(self.peak, round_peak, self.current)
        self.round_peak = max(self.round_peak, round_peak, self.current)

    def held_words(self) -> int:
        return self.current


def _in_sorted(values: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Membership mask of ``values`` in the sorted id array ``keys``."""
    if not len(keys) or not len(values):
        return np.zeros(len(values), dtype=bool)
    pos = np.minimum(np.searchsorted(keys, values), len(keys) - 1)
    return keys[pos] == values


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    if not values.size:
        return values
    ordered = np.sort(values)
    keep = np.empty(len(ordered), dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


def _segment_indices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat indices covering rows ``[starts[i], starts[i]+counts[i])``."""
    total = int(counts.sum())
    if not total:
        return _EMPTY
    out = np.repeat(starts - (np.cumsum(counts) - counts), counts)
    out += np.arange(total, dtype=np.int64)
    return out


class _Shard:
    """One simulated machine: owned rows + ghost fringe, all guarded."""

    def __init__(self, sid: int, num_shards: int, budget_words: int | None):
        self.sid = sid
        self.num_shards = num_shards
        self.guard = MemoryGuard(budget_words, name=f"shard[{sid}]")
        self.row_ids = _EMPTY  # sorted owned ids with a stored row
        self.row_offsets = np.zeros(1, dtype=np.int64)
        self.row_targets = _EMPTY
        self.ghosts: dict[int, np.ndarray] = {}
        self._ghost_words = 0
        self._owned_index: dict[int, int] | None = None

    # -- owned rows --------------------------------------------------------

    def install_owned(
        self, ids: np.ndarray, offsets: np.ndarray, targets: np.ndarray
    ) -> int:
        self.row_ids = ids
        self.row_offsets = offsets
        self.row_targets = targets
        self._owned_index = None
        words = len(ids) + len(offsets) + len(targets)
        self.guard.account("owned_rows", words)
        return words

    def owned_index(self) -> dict[int, int]:
        """id → slot of the owned slice (ids are static within a round,
        single-vertex probes are the replay hot path)."""
        if self._owned_index is None:
            self._owned_index = {
                v: i for i, v in enumerate(self.row_ids.tolist())
            }
        return self._owned_index

    def owned_row(self, v: int) -> np.ndarray:
        """The residual row of owned vertex ``v`` (implicitly empty rows
        — isolated alive vertices — are served as empty)."""
        i = int(np.searchsorted(self.row_ids, v))
        if i < len(self.row_ids) and self.row_ids[i] == v:
            return self.row_targets[
                self.row_offsets[i]:self.row_offsets[i + 1]
            ]
        return _EMPTY

    def serve_rows(self, ids: np.ndarray) -> list[tuple[int, np.ndarray]]:
        """Bulk :meth:`owned_row` for one request batch (one lookup pass
        instead of a searchsorted per row — serving is driver-hot)."""
        pos = np.searchsorted(self.row_ids, ids)
        inb = pos < len(self.row_ids)
        hit = np.zeros(len(ids), dtype=bool)
        hit[inb] = self.row_ids[pos[inb]] == ids[inb]
        starts = self.row_offsets[pos]
        ends = self.row_offsets[np.minimum(pos + 1, len(self.row_ids))]
        targets = self.row_targets
        return [
            (v, targets[s:e].copy() if h else _EMPTY)
            for v, s, e, h in zip(
                ids.tolist(), starts.tolist(), ends.tolist(), hit.tolist()
            )
        ]

    def served_words(self, ids: np.ndarray) -> list[int]:
        """Payload words :meth:`serve_rows` would ship per id, without
        materializing the rows (the pooled driver replays a worker's
        row exchanges for accounting only — the worker already served
        itself from the shared CSR)."""
        pos = np.searchsorted(self.row_ids, ids)
        inb = pos < len(self.row_ids)
        hit = np.zeros(len(ids), dtype=bool)
        hit[inb] = self.row_ids[pos[inb]] == ids[inb]
        lens = (
            self.row_offsets[np.minimum(pos + 1, len(self.row_ids))]
            - self.row_offsets[pos]
        )
        return (2 + np.where(hit, lens, 0)).tolist()

    def retire(self, retired: np.ndarray) -> None:
        """Drop retired owned rows; prune retired ids from the rest.

        Filtering preserves target order, so the pruned slice equals the
        owner partition of the next round's residual CSR.
        """
        if not len(self.row_ids):
            return
        keep_rows = ~_in_sorted(self.row_ids, retired)
        keep_tgts = ~_in_sorted(self.row_targets, retired)
        row_index = np.repeat(
            np.arange(len(self.row_ids), dtype=np.int64),
            np.diff(self.row_offsets),
        )
        counts_all = np.bincount(
            row_index[keep_tgts], minlength=len(self.row_ids)
        )
        # Rows whose every target retired are dropped with the retired
        # rows: a source with no surviving targets has residual degree 0,
        # and the owner partition of the next round's CSR (what
        # _distribute builds) holds rows for deg>0 sources only.  Served
        # rows are unchanged either way (a missing owned row reads as
        # empty), but pooled execution reconstructs each shard from the
        # round's CSR, so the pruned slice must *equal* that partition —
        # guard words included — not merely serve the same rows.
        keep_rows &= counts_all > 0
        counts = counts_all[keep_rows]
        self.row_targets = self.row_targets[keep_tgts & keep_rows[row_index]]
        self.row_ids = self.row_ids[keep_rows]
        self.row_offsets = np.zeros(len(self.row_ids) + 1, dtype=np.int64)
        np.cumsum(counts, out=self.row_offsets[1:])
        self._owned_index = None
        self.guard.account(
            "owned_rows",
            len(self.row_ids) + len(self.row_offsets) + len(self.row_targets),
        )


    # -- ghost fringe ------------------------------------------------------

    def install_ghosts(
        self,
        rows: list[tuple[int, np.ndarray]],
        checksum: int | None = None,
    ) -> None:
        # A checksum (computed by the serving side over the same
        # payload) guards the row-resolution delivery: a corrupted
        # batch is rejected *before* any ghost mutates, so the caller
        # can convert it into a retry.
        if checksum is not None:
            observed = faults.rows_checksum(rows)
            if observed != checksum:
                raise faults.ChecksumError(
                    f"row-resolution payload checksum mismatch on shard "
                    f"{self.sid}: expected {checksum:#x}, got "
                    f"{observed:#x}"
                )
        words = self._ghost_words
        ghosts = self.ghosts
        for v, row in rows:
            old = ghosts.get(v)
            if old is not None:
                words -= 1 + len(old)
            ghosts[v] = row
            words += 1 + len(row)
        self._ghost_words = words
        self.guard.account("ghost_fringe", words)

    def evict_ghosts(self, pinned: set[int]) -> None:
        ghosts = self.ghosts
        words = self._ghost_words
        for v in [v for v in ghosts if v not in pinned]:
            words -= 1 + len(ghosts.pop(v))
        self._ghost_words = words
        self.guard.account("ghost_fringe", words)

    def clear_ghosts(self) -> None:
        self.ghosts.clear()
        self._ghost_words = 0
        self.guard.release("ghost_fringe")

    def ghost_ids(self) -> np.ndarray:
        if not self.ghosts:
            return _EMPTY
        ids = np.fromiter(
            self.ghosts.keys(), dtype=np.int64, count=len(self.ghosts)
        )
        ids.sort()
        return ids

    def held_mask(
        self, vertices: np.ndarray, ghost_ids: np.ndarray
    ) -> np.ndarray:
        """Which of ``vertices`` this shard holds the residual row of."""
        mask = owner_of(vertices, self.num_shards) == self.sid
        mask |= _in_sorted(vertices, ghost_ids)
        return mask

    def row_of(self, v: int) -> np.ndarray | None:
        """Held row of ``v`` (owned or ghost), or None when not held."""
        if int(owner_of(np.asarray([v]), self.num_shards)[0]) == self.sid:
            return self.owned_row(v)
        return self.ghosts.get(v)


class _ShardRound:
    """Round-local game state of one shard (valid/invalid, pins, folds)."""

    def __init__(
        self, shard: _Shard, roots: np.ndarray, positions: np.ndarray,
        engine: str,
    ) -> None:
        self.shard = shard
        self.roots = roots
        self.positions = positions
        self.engine = engine
        g = len(roots)
        self.valid = np.zeros(g, dtype=bool)
        self.reads = np.zeros(g, dtype=np.int64)
        self.writes = np.zeros(g, dtype=np.int64)
        self.ball_words = np.zeros(g, dtype=np.int64)
        self.records: list = [None] * g
        self.missing: list[set[int]] = [set() for __ in range(g)]
        self.fetched: list[set[int]] = [set() for __ in range(g)]
        self.spec_pins: set[int] = set()
        self.replay_stats: dict = {}
        self.ejected_games = 0
        shard.guard.account("game_assignments", 2 * g)

    def pending(self) -> np.ndarray:
        return np.flatnonzero(~self.valid)

    def seed_missing(self, num_shards: int) -> None:
        """Pre-play missing sets: the wave-one fringe needs no wave.

        Every game's root row is owned by this shard, so the rows its
        first wave will miss — the root's off-shard targets — are known
        before any play.  Seeding them lets the first exchange run
        *before* the first play, turning the fleet-wide all-miss
        discovery wave into a no-op.  A game whose fringe is entirely
        held seeds empty and simply commits on the first play; a game
        that would have committed on the bare root row fetches a few
        rows it will not read — ghost words it pins anyway until it
        retires on the very next wave.
        """
        shard = self.shard
        row_ids = shard.row_ids
        pos = np.searchsorted(row_ids, self.roots)
        inb = pos < len(row_ids)
        hit = np.zeros(len(self.roots), dtype=bool)
        hit[inb] = row_ids[pos[inb]] == self.roots[inb]
        starts = shard.row_offsets[pos]
        ends = shard.row_offsets[np.minimum(pos + 1, len(row_ids))]
        targets = shard.row_targets
        owners_t = owner_of(targets, num_shards)
        for i in np.flatnonzero(hit).tolist():
            seg = slice(int(starts[i]), int(ends[i]))
            off = targets[seg][owners_t[seg] != shard.sid]
            if off.size:
                self.missing[i] = set(off.tolist())

    def missing_union(self) -> np.ndarray:
        wanted: set[int] = set()
        for i in self.pending().tolist():
            wanted |= self.missing[i]
            self.fetched[i] |= self.missing[i]
        if not wanted:
            return _EMPTY
        return np.asarray(sorted(wanted), dtype=np.int64)

    def pinned_ghosts(self) -> set[int]:
        pending = self.pending()
        pins: set[int] = set()
        for i in pending.tolist():
            pins |= self.fetched[i]
        if pending.size:
            pins |= self.spec_pins
        return pins

    def attribute_expansions(self, extra: set[int]) -> None:
        """Pin speculatively served rows for as long as any game is
        pending — they were speculated precisely for the pending tail,
        and one shard-level set keeps the pin O(|extra|) instead of a
        per-game union over thousands of fetched sets.  Directly
        requested rows keep their exact per-game pins in ``fetched``;
        everything unpins together once the last game commits."""
        if extra:
            self.spec_pins |= extra

    # -- one sub-round of play --------------------------------------------

    def play(self, params: dict, config) -> None:
        if self.engine in ("batched", "compiled"):
            self._play_batched(params, config)
        else:
            self._play_scalar(params)

    def _commit(
        self, i: int, reads: int, writes: int, record: tuple,
        ball_words: int, ejected: bool,
    ) -> None:
        self.valid[i] = True
        self.missing[i] = set()
        self.reads[i] = reads
        self.writes[i] = writes
        self.records[i] = record
        self.ball_words[i] = ball_words
        if ejected:
            self.ejected_games += 1

    def _play_batched(self, params: dict, config) -> None:
        from repro.core.batched_games import play_games_batched
        from repro.core.columnar_rounds import play_coin_game

        shard = self.shard
        need = self.pending()
        roots_g = self.roots[need]
        ghost_ids = shard.ghost_ids()
        ghost_rows = [shard.ghosts[v] for v in ghost_ids.tolist()]
        parts = [shard.row_ids, shard.row_targets, roots_g, ghost_ids]
        parts.extend(ghost_rows)
        universe = _sorted_unique(
            np.concatenate([p for p in parts if len(p)])
        )
        u_count = len(universe)
        held = shard.held_mask(universe, ghost_ids)

        # Held rows, compacted to local ids (global order preserved, so
        # every order-dependent tie-break is isomorphic to the global run).
        own_pos = np.searchsorted(universe, shard.row_ids)
        own_counts = np.diff(shard.row_offsets)
        ghost_pos = np.searchsorted(universe, ghost_ids)
        ghost_counts = np.fromiter(
            (len(r) for r in ghost_rows), dtype=np.int64, count=len(ghost_rows)
        )
        deg_held = np.zeros(u_count, dtype=np.int64)
        deg_held[own_pos] = own_counts
        deg_held[ghost_pos] = ghost_counts
        own_tgt = np.searchsorted(universe, shard.row_targets)
        ghost_tgt = (
            np.searchsorted(universe, np.concatenate(ghost_rows))
            if ghost_rows else _EMPTY
        )
        held_src = np.concatenate([
            np.repeat(own_pos, own_counts), np.repeat(ghost_pos, ghost_counts)
        ]) if u_count else _EMPTY
        held_tgt = np.concatenate([own_tgt, ghost_tgt])

        # Fringe vertices (targets of held rows whose own rows are not
        # held) need local rows too.  The two engines want different
        # ones:
        #
        # * The python batched engine patches forwarding records through
        #   a transpose-position map that assumes every edge's reverse
        #   exists, so fringe rows must hold synthetic reverse edges.
        #   Only a game that explores a fringe vertex can read one — and
        #   that game is invalid and discarded — but the fake structure
        #   (cycles back into the ball) makes such games escalate their
        #   coin scale far past the genuine trajectory's, ejecting them
        #   to the slow bigint path in droves.
        #
        # * The compiled kernel re-evaluates membership per delivery
        #   through its stamp arrays and never consults a transpose map,
        #   so it has no symmetry assumption at all.  Fringe rows stay
        #   genuinely empty — the exact missing-rows-read-as-empty
        #   semantics of the scalar fabric protocol — and a game that
        #   walks off the held ball parks at the fringe instead of
        #   bouncing through fake cycles, so only genuinely deep games
        #   eject.  Either way the game is detected as invalid through
        #   the held mask over its explored set.
        if self.engine == "compiled":
            syn_src = syn_tgt = _EMPTY
        else:
            fringe_edge = ~held[held_tgt]
            syn_src = held_tgt[fringe_edge]
            syn_tgt = held_src[fringe_edge]
        deg = deg_held + np.bincount(
            syn_src, minlength=u_count
        ) if syn_src.size else deg_held
        offsets_l = np.zeros(u_count + 1, dtype=np.int64)
        np.cumsum(deg, out=offsets_l[1:])
        targets_l = np.empty(int(offsets_l[-1]), dtype=np.int64)
        targets_l[_segment_indices(offsets_l[own_pos], own_counts)] = own_tgt
        targets_l[
            _segment_indices(offsets_l[ghost_pos], ghost_counts)
        ] = ghost_tgt
        if syn_src.size:
            order = np.lexsort((syn_tgt, syn_src))
            syn_rows = _sorted_unique(syn_src)
            targets_l[
                _segment_indices(
                    offsets_l[syn_rows],
                    np.bincount(syn_src, minlength=u_count)[syn_rows],
                )
            ] = syn_tgt[order]

        shard.guard.account(
            "game_scratch",
            (u_count + 1) + 2 * len(targets_l) + 3 * u_count,
        )

        from repro.core.batched_games import csr_transpose_positions

        if self.engine == "compiled":
            from repro.core.native import play_games_compiled

            play_cohort = play_games_compiled
            transpose = None
        else:
            play_cohort = play_games_batched
            transpose = csr_transpose_positions(offsets_l, targets_l)
        roots_l = np.searchsorted(universe, roots_g)
        out_layer = np.full(u_count, _INF)
        out_count = np.zeros(u_count, dtype=np.int64)
        k = len(roots_l)
        reads = np.zeros(k, dtype=np.int64)
        writes = np.zeros(k, dtype=np.int64)
        records: list = [None] * k
        ejected_flags = np.zeros(k, dtype=bool)
        block = config.cohort_games
        arena_hint = [0, 0]
        ejected: list[int] = []
        need_list = need.tolist()
        raw = self.engine == "compiled"
        for start in range(0, k, block):
            stop = min(start + block, k)
            info = play_cohort(
                offsets_l, targets_l, roots_l[start:stop],
                x=params["x"], beta=params["beta"], clip=params["clip"],
                horizon=params["horizon"], scale=params["scale"],
                out_layer=out_layer, out_count=out_count,
                want_records=True, transpose_pos=transpose,
                replay_stats=self.replay_stats, arena_hint=arena_hint,
                cone_cutoff=config.replay_cone_cutoff,
                poor_streak=config.replay_poor_streak,
                **({"raw_records": True} if raw else {}),
            )
            reads[start:stop] = info.reads
            writes[start:stop] = info.writes
            ejected.extend((info.ejected + start).tolist())
            if not raw:
                records[start:stop] = info.records
                continue
            # Raw flat records: remap ids and split valid from invalid
            # games in whole-cohort array ops, then build python record
            # tuples only for the games that actually commit — an
            # optimistic wave discards most of its plays as invalid, and
            # marshalling their transcripts one list element at a time
            # was the fabric's single largest driver cost.
            mem_f, pu_f, pl_f, mem_counts, proof_counts = info.records
            mem_ends = np.cumsum(mem_counts)
            proof_ends = np.cumsum(proof_counts)
            mem_g = universe[mem_f]
            pu_g = universe[pu_f]
            pl_list = pl_f.tolist()
            bad = ~held[mem_f]
            bad_cum = np.zeros(len(bad) + 1, dtype=np.int64)
            np.cumsum(bad, out=bad_cum[1:])
            ball_cum = np.zeros(len(mem_f) + 1, dtype=np.int64)
            np.cumsum(deg_held[mem_f], out=ball_cum[1:])
            cohort_ejected = np.zeros(stop - start, dtype=bool)
            cohort_ejected[info.ejected] = True
            mo = po = 0
            for jj in range(stop - start):
                me = int(mem_ends[jj])
                pe = int(proof_ends[jj])
                if cohort_ejected[jj]:
                    mo, po = me, pe
                    continue  # replayed exactly below, on real held rows
                i = need_list[start + jj]
                if bad_cum[me] != bad_cum[mo]:
                    seg = mem_g[mo:me]
                    self.missing[i] = set(seg[bad[mo:me]].tolist())
                else:
                    r = int(reads[start + jj])
                    w = int(writes[start + jj])
                    proof_g = list(zip(pu_g[po:pe].tolist(), pl_list[po:pe]))
                    # Real words of the held ball: one degree word plus
                    # the row targets per explored vertex — identically
                    # the game's probe charge, so strict-budget parity
                    # is checked against what a shard genuinely held.
                    ball = (me - mo) + int(ball_cum[me] - ball_cum[mo])
                    self._commit(
                        i, r, w, (mem_g[mo:me].tolist(), proof_g, r, w),
                        ball, False,
                    )
                mo, po = me, pe
        if ejected:
            ejected_flags[ejected] = True
        if not raw:
            for j, i in enumerate(need_list):
                if ejected_flags[j]:
                    continue  # replayed exactly below, on real held rows
                record = records[j]
                explored_l = np.asarray(record[0], dtype=np.int64)
                miss = explored_l[~held[explored_l]]
                if miss.size:
                    self.missing[i] = set(universe[miss].tolist())
                    continue
                explored_g = universe[explored_l]
                proof = record[1]
                proof_u = universe[np.fromiter(
                    (u for u, __ in proof), dtype=np.int64, count=len(proof)
                )].tolist()
                proof_g = [
                    (v, lay) for v, (__, lay) in zip(proof_u, proof)
                ]
                # Real words of the held ball (see the raw path above).
                ball = len(explored_l) + int(deg_held[explored_l].sum())
                self._commit(
                    i, int(reads[j]), int(writes[j]),
                    (explored_g.tolist(), proof_g,
                     int(reads[j]), int(writes[j])),
                    ball, False,
                )

        # Ejected games replay through the scalar interpreter — but on
        # the shard's *real* held rows in global ids, not the compacted
        # local view.  The synthetic reverse rows above exist only to
        # satisfy the engine's transpose map; a game that wanders into
        # them sees fake structure whose scale escalation routinely
        # overflows the engine (mass ejection), and an exact bigint
        # replay of that fake trajectory is both the slowest path in the
        # fabric and useless — the transcript is discarded as invalid
        # anyway.  Replaying against held rows keeps the bigint path on
        # the true game: if every probe hits a held row the global
        # transcript is exact and commits; otherwise the logged probes
        # are the genuine rows the game's real trajectory needs next
        # sub-round.
        if ejected:
            adj = _GhostAdjacency(shard)
            scratch_layer = _MinScratch()
            scratch_count = _CountScratch()
            for gi in ejected:
                i = int(need[gi])
                adj.missing = set()
                r, w, record = play_coin_game(
                    adj, int(roots_g[gi]), params["x"], params["beta"],
                    params["clip"], params["horizon"], params["scale"],
                    scratch_layer, scratch_count, True,
                )
                if adj.missing:
                    self.missing[i] = adj.missing
                    continue
                ball = len(record[0]) + sum(len(adj[u]) for u in record[0])
                self._commit(i, r, w, record, ball, True)
            shard.guard.account(
                "game_scratch",
                (u_count + 1) + 2 * len(targets_l) + 3 * u_count
                + adj.cached_words(),
            )
        shard.guard.release("game_scratch")

    def _play_scalar(self, params: dict) -> None:
        from repro.core.columnar_rounds import play_coin_game

        shard = self.shard
        adj = _GhostAdjacency(shard)
        out_layer = _MinScratch()
        out_count = _CountScratch()
        for i in self.pending().tolist():
            adj.missing = set()
            reads, writes, record = play_coin_game(
                adj, int(self.roots[i]), params["x"], params["beta"],
                params["clip"], params["horizon"], params["scale"],
                out_layer, out_count, True,
            )
            if adj.missing:
                self.missing[i] = adj.missing
                continue
            ball = len(record[0]) + sum(len(adj[u]) for u in record[0])
            self._commit(i, reads, writes, record, ball, False)
        shard.guard.account("game_scratch", adj.cached_words())
        shard.guard.release("game_scratch")


class _GhostAdjacency:
    """Global-id adjacency over one shard's held rows (missing → empty).

    The scalar engine probes ``adj[u]`` only for explored vertices; a
    probe of a row the shard does not hold returns an empty row and logs
    the id — the game is then invalid and the logged ids become the
    sub-round's row requests.
    """

    def __init__(self, shard: _Shard) -> None:
        self._shard = shard
        self._rows: dict[int, list[int]] = {}
        self.missing: set[int] = set()
        # Probes are single-vertex and row-cache misses are the hot
        # path of every replay, so look rows up through the shard's id
        # index instead of binary-searching and owner-hashing one numpy
        # scalar per miss.
        self._owned_index = shard.owned_index()

    def __getitem__(self, v: int) -> list[int]:
        row = self._rows.get(v)
        if row is None:
            shard = self._shard
            i = self._owned_index.get(v)
            if i is not None:
                row = shard.row_targets[
                    shard.row_offsets[i]:shard.row_offsets[i + 1]
                ].tolist()
            else:
                ghost = shard.ghosts.get(v)
                if ghost is not None:
                    row = ghost.tolist()
                elif owner_of_one(v, shard.num_shards) == shard.sid:
                    row = []  # owned, implicitly empty (isolated vertex)
                else:
                    self.missing.add(v)
                    return []
            self._rows[v] = row
        return row

    def cached_words(self) -> int:
        return sum(1 + len(row) for row in self._rows.values())


def _expand_ball(
    offsets: np.ndarray,
    targets: np.ndarray,
    deg: np.ndarray,
    miss: np.ndarray,
    radius: int,
    shard: _Shard,
    max_words: int | None,
) -> np.ndarray:
    """Speculative fetch targets: the ``radius``-hop ball around the
    missing set, minus rows the requester already holds.

    Request forwarding is ownership-blind: each hop the fabric
    routes "ship row u to shard ``sid``" to u's owner, so the ball
    follows the row graph across shard boundaries (an owner-local
    expansion would die after one hop — the owner hash deliberately
    scatters adjacent vertices).  ``max_words`` bounds the ball's
    payload; served rows are verbatim CSR rows either way, so commit
    exactness is untouched.
    """
    if radius <= 0 or max_words == 0:
        return _EMPTY
    ball = set(miss.tolist())
    ghosts = shard.ghosts
    sid = shard.sid
    num_shards = shard.num_shards
    frontier = miss
    out: list[int] = []
    words = 0
    for __ in range(radius):
        live = frontier[deg[frontier] > 0]
        if not live.size:
            break
        nxt = _sorted_unique(
            targets[_segment_indices(offsets[live], deg[live])]
        )
        owners_n = owner_of(nxt, num_shards)
        fresh: list[int] = []
        for u, o in zip(nxt.tolist(), owners_n.tolist()):
            if u in ball:
                continue
            # Rows the requester already holds are waypoints, not
            # cargo: they join the frontier (the true ball runs
            # straight through them — with p shards an owner-hash
            # scatters 1/p of every layer into the requester) but
            # are never re-shipped.
            ball.add(u)
            fresh.append(u)
            if o == sid or u in ghosts:
                continue
            # Budget charge per speculative row: its ghost words
            # (2 + deg) plus the scratch the next play's compacted
            # universe spends on it — ~4 words per universe slot
            # (the row itself and up to deg fringe targets) and 2
            # per target — so a row costs ~6 + 7*deg of headroom,
            # not just its payload.
            w = 6 + 7 * int(deg[u])
            if max_words is not None and words + w > max_words:
                return np.asarray(sorted(out), dtype=np.int64)
            words += w
            out.append(u)
        if not fresh:
            break
        frontier = np.asarray(fresh, dtype=np.int64)
    return np.asarray(sorted(out), dtype=np.int64)


class _MinScratch(dict):
    """Dense-accumulator stand-in: missing keys read as +∞."""

    def __missing__(self, key):
        return _INF


class _CountScratch(dict):
    """Dense-accumulator stand-in: missing keys read as 0."""

    def __missing__(self, key):
        return 0


def _rows_stamp(rows: list[tuple[int, np.ndarray]]) -> int | None:
    """Checksum a row-resolution payload for in-process delivery.

    In-process, :meth:`_Shard.install_ghosts` receives the very objects
    the serving side would digest, so a self-stamped checksum can never
    detect corruption — the parameter exists as the integrity contract
    a future socket/MPI transport attaches to each row message.  Stamp
    (and thereby verify) only under an active fault plan, so the chaos
    tier keeps the verify path exercised while fault-free deliveries —
    including the serial path — skip the double digest.
    """
    if faults.active_plan() is None:
        return None
    return faults.rows_checksum(rows)


def run_shard_chain(
    offsets: np.ndarray,
    targets: np.ndarray,
    sid: int,
    *,
    num_shards: int,
    roots: np.ndarray,
    positions: np.ndarray,
    x: int,
    beta: int,
    clip: int,
    horizon: int,
    scale: int | None,
    want_records: bool,
    engine: str,
    config,
    budget_words: int | None = None,
) -> dict:
    """One shard's complete BSP round, self-served from the global CSR.

    This is the worker side of the pooled fabric
    (:meth:`repro.ampc.pool.CoinGamePool.run_fabric_round`).  A shard's
    sub-round chain is a pure function of (residual CSR, its roots,
    shard count, engine, config, budget): every row another shard would
    serve it is a verbatim slice of the round's CSR, so the worker
    reconstructs its owned partition from the shared CSR (exactly what
    :meth:`MessageFabric._distribute` built — retirement prunes the
    driver's slices down to the same shape), serves its own row requests
    straight from the CSR, and runs the identical guard/ghost/play
    sequence the serial fabric runs for that shard.

    Besides its game results the worker returns the per-sub-round
    ``(missing, speculative)`` id trace of requests it *would* have sent
    and its guard's round peak and end-of-round holdings; the driver
    replays the trace through the same ``_send``/word-counting helpers
    (overlapped with the other shards' play) and adopts the guard
    numbers, so comm counters and ``max_held_words`` are bit-identical
    to the serial fabric for every (engine, shards, workers) combination.
    """
    t0 = time.perf_counter()
    shard = _Shard(sid, num_shards, budget_words)
    deg = np.diff(offsets)
    sources = np.flatnonzero(deg > 0)
    sources = sources[owner_of(sources, num_shards) == sid]
    counts = deg[sources]
    row_offsets = np.zeros(len(sources) + 1, dtype=np.int64)
    np.cumsum(counts, out=row_offsets[1:])
    shard.install_owned(
        sources, row_offsets,
        targets[_segment_indices(offsets[sources], counts)],
    )
    shard.guard.begin_round()
    run = _ShardRound(shard, roots, positions, engine)
    run.seed_missing(num_shards)
    params = {
        "x": x, "beta": beta, "clip": clip, "horizon": horizon,
        "scale": scale,
    }
    trace: list[tuple[np.ndarray, np.ndarray]] = []
    sub_round = 0
    played = False
    while True:
        miss = run.missing_union()
        if not miss.size and played:
            break
        sub_round += 1
        radius = min(1 << (sub_round - 1), PREFETCH_RADIUS_CAP)
        extra = _EMPTY
        if miss.size:
            # Same speculation policy as the serial loop: a budgeted
            # shard never speculates (see MessageFabric.run_round).
            spec_cap = None if budget_words is None else 0
            extra = _expand_ball(
                offsets, targets, deg, miss, radius, shard, spec_cap
            )
            wanted = np.concatenate([miss, extra]) if extra.size else miss
            rows = [
                (v, targets[offsets[v]:offsets[v + 1]].copy())
                for v in wanted.tolist()
            ]
            shard.install_ghosts(rows, checksum=_rows_stamp(rows))
            run.attribute_expansions(set(extra.tolist()))
        shard.evict_ghosts(run.pinned_ghosts())
        if run.pending().size:
            run.play(params, config)
        played = True
        trace.append((miss, extra))
    proof_u: list[int] = []
    proof_l: list[int] = []
    for record in run.records:
        for u, lay in record[1]:
            proof_u.append(u)
            proof_l.append(lay)
    return {
        "reads": run.reads,
        "writes": run.writes,
        "records": run.records if want_records else None,
        "replay_stats": run.replay_stats or None,
        "ejected_games": run.ejected_games,
        "ball_max": int(run.ball_words.max()) if run.ball_words.size else 0,
        "proof_u": np.asarray(proof_u, dtype=np.int64),
        "proof_l": np.asarray(proof_l, dtype=np.int64),
        "trace": trace,
        "guard_peak": shard.guard.round_peak,
        "guard_held": dict(shard.guard._held),
        "wall_s": time.perf_counter() - t0,
    }


class MessageFabric:
    """The driver-side fabric: ``p`` owner-hashed shards + typed routing.

    Shards are simulated in-process (the fabric models the memory and
    communication discipline of a distributed run — throughput sharding
    is the process pool's job), but every byte a shard holds and every
    word that crosses a shard boundary is accounted as if they were
    separate machines.  ``run_round`` plugs into
    :func:`repro.core.columnar_rounds.lca_round_kernel` in place of the
    pool and returns the same ``(positions, ShardResult)`` pairs.
    """

    def __init__(
        self,
        num_shards: int,
        *,
        budget_words: int | None = None,
        cap_words: int | None = None,
    ) -> None:
        num_shards = int(num_shards)
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self.budget_words = budget_words
        self.cap_words = int(cap_words) if cap_words else MESSAGE_CAP_WORDS
        if self.cap_words < 4:
            raise ValueError("cap_words must be >= 4 (one row header)")
        self.shards = [
            _Shard(sid, num_shards, budget_words) for sid in range(num_shards)
        ]
        self.placed = False
        self.peak_held_words = 0
        self.total_messages = 0
        self.total_words = 0

    # -- counters ----------------------------------------------------------

    _COMM_KEYS = (
        "messages", "words", "subrounds", "row_requests", "rows_served",
        "placement_words", "retirement_words", "fold_words", "result_words",
        "max_shard_words", "max_game_ball_words", "max_held_words",
        "ejected_games", "shard_wall_s", "comm_overlap_s",
    )

    def _init_comm(self, comm: dict) -> dict:
        for key in self._COMM_KEYS:
            comm.setdefault(key, 0)
        comm["shards"] = self.num_shards
        return comm

    def _send(
        self, comm: dict, shard_words: list[int], words: int,
        src: int | None = None, dst: int | None = None,
        messages: int | None = None,
    ) -> None:
        """Count one logical payload (``src``/``dst`` None = the driver)."""
        words = int(words)
        if messages is None:
            messages = max(1, -(-words // self.cap_words))
        comm["messages"] += messages
        comm["words"] += words
        self.total_messages += messages
        self.total_words += words
        if src is not None:
            shard_words[src] += words
        if dst is not None:
            shard_words[dst] += words

    def _row_segments(self, row_words: list[int]) -> int:
        """Delivery segments for rows packed greedily at the cap."""
        segments, used = 0, 0
        for w in row_words:
            if segments and used + w <= self.cap_words:
                used += w
            else:
                segments += 1
                used = w
        return max(1, segments)

    # -- lifecycle ---------------------------------------------------------

    def _distribute(
        self, offsets: np.ndarray, targets: np.ndarray, comm: dict,
        shard_words: list[int],
    ) -> None:
        """Initial placement: slice the residual CSR by owner hash."""
        deg = np.diff(offsets)
        sources = np.flatnonzero(deg > 0)
        owners = owner_of(sources, self.num_shards)
        for sid, shard in enumerate(self.shards):
            ids = sources[owners == sid]
            counts = deg[ids]
            row_offsets = np.zeros(len(ids) + 1, dtype=np.int64)
            np.cumsum(counts, out=row_offsets[1:])
            row_targets = targets[_segment_indices(offsets[ids], counts)]
            words = shard.install_owned(ids, row_offsets, row_targets)
            comm["placement_words"] += words
            self._send(comm, shard_words, words, dst=sid)
        self.placed = True

    def retire(self, assigned: np.ndarray, comm: dict | None = None) -> None:
        """Broadcast retirement notices for this round's assignments."""
        if not self.placed:
            return
        retired = np.sort(np.asarray(assigned, dtype=np.int64))
        if not retired.size:
            return
        if comm is not None:
            self._init_comm(comm)
        for shard in self.shards:
            shard.retire(retired)
            if comm is not None:
                comm["retirement_words"] += len(retired)
                self._send(
                    comm, [0] * self.num_shards, len(retired),
                    dst=shard.sid,
                )

    def run_round(
        self,
        offsets: np.ndarray,
        targets: np.ndarray,
        roots: np.ndarray,
        positions: np.ndarray,
        *,
        x: int,
        beta: int,
        clip: int,
        horizon: int,
        scale: int | None,
        want_records: bool,
        engine: str = "batched",
        config=None,
        comm: dict | None = None,
        pool=None,
    ) -> list[tuple[np.ndarray, "object"]]:
        """Play one round's pending games through the shard fabric.

        Returns ``(positions, ShardResult)`` pairs exactly like
        :meth:`repro.ampc.pool.CoinGamePool.run_games` — reads/writes and
        records ride with the shard owning the *game*, layer folds with
        the shard owning the *vertex* (both scatter through commutative
        accumulators, so the split is invisible).

        ``pool`` (a :class:`repro.ampc.pool.CoinGamePool`) runs each
        shard's BSP chain in a worker process instead of in-process (see
        :func:`run_shard_chain`) — a pure throughput knob: the driver
        replays every shard's communication for the counters and adopts
        its guard peaks, so all observables and all comm/memory numbers
        are bit-identical to the serial fabric.
        """
        if config is None:
            from repro.ampc.engine_config import EngineConfig

            config = EngineConfig.from_env()
        comm = self._init_comm({} if comm is None else comm)
        shard_words = [0] * self.num_shards
        for shard in self.shards:
            shard.guard.begin_round()
            shard.clear_ghosts()
        if not self.placed:
            self._distribute(offsets, targets, comm, shard_words)

        owners = owner_of(roots, self.num_shards)
        params = {
            "x": x, "beta": beta, "clip": clip, "horizon": horizon,
            "scale": scale,
        }
        if pool is not None and len(roots):
            return self._run_round_pooled(
                pool, offsets, targets, roots, positions, owners, params,
                want_records, engine, config, comm, shard_words,
            )
        runs: list[_ShardRound] = []
        for sid, shard in enumerate(self.shards):
            sel = np.flatnonzero(owners == sid)
            if sel.size:
                self._send(comm, shard_words, 2 * sel.size, dst=sid)
            runs.append(
                _ShardRound(shard, roots[sel], positions[sel], engine)
            )

        # BSP sub-rounds: exchange missing rows, play, validate, repeat.
        # Exchange runs *before* play: the first missing sets are seeded
        # from the owned root rows, so the opening fleet-wide all-miss
        # discovery wave never happens.
        deg_global = np.diff(offsets)
        for run in runs:
            run.seed_missing(self.num_shards)
        sub_round = 0
        played = False
        while True:
            src_missing: list[np.ndarray] = []
            total_missing = 0
            for run in runs:
                miss = run.missing_union()
                src_missing.append(miss)
                total_missing += int(miss.size)
            if not total_missing and played:
                break
            if total_missing:
                comm["subrounds"] += 1
            sub_round += 1
            # Speculative service radius.  The seed exchange ships each
            # game's layer-two ball alongside its layer-one fringe —
            # most balls stop there, so most games commit on their first
            # play.  Later exchanges double the radius per sub-round:
            # the games still pending are the deep tail, and chasing
            # their balls one fetched layer at a time costs one
            # sub-round per layer, while doubling makes the remaining
            # chain O(log r).
            radius = min(1 << (sub_round - 1), PREFETCH_RADIUS_CAP)
            for sid, miss in enumerate(src_missing):
                if not miss.size:
                    continue
                shard = self.shards[sid]
                # Speculation is a pure wall-clock optimization: a
                # budgeted shard never speculates.  The S budget bounds
                # the shard's *peak* held words — ghost payloads plus
                # the play scratch their compacted universe induces —
                # and that peak depends on rows the shard has not seen
                # yet, so no request-time headroom check can keep an
                # optimistic ball safely under it.  Direct fetches
                # alone already color every graph the budget admits.
                spec_cap = None if shard.guard.budget_words is None else 0
                extra = _expand_ball(
                    offsets, targets, deg_global, miss, radius, shard,
                    spec_cap,
                )
                wanted = (
                    np.concatenate([miss, extra]) if extra.size else miss
                )
                owners_w = owner_of(wanted, self.num_shards)
                for dst in _sorted_unique(owners_w).tolist():
                    ids = np.sort(wanted[owners_w == dst])
                    owner = self.shards[dst]
                    self._send(comm, shard_words, len(ids), src=sid, dst=dst)
                    comm["row_requests"] += len(ids)
                    rows = owner.serve_rows(ids)
                    row_words = [2 + len(row) for __, row in rows]
                    self._send(
                        comm, shard_words, sum(row_words), src=dst, dst=sid,
                        messages=self._row_segments(row_words),
                    )
                    comm["rows_served"] += len(rows)
                    shard.install_ghosts(rows, checksum=_rows_stamp(rows))
                runs[sid].attribute_expansions(set(extra.tolist()))
            for run in runs:
                run.shard.evict_ghosts(run.pinned_ghosts())
            for run in runs:
                if run.pending().size:
                    run.play(params, config)
            played = True

        per_shard = []
        for run in runs:
            proof_u: list[int] = []
            proof_l: list[int] = []
            for record in run.records:
                for u, lay in record[1]:
                    proof_u.append(u)
                    proof_l.append(lay)
            per_shard.append({
                "positions": run.positions,
                "roots": run.roots,
                "reads": run.reads,
                "writes": run.writes,
                "records": run.records,
                "replay_stats": run.replay_stats or None,
                "ejected_games": run.ejected_games,
                "ball_max": (
                    int(run.ball_words.max()) if run.ball_words.size else 0
                ),
                "proof_u": np.asarray(proof_u, dtype=np.int64),
                "proof_l": np.asarray(proof_l, dtype=np.int64),
            })
        return self._fold_and_results(
            comm, shard_words, want_records, per_shard
        )

    def _run_round_pooled(
        self, pool, offsets, targets, roots, positions, owners, params,
        want_records, engine, config, comm, shard_words,
    ) -> list[tuple[np.ndarray, "object"]]:
        """Dispatch each shard's BSP chain to a pool worker, replaying
        its communication for the counters as results stream back.

        Each worker runs :func:`run_shard_chain` — the full serial
        per-shard protocol, self-served from the shared CSR — so the
        games, the guard op sequence, and the request ids are exactly
        the serial fabric's.  The driver's only per-shard work is
        bookkeeping: replaying the returned request trace through
        ``_send``/:meth:`_Shard.served_words` (row payload words come
        from the driver's own identical slices) and adopting the
        worker's guard peak.  Replay happens in completion order while
        the remaining shards are still playing; ``comm_overlap_s``
        records how much accounting was hidden behind play, and
        ``shard_wall_s`` the slowest shard's in-worker wall time.
        """
        num = self.num_shards
        jobs = []
        roots_by: list[np.ndarray] = []
        pos_by: list[np.ndarray] = []
        for sid in range(num):
            sel = np.flatnonzero(owners == sid)
            roots_by.append(roots[sel])
            pos_by.append(positions[sel])
            if sel.size:
                self._send(comm, shard_words, 2 * sel.size, dst=sid)
                jobs.append((sid, roots[sel], positions[sel]))
        payload = dict(params)
        payload.update(
            num_shards=num, want_records=want_records, engine=engine,
            config=config, budget_words=self.budget_words,
        )
        shard_res: list[dict | None] = [None] * num
        miss_sizes: list[list[int]] = [[] for __ in range(num)]
        state = {"overlap": 0.0, "wall": 0.0}

        def on_result(sid: int, res: dict, others_running: bool) -> None:
            t0 = time.perf_counter()
            shard_res[sid] = res
            state["wall"] = max(state["wall"], res["wall_s"])
            self.shards[sid].guard.adopt(
                res["guard_peak"], res["guard_held"]
            )
            for miss, extra in res["trace"]:
                miss_sizes[sid].append(int(miss.size))
                if not miss.size:
                    continue
                wanted = (
                    np.concatenate([miss, extra]) if extra.size else miss
                )
                owners_w = owner_of(wanted, num)
                for dst in _sorted_unique(owners_w).tolist():
                    ids = np.sort(wanted[owners_w == dst])
                    self._send(comm, shard_words, len(ids), src=sid, dst=dst)
                    comm["row_requests"] += len(ids)
                    row_words = self.shards[dst].served_words(ids)
                    self._send(
                        comm, shard_words, sum(row_words), src=dst, dst=sid,
                        messages=self._row_segments(row_words),
                    )
                    comm["rows_served"] += len(row_words)
            if others_running:
                state["overlap"] += time.perf_counter() - t0

        pool.run_fabric_round(offsets, targets, jobs, payload, on_result)

        # Lockstep sub-round k spans every shard's k-th exchange; the
        # global counter ticks whenever any shard requested rows then —
        # identically the serial loop's any-missing test.
        depth = max((len(sizes) for sizes in miss_sizes), default=0)
        for k in range(depth):
            if any(len(sizes) > k and sizes[k] for sizes in miss_sizes):
                comm["subrounds"] += 1
        comm["shard_wall_s"] = max(comm["shard_wall_s"], state["wall"])
        comm["comm_overlap_s"] += state["overlap"]

        per_shard = []
        dispatched = {job[0] for job in jobs}
        for sid in range(num):
            res = shard_res[sid]
            if res is None:
                if sid in dispatched:
                    # The supervisor contract is exactly-once delivery
                    # per dispatched shard; an empty fill here would
                    # complete the round with a wrong partition, so a
                    # missing result is a loud driver bug, never a
                    # default.
                    raise RuntimeError(
                        f"fabric shard {sid} was dispatched but never "
                        "delivered a result"
                    )
                per_shard.append({
                    "positions": pos_by[sid], "roots": roots_by[sid],
                    "reads": np.zeros(0, dtype=np.int64),
                    "writes": np.zeros(0, dtype=np.int64),
                    "records": [], "replay_stats": None,
                    "ejected_games": 0, "ball_max": 0,
                    "proof_u": _EMPTY, "proof_l": _EMPTY,
                })
                continue
            per_shard.append({
                "positions": pos_by[sid], "roots": roots_by[sid],
                "reads": res["reads"], "writes": res["writes"],
                "records": res["records"] if want_records else [],
                "replay_stats": res["replay_stats"],
                "ejected_games": res["ejected_games"],
                "ball_max": res["ball_max"],
                "proof_u": res["proof_u"], "proof_l": res["proof_l"],
            })
        return self._fold_and_results(
            comm, shard_words, want_records, per_shard
        )

    def _fold_and_results(
        self, comm, shard_words, want_records, per_shard,
    ) -> list[tuple[np.ndarray, "object"]]:
        """Layer-proposal folds (routed by vertex owner — owners
        min/+-fold and forward one (u, min, count) triple per vertex to
        the driver) and the per-shard result payloads.  Shared verbatim
        by the serial and pooled paths, so their counters cannot drift.
        """
        from repro.ampc.pool import ShardResult

        fold_u: list[list[np.ndarray]] = [[] for __ in range(self.num_shards)]
        fold_l: list[list[np.ndarray]] = [[] for __ in range(self.num_shards)]
        for sid, sh in enumerate(per_shard):
            pu = sh["proof_u"]
            pl = sh["proof_l"]
            if not pu.size:
                continue
            owners_p = owner_of(pu, self.num_shards)
            for dst in _sorted_unique(owners_p).tolist():
                sel = owners_p == dst
                self._send(
                    comm, shard_words, 3 * int(sel.sum()), src=sid, dst=dst
                )
                comm["fold_words"] += 3 * int(sel.sum())
                fold_u[dst].append(pu[sel])
                fold_l[dst].append(pl[sel])

        results: list[tuple[np.ndarray, ShardResult]] = []
        max_ball = 0
        for sid, sh in enumerate(per_shard):
            if fold_u[sid]:
                fu = np.concatenate(fold_u[sid])
                fl = np.concatenate(fold_l[sid])
                vertices = _sorted_unique(fu)
                slots = np.searchsorted(vertices, fu)
                minima = np.full(len(vertices), _INF)
                np.minimum.at(minima, slots, fl)
                counts = np.bincount(slots, minlength=len(vertices))
                self.shards[sid].guard.account(
                    "fold_accumulators", 3 * len(vertices)
                )
            else:
                vertices = _EMPTY
                minima = np.empty(0)
                counts = _EMPTY
            self._send(
                comm, shard_words, 3 * len(vertices), src=sid
            )
            result_words = 2 * len(sh["roots"])
            if want_records:
                result_words += sum(
                    2 + len(record[0]) + 2 * len(record[1])
                    for record in sh["records"]
                )
            if len(sh["roots"]):
                self._send(comm, shard_words, result_words, src=sid)
                comm["result_words"] += result_words
            max_ball = max(max_ball, sh["ball_max"])
            comm["ejected_games"] += sh["ejected_games"]
            results.append((
                sh["positions"],
                ShardResult(
                    sh["reads"], sh["writes"], vertices, minima, counts,
                    sh["records"] if want_records else None,
                    sh["replay_stats"],
                ),
            ))
            guard = self.shards[sid].guard
            guard.release("game_assignments")
            guard.release("game_scratch")
            guard.release("fold_accumulators")

        comm["max_shard_words"] = max(
            comm["max_shard_words"], max(shard_words)
        )
        comm["max_game_ball_words"] = max(
            comm["max_game_ball_words"], max_ball
        )
        round_peak = max(shard.guard.round_peak for shard in self.shards)
        comm["max_held_words"] = max(comm["max_held_words"], round_peak)
        self.peak_held_words = max(self.peak_held_words, round_peak)
        return results

    def max_held_words(self) -> int:
        """Current held words, maximized over shards."""
        return max(shard.guard.current for shard in self.shards)
