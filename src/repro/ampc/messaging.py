"""Message-passing shard fabric — owner-hashed partitions, bounded deltas.

The process-pool path (:mod:`repro.ampc.pool`) parallelizes a round's
machine fleet but cheats the AMPC memory model: every worker attaches
the *entire* residual CSR through shared memory, so the per-machine
space budget S is fictional.  This module replaces that with a
simulated distributed fabric in which each shard holds only

- its **owned residual rows** — the hash partition
  ``owner(v) = splitmix64(v) mod p`` assigns every vertex (and the coin
  game rooted at it) to exactly one of ``p`` shards; a shard stores the
  residual adjacency rows of its owned vertices and nothing else;
- a **bounded ghost fringe** — rows of foreign vertices a shard's games
  explored this round, fetched on demand and evicted as soon as no
  still-unresolved game pins them (see *ghost-fringe invalidation*
  below), stored as one appendable compacted CSR rather than a per-row
  dict; a configurable slice of it (the **cross-round ghost cache**)
  survives round boundaries under its own ``ghost_cache`` guard tag;
- **round-local scratch** — the compacted local CSR and fold
  accumulators of the games currently replaying.

Every array a shard holds is accounted by tag against a configurable S
budget through :class:`MemoryGuard`, which raises :class:`MemoryGuardError`
the moment the shard's held words exceed the budget — the budget
*binds*: a graph whose full CSR exceeds one shard's budget still colors
correctly with enough shards, and an under-budgeted shard fails fast
instead of silently over-holding.

Message types
-------------

All communication is typed, owner-routed, and size-capped (payloads
larger than ``cap_words`` ship as multiple delivery segments; row
resolutions split at row boundaries, so one oversized row still ships
whole).  Word counts are payload words (int64 slots); per-round totals
are surfaced through the ``comm`` dict and
``BetaPartitionOutcome.round_comm``.

``placement``
    Driver → shard, once at fabric initialization: the shard's owned
    slice of the residual CSR ``(ids, offsets, targets)``.
``assignment``
    Driver → shard, per round: the roots of the shard's owned games.
``row-request``
    Shard → owner, per sub-round: the vertex ids of rows that games
    explored but the shard does not hold.
``row-resolution``
    Owner → shard: the requested residual rows as one packed columnar
    slab — three int64 arrays ``(ids, lens, targets)`` per
    (owner → requester, sub-round) pair, ``2 + len`` payload words per
    row exactly as the old per-row framing — split at row boundaries
    into ≤ ``cap_words`` delivery segments.
``layer-proposal fold``
    Shard → owner, end of round: the ``(u, layer)`` proof entries of
    its finished games, routed to ``owner(u)``; owners min/+-fold them
    and forward one folded ``(u, min, count)`` triple per vertex to the
    driver's DDS merge.
``result``
    Shard → driver, end of round: per-game ``(reads, writes)`` charges
    and (when the driver's cross-round cache is recording) the game
    record tuples.
``retirement``
    Driver → shards, at the round boundary: the vertices assigned this
    round.  Each shard drops its retired owned rows and prunes retired
    ids out of its remaining rows — order-preserving, so the pruned
    slice stays exactly the owner partition of the next round's
    residual CSR and placement is paid only once.

Ordering and commutativity of the folds
---------------------------------------

Shards finish games in arbitrary order, and fold messages arrive at
owners in arbitrary order.  The only cross-shard merges are the layer
min-fold and the proposal count: ``min`` and ``+`` are commutative and
associative with identity (``∞`` / ``0``), so the owner-side fold is
independent of arrival order, and the owner→driver triples scatter into
the same ``np.minimum.at`` / ``np.add.at`` accumulators the serial
kernel uses.  Per-game charges scatter by machine position
(position-disjoint across shards), and records key by root (one writer
each).  Hence every observable — partitions, layers, probe counts,
per-round stats, store words — is bit-identical to the shared-memory
path for any shard count, which the differential tests assert.

Game execution and exactness
----------------------------

A coin game's transcript is a pure function of the residual rows of its
final explored set S_v — both engines read a row (content or degree)
only for vertices they have explored (outside coin holders are tracked
as a touched *set*; forwarding sets, σ-rankings, and proofs read
explored rows only).  The fabric exploits this: each shard runs its
games against its *partial* view with missing rows empty, then checks
each game's recorded explored set against the rows actually held.  A
game whose explored set is fully held produced the exact transcript —
commit it; otherwise the run is discarded, the missing rows are
requested from their owners, and the game re-runs next sub-round.  The
batched engine runs on an order-preserving compaction of the held rows
(global ids → ranks; every order-dependent tie-break is preserved under
a monotone remap, so committed transcripts map back exactly), closed
with synthetic reverse rows for fringe vertices so its transpose-based
replay arena stays well-formed — synthetic rows are only ever read by
games that explored a fringe vertex, i.e. games that are discarded.

Ghost-fringe invalidation rules
-------------------------------

1.  Ghosts may outlive the round that fetched them — retirement cannot
    stale them.  Retirement-pruning is a *pure function of the
    retirement set* (drop retired rows, filter retired ids out of the
    surviving rows, drop rows with no surviving target), so a shard
    applying that prune to a cached ghost row computes exactly what the
    owner computes for its own copy: cached ghosts stay verbatim owner
    copies across every round boundary.  The cross-round ghost cache
    exploits this — at each round boundary every shard keeps the
    highest-priority ghosts within ``cache_words`` (deterministic
    seeded order over the residency counters), accounted under the
    ``ghost_cache`` guard tag, and prunes them in lockstep with
    retirement.  The caching policy is therefore fully described by the
    cached id set plus residency counters: a pooled worker reconstructs
    the cached rows verbatim from the round's shared CSR.
2.  A game *pins* every row it has ever requested; pins drop when the
    game commits.  Mid-round eviction is S-budget discipline, so only
    *budgeted* shards evict between exchanges — dropping the unpinned
    *round-local* ghosts (cached rows ride out the round) bounds the
    fringe by the unresolved games' balls.  An unbudgeted shard keeps
    its whole fringe until ``finish_round``: evicting rows whose pins
    dropped only because their games committed forces the still-pending
    tail to re-request them a wave later (evict/refetch thrash), and
    with no budget there is nothing to protect.  Either way termination
    holds: a game's held set grows monotonically, and each re-run
    either commits or requests a row it never held, so sub-rounds are
    bounded by the largest ball.  The rule is a function of shard-local
    state only, so the serial loop and the pooled worker chains make
    identical decisions.
3.  Owned rows are never ghosted (the owner serves its own reads), and
    a ghost is always a verbatim copy of the owner's current row —
    rows only change at retirement, which happens between rounds, and
    the cache prunes in lockstep (rule 1).

Like speculation, the cache is a pure wall-clock optimization, and for
the same reason a *budgeted* shard never caches: cached rows consume
headroom that no request-time check can bound against the next round's
peak, and direct fetches alone already color every graph the budget
admits.  The cache can therefore never turn a feasible run infeasible,
and comm counters with the cache on simply record fewer re-fetches.

Parallel shard execution (the process-pool transport)
-----------------------------------------------------

With ``workers > 1`` the driver dispatches each shard's *whole* BSP
chain to the persistent worker pool
(:meth:`repro.ampc.pool.CoinGamePool.run_fabric_round` →
:func:`run_shard_chain`) instead of interleaving the shards in-process.
This is sound because a shard's chain is a pure function of
``(global residual CSR, its roots, shard count, engine, config,
budget, cached ghost ids + residency counters)``: every row another
shard would serve it — and every cached ghost row (invalidation rule
1) — is a verbatim slice of that CSR (ghosts are exact copies and
rows never change mid-round), so a worker holding the round's shared
CSR can serve its own row requests — including the seeded first exchange and the
doubling speculative-prefetch balls (radius ``2^(k-1)`` capped at
:data:`PREFETCH_RADIUS_CAP`; budgeted shards never speculate) — and
replay exactly the sub-round chain the serial fabric would run.
Observable state stays honest on both sides of the process boundary:

- **Communication is replayed, not simulated.**  A worker returns its
  per-sub-round ``(missing, speculative)`` id trace; the driver routes
  each entry through the very same ``_send`` / row-serving helpers the
  serial fabric uses, so messages, words, segment counts, row
  requests/served, and the global sub-round count (a cross-shard
  *any* per lockstep iteration) are bit-identical to the serial
  transport.  Replay happens in shard-completion order, overlapped
  with the still-running shards' play — the only work that may
  overlap, since it touches no state another shard could observe
  (``comm_overlap_s`` records the hidden portion; ``shard_wall_s``
  the slowest worker's in-process chain).
- **Guard accounting is adopted, not recomputed.**  The worker's
  :class:`MemoryGuard` replays the exact op sequence (placement,
  round begin, assignments, exchanges, plays) against the same
  budget; the driver merges the returned round peak and end-of-round
  held words per tag onto its persistent shard guards
  (:meth:`MemoryGuard.adopt`), so driver-side fold accounting stacks
  on the correct current and ``max_held_words`` matches the serial
  fabric word for word.  A worker-side :class:`MemoryGuardError` is a
  protocol outcome, not a pool fault: it passes through verbatim and
  the pool stays healthy.
- **Folds stay commutative across workers.**  The driver-side merge
  of shard results is the same min/+ fold as ever — ``min`` and ``+``
  are commutative and associative, per-game charges are
  position-disjoint, and records key by root — so worker completion
  order (racy by nature) cannot perturb any observable.

Retry safety (the supervisor's failure contract)
------------------------------------------------

The same purity argument makes shard loss *recoverable*, not just
parallelizable: a crashed, hung, or corrupted shard chain is re-run
from the same ``(CSR, roots, shard count, engine, config, budget)``
inputs and produces the same result bit for bit, so the pool's round
supervisor (:meth:`repro.ampc.pool.CoinGamePool._run_supervised`) may
retry, respawn, or fall back to inline driver execution without any
observable noticing.  Three properties carry the argument across this
module's state:

- **Comm replay is exactly-once, not idempotent.**  Replaying a
  shard's ``(missing, speculative)`` trace twice would double the
  message counters, so the supervisor delivers each shard's result to
  the driver exactly once, only after its checksum verifies; a lost or
  corrupted attempt is discarded *before* any driver state mutates.
- **Guard adoption is protected by the same ordering.**  A faulted
  attempt never reaches :meth:`MemoryGuard.adopt` — verification runs
  first — so a fault "mid-adopt" cannot exist on the driver: the
  guard either adopts one verified attempt's peaks or none, and
  ``adopt`` itself is a pure max/assign merge per tag.
- **Row payloads are integrity-checked.**  Every worker result carries
  a splitmix64-chained CRC over its arrays and trace
  (:func:`repro.ampc.faults.payload_checksum`), and row-resolution
  deliveries into :meth:`_Shard.install_ghosts` verify a
  :func:`repro.ampc.faults.rows_checksum` when one is supplied —
  corruption becomes a detected retry, never a wrong partition.  The
  checksum parameter is the contract a real transport attaches to
  every row message; the in-process paths hand ``install_ghosts`` the
  very objects the serving side would digest, so they stamp one only
  under an active fault plan (:func:`_rows_stamp`) — keeping the
  verify path exercised by the chaos tier without paying a double
  digest on every fault-free delivery.

A :class:`MemoryGuardError` stays a deterministic protocol outcome:
the serial fabric would raise it identically, so the supervisor never
retries it and passes it through with the pool intact.

The BSP sub-round loop plus the typed, size-capped messages above are
deliberately the narrow waist: a true multi-host backend (sockets,
MPI) replaces the pool dispatch and the driver's replay loop with real
transport, and the supervisor is the failure contract such a backend
plugs into — it supplies loss detection (deadlines), bounded
re-execution, and degradation; the transport only has to report
faults.
"""

from __future__ import annotations

import time

import numpy as np

from repro.ampc import faults

__all__ = [
    "GHOST_CACHE_WORDS",
    "MESSAGE_CAP_WORDS",
    "MemoryGuard",
    "MemoryGuardError",
    "MessageFabric",
    "owner_of",
]

# Default payload cap of one delivery segment, in int64 words.  Purely a
# counting granularity (segments of one logical payload ship together);
# EngineConfig.message_cap_words / $REPRO_MESSAGE_CAP_WORDS override it.
MESSAGE_CAP_WORDS = 1 << 15

# Ceiling on the doubling speculative-service radius (see
# _Shard.expand_requests): by the time a game is this many fetch
# exchanges deep, one more doubling would ship most of the owner's slice.
PREFETCH_RADIUS_CAP = 16
# Request-union size below which the exchange switches from direct
# serving to cap-radius speculative balls (the deep-tail regime).
PREFETCH_TAIL_IDS = 2048

# Default per-shard budget of the cross-round ghost cache, in int64
# words (EngineConfig.ghost_cache_words / $REPRO_GHOST_CACHE_WORDS
# override it; 0 disables the cache, budgeted shards never cache).
GHOST_CACHE_WORDS = 1 << 18

# Seed of the ghost-cache eviction tie-break: retention order is
# splitmix64(id ^ seed) within equal residency, so the policy is
# deterministic across runs, processes, and transports.
_GHOST_CACHE_SEED = 0x6A09E667F3BCC908

_EMPTY = np.empty(0, dtype=np.int64)
_INF = float("inf")

_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def _mix_ids(vertices: np.ndarray, seed: int) -> np.ndarray:
    """Full splitmix64 finalizer of ``vertices ^ seed`` (the ghost-cache
    eviction tie-break; same mix as :func:`owner_of`)."""
    z = (
        np.asarray(vertices, dtype=np.int64).astype(np.uint64)
        ^ np.uint64(seed)
    ) + _GAMMA
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    return z ^ (z >> np.uint64(31))


def owner_of(vertices: np.ndarray, num_shards: int) -> np.ndarray:
    """Owner shard of each vertex: ``splitmix64(v) mod num_shards``.

    A fixed deterministic mix (not Python's randomized ``hash``) keeps
    the partition reproducible across processes and runs; splitmix64
    scatters consecutive vertex ids so contiguous graph regions spread
    over shards instead of landing on one.
    """
    z = np.asarray(vertices, dtype=np.int64).astype(np.uint64) + _GAMMA
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    z ^= z >> np.uint64(31)
    return (z % np.uint64(num_shards)).astype(np.int64)


_M64 = (1 << 64) - 1


def owner_of_one(v: int, num_shards: int) -> int:
    """Scalar :func:`owner_of` for single-vertex probes (same mix)."""
    z = (v + 0x9E3779B97F4A7C15) & _M64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    z ^= z >> 31
    return z % num_shards


class MemoryGuardError(RuntimeError):
    """A shard's held words exceeded its configured S budget."""


class MemoryGuard:
    """Tag-based words accounting for everything one shard holds.

    Every array a shard keeps is registered under a tag
    (``owned_rows``, ``ghost_fringe``, ``game_scratch``, …);
    :meth:`account` replaces the tag's charge and raises
    :class:`MemoryGuardError` the moment the total exceeds the budget.
    ``budget_words=None`` accounts (for the peak counters) but never
    raises.
    """

    def __init__(
        self, budget_words: int | None = None, name: str = "shard"
    ) -> None:
        if budget_words is not None and budget_words < 1:
            raise ValueError("budget_words must be >= 1 (or None)")
        self.budget_words = budget_words
        self.name = name
        self.current = 0
        self.peak = 0
        self.round_peak = 0
        self._held: dict[str, int] = {}

    def begin_round(self) -> None:
        """Reset the per-round peak (lifetime ``peak`` keeps running)."""
        self.round_peak = self.current

    def account(self, tag: str, words: int) -> None:
        """Set ``tag``'s held words; raise loudly on budget violation.

        An over-budget charge is never committed: ``current``, ``peak``,
        and the tag's held words are untouched when this raises, so a
        caller that catches the error (the budget tests, a shard
        deciding to shed load) continues with accounting that still
        reflects what the shard actually holds.
        """
        words = int(words)
        if words < 0:
            raise ValueError(f"negative words for tag {tag!r}")
        attempted = self.current + words - self._held.get(tag, 0)
        if self.budget_words is not None and attempted > self.budget_words:
            held = ", ".join(
                f"{t}={w}"
                for t, w in sorted({**self._held, tag: words}.items())
                if w
            )
            raise MemoryGuardError(
                f"{self.name} holds {attempted} words, exceeding its "
                f"S budget of {self.budget_words} ({held})"
            )
        self.current = attempted
        self._held[tag] = words
        if self.current > self.peak:
            self.peak = self.current
        if self.current > self.round_peak:
            self.round_peak = self.current

    def release(self, tag: str) -> None:
        self.current -= self._held.pop(tag, 0)

    def adopt(self, round_peak: int, held: dict[str, int]) -> None:
        """Adopt a worker-side guard's round outcome onto this guard.

        The pooled fabric runs a shard's round inside a worker process
        whose guard replays the exact op sequence the serial fabric
        would have run (same budget, so a violation raised there first);
        the driver-side guard — which persists across rounds and still
        owes the round's fold accounting — takes over the worker's
        end-of-round holdings and folds its peak into the counters.
        """
        for tag, words in held.items():
            words = int(words)
            self.current += words - self._held.get(tag, 0)
            self._held[tag] = words
        self.peak = max(self.peak, round_peak, self.current)
        self.round_peak = max(self.round_peak, round_peak, self.current)

    def held_words(self) -> int:
        return self.current


def _in_sorted(values: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Membership mask of ``values`` in the sorted id array ``keys``."""
    if not len(keys) or not len(values):
        return np.zeros(len(values), dtype=bool)
    pos = np.minimum(np.searchsorted(keys, values), len(keys) - 1)
    return keys[pos] == values


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    if not values.size:
        return values
    ordered = np.sort(values)
    keep = np.empty(len(ordered), dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


def _segment_indices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat indices covering rows ``[starts[i], starts[i]+counts[i])``."""
    total = int(counts.sum())
    if not total:
        return _EMPTY
    out = np.repeat(starts - (np.cumsum(counts) - counts), counts)
    out += np.arange(total, dtype=np.int64)
    return out


class _Shard:
    """One simulated machine: owned rows + ghost fringe, all guarded."""

    def __init__(
        self, sid: int, num_shards: int, budget_words: int | None,
        cache_words: int = 0,
    ):
        self.sid = sid
        self.num_shards = num_shards
        self.guard = MemoryGuard(budget_words, name=f"shard[{sid}]")
        # The cross-round ghost cache is a pure wall-clock optimization;
        # a budgeted shard never caches (same argument as speculation —
        # see MessageFabric.run_round and invalidation rule 1).
        self.cache_words = 0 if budget_words is not None else int(cache_words)
        self.row_ids = _EMPTY  # sorted owned ids with a stored row
        self.row_offsets = np.zeros(1, dtype=np.int64)
        self.row_targets = _EMPTY
        # Ghost fringe: an appendable compacted CSR.  ghost_ids is
        # sorted; (ghost_starts, ghost_lens) slice rows out of the
        # append-only _arena (compacted when dead words dominate).
        # ghost_rounds is the residency counter: round boundaries a
        # ghost has survived (0 = fetched this round — the round-local
        # fringe; >= 1 = the cross-round cache).
        self.ghost_ids = _EMPTY
        self.ghost_starts = _EMPTY
        self.ghost_lens = _EMPTY
        self.ghost_rounds = _EMPTY
        self._arena = _EMPTY
        self._arena_used = 0
        self._fringe_words = 0  # 1 + len per rounds==0 ghost
        self._cache_words = 0   # 1 + len per rounds>=1 ghost
        self._owned_index: dict[int, int] | None = None
        # Per-round ghost delta log, consumed by _ShardRound's
        # incremental local CSR (cleared at build and at finish_round).
        self._log_added: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._log_removed: list[np.ndarray] = []

    # -- owned rows --------------------------------------------------------

    def install_owned(
        self, ids: np.ndarray, offsets: np.ndarray, targets: np.ndarray
    ) -> int:
        self.row_ids = ids
        self.row_offsets = offsets
        self.row_targets = targets
        self._owned_index = None
        words = len(ids) + len(offsets) + len(targets)
        self.guard.account("owned_rows", words)
        return words

    def owned_index(self) -> dict[int, int]:
        """id → slot of the owned slice (ids are static within a round,
        single-vertex probes are the replay hot path)."""
        if self._owned_index is None:
            self._owned_index = {
                v: i for i, v in enumerate(self.row_ids.tolist())
            }
        return self._owned_index

    def owned_row(self, v: int) -> np.ndarray:
        """The residual row of owned vertex ``v`` (implicitly empty rows
        — isolated alive vertices — are served as empty)."""
        i = int(np.searchsorted(self.row_ids, v))
        if i < len(self.row_ids) and self.row_ids[i] == v:
            return self.row_targets[
                self.row_offsets[i]:self.row_offsets[i + 1]
            ]
        return _EMPTY

    def row_extents(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(start, len)`` of each requested owned row — the single
        sizing rule :meth:`serve_rows` and :meth:`served_words` share,
        so word accounting can never drift from the payloads actually
        shipped.  A vertex without a stored row (missing, or implicitly
        empty) extends to length 0."""
        pos = np.searchsorted(self.row_ids, ids)
        inb = pos < len(self.row_ids)
        hit = np.zeros(len(ids), dtype=bool)
        hit[inb] = self.row_ids[pos[inb]] == ids[inb]
        starts = self.row_offsets[pos]
        ends = self.row_offsets[np.minimum(pos + 1, len(self.row_ids))]
        lens = np.where(hit, ends - starts, 0)
        return np.where(hit, starts, 0), lens

    def serve_rows(
        self, ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One packed ``(ids, lens, targets)`` slab for a request batch
        — the columnar row-resolution wire format (one gather instead
        of a python tuple per row; serving is driver-hot).  Payload
        words are ``2 + len`` per row, identical to the old per-row
        framing, so comm accounting semantics are unchanged."""
        starts, lens = self.row_extents(ids)
        return ids, lens, self.row_targets[_segment_indices(starts, lens)]

    def served_words(self, ids: np.ndarray) -> np.ndarray:
        """Payload words :meth:`serve_rows` would ship per id, without
        materializing the rows (the pooled driver replays a worker's
        row exchanges for accounting only — the worker already served
        itself from the shared CSR)."""
        return 2 + self.row_extents(ids)[1]

    def retire(self, retired: np.ndarray) -> None:
        """Drop retired owned rows; prune retired ids from the rest.

        Filtering preserves target order, so the pruned slice equals the
        owner partition of the next round's residual CSR.  Cached ghost
        rows get the *identical* prune (invalidation rule 1): the prune
        is a pure function of the retirement set, so a pruned cached
        ghost stays a verbatim copy of the owner's pruned row.
        """
        self._retire_ghosts(retired)
        if not len(self.row_ids):
            return
        keep_rows = ~_in_sorted(self.row_ids, retired)
        keep_tgts = ~_in_sorted(self.row_targets, retired)
        row_index = np.repeat(
            np.arange(len(self.row_ids), dtype=np.int64),
            np.diff(self.row_offsets),
        )
        counts_all = np.bincount(
            row_index[keep_tgts], minlength=len(self.row_ids)
        )
        # Rows whose every target retired are dropped with the retired
        # rows: a source with no surviving targets has residual degree 0,
        # and the owner partition of the next round's CSR (what
        # _distribute builds) holds rows for deg>0 sources only.  Served
        # rows are unchanged either way (a missing owned row reads as
        # empty), but pooled execution reconstructs each shard from the
        # round's CSR, so the pruned slice must *equal* that partition —
        # guard words included — not merely serve the same rows.
        keep_rows &= counts_all > 0
        counts = counts_all[keep_rows]
        self.row_targets = self.row_targets[keep_tgts & keep_rows[row_index]]
        self.row_ids = self.row_ids[keep_rows]
        self.row_offsets = np.zeros(len(self.row_ids) + 1, dtype=np.int64)
        np.cumsum(counts, out=self.row_offsets[1:])
        self._owned_index = None
        self.guard.account(
            "owned_rows",
            len(self.row_ids) + len(self.row_offsets) + len(self.row_targets),
        )


    # -- ghost fringe ------------------------------------------------------

    def _reserve(self, count: int) -> int:
        """Arena space for ``count`` more words; returns the write start."""
        need = self._arena_used + count
        if need > len(self._arena):
            grown = np.empty(max(need, 2 * len(self._arena), 1024), np.int64)
            grown[: self._arena_used] = self._arena[: self._arena_used]
            self._arena = grown
        start = self._arena_used
        self._arena_used = need
        return start

    def _ghost_slab(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The whole ghost store as one compacted (ids, lens, targets)."""
        return (
            self.ghost_ids,
            self.ghost_lens,
            self._arena[_segment_indices(self.ghost_starts, self.ghost_lens)],
        )

    def ghost_row(self, v: int) -> np.ndarray | None:
        """The ghost row of ``v``, or None when not ghosted."""
        i = int(np.searchsorted(self.ghost_ids, v))
        if i < len(self.ghost_ids) and self.ghost_ids[i] == v:
            s = self.ghost_starts[i]
            return self._arena[s:s + self.ghost_lens[i]]
        return None

    def _account_ghosts(self) -> None:
        if self._fringe_words:
            self.guard.account("ghost_fringe", self._fringe_words)
        else:
            self.guard.release("ghost_fringe")
        if self._cache_words:
            self.guard.account("ghost_cache", self._cache_words)
        else:
            self.guard.release("ghost_cache")

    def _set_ghost_store(
        self, ids: np.ndarray, lens: np.ndarray, targets: np.ndarray,
        rounds: np.ndarray,
    ) -> None:
        """Replace the ghost store with a compacted (ids, lens, targets,
        rounds) quadruple and re-account both guard tags."""
        self.ghost_ids = ids
        self.ghost_lens = lens
        self.ghost_rounds = rounds
        self.ghost_starts = np.cumsum(lens) - lens
        self._arena = targets
        self._arena_used = len(targets)
        fresh = rounds == 0
        held = 1 + lens
        self._fringe_words = int(held[fresh].sum())
        self._cache_words = int(held.sum()) - self._fringe_words
        self._account_ghosts()

    def install_ghosts(
        self,
        ids: np.ndarray,
        lens: np.ndarray,
        targets: np.ndarray,
        checksum: int | None = None,
    ) -> None:
        """Install one row-resolution slab into the ghost fringe.

        The checksum (computed by the serving side over the same slab)
        and the guard charge both run *before* any ghost mutates: a
        corrupted or over-budget slab is rejected with the store — and
        its accounting — exactly as it was, so the caller can convert
        the failure into a retry (or shed load) without rollback.
        """
        if checksum is not None:
            observed = faults.rows_checksum(ids, lens, targets)
            if observed != checksum:
                raise faults.ChecksumError(
                    f"row-resolution payload checksum mismatch on shard "
                    f"{self.sid}: expected {checksum:#x}, got "
                    f"{observed:#x}"
                )
        ids = np.asarray(ids, dtype=np.int64)
        lens = np.asarray(lens, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if len(self.ghost_ids) and _in_sorted(ids, self.ghost_ids).any():
            # Cannot happen in-protocol (missing rows are unheld and
            # speculative cargo skips held rows); reject loudly instead
            # of silently double-holding a row.
            raise ValueError("row-resolution slab overlaps held ghosts")
        words = self._fringe_words + len(ids) + int(lens.sum())
        self.guard.account("ghost_fringe", words)  # raises pre-commit
        self._fringe_words = words
        start = self._reserve(len(targets))
        self._arena[start:start + len(targets)] = targets
        starts = start + np.cumsum(lens) - lens
        ins = np.searchsorted(self.ghost_ids, ids)
        self.ghost_ids = np.insert(self.ghost_ids, ins, ids)
        self.ghost_starts = np.insert(self.ghost_starts, ins, starts)
        self.ghost_lens = np.insert(self.ghost_lens, ins, lens)
        self.ghost_rounds = np.insert(self.ghost_rounds, ins, 0)
        self._log_added.append((ids, lens, targets))

    def evict_ghosts(self, pinned: np.ndarray) -> None:
        """Evict unpinned round-local ghosts (cached rows ride out the
        round — invalidation rule 2)."""
        if not len(self.ghost_ids):
            return
        keep = self.ghost_rounds > 0
        keep |= _in_sorted(self.ghost_ids, pinned)
        if keep.all():
            return
        dropped = self.ghost_ids[~keep]
        freed = len(dropped) + int(self.ghost_lens[~keep].sum())
        self.ghost_ids = self.ghost_ids[keep]
        self.ghost_starts = self.ghost_starts[keep]
        self.ghost_lens = self.ghost_lens[keep]
        self.ghost_rounds = self.ghost_rounds[keep]
        self._fringe_words -= freed
        self._account_ghosts()
        self._log_removed.append(dropped)
        live = int(self.ghost_lens.sum())
        if self._arena_used > 2 * live + 1024:
            self._set_ghost_store(*self._ghost_slab(), self.ghost_rounds)

    def finish_round(self) -> int:
        """Round-boundary cache retention; returns the eviction count.

        Keeps the highest-priority ghosts whose ``1 + len`` words fit in
        ``cache_words`` and drops the rest.  Priority is deterministic
        and seeded: lowest residency counter first (the most recently
        fetched fringe — next round's balls overlap this round's last
        waves most), ``splitmix64(id ^ seed)`` as the tie-break.
        Survivors age one residency round and move from the
        ``ghost_fringe`` tag to ``ghost_cache``.
        """
        evicted = 0
        if len(self.ghost_ids):
            total = len(self.ghost_ids)
            if self.cache_words <= 0:
                keep = np.zeros(0, dtype=np.int64)
            else:
                prio = np.lexsort((
                    _mix_ids(self.ghost_ids, _GHOST_CACHE_SEED),
                    self.ghost_rounds,
                ))
                cum = np.cumsum(1 + self.ghost_lens[prio])
                keep = np.sort(prio[: int(np.searchsorted(
                    cum, self.cache_words, side="right"
                ))])
            evicted = total - len(keep)
            lens = self.ghost_lens[keep]
            self._set_ghost_store(
                self.ghost_ids[keep], lens,
                self._arena[_segment_indices(self.ghost_starts[keep], lens)],
                self.ghost_rounds[keep] + 1,
            )
        else:
            self._fringe_words = 0
            self._cache_words = 0
            self._account_ghosts()
        self._log_added.clear()
        self._log_removed.clear()
        return evicted

    def seed_cache(
        self, ids: np.ndarray, rounds: np.ndarray,
        offsets: np.ndarray, targets: np.ndarray,
    ) -> None:
        """Reconstruct the cached ghost rows verbatim from the round's
        global CSR (invalidation rule 1: a cached ghost row *is* the
        owner's row, which is that CSR's row) and account them."""
        lens = (offsets[ids + 1] - offsets[ids]) if len(ids) else _EMPTY
        self._set_ghost_store(
            np.asarray(ids, dtype=np.int64), lens,
            targets[_segment_indices(offsets[ids], lens)]
            if len(ids) else _EMPTY,
            np.asarray(rounds, dtype=np.int64),
        )

    def mirror_cache(
        self, ids: np.ndarray, rounds: np.ndarray,
        offsets: np.ndarray, targets: np.ndarray,
    ) -> None:
        """Driver-side twin of :meth:`seed_cache` after a pooled round:
        set the store without touching the guard (the worker's
        accounting was already adopted verbatim)."""
        lens = (offsets[ids + 1] - offsets[ids]) if len(ids) else _EMPTY
        self.ghost_ids = np.asarray(ids, dtype=np.int64)
        self.ghost_lens = lens
        self.ghost_rounds = np.asarray(rounds, dtype=np.int64)
        self.ghost_starts = np.cumsum(lens) - lens
        self._arena = (
            targets[_segment_indices(offsets[ids], lens)]
            if len(ids) else _EMPTY
        )
        self._arena_used = len(self._arena)
        self._fringe_words = 0
        self._cache_words = int((1 + lens).sum()) if len(ids) else 0
        self._log_added.clear()
        self._log_removed.clear()

    def clear_ghosts(self) -> None:
        self.ghost_ids = _EMPTY
        self.ghost_starts = _EMPTY
        self.ghost_lens = _EMPTY
        self.ghost_rounds = _EMPTY
        self._arena = _EMPTY
        self._arena_used = 0
        self._fringe_words = 0
        self._cache_words = 0
        self.guard.release("ghost_fringe")
        self.guard.release("ghost_cache")
        self._log_added.clear()
        self._log_removed.clear()

    def _retire_ghosts(self, retired: np.ndarray) -> None:
        """The owner's retirement prune, applied verbatim to cached
        ghost rows (see :meth:`retire`): drop retired ghosts, filter
        retired targets, drop rows with no surviving target — so every
        cached row stays equal to the owner partition's row."""
        if not len(self.ghost_ids):
            return
        ids, lens, targets = self._ghost_slab()
        keep_rows = ~_in_sorted(ids, retired)
        keep_tgts = ~_in_sorted(targets, retired)
        row_index = np.repeat(np.arange(len(ids), dtype=np.int64), lens)
        counts_all = np.bincount(row_index[keep_tgts], minlength=len(ids))
        keep_rows &= counts_all > 0
        self._set_ghost_store(
            ids[keep_rows],
            counts_all[keep_rows],
            targets[keep_tgts & keep_rows[row_index]],
            self.ghost_rounds[keep_rows],
        )

    def held_mask(
        self, vertices: np.ndarray, ghost_ids: np.ndarray
    ) -> np.ndarray:
        """Which of ``vertices`` this shard holds the residual row of."""
        mask = owner_of(vertices, self.num_shards) == self.sid
        mask |= _in_sorted(vertices, ghost_ids)
        return mask

    def row_of(self, v: int) -> np.ndarray | None:
        """Held row of ``v`` (owned or ghost), or None when not held."""
        if int(owner_of(np.asarray([v]), self.num_shards)[0]) == self.sid:
            return self.owned_row(v)
        return self.ghost_row(v)


class _ShardRound:
    """Round-local game state of one shard (valid/invalid, pins, folds)."""

    def __init__(
        self, shard: _Shard, roots: np.ndarray, positions: np.ndarray,
        engine: str, want_records: bool = True,
    ) -> None:
        self.shard = shard
        self.roots = roots
        self.positions = positions
        self.engine = engine
        self.want_records = want_records
        g = len(roots)
        self.valid = np.zeros(g, dtype=bool)
        self.reads = np.zeros(g, dtype=np.int64)
        self.writes = np.zeros(g, dtype=np.int64)
        self.ball_words = np.zeros(g, dtype=np.int64)
        self.records: list = [None] * g
        # Columnar (proof_u, proof_l) per committed game: the layer
        # fold consumes these arrays directly, so the per-pair python
        # record tuples are built only when a caller wants transcripts.
        self.proof_cols: list = [None] * g
        self.missing: list[np.ndarray] = [_EMPTY] * g
        self.fetched: list[list[np.ndarray]] = [[] for __ in range(g)]
        self.spec_pins: list[np.ndarray] = []
        self.replay_stats: dict = {}
        self.ejected_games = 0
        # Incremental local CSR (built lazily on the first play; see
        # _build_local / _advance_local) and its phase timings.
        self._local: dict | None = None
        self.compact_s = 0.0
        self.play_s = 0.0
        shard.guard.account("game_assignments", 2 * g)

    def pending(self) -> np.ndarray:
        return np.flatnonzero(~self.valid)

    def seed_missing(self, num_shards: int) -> int:
        """Pre-play missing sets: the wave-one fringe needs no wave.

        Every game's root row is owned by this shard, so the rows its
        first wave will miss — the root's off-shard targets — are known
        before any play.  Seeding them lets the first exchange run
        *before* the first play, turning the fleet-wide all-miss
        discovery wave into a no-op.  A game whose fringe is entirely
        held seeds empty and simply commits on the first play; a game
        that would have committed on the bare root row fetches a few
        rows it will not read — ghost words it pins anyway until it
        retires on the very next wave.

        Root targets already held as cached ghosts are not missing —
        the cross-round cache serving its purpose; returns the number
        of distinct cached rows that absorbed a would-be fetch
        (``ghost_cache_hits``).
        """
        shard = self.shard
        g = len(self.roots)
        starts, lens = shard.row_extents(self.roots)
        flat = shard.row_targets[_segment_indices(starts, lens)]
        if not flat.size:
            return 0
        off = owner_of(flat, num_shards) != shard.sid
        cached = _in_sorted(flat, shard.ghost_ids)
        hits = int(len(_sorted_unique(flat[off & cached])))
        want = off & ~cached
        kept = flat[want]
        kept_root = np.repeat(np.arange(g, dtype=np.int64), lens)[want]
        counts = np.bincount(kept_root, minlength=g)
        bounds = np.zeros(g + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        for i in np.flatnonzero(counts).tolist():
            self.missing[i] = kept[bounds[i]:bounds[i + 1]]
        return hits

    def missing_union(self) -> np.ndarray:
        parts: list[np.ndarray] = []
        for i in self.pending().tolist():
            miss = self.missing[i]
            if len(miss):
                parts.append(miss)
                self.fetched[i].append(miss)
        if not parts:
            return _EMPTY
        return _sorted_unique(np.concatenate(parts))

    def pinned_ghosts(self) -> np.ndarray:
        pending = self.pending()
        parts: list[np.ndarray] = []
        for i in pending.tolist():
            parts.extend(self.fetched[i])
        if pending.size:
            parts.extend(self.spec_pins)
        if not parts:
            return _EMPTY
        return _sorted_unique(np.concatenate(parts))

    def attribute_expansions(self, extra: np.ndarray) -> None:
        """Pin speculatively served rows for as long as any game is
        pending — they were speculated precisely for the pending tail,
        and one shard-level list keeps the pin O(|extra|) instead of a
        per-game union over thousands of fetched sets.  Directly
        requested rows keep their exact per-game pins in ``fetched``;
        everything unpins together once the last game commits."""
        if extra.size:
            self.spec_pins.append(extra)

    # -- one sub-round of play --------------------------------------------

    def play(self, params: dict, config) -> None:
        t0 = time.perf_counter()
        c0 = self.compact_s
        if self.engine in ("batched", "compiled"):
            self._play_batched(params, config)
        else:
            self._play_scalar(params)
        # Pure play wall: local-CSR maintenance is reported separately
        # (the compact_s phase), so the two never double-count.
        self.play_s += (time.perf_counter() - t0) - (self.compact_s - c0)

    def _commit(
        self, i: int, reads: int, writes: int, record: tuple | None,
        ball_words: int, ejected: bool, proof_cols: tuple | None = None,
    ) -> None:
        self.valid[i] = True
        self.missing[i] = _EMPTY
        self.reads[i] = reads
        self.writes[i] = writes
        self.records[i] = record
        self.proof_cols[i] = proof_cols
        self.ball_words[i] = ball_words
        if ejected:
            self.ejected_games += 1

    def proof_columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Locally folded layer proposals: ``(vertices, minima, counts)``.

        Engine paths commit columnar (proof_u, proof_l) arrays and
        concatenate for free; scalar-path games (including ejected
        replays) fall back to flattening their record tuples — the same
        pairs either way.  The game shard then combines its own pairs
        per vertex (min layer, proposal count) before they are routed
        to vertex owners — the standard combiner: the owner-side fold
        is min-of-mins and sum-of-counts, so the result is identical
        while each shard forwards one triple per distinct vertex
        instead of one pair per proposal.
        """
        parts_u: list[np.ndarray] = []
        parts_l: list[np.ndarray] = []
        for i, cols in enumerate(self.proof_cols):
            if cols is not None:
                parts_u.append(cols[0])
                parts_l.append(cols[1])
                continue
            record = self.records[i]
            if record is None:
                continue
            proof = record[1]
            parts_u.append(np.fromiter(
                (u for u, __ in proof), dtype=np.int64, count=len(proof)
            ))
            parts_l.append(np.fromiter(
                (lay for __, lay in proof), dtype=np.int64, count=len(proof)
            ))
        if not parts_u:
            return _EMPTY, _EMPTY, _EMPTY
        pu = np.concatenate(parts_u)
        pl = np.concatenate(parts_l)
        # Layers are tiny non-negative ints, so one encoded int64 key
        # sorts (vertex, layer) in a single in-place pass — same
        # grouping a two-key lexsort would give, at half the cost.
        assert int(pl.min()) >= 0
        span = int(pl.max()) + 1
        enc = pu * span + pl
        enc.sort()
        first = np.empty(len(enc), dtype=bool)
        first[0] = True
        keys = enc // span
        np.not_equal(keys[1:], keys[:-1], out=first[1:])
        starts = np.flatnonzero(first)
        return (
            keys[starts], enc[starts] - keys[starts] * span,
            np.diff(np.append(starts, len(enc))),
        )

    def _build_local(self) -> dict:
        """First-play construction of the incremental local CSR.

        The universe (sorted global ids, compacted to ranks) starts as
        owned ids ∪ owned targets ∪ every root ∪ current ghosts and
        their targets, and afterwards only ever *grows*
        (:meth:`_advance_local` splices installed ghost rows in and
        zeroes evicted ones) — evicted ids linger as unheld fringe.
        That makes every play's universe a superset of the one the
        per-sub-round rebuild would produce, which is exact by the same
        argument as compaction itself: the remap global→local stays
        monotone, every engine tie-break is order-based, unheld rows
        read as empty, and unreachable empty rows are never read.  Only
        discarded games pay re-simulation; the held set never pays
        re-layout.
        """
        shard = self.shard
        g_ids, g_lens, g_targets = shard._ghost_slab()
        parts = [shard.row_ids, shard.row_targets, self.roots,
                 g_ids, g_targets]
        universe = _sorted_unique(
            np.concatenate([p for p in parts if len(p)])
        )
        u_count = len(universe)
        held = shard.held_mask(universe, g_ids)
        own_pos = np.searchsorted(universe, shard.row_ids)
        own_counts = np.diff(shard.row_offsets)
        ghost_pos = np.searchsorted(universe, g_ids)
        deg_held = np.zeros(u_count, dtype=np.int64)
        deg_held[own_pos] = own_counts
        deg_held[ghost_pos] = g_lens
        offsets_l = np.zeros(u_count + 1, dtype=np.int64)
        np.cumsum(deg_held, out=offsets_l[1:])
        targets_l = np.empty(int(offsets_l[-1]), dtype=np.int64)
        targets_l[_segment_indices(offsets_l[own_pos], own_counts)] = (
            np.searchsorted(universe, shard.row_targets)
        )
        targets_l[_segment_indices(offsets_l[ghost_pos], g_lens)] = (
            np.searchsorted(universe, g_targets)
        )
        shard._log_added.clear()
        shard._log_removed.clear()
        return {
            "universe": universe,
            "held": held,
            "deg": deg_held,
            "offsets": offsets_l,
            "targets": targets_l,
            "roots_l": np.searchsorted(universe, self.roots),
            "own_pos": own_pos,
        }

    def _advance_local(self) -> None:
        """Splice the ghost delta since the last play into the local
        CSR: newly installed rows are appended (their fresh ids merged
        into the universe under a monotone remap), evicted rows zeroed
        — instead of recompacting the whole held set every sub-round.
        """
        shard = self.shard
        loc = self._local
        added = shard._log_added
        removed = shard._log_removed
        shard._log_added = []
        shard._log_removed = []
        if not added and not removed:
            return
        t0 = time.perf_counter()
        universe = loc["universe"]
        held = loc["held"]
        deg = loc["deg"]
        targets_l = loc["targets"]
        if added:
            a_ids = np.concatenate([a[0] for a in added])
            a_lens = np.concatenate([a[1] for a in added])
            a_tgts = np.concatenate([a[2] for a in added])
            cand = _sorted_unique(np.concatenate([a_ids, a_tgts]))
            fresh = cand[~_in_sorted(cand, universe)]
        else:
            a_ids = a_lens = a_tgts = fresh = _EMPTY
        if fresh.size:
            old2new = (
                np.arange(len(universe), dtype=np.int64)
                + np.searchsorted(fresh, universe)
            )
            fresh_pos = (
                np.searchsorted(universe, fresh)
                + np.arange(len(fresh), dtype=np.int64)
            )
            u2 = np.empty(len(universe) + len(fresh), dtype=np.int64)
            u2[old2new] = universe
            u2[fresh_pos] = fresh
            held2 = np.empty(len(u2), dtype=bool)
            held2[old2new] = held
            held2[fresh_pos] = (
                owner_of(fresh, shard.num_shards) == shard.sid
            )
            deg2 = np.zeros(len(u2), dtype=np.int64)
            deg2[old2new] = deg
            targets_l = old2new[targets_l]
            loc["roots_l"] = old2new[loc["roots_l"]]
            loc["own_pos"] = old2new[loc["own_pos"]]
            universe, held, deg = u2, held2, deg2
        old_offsets = loc["offsets"]
        old_deg = loc["deg"]
        keep_old = old_deg > 0
        if removed:
            rm = _sorted_unique(np.concatenate(removed))
            if rm.size:
                pos_rm_old = np.searchsorted(loc["universe"], rm)
                keep_old[pos_rm_old] = False
                pos_rm = np.searchsorted(universe, rm)
                held[pos_rm] = False
                deg[pos_rm] = 0
        if a_ids.size:
            pos_a = np.searchsorted(universe, a_ids)
            held[pos_a] = True
            deg[pos_a] = a_lens
        offsets2 = np.zeros(len(universe) + 1, dtype=np.int64)
        np.cumsum(deg, out=offsets2[1:])
        targets2 = np.empty(int(offsets2[-1]), dtype=np.int64)
        src_rows = np.flatnonzero(keep_old)
        if src_rows.size:
            counts = old_deg[src_rows]
            dst_rows = (
                np.searchsorted(fresh, loc["universe"][src_rows]) + src_rows
                if fresh.size else src_rows
            )
            targets2[_segment_indices(offsets2[dst_rows], counts)] = (
                targets_l[_segment_indices(old_offsets[src_rows], counts)]
            )
        if a_ids.size:
            targets2[_segment_indices(offsets2[pos_a], a_lens)] = (
                np.searchsorted(universe, a_tgts)
            )
        loc["universe"] = universe
        loc["held"] = held
        loc["deg"] = deg
        loc["offsets"] = offsets2
        loc["targets"] = targets2
        self.compact_s += time.perf_counter() - t0

    def _play_batched(self, params: dict, config) -> None:
        from repro.core.batched_games import play_games_batched
        from repro.core.columnar_rounds import play_coin_game

        shard = self.shard
        need = self.pending()
        roots_g = self.roots[need]
        if self._local is None:
            t0 = time.perf_counter()
            self._local = self._build_local()
            self.compact_s += time.perf_counter() - t0
        else:
            self._advance_local()
        loc = self._local
        universe = loc["universe"]
        u_count = len(universe)
        held = loc["held"]
        deg_held = loc["deg"]

        # Fringe vertices (targets of held rows whose own rows are not
        # held) need local rows too.  The two engines want different
        # ones:
        #
        # * The python batched engine patches forwarding records through
        #   a transpose-position map that assumes every edge's reverse
        #   exists, so fringe rows must hold synthetic reverse edges.
        #   Only a game that explores a fringe vertex can read one — and
        #   that game is invalid and discarded — but the fake structure
        #   (cycles back into the ball) makes such games escalate their
        #   coin scale far past the genuine trajectory's, ejecting them
        #   to the slow bigint path in droves.
        #
        # * The compiled kernel re-evaluates membership per delivery
        #   through its stamp arrays and never consults a transpose map,
        #   so it has no symmetry assumption at all.  Fringe rows stay
        #   genuinely empty — the exact missing-rows-read-as-empty
        #   semantics of the scalar fabric protocol — and a game that
        #   walks off the held ball parks at the fringe instead of
        #   bouncing through fake cycles, so only genuinely deep games
        #   eject.  Either way the game is detected as invalid through
        #   the held mask over its explored set.
        if self.engine == "compiled":
            offsets_l = loc["offsets"]
            targets_l = loc["targets"]
        else:
            held_tgt = loc["targets"]
            held_src = np.repeat(
                np.arange(u_count, dtype=np.int64), deg_held
            )
            fringe_edge = ~held[held_tgt]
            syn_src = held_tgt[fringe_edge]
            syn_tgt = held_src[fringe_edge]
            deg = (
                deg_held + np.bincount(syn_src, minlength=u_count)
                if syn_src.size else deg_held
            )
            offsets_l = np.zeros(u_count + 1, dtype=np.int64)
            np.cumsum(deg, out=offsets_l[1:])
            targets_l = np.empty(int(offsets_l[-1]), dtype=np.int64)
            targets_l[
                _segment_indices(offsets_l[:-1], deg_held)
            ] = held_tgt
            if syn_src.size:
                order = np.lexsort((syn_tgt, syn_src))
                syn_rows = _sorted_unique(syn_src)
                targets_l[
                    _segment_indices(
                        offsets_l[syn_rows],
                        np.bincount(syn_src, minlength=u_count)[syn_rows],
                    )
                ] = syn_tgt[order]

        shard.guard.account(
            "game_scratch",
            (u_count + 1) + 2 * len(targets_l) + 3 * u_count,
        )

        from repro.core.batched_games import csr_transpose_positions

        if self.engine == "compiled":
            from repro.core.native import play_games_compiled

            play_cohort = play_games_compiled
            transpose = None
        else:
            play_cohort = play_games_batched
            transpose = csr_transpose_positions(offsets_l, targets_l)
        roots_l = loc["roots_l"][need]
        out_layer = np.full(u_count, _INF)
        out_count = np.zeros(u_count, dtype=np.int64)
        k = len(roots_l)
        reads = np.zeros(k, dtype=np.int64)
        writes = np.zeros(k, dtype=np.int64)
        records: list = [None] * k
        ejected_flags = np.zeros(k, dtype=bool)
        block = config.cohort_games
        arena_hint = [0, 0]
        ejected: list[int] = []
        need_list = need.tolist()
        raw = self.engine == "compiled"
        for start in range(0, k, block):
            stop = min(start + block, k)
            info = play_cohort(
                offsets_l, targets_l, roots_l[start:stop],
                x=params["x"], beta=params["beta"], clip=params["clip"],
                horizon=params["horizon"], scale=params["scale"],
                out_layer=out_layer, out_count=out_count,
                want_records=True, transpose_pos=transpose,
                replay_stats=self.replay_stats, arena_hint=arena_hint,
                cone_cutoff=config.replay_cone_cutoff,
                poor_streak=config.replay_poor_streak,
                **({"raw_records": True} if raw else {}),
            )
            reads[start:stop] = info.reads
            writes[start:stop] = info.writes
            ejected.extend((info.ejected + start).tolist())
            if not raw:
                records[start:stop] = info.records
                continue
            # Raw flat records: remap ids and split valid from invalid
            # games in whole-cohort array ops, then build python record
            # tuples only for the games that actually commit — an
            # optimistic wave discards most of its plays as invalid, and
            # marshalling their transcripts one list element at a time
            # was the fabric's single largest driver cost.
            mem_f, pu_f, pl_f, mem_counts, proof_counts = info.records
            mem_ends = np.cumsum(mem_counts)
            proof_ends = np.cumsum(proof_counts)
            mem_g = universe[mem_f]
            pu_g = universe[pu_f]
            pl_g = np.asarray(pl_f, dtype=np.int64)
            pl_list = pl_g.tolist() if self.want_records else None
            bad = ~held[mem_f]
            bad_cum = np.zeros(len(bad) + 1, dtype=np.int64)
            np.cumsum(bad, out=bad_cum[1:])
            ball_cum = np.zeros(len(mem_f) + 1, dtype=np.int64)
            np.cumsum(deg_held[mem_f], out=ball_cum[1:])
            cohort_ejected = np.zeros(stop - start, dtype=bool)
            cohort_ejected[info.ejected] = True
            mo = po = 0
            for jj in range(stop - start):
                me = int(mem_ends[jj])
                pe = int(proof_ends[jj])
                if cohort_ejected[jj]:
                    mo, po = me, pe
                    continue  # replayed exactly below, on real held rows
                i = need_list[start + jj]
                if bad_cum[me] != bad_cum[mo]:
                    # Unsorted is fine: missing sets only ever feed
                    # missing_union / pinned_ghosts, which sort-unique
                    # their concatenation anyway.
                    seg = mem_g[mo:me]
                    self.missing[i] = seg[bad[mo:me]]
                else:
                    r = int(reads[start + jj])
                    w = int(writes[start + jj])
                    rec = None
                    if self.want_records:
                        proof_g = list(
                            zip(pu_g[po:pe].tolist(), pl_list[po:pe])
                        )
                        rec = (mem_g[mo:me].tolist(), proof_g, r, w)
                    # Real words of the held ball: one degree word plus
                    # the row targets per explored vertex — identically
                    # the game's probe charge, so strict-budget parity
                    # is checked against what a shard genuinely held.
                    ball = (me - mo) + int(ball_cum[me] - ball_cum[mo])
                    self._commit(
                        i, r, w, rec, ball, False,
                        proof_cols=(pu_g[po:pe], pl_g[po:pe]),
                    )
                mo, po = me, pe
        if ejected:
            ejected_flags[ejected] = True
        if not raw:
            for j, i in enumerate(need_list):
                if ejected_flags[j]:
                    continue  # replayed exactly below, on real held rows
                record = records[j]
                explored_l = np.asarray(record[0], dtype=np.int64)
                miss = explored_l[~held[explored_l]]
                if miss.size:
                    # Unsorted is fine (see the raw path above).
                    self.missing[i] = universe[miss]
                    continue
                explored_g = universe[explored_l]
                proof = record[1]
                pu_arr = universe[np.fromiter(
                    (u for u, __ in proof), dtype=np.int64, count=len(proof)
                )]
                pl_arr = np.fromiter(
                    (lay for __, lay in proof), dtype=np.int64,
                    count=len(proof),
                )
                rec = None
                if self.want_records:
                    proof_g = [
                        (v, lay)
                        for v, (__, lay) in zip(pu_arr.tolist(), proof)
                    ]
                    rec = (explored_g.tolist(), proof_g,
                           int(reads[j]), int(writes[j]))
                # Real words of the held ball (see the raw path above).
                ball = len(explored_l) + int(deg_held[explored_l].sum())
                self._commit(
                    i, int(reads[j]), int(writes[j]), rec, ball, False,
                    proof_cols=(pu_arr, pl_arr),
                )

        # Ejected games replay through the scalar interpreter — but on
        # the shard's *real* held rows in global ids, not the compacted
        # local view.  The synthetic reverse rows above exist only to
        # satisfy the engine's transpose map; a game that wanders into
        # them sees fake structure whose scale escalation routinely
        # overflows the engine (mass ejection), and an exact bigint
        # replay of that fake trajectory is both the slowest path in the
        # fabric and useless — the transcript is discarded as invalid
        # anyway.  Replaying against held rows keeps the bigint path on
        # the true game: if every probe hits a held row the global
        # transcript is exact and commits; otherwise the logged probes
        # are the genuine rows the game's real trajectory needs next
        # sub-round.
        if ejected:
            adj = _GhostAdjacency(shard)
            scratch_layer = _MinScratch()
            scratch_count = _CountScratch()
            for gi in ejected:
                i = int(need[gi])
                adj.missing = set()
                r, w, record = play_coin_game(
                    adj, int(roots_g[gi]), params["x"], params["beta"],
                    params["clip"], params["horizon"], params["scale"],
                    scratch_layer, scratch_count, True,
                )
                if adj.missing:
                    self.missing[i] = _sorted_unique(np.fromiter(
                        adj.missing, dtype=np.int64, count=len(adj.missing)
                    ))
                    continue
                ball = len(record[0]) + sum(len(adj[u]) for u in record[0])
                self._commit(i, r, w, record, ball, True)
            shard.guard.account(
                "game_scratch",
                (u_count + 1) + 2 * len(targets_l) + 3 * u_count
                + adj.cached_words(),
            )
        shard.guard.release("game_scratch")

    def _play_scalar(self, params: dict) -> None:
        from repro.core.columnar_rounds import play_coin_game

        shard = self.shard
        adj = _GhostAdjacency(shard)
        out_layer = _MinScratch()
        out_count = _CountScratch()
        for i in self.pending().tolist():
            adj.missing = set()
            reads, writes, record = play_coin_game(
                adj, int(self.roots[i]), params["x"], params["beta"],
                params["clip"], params["horizon"], params["scale"],
                out_layer, out_count, True,
            )
            if adj.missing:
                self.missing[i] = _sorted_unique(np.fromiter(
                    adj.missing, dtype=np.int64, count=len(adj.missing)
                ))
                continue
            ball = len(record[0]) + sum(len(adj[u]) for u in record[0])
            self._commit(i, reads, writes, record, ball, False)
        shard.guard.account("game_scratch", adj.cached_words())
        shard.guard.release("game_scratch")


class _GhostAdjacency:
    """Global-id adjacency over one shard's held rows (missing → empty).

    The scalar engine probes ``adj[u]`` only for explored vertices; a
    probe of a row the shard does not hold returns an empty row and logs
    the id — the game is then invalid and the logged ids become the
    sub-round's row requests.
    """

    def __init__(self, shard: _Shard) -> None:
        self._shard = shard
        self._rows: dict[int, list[int]] = {}
        self.missing: set[int] = set()
        # Probes are single-vertex and row-cache misses are the hot
        # path of every replay, so look rows up through the shard's id
        # index instead of binary-searching and owner-hashing one numpy
        # scalar per miss.
        self._owned_index = shard.owned_index()

    def __getitem__(self, v: int) -> list[int]:
        row = self._rows.get(v)
        if row is None:
            shard = self._shard
            i = self._owned_index.get(v)
            if i is not None:
                row = shard.row_targets[
                    shard.row_offsets[i]:shard.row_offsets[i + 1]
                ].tolist()
            else:
                ghost = shard.ghost_row(v)
                if ghost is not None:
                    row = ghost.tolist()
                elif owner_of_one(v, shard.num_shards) == shard.sid:
                    row = []  # owned, implicitly empty (isolated vertex)
                else:
                    self.missing.add(v)
                    return []
            self._rows[v] = row
        return row

    def cached_words(self) -> int:
        return sum(1 + len(row) for row in self._rows.values())


def _expand_ball(
    offsets: np.ndarray,
    targets: np.ndarray,
    deg: np.ndarray,
    miss: np.ndarray,
    radius: int,
    shard: _Shard,
    max_words: int | None,
) -> np.ndarray:
    """Speculative fetch targets: the ``radius``-hop ball around the
    missing set, minus rows the requester already holds.

    Request forwarding is ownership-blind: each hop the fabric
    routes "ship row u to shard ``sid``" to u's owner, so the ball
    follows the row graph across shard boundaries (an owner-local
    expansion would die after one hop — the owner hash deliberately
    scatters adjacent vertices).  ``max_words`` bounds the ball's
    payload; served rows are verbatim CSR rows either way, so commit
    exactness is untouched.
    """
    if radius <= 0 or max_words == 0:
        return _EMPTY
    sid = shard.sid
    num_shards = shard.num_shards
    ball = miss
    frontier = miss
    out: list[np.ndarray] = []
    words = 0
    for __ in range(radius):
        live = frontier[deg[frontier] > 0]
        if not live.size:
            break
        nxt = _sorted_unique(
            targets[_segment_indices(offsets[live], deg[live])]
        )
        fresh = nxt[~_in_sorted(nxt, ball)]
        if not fresh.size:
            break
        ball = _sorted_unique(np.concatenate([ball, fresh]))
        # Rows the requester already holds are waypoints, not cargo:
        # they join the frontier (the true ball runs straight through
        # them — with p shards an owner-hash scatters 1/p of every
        # layer into the requester) but are never re-shipped.
        cargo = fresh[
            (owner_of(fresh, num_shards) != sid)
            & ~_in_sorted(fresh, shard.ghost_ids)
        ]
        if cargo.size:
            # Budget charge per speculative row: its ghost words
            # (2 + deg) plus the scratch the next play's compacted
            # universe spends on it — ~4 words per universe slot
            # (the row itself and up to deg fringe targets) and 2
            # per target — so a row costs ~6 + 7*deg of headroom,
            # not just its payload.
            w_cum = words + np.cumsum(6 + 7 * deg[cargo])
            if max_words is not None:
                cut = int(np.searchsorted(w_cum, max_words, side="right"))
                if cut < len(cargo):
                    out.append(cargo[:cut])
                    break
            words = int(w_cum[-1])
            out.append(cargo)
        frontier = fresh
    if not out:
        return _EMPTY
    return np.sort(np.concatenate(out))


class _MinScratch(dict):
    """Dense-accumulator stand-in: missing keys read as +∞."""

    def __missing__(self, key):
        return _INF


class _CountScratch(dict):
    """Dense-accumulator stand-in: missing keys read as 0."""

    def __missing__(self, key):
        return 0


def _rows_stamp(
    ids: np.ndarray, lens: np.ndarray, targets: np.ndarray
) -> int | None:
    """Checksum a row-resolution slab for in-process delivery.

    In-process, :meth:`_Shard.install_ghosts` receives the very arrays
    the serving side would digest, so a self-stamped checksum can never
    detect corruption — the parameter exists as the integrity contract
    a future socket/MPI transport attaches to each row slab.  Stamp
    (and thereby verify) only under an active fault plan, so the chaos
    tier keeps the verify path exercised while fault-free deliveries —
    including the serial path — skip the double digest.
    """
    if faults.active_plan() is None:
        return None
    return faults.rows_checksum(ids, lens, targets)


def run_shard_chain(
    offsets: np.ndarray,
    targets: np.ndarray,
    sid: int,
    *,
    num_shards: int,
    roots: np.ndarray,
    positions: np.ndarray,
    x: int,
    beta: int,
    clip: int,
    horizon: int,
    scale: int | None,
    want_records: bool,
    engine: str,
    config,
    budget_words: int | None = None,
    ghost_cache_words: int = 0,
    cache_ids: np.ndarray | None = None,
    cache_rounds: np.ndarray | None = None,
    fault=None,
) -> dict:
    """One shard's complete BSP round, self-served from the global CSR.

    This is the worker side of the pooled fabric
    (:meth:`repro.ampc.pool.CoinGamePool.run_fabric_round`).  A shard's
    sub-round chain is a pure function of (residual CSR, its roots,
    shard count, engine, config, budget): every row another shard would
    serve it is a verbatim slice of the round's CSR, so the worker
    reconstructs its owned partition from the shared CSR (exactly what
    :meth:`MessageFabric._distribute` built — retirement prunes the
    driver's slices down to the same shape), serves its own row requests
    straight from the CSR, and runs the identical guard/ghost/play
    sequence the serial fabric runs for that shard.

    Besides its game results the worker returns the per-sub-round
    ``(missing, speculative)`` id trace of requests it *would* have sent
    and its guard's round peak and end-of-round holdings; the driver
    replays the trace through the same ``_send``/word-counting helpers
    (overlapped with the other shards' play) and adopts the guard
    numbers, so comm counters and ``max_held_words`` are bit-identical
    to the serial fabric for every (engine, shards, workers) combination.
    The cross-round ghost cache rides the same purity argument:
    ``(cache_ids, cache_rounds)`` name verbatim rows of the shared CSR
    (invalidation rule 1), so the worker reconstructs the cached ghosts
    exactly as the serial shard holds them — and returns the surviving
    cache the same way for the driver to mirror.

    ``fault`` is an optional injected :class:`repro.ampc.faults.Fault`
    of kind ``"slab"``: the first row slab is corrupted *after* the
    serving side stamps its checksum, so :meth:`_Shard.install_ghosts`
    must reject it (a retriable worker loss) before any ghost mutates.
    """
    t0 = time.perf_counter()
    shard = _Shard(
        sid, num_shards, budget_words, cache_words=ghost_cache_words
    )
    deg = np.diff(offsets)
    sources = np.flatnonzero(deg > 0)
    sources = sources[owner_of(sources, num_shards) == sid]
    counts = deg[sources]
    row_offsets = np.zeros(len(sources) + 1, dtype=np.int64)
    np.cumsum(counts, out=row_offsets[1:])
    shard.install_owned(
        sources, row_offsets,
        targets[_segment_indices(offsets[sources], counts)],
    )
    if cache_ids is not None and len(cache_ids) and shard.cache_words > 0:
        # Accounted before begin_round, exactly like the serial fabric
        # where the cache was charged at the previous finish_round and
        # is already held when the new round's peak tracking starts.
        shard.seed_cache(
            np.asarray(cache_ids, dtype=np.int64),
            np.asarray(cache_rounds, dtype=np.int64),
            offsets, targets,
        )
    shard.guard.begin_round()
    run = _ShardRound(shard, roots, positions, engine, want_records)
    cache_hits = run.seed_missing(num_shards)
    params = {
        "x": x, "beta": beta, "clip": clip, "horizon": horizon,
        "scale": scale,
    }
    trace: list[tuple[np.ndarray, np.ndarray]] = []
    serve_s = 0.0
    install_s = 0.0
    fault_armed = fault is not None and fault.kind == "slab"
    sub_round = 0
    played = False
    while True:
        miss = run.missing_union()
        if not miss.size and played:
            break
        sub_round += 1
        radius = min(1 << (sub_round - 1), PREFETCH_RADIUS_CAP)
        extra = _EMPTY
        if miss.size:
            # Same speculation policy as the serial loop: a budgeted
            # shard never speculates (see MessageFabric.run_round).
            spec_cap = None if budget_words is None else 0
            extra = _expand_ball(
                offsets, targets, deg, miss, radius, shard, spec_cap
            )
            wanted = (
                np.sort(np.concatenate([miss, extra]))
                if extra.size else miss
            )
            ts = time.perf_counter()
            lens = deg[wanted]
            slab = targets[_segment_indices(offsets[wanted], lens)]
            stamp = _rows_stamp(wanted, lens, slab)
            serve_s += time.perf_counter() - ts
            if fault_armed:
                fault_armed = False
                if stamp is None:
                    stamp = faults.rows_checksum(wanted, lens, slab)
                if slab.size:
                    slab = slab.copy()
                    slab[0] ^= 1
                else:
                    wanted = wanted.copy()
                    wanted[0] ^= 1
            ts = time.perf_counter()
            shard.install_ghosts(wanted, lens, slab, checksum=stamp)
            install_s += time.perf_counter() - ts
            run.attribute_expansions(extra)
        # Same budget-only mid-round eviction rule as the serial loop
        # (see MessageFabric.run_round) — the schedules must match
        # wave for wave or the end-of-round cache would diverge.
        if budget_words is not None and run.pending().size:
            shard.evict_ghosts(run.pinned_ghosts())
        if run.pending().size:
            run.play(params, config)
        played = True
        trace.append((miss, extra))
    cache_evicted = shard.finish_round()
    proof_u, proof_l, proof_c = run.proof_columns()
    return {
        "reads": run.reads,
        "writes": run.writes,
        "records": run.records if want_records else None,
        "replay_stats": run.replay_stats or None,
        "ejected_games": run.ejected_games,
        "ball_max": int(run.ball_words.max()) if run.ball_words.size else 0,
        "proof_u": proof_u,
        "proof_l": proof_l,
        "proof_c": proof_c,
        "trace": trace,
        "guard_peak": shard.guard.round_peak,
        "guard_held": dict(shard.guard._held),
        "cache_ids": shard.ghost_ids,
        "cache_rounds": shard.ghost_rounds,
        "cache_words": shard._cache_words,
        "cache_hits": cache_hits,
        "cache_evicted": cache_evicted,
        "serve_s": serve_s,
        "install_s": install_s,
        "compact_s": run.compact_s,
        "play_s": run.play_s,
        "wall_s": time.perf_counter() - t0,
    }


class MessageFabric:
    """The driver-side fabric: ``p`` owner-hashed shards + typed routing.

    Shards are simulated in-process (the fabric models the memory and
    communication discipline of a distributed run — throughput sharding
    is the process pool's job), but every byte a shard holds and every
    word that crosses a shard boundary is accounted as if they were
    separate machines.  ``run_round`` plugs into
    :func:`repro.core.columnar_rounds.lca_round_kernel` in place of the
    pool and returns the same ``(positions, ShardResult)`` pairs.
    """

    def __init__(
        self,
        num_shards: int,
        *,
        budget_words: int | None = None,
        cap_words: int | None = None,
        cache_words: int = 0,
    ) -> None:
        num_shards = int(num_shards)
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self.budget_words = budget_words
        self.cap_words = int(cap_words) if cap_words else MESSAGE_CAP_WORDS
        if self.cap_words < 4:
            raise ValueError("cap_words must be >= 4 (one row header)")
        cache_words = int(cache_words)
        if cache_words < 0:
            raise ValueError("cache_words must be >= 0 (0 disables)")
        self.cache_words = cache_words
        self.shards = [
            _Shard(sid, num_shards, budget_words, cache_words=cache_words)
            for sid in range(num_shards)
        ]
        self.placed = False
        self.peak_held_words = 0
        self.total_messages = 0
        self.total_words = 0

    # -- counters ----------------------------------------------------------

    _COMM_KEYS = (
        "messages", "words", "subrounds", "row_requests", "rows_served",
        "placement_words", "retirement_words", "fold_words", "result_words",
        "max_shard_words", "max_game_ball_words", "max_held_words",
        "ejected_games", "ghost_cache_hits", "ghost_cache_evicted",
        "ghost_cache_held_words",
        "shard_wall_s", "comm_overlap_s",
        "serve_s", "install_s", "compact_s", "play_s",
    )

    def _init_comm(self, comm: dict) -> dict:
        for key in self._COMM_KEYS:
            comm.setdefault(key, 0)
        comm["shards"] = self.num_shards
        return comm

    def _send(
        self, comm: dict, shard_words: list[int], words: int,
        src: int | None = None, dst: int | None = None,
        messages: int | None = None,
    ) -> None:
        """Count one logical payload (``src``/``dst`` None = the driver)."""
        words = int(words)
        if messages is None:
            messages = max(1, -(-words // self.cap_words))
        comm["messages"] += messages
        comm["words"] += words
        self.total_messages += messages
        self.total_words += words
        if src is not None:
            shard_words[src] += words
        if dst is not None:
            shard_words[dst] += words

    def _row_segments(self, row_words: np.ndarray) -> int:
        """Delivery segments for rows packed greedily at the cap.

        Same greedy as packing one row at a time — each segment is the
        maximal prefix of remaining rows whose words fit the cap, and an
        oversized row ships whole in its own segment — but computed per
        segment on the running cumulative sum instead of per row.
        """
        row_words = np.asarray(row_words, dtype=np.int64)
        if not row_words.size:
            return 1
        cum = np.cumsum(row_words)
        n = len(cum)
        cap = self.cap_words
        segments, idx, base = 0, 0, 0
        while idx < n:
            j = int(np.searchsorted(cum, base + cap, side="right"))
            if j <= idx:
                j = idx + 1  # oversized row: ships whole
            segments += 1
            base = int(cum[j - 1])
            idx = j
        return segments

    # -- lifecycle ---------------------------------------------------------

    def _distribute(
        self, offsets: np.ndarray, targets: np.ndarray, comm: dict,
        shard_words: list[int],
    ) -> None:
        """Initial placement: slice the residual CSR by owner hash."""
        deg = np.diff(offsets)
        sources = np.flatnonzero(deg > 0)
        owners = owner_of(sources, self.num_shards)
        for sid, shard in enumerate(self.shards):
            ids = sources[owners == sid]
            counts = deg[ids]
            row_offsets = np.zeros(len(ids) + 1, dtype=np.int64)
            np.cumsum(counts, out=row_offsets[1:])
            row_targets = targets[_segment_indices(offsets[ids], counts)]
            words = shard.install_owned(ids, row_offsets, row_targets)
            comm["placement_words"] += words
            self._send(comm, shard_words, words, dst=sid)
        self.placed = True

    def retire(self, assigned: np.ndarray, comm: dict | None = None) -> None:
        """Broadcast retirement notices for this round's assignments."""
        if not self.placed:
            return
        retired = np.sort(np.asarray(assigned, dtype=np.int64))
        if not retired.size:
            return
        if comm is not None:
            self._init_comm(comm)
        for shard in self.shards:
            shard.retire(retired)
            if comm is not None:
                comm["retirement_words"] += len(retired)
                self._send(
                    comm, [0] * self.num_shards, len(retired),
                    dst=shard.sid,
                )

    def run_round(
        self,
        offsets: np.ndarray,
        targets: np.ndarray,
        roots: np.ndarray,
        positions: np.ndarray,
        *,
        x: int,
        beta: int,
        clip: int,
        horizon: int,
        scale: int | None,
        want_records: bool,
        engine: str = "batched",
        config=None,
        comm: dict | None = None,
        pool=None,
    ) -> list[tuple[np.ndarray, "object"]]:
        """Play one round's pending games through the shard fabric.

        Returns ``(positions, ShardResult)`` pairs exactly like
        :meth:`repro.ampc.pool.CoinGamePool.run_games` — reads/writes and
        records ride with the shard owning the *game*, layer folds with
        the shard owning the *vertex* (both scatter through commutative
        accumulators, so the split is invisible).

        ``pool`` (a :class:`repro.ampc.pool.CoinGamePool`) runs each
        shard's BSP chain in a worker process instead of in-process (see
        :func:`run_shard_chain`) — a pure throughput knob: the driver
        replays every shard's communication for the counters and adopts
        its guard peaks, so all observables and all comm/memory numbers
        are bit-identical to the serial fabric.
        """
        if config is None:
            from repro.ampc.engine_config import EngineConfig

            config = EngineConfig.from_env()
        comm = self._init_comm({} if comm is None else comm)
        shard_words = [0] * self.num_shards
        # Ghosts are resolved at the *end* of a round (finish_round:
        # cached survivors stay, the rest drop), so a round starts with
        # each shard holding exactly owned rows + cross-round cache.
        for shard in self.shards:
            shard.guard.begin_round()
        if not self.placed:
            self._distribute(offsets, targets, comm, shard_words)

        owners = owner_of(roots, self.num_shards)
        params = {
            "x": x, "beta": beta, "clip": clip, "horizon": horizon,
            "scale": scale,
        }
        if pool is not None and len(roots):
            return self._run_round_pooled(
                pool, offsets, targets, roots, positions, owners, params,
                want_records, engine, config, comm, shard_words,
            )
        runs: list[_ShardRound] = []
        for sid, shard in enumerate(self.shards):
            sel = np.flatnonzero(owners == sid)
            if sel.size:
                self._send(comm, shard_words, 2 * sel.size, dst=sid)
            runs.append(
                _ShardRound(
                    shard, roots[sel], positions[sel], engine, want_records
                )
            )

        # BSP sub-rounds: exchange missing rows, play, validate, repeat.
        # Exchange runs *before* play: the first missing sets are seeded
        # from the owned root rows, so the opening fleet-wide all-miss
        # discovery wave never happens.
        deg_global = np.diff(offsets)
        for run in runs:
            comm["ghost_cache_hits"] += run.seed_missing(self.num_shards)
        sub_round = 0
        played = False
        while True:
            src_missing: list[np.ndarray] = []
            total_missing = 0
            for run in runs:
                miss = run.missing_union()
                src_missing.append(miss)
                total_missing += int(miss.size)
            if not total_missing and played:
                break
            if total_missing:
                comm["subrounds"] += 1
            sub_round += 1
            # Speculative service radius.  The seed exchange ships each
            # game's layer-two ball alongside its layer-one fringe —
            # most balls stop there, so most games commit on their first
            # play.  Later exchanges double the radius per sub-round:
            # the games still pending are the deep tail, and chasing
            # their balls one fetched layer at a time costs one
            # sub-round per layer, while doubling makes the remaining
            # chain O(log r).
            radius = min(1 << (sub_round - 1), PREFETCH_RADIUS_CAP)
            for sid, miss in enumerate(src_missing):
                if not miss.size:
                    continue
                shard = self.shards[sid]
                # Speculation is a pure wall-clock optimization: a
                # budgeted shard never speculates.  The S budget bounds
                # the shard's *peak* held words — ghost payloads plus
                # the play scratch their compacted universe induces —
                # and that peak depends on rows the shard has not seen
                # yet, so no request-time headroom check can keep an
                # optimistic ball safely under it.  Direct fetches
                # alone already color every graph the budget admits.
                spec_cap = None if shard.guard.budget_words is None else 0
                extra = _expand_ball(
                    offsets, targets, deg_global, miss, radius, shard,
                    spec_cap,
                )
                wanted = (
                    np.concatenate([miss, extra]) if extra.size else miss
                )
                owners_w = owner_of(wanted, self.num_shards)
                for dst in _sorted_unique(owners_w).tolist():
                    ids = np.sort(wanted[owners_w == dst])
                    owner = self.shards[dst]
                    self._send(comm, shard_words, len(ids), src=sid, dst=dst)
                    comm["row_requests"] += len(ids)
                    ts = time.perf_counter()
                    s_ids, s_lens, s_tgts = owner.serve_rows(ids)
                    stamp = _rows_stamp(s_ids, s_lens, s_tgts)
                    comm["serve_s"] += time.perf_counter() - ts
                    self._send(
                        comm, shard_words, 2 * len(s_ids) + len(s_tgts),
                        src=dst, dst=sid,
                        messages=self._row_segments(2 + s_lens),
                    )
                    comm["rows_served"] += len(s_ids)
                    ts = time.perf_counter()
                    shard.install_ghosts(
                        s_ids, s_lens, s_tgts, checksum=stamp
                    )
                    comm["install_s"] += time.perf_counter() - ts
                runs[sid].attribute_expansions(extra)
            for run in runs:
                # Mid-round eviction is S-budget discipline, and only
                # budgeted shards need it: an unbudgeted shard keeps its
                # whole fringe until finish_round, because evicting rows
                # whose fetching games committed just makes the pending
                # tail re-request them a wave later (evict/refetch
                # thrash), and the cache retention pass prunes the
                # fringe at the round boundary anyway.  Per-shard pure,
                # like the worker chain: a shard whose games all
                # committed has left its BSP loop and evicts no further
                # — its last exchange rides to finish_round.
                if (run.shard.guard.budget_words is not None
                        and run.pending().size):
                    run.shard.evict_ghosts(run.pinned_ghosts())
            for run in runs:
                if run.pending().size:
                    run.play(params, config)
            played = True

        for run in runs:
            comm["ghost_cache_evicted"] += run.shard.finish_round()
            comm["compact_s"] += run.compact_s
            comm["play_s"] += run.play_s

        per_shard = []
        for run in runs:
            proof_u, proof_l, proof_c = run.proof_columns()
            per_shard.append({
                "positions": run.positions,
                "roots": run.roots,
                "reads": run.reads,
                "writes": run.writes,
                "records": run.records,
                "replay_stats": run.replay_stats or None,
                "ejected_games": run.ejected_games,
                "ball_max": (
                    int(run.ball_words.max()) if run.ball_words.size else 0
                ),
                "proof_u": proof_u,
                "proof_l": proof_l,
                "proof_c": proof_c,
            })
        return self._fold_and_results(
            comm, shard_words, want_records, per_shard
        )

    def _run_round_pooled(
        self, pool, offsets, targets, roots, positions, owners, params,
        want_records, engine, config, comm, shard_words,
    ) -> list[tuple[np.ndarray, "object"]]:
        """Dispatch each shard's BSP chain to a pool worker, replaying
        its communication for the counters as results stream back.

        Each worker runs :func:`run_shard_chain` — the full serial
        per-shard protocol, self-served from the shared CSR — so the
        games, the guard op sequence, and the request ids are exactly
        the serial fabric's.  The driver's only per-shard work is
        bookkeeping: replaying the returned request trace through
        ``_send``/:meth:`_Shard.served_words` (row payload words come
        from the driver's own identical slices) and adopting the
        worker's guard peak.  Replay happens in completion order while
        the remaining shards are still playing; ``comm_overlap_s``
        records how much accounting was hidden behind play, and
        ``shard_wall_s`` the slowest shard's in-worker wall time.
        """
        num = self.num_shards
        jobs = []
        roots_by: list[np.ndarray] = []
        pos_by: list[np.ndarray] = []
        for sid in range(num):
            sel = np.flatnonzero(owners == sid)
            roots_by.append(roots[sel])
            pos_by.append(positions[sel])
            if sel.size:
                self._send(comm, shard_words, 2 * sel.size, dst=sid)
                shard = self.shards[sid]
                jobs.append((
                    sid, roots[sel], positions[sel],
                    shard.ghost_ids, shard.ghost_rounds,
                ))
        payload = dict(params)
        payload.update(
            num_shards=num, want_records=want_records, engine=engine,
            config=config, budget_words=self.budget_words,
            ghost_cache_words=self.cache_words,
        )
        shard_res: list[dict | None] = [None] * num
        miss_sizes: list[list[int]] = [[] for __ in range(num)]
        state = {"overlap": 0.0, "wall": 0.0}

        def on_result(sid: int, res: dict, others_running: bool) -> None:
            t0 = time.perf_counter()
            shard_res[sid] = res
            state["wall"] = max(state["wall"], res["wall_s"])
            self.shards[sid].guard.adopt(
                res["guard_peak"], res["guard_held"]
            )
            # Replay the worker's request trace slab-at-a-time for the
            # counters; row payload words come from the driver's own
            # identical CSR slices via served_words, never re-gathered.
            for miss, extra in res["trace"]:
                miss_sizes[sid].append(int(miss.size))
                if not miss.size:
                    continue
                wanted = (
                    np.concatenate([miss, extra]) if extra.size else miss
                )
                owners_w = owner_of(wanted, num)
                for dst in _sorted_unique(owners_w).tolist():
                    ids = np.sort(wanted[owners_w == dst])
                    self._send(comm, shard_words, len(ids), src=sid, dst=dst)
                    comm["row_requests"] += len(ids)
                    row_words = self.shards[dst].served_words(ids)
                    self._send(
                        comm, shard_words, int(row_words.sum()),
                        src=dst, dst=sid,
                        messages=self._row_segments(row_words),
                    )
                    comm["rows_served"] += len(row_words)
            # The surviving cache mirrors onto the driver shard without
            # touching its guard — the adopt above already carried the
            # worker's end-of-round ghost accounting over verbatim.
            self.shards[sid].mirror_cache(
                res["cache_ids"], res["cache_rounds"], offsets, targets
            )
            comm["ghost_cache_hits"] += res["cache_hits"]
            comm["ghost_cache_evicted"] += res["cache_evicted"]
            comm["serve_s"] += res["serve_s"]
            comm["install_s"] += res["install_s"]
            comm["compact_s"] += res["compact_s"]
            comm["play_s"] += res["play_s"]
            if others_running:
                state["overlap"] += time.perf_counter() - t0

        pool.run_fabric_round(offsets, targets, jobs, payload, on_result)

        # Shards with no games this round never reach a worker; their
        # round boundary (cache aging + retention) runs driver-side, as
        # the serial loop would have.
        dispatched_now = {job[0] for job in jobs}
        for sid in range(num):
            if sid not in dispatched_now:
                comm["ghost_cache_evicted"] += self.shards[sid].finish_round()

        # Lockstep sub-round k spans every shard's k-th exchange; the
        # global counter ticks whenever any shard requested rows then —
        # identically the serial loop's any-missing test.
        depth = max((len(sizes) for sizes in miss_sizes), default=0)
        for k in range(depth):
            if any(len(sizes) > k and sizes[k] for sizes in miss_sizes):
                comm["subrounds"] += 1
        comm["shard_wall_s"] = max(comm["shard_wall_s"], state["wall"])
        comm["comm_overlap_s"] += state["overlap"]

        per_shard = []
        dispatched = {job[0] for job in jobs}
        for sid in range(num):
            res = shard_res[sid]
            if res is None:
                if sid in dispatched:
                    # The supervisor contract is exactly-once delivery
                    # per dispatched shard; an empty fill here would
                    # complete the round with a wrong partition, so a
                    # missing result is a loud driver bug, never a
                    # default.
                    raise RuntimeError(
                        f"fabric shard {sid} was dispatched but never "
                        "delivered a result"
                    )
                per_shard.append({
                    "positions": pos_by[sid], "roots": roots_by[sid],
                    "reads": np.zeros(0, dtype=np.int64),
                    "writes": np.zeros(0, dtype=np.int64),
                    "records": [], "replay_stats": None,
                    "ejected_games": 0, "ball_max": 0,
                    "proof_u": _EMPTY, "proof_l": _EMPTY,
                    "proof_c": _EMPTY,
                })
                continue
            per_shard.append({
                "positions": pos_by[sid], "roots": roots_by[sid],
                "reads": res["reads"], "writes": res["writes"],
                "records": res["records"] if want_records else [],
                "replay_stats": res["replay_stats"],
                "ejected_games": res["ejected_games"],
                "ball_max": res["ball_max"],
                "proof_u": res["proof_u"], "proof_l": res["proof_l"],
                "proof_c": res["proof_c"],
            })
        return self._fold_and_results(
            comm, shard_words, want_records, per_shard
        )

    def _fold_and_results(
        self, comm, shard_words, want_records, per_shard,
    ) -> list[tuple[np.ndarray, "object"]]:
        """Layer-proposal folds (routed by vertex owner — owners
        min/+-fold and forward one (u, min, count) triple per vertex to
        the driver) and the per-shard result payloads.  Shared verbatim
        by the serial and pooled paths, so their counters cannot drift.
        """
        from repro.ampc.pool import ShardResult

        fold_u: list[list[np.ndarray]] = [[] for __ in range(self.num_shards)]
        fold_l: list[list[np.ndarray]] = [[] for __ in range(self.num_shards)]
        fold_c: list[list[np.ndarray]] = [[] for __ in range(self.num_shards)]
        for sid, sh in enumerate(per_shard):
            pu = sh["proof_u"]
            pl = sh["proof_l"]
            pc = sh["proof_c"]
            if not pu.size:
                continue
            owners_p = owner_of(pu, self.num_shards)
            for dst in _sorted_unique(owners_p).tolist():
                sel = owners_p == dst
                self._send(
                    comm, shard_words, 3 * int(sel.sum()), src=sid, dst=dst
                )
                comm["fold_words"] += 3 * int(sel.sum())
                fold_u[dst].append(pu[sel])
                fold_l[dst].append(pl[sel])
                fold_c[dst].append(pc[sel])

        results: list[tuple[np.ndarray, ShardResult]] = []
        max_ball = 0
        for sid, sh in enumerate(per_shard):
            if fold_u[sid]:
                fu = np.concatenate(fold_u[sid])
                fl = np.concatenate(fold_l[sid])
                fc = np.concatenate(fold_c[sid])
                # Incoming triples are per-source pre-folded (see
                # _ShardRound.proof_columns); the owner-side fold is
                # min-of-mins and sum-of-counts per vertex, grouped by
                # one (vertex, layer) lexsort.
                order = np.lexsort((fl, fu))
                fu = fu[order]
                fl = fl[order]
                first = np.empty(len(fu), dtype=bool)
                first[0] = True
                np.not_equal(fu[1:], fu[:-1], out=first[1:])
                starts = np.flatnonzero(first)
                vertices = fu[starts]
                minima = fl[starts].astype(np.float64)
                counts = np.add.reduceat(fc[order], starts)
                self.shards[sid].guard.account(
                    "fold_accumulators", 3 * len(vertices)
                )
            else:
                vertices = _EMPTY
                minima = np.empty(0)
                counts = _EMPTY
            self._send(
                comm, shard_words, 3 * len(vertices), src=sid
            )
            result_words = 2 * len(sh["roots"])
            if want_records:
                result_words += sum(
                    2 + len(record[0]) + 2 * len(record[1])
                    for record in sh["records"]
                )
            if len(sh["roots"]):
                self._send(comm, shard_words, result_words, src=sid)
                comm["result_words"] += result_words
            max_ball = max(max_ball, sh["ball_max"])
            comm["ejected_games"] += sh["ejected_games"]
            results.append((
                sh["positions"],
                ShardResult(
                    sh["reads"], sh["writes"], vertices, minima, counts,
                    sh["records"] if want_records else None,
                    sh["replay_stats"],
                ),
            ))
            guard = self.shards[sid].guard
            guard.release("game_assignments")
            guard.release("game_scratch")
            guard.release("fold_accumulators")

        comm["max_shard_words"] = max(
            comm["max_shard_words"], max(shard_words)
        )
        comm["max_game_ball_words"] = max(
            comm["max_game_ball_words"], max_ball
        )
        comm["ghost_cache_held_words"] = max(
            comm["ghost_cache_held_words"],
            sum(shard._cache_words for shard in self.shards),
        )
        round_peak = max(shard.guard.round_peak for shard in self.shards)
        comm["max_held_words"] = max(comm["max_held_words"], round_peak)
        self.peak_held_words = max(self.peak_held_words, round_peak)
        return results

    def max_held_words(self) -> int:
        """Current held words, maximized over shards."""
        return max(shard.guard.current for shard in self.shards)
