"""Per-round machine context: budgeted, adaptive access to the stores.

A machine executing round i reads from D_{i-1} and writes to D_i
(Section 3.1).  Reads within a round may depend on earlier reads — the
defining *adaptive* power of AMPC — which falls out naturally here because
the machine's code calls :meth:`read` imperatively.

Budget enforcement: each read/write counts one word of communication; a
machine exceeding ``space_limit`` words raises :class:`SpaceExceeded` when
``strict`` is on, otherwise the overrun is recorded in the round stats
(useful at bench scale, where constant factors dominate small n^δ).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.ampc.dds import DataStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ampc.columnar import ColumnStore

__all__ = ["BatchMachineContext", "MachineContext", "SpaceExceeded"]


class SpaceExceeded(RuntimeError):
    """A machine used more communication than its local space allows."""


class MachineContext:
    """Handle given to a machine's round function."""

    def __init__(
        self,
        machine_id: Any,
        previous: DataStore,
        target: DataStore,
        space_limit: int,
        strict: bool,
    ) -> None:
        self.machine_id = machine_id
        self._previous = previous
        self._target = target
        self._space_limit = space_limit
        self._strict = strict
        self.reads = 0
        self.writes = 0

    def _charge(self, kind: str) -> None:
        if kind == "read":
            self.reads += 1
        else:
            self.writes += 1
        if self._strict and self.reads + self.writes > self._space_limit:
            raise SpaceExceeded(
                f"machine {self.machine_id}: {self.reads} reads + "
                f"{self.writes} writes exceeds S={self._space_limit}"
            )

    def read(self, key: Any) -> Any:
        """Read a single-valued key from D_{i-1} (EMPTY if absent)."""
        self._charge("read")
        return self._previous.read(key)

    def read_indexed(self, key: Any, index: int) -> Any:
        """Read the index-th value of a multi-valued key from D_{i-1}."""
        self._charge("read")
        return self._previous.read_indexed(key, index)

    def count(self, key: Any) -> int:
        """Number of values under a key (one probe)."""
        self._charge("read")
        return self._previous.count(key)

    def write(self, key: Any, value: Any) -> None:
        """Write one key-value pair to D_i."""
        self._charge("write")
        self._target.write(key, value)

    @property
    def communication(self) -> int:
        """Words of communication used so far this round."""
        return self.reads + self.writes


class BatchMachineContext:
    """Handle given to a *vectorized* round kernel.

    One context stands in for the whole fleet of per-vertex machines: the
    kernel reads the previous store's columns in bulk, writes the next
    store's columns in bulk, and reports per-machine read/write counts as
    arrays via :meth:`account`.  Budget semantics match the scalar
    :class:`MachineContext` exactly — under ``strict`` the first machine
    (in task order) whose communication exceeds S raises
    :class:`SpaceExceeded`, before any round statistics are recorded.
    """

    def __init__(
        self,
        machine_ids: np.ndarray,
        previous: "ColumnStore",
        target: "ColumnStore",
        space_limit: int,
        strict: bool,
    ) -> None:
        self.machine_ids = machine_ids
        self.previous = previous
        self.target = target
        self._space_limit = space_limit
        self._strict = strict
        self.reads = np.zeros(len(machine_ids), dtype=np.int64)
        self.writes = np.zeros(len(machine_ids), dtype=np.int64)

    def account(self, reads: np.ndarray, writes: np.ndarray) -> None:
        """Record per-machine communication (one entry per machine id)."""
        if len(reads) != len(self.machine_ids) or len(writes) != len(self.machine_ids):
            raise ValueError("need one read/write count per machine")
        self.reads += np.asarray(reads, dtype=np.int64)
        self.writes += np.asarray(writes, dtype=np.int64)
        if self._strict:
            self.check_strict()

    def account_at(
        self, positions: np.ndarray, reads: np.ndarray, writes: np.ndarray
    ) -> None:
        """Scatter per-machine communication for a subset of the fleet.

        ``positions`` index into ``machine_ids``.  Memoized replays and
        pool shards report their machines piecemeal (and, for shards, in
        completion order); the budget scan is deferred to
        :meth:`check_strict` — which the vectorized round runs after the
        kernel, before any statistics are recorded — so the machine
        singled out under ``strict`` is the first *in fleet order*, same
        as a single full-fleet :meth:`account` call, regardless of how
        the counts arrived.
        """
        if len(positions) != len(reads) or len(positions) != len(writes):
            raise ValueError("need one read/write count per position")
        self.reads[positions] += np.asarray(reads, dtype=np.int64)
        self.writes[positions] += np.asarray(writes, dtype=np.int64)

    def check_strict(self) -> None:
        """Raise on the first over-budget machine (no-op unless strict)."""
        if not self._strict:
            return
        over = self.reads + self.writes > self._space_limit
        if over.any():
            first = int(np.argmax(over))
            raise SpaceExceeded(
                f"machine {self.machine_ids[first]}: "
                f"{int(self.reads[first])} reads + "
                f"{int(self.writes[first])} writes exceeds "
                f"S={self._space_limit}"
            )
