"""Array-backed data stores — the columnar counterpart of :mod:`repro.ampc.dds`.

A :class:`ColumnStore` holds the same logical content as a
:class:`~repro.ampc.dds.DataStore` but keeps the three key families the
AMPC coloring algorithms actually use as typed numpy columns over the
vertex universe ``0..n-1``:

- ``("deg", v)``   — residual degrees, one int64 column + presence mask;
- ``("adj", v, j)`` — residual adjacency, one CSR pair (offsets, targets);
- ``("layer", v)`` — layer proposals, a min-folded float column plus a
  write-count column (the DDS-side merge of Lemma 4.10 becomes
  ``np.minimum.at`` instead of per-key Python reduction).

Any key outside those families falls back to the exact dict-of-lists
encoding of ``DataStore``, so the scalar contract (adaptive single reads,
``EMPTY`` on absence, multi-value errors, ``total_words``) is preserved:
:class:`~repro.ampc.machine.MachineContext` can run unchanged against
either store, and the dict-backed class remains the semantics oracle the
equivalence tests compare against.

One deliberate divergence: the columnar layer family is only ever
populated *post-reduce* (the vectorized round applies its reducer before
installing the column), so every columnar key is single-valued by the time
a machine can read it — exactly the state a ``DataStore`` is in after
``reduce_per_key``.  ``keys()``/``items()`` iterate deterministically by
family and ascending vertex id rather than by insertion order.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

import numpy as np

from repro.ampc.dds import EMPTY

__all__ = ["ColumnStore"]


def _vertex_id(v: Any) -> int | None:
    """Normalize a vertex key component: python or numpy integer -> int.

    Tuple keys hash/compare by value, so ``("deg", np.int64(3))`` and
    ``("deg", 3)`` are the same DataStore key; the column families must
    treat them identically (None = not an integer id).
    """
    if isinstance(v, (int, np.integer)):
        return int(v)
    return None



class ColumnStore:
    """Array-backed D_i over a fixed vertex universe ``0..n-1``."""

    def __init__(self, num_vertices: int, name: str = "") -> None:
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self.name = name
        self.num_vertices = int(num_vertices)
        # ("deg", v) family.
        self._deg: np.ndarray | None = None
        self._has_deg: np.ndarray | None = None
        self._deg_words = 0
        # ("adj", v, j) family: CSR over the full universe.
        self._adj_offsets: np.ndarray | None = None
        self._adj_targets: np.ndarray | None = None
        # ("layer", v) family: min-folded values + write counts.
        self._layer: np.ndarray | None = None
        self._layer_count: np.ndarray | None = None
        # Anything else: exact DataStore encoding.
        self._extra: dict[Any, list[Any]] = {}

    # -- bulk (columnar) API ----------------------------------------------

    def load_residual_csr(
        self,
        alive: np.ndarray,
        offsets: np.ndarray,
        targets: np.ndarray,
    ) -> None:
        """Install the residual graph G_i as deg/adj columns.

        ``offsets``/``targets`` form a CSR over the *full* vertex universe
        (dead vertices have empty ranges); ``alive`` lists the vertices
        whose ``("deg", v)`` keys exist.  One call replaces the
        O(vol(G_i)) per-pair Python writes of the dict path.
        """
        n = self.num_vertices
        if len(offsets) != n + 1:
            raise ValueError("offsets must cover the full vertex universe")
        self._guard_no_fallback_keys("deg", "adj")
        self._adj_offsets = offsets
        self._adj_targets = targets
        deg = np.diff(offsets)
        has = np.zeros(n, dtype=bool)
        has[alive] = True
        self._deg = deg
        self._has_deg = has
        self._deg_words = int(len(alive))

    def adjacency_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """The installed residual CSR (offsets, targets)."""
        if self._adj_offsets is None or self._adj_targets is None:
            raise KeyError("no adjacency column installed")
        return self._adj_offsets, self._adj_targets

    def fold_layer_proposals(
        self, vertices: np.ndarray, values: np.ndarray
    ) -> None:
        """Accumulate ``("layer", v)`` proposals with a DDS-side min-merge.

        Duplicate vertices collapse via ``np.minimum.at`` — the segmented
        minimum of Lemma 4.10 — and each proposal counts one stored word
        until :meth:`reduce_per_key` collapses the counts.
        """
        self._ensure_layer()
        np.minimum.at(self._layer, vertices, values)
        np.add.at(self._layer_count, vertices, 1)

    def install_layer_column(self, minima: np.ndarray, counts: np.ndarray) -> None:
        """Install pre-folded layer minima and their write counts.

        Single-install only, and subject to the same no-shadowing guard as
        the other bulk paths: prior layer state (folded proposals or
        scalar fallback keys) raises rather than being silently replaced.
        """
        if len(minima) != self.num_vertices or len(counts) != self.num_vertices:
            raise ValueError("layer columns must cover the vertex universe")
        if self._layer is not None:
            raise NotImplementedError(
                "layer column already populated; install_layer_column is "
                "single-install"
            )
        self._guard_no_fallback_keys("layer")
        self._layer = minima
        self._layer_count = counts

    def layer_assignments(self) -> tuple[np.ndarray, np.ndarray]:
        """``(vertices, layers)`` arrays of every written layer key."""
        if self._layer is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty(0)
        written = np.flatnonzero(self._layer_count)
        return written, self._layer[written]

    def _ensure_layer(self) -> None:
        if self._layer is None:
            self._guard_no_fallback_keys("layer")
            self._layer = np.full(self.num_vertices, np.inf)
            self._layer_count = np.zeros(self.num_vertices, dtype=np.int64)

    def _guard_no_fallback_keys(self, *families: str) -> None:
        """Refuse a bulk column install that would shadow fallback keys.

        Scalar writes may have parked keys of these families in the dict
        fallback; installing a column over them would make reads prefer
        the column and silently drop the parked values.  The fallback is
        normally empty here, so the scan is O(|scalar keys|).
        """
        for key in self._extra:
            if isinstance(key, tuple) and key and key[0] in families:
                raise NotImplementedError(
                    f"bulk column install over fallback key {key!r}; "
                    "use the dict-backed store for mixed write patterns"
                )

    # -- scalar DataStore contract ----------------------------------------

    def write(self, key: Any, value: Any) -> None:
        """Append ``value`` under ``key`` (columnar when the key fits)."""
        family = key[0] if isinstance(key, tuple) and key else None
        if family == "deg" and len(key) == 2:
            v = _vertex_id(key[1])
            if v is not None and 0 <= v < self.num_vertices:
                # Only plain-int degree values are column-eligible; floats,
                # strings, and numpy scalars keep the exact dict encoding
                # rather than being coerced through the int64 column.
                if (
                    type(value) is int
                    and not self._deg_present(v)
                    and key not in self._extra
                ):
                    if self._deg is None:
                        self._deg = np.zeros(self.num_vertices, dtype=np.int64)
                        self._has_deg = np.zeros(self.num_vertices, dtype=bool)
                    self._deg[v] = value
                    self._has_deg[v] = True
                    self._deg_words += 1
                    return
                if self._deg_present(v):
                    # A later write to a column-resident key: migrate to the
                    # dict fallback so multi-value semantics stay exact.
                    self._extra.setdefault(key, []).insert(
                        0, int(self._deg[v])
                    )
                    self._has_deg[v] = False
                    self._deg_words -= 1
        else:
            try:
                resident = self._column_values(key) is not None
            except KeyError:  # unreduced layer key: column-resident too
                resident = True
            if resident:
                # adj/layer keys have no per-key migration path (their
                # columns are installed in bulk); fail loud rather than let
                # the dict fallback silently shadow the column copy.
                raise NotImplementedError(
                    f"scalar write to column-resident key {key!r}; "
                    "use the dict-backed store for mixed write patterns"
                )
        self._extra.setdefault(key, []).append(value)

    def _deg_present(self, v: int) -> bool:
        return self._has_deg is not None and bool(self._has_deg[v])

    def _column_values(self, key: Any) -> list[Any] | None:
        """Column-held values for ``key`` (None when not column-resident)."""
        if not (isinstance(key, tuple) and key):
            return None
        family = key[0]
        if family == "deg" and len(key) == 2:
            v = _vertex_id(key[1])
            if (
                v is not None
                and 0 <= v < self.num_vertices
                and self._deg_present(v)
            ):
                return [int(self._deg[v])]
        elif family == "adj" and len(key) == 3 and self._adj_offsets is not None:
            v, j = _vertex_id(key[1]), _vertex_id(key[2])
            if v is not None and 0 <= v < self.num_vertices:
                start = int(self._adj_offsets[v])
                if j is not None and 0 <= j < int(self._adj_offsets[v + 1]) - start:
                    return [int(self._adj_targets[start + j])]
        elif family == "layer" and len(key) == 2 and self._layer_count is not None:
            v = _vertex_id(key[1])
            if v is not None and 0 <= v < self.num_vertices:
                count = int(self._layer_count[v])
                if count == 1:
                    return [_as_layer(self._layer[v])]
                if count > 1:
                    # Pre-reduce insertion order is not retained columnar-side;
                    # the vectorized round always reduces before reads.
                    raise KeyError(
                        f"layer key {key!r} holds {count} unreduced proposals"
                    )
        return None

    def read(self, key: Any) -> Any:
        """Single-value read; EMPTY if absent; error if multi-valued."""
        values = self._column_values(key)
        if values is not None:
            return values[0]
        stored = self._extra.get(key)
        if stored is None:
            return EMPTY
        if len(stored) != 1:
            raise KeyError(
                f"key {key!r} holds {len(stored)} values; use read_indexed"
            )
        return stored[0]

    def read_indexed(self, key: Any, index: int) -> Any:
        """The (key, index) access of the model, index in [0, k)."""
        values = self._column_values(key)
        if values is None:
            values = self._extra.get(key)
        if values is None or not 0 <= index < len(values):
            return EMPTY
        return values[index]

    def count(self, key: Any) -> int:
        """Number of values stored under ``key``."""
        if isinstance(key, tuple) and key and key[0] == "layer" and len(key) == 2:
            v = _vertex_id(key[1])
            if (
                self._layer_count is not None
                and v is not None
                and 0 <= v < self.num_vertices
            ):
                count = int(self._layer_count[v])
                if count:
                    return count
            return len(self._extra.get(key, ()))
        values = self._column_values(key)
        if values is not None:
            return len(values)
        return len(self._extra.get(key, ()))

    def __contains__(self, key: Any) -> bool:
        try:
            values = self._column_values(key)
        except KeyError:
            return True
        return values is not None or key in self._extra

    def __len__(self) -> int:
        return self.total_words()

    def keys(self) -> Iterator[Any]:
        """All keys, by family then ascending vertex id, then fallback."""
        for key, __ in self.items():
            yield key

    def items(self) -> Iterator[tuple[Any, list[Any]]]:
        """All (key, values) pairs in deterministic columnar order."""
        if self._has_deg is not None:
            for v in np.flatnonzero(self._has_deg).tolist():
                yield ("deg", v), [int(self._deg[v])]
        if self._adj_offsets is not None:
            offsets, targets = self._adj_offsets, self._adj_targets
            for v in range(self.num_vertices):
                start, stop = int(offsets[v]), int(offsets[v + 1])
                for j in range(stop - start):
                    yield ("adj", v, j), [int(targets[start + j])]
        if self._layer_count is not None:
            for v in np.flatnonzero(self._layer_count).tolist():
                # Pre-reduce, the running min stands in for each proposal
                # (word counts stay exact; reduce collapses to one value).
                count = int(self._layer_count[v])
                yield ("layer", v), [_as_layer(self._layer[v])] * count
        yield from self._extra.items()

    def reduce_per_key(self, reducer: Callable[[list[Any]], Any]) -> None:
        """Collapse multi-valued keys (vectorized for the layer family).

        Layer proposals are min-folded at write time (``np.minimum.at``),
        so only ``min`` is a valid reducer once a layer key holds more
        than one proposal — any other reducer raises rather than silently
        returning the minimum.
        """
        if self._layer_count is not None:
            if reducer is not min and (self._layer_count > 1).any():
                raise NotImplementedError(
                    "layer proposals are min-folded at write time; "
                    f"reducer {reducer!r} cannot be replayed on them"
                )
            np.minimum(self._layer_count, 1, out=self._layer_count)
        for key, values in self._extra.items():
            if len(values) > 1:
                self._extra[key] = [reducer(values)]

    def total_words(self) -> int:
        """Total stored key-value pairs (the model's space unit)."""
        words = self._deg_words
        if self._adj_targets is not None:
            words += int(len(self._adj_targets))
        if self._layer_count is not None:
            words += int(self._layer_count.sum())
        words += sum(len(values) for values in self._extra.values())
        return words

    def held_words(self) -> int:
        """Real words the backing arrays hold (array lengths, not pairs).

        ``total_words`` counts logical key-value pairs — the model's
        space unit and the quantity the dict oracle matches bit for bit.
        This counts what is genuinely resident: the CSR offset array,
        the degree/presence columns, and the dense layer/count columns,
        whatever their logical occupancy.  Strict-budget parity audits
        check S against this, not the flattering logical count.
        """
        words = 0
        for column in (
            self._deg, self._has_deg, self._adj_offsets, self._adj_targets,
            self._layer, self._layer_count,
        ):
            if column is not None:
                words += int(len(column))
        words += sum(len(values) for values in self._extra.values())
        return words


def _as_layer(value: float) -> float | int:
    """Layers are stored float-side; surface integral values as ints."""
    return int(value) if float(value).is_integer() else float(value)
