"""Deterministic seeded fault injection + payload checksums for the pool.

The round supervisor (:mod:`repro.ampc.pool`) promises that worker loss,
hangs, and corrupted results are *recovered from*, not merely detected —
a lost shard chain is re-executed bit-identically because it is a pure
function of its inputs.  Testing that promise needs faults that are

- **deterministic** — a chaos run must be reproducible from one seed, so
  a failing schedule can be replayed exactly;
- **addressable** — keyed by ``(round, shard, attempt)``, where
  ``round`` is the pool's monotonically increasing dispatch sequence
  number, so a test can fault *the second attempt of shard 3 in
  dispatch 7* and nothing else (and so a retried attempt draws a fresh
  fault decision instead of deterministically re-failing forever);
- **in-band** — the plan rides inside each shard's pickled payload, so
  changing it never requires respawning workers, and an explicitly
  :func:`inject`-ed plan always beats the ``REPRO_FAULT_PLAN``
  environment shim CI uses to chaos-run the whole suite.

Fault kinds
-----------

``crash``
    The worker raises :class:`InjectedFault` before playing — the
    picklable-exception loss path (retried by the supervisor).
``exit``
    The worker process dies with ``os._exit`` — the dead-process path:
    the executor breaks, every in-flight shard is lost, and the
    supervisor tears the pool down and respawns it.
``hang``
    The worker sleeps ``hang_s`` seconds before playing — the deadline
    path: a driver whose computed deadline is shorter kills the worker
    and treats the shard as lost; a longer deadline just sees a slow
    success (both converge to the same observables).
``slow``
    The worker sleeps ``slow_s`` seconds, then plays normally — jitter
    for completion order, which no observable may depend on.
``garbage``
    The worker corrupts one checksummed array of its result *after*
    computing the checksum — the integrity path: the driver's re-check
    fails and converts the corruption into a retry.
``unpicklable``
    The worker returns a lambda — the result cannot cross the pipe, so
    the future fails with a pickling error (another retriable loss).
``shm-detach``
    The worker drops its cached shared-memory CSR attachment and raises
    — the lost-segment path: the retry re-attaches from the driver's
    still-alive segments.
``slab``
    The worker corrupts one served row-resolution slab after stamping
    its :func:`rows_checksum` — the row-message integrity path:
    ``install_ghosts`` rejects the slab before any ghost mutates, the
    attempt dies with a :class:`ChecksumError`, and the retry redraws.

Checksums
---------

:func:`payload_checksum` combines a CRC-32 of each array's bytes with
its byte length through a splitmix64 finalizer, chained across arrays —
an xxhash-style order-sensitive digest that is cheap enough to verify
on every shard result (the <3% recovery-overhead bench guard covers
it).  :func:`rows_checksum` is the same digest over a row-resolution
slab ``(ids, lens, targets)`` — the integrity contract a future
socket/MPI transport attaches to every row message
(:meth:`repro.ampc.messaging._Shard.install_ghosts` verifies it; the
in-process paths stamp one only under an active fault plan, since a
same-process self-stamp can never detect corruption).
"""

from __future__ import annotations

import contextlib
import os
import time
import zlib
from typing import Iterable, Mapping, NamedTuple

import numpy as np

__all__ = [
    "ChecksumError",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "apply_pre",
    "inject",
    "payload_checksum",
    "rows_checksum",
]

FAULT_KINDS = (
    "crash", "exit", "hang", "slow", "garbage", "unpicklable", "shm-detach",
    "slab",
)

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

_M64 = (1 << 64) - 1
_GAMMA = 0x9E3779B97F4A7C15


def _mix64(z: int) -> int:
    """The splitmix64 finalizer (same mix as ``messaging.owner_of``)."""
    z &= _M64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    return z ^ (z >> 31)


class ChecksumError(RuntimeError):
    """A payload failed its integrity check (corrupted in transit)."""


class InjectedFault(RuntimeError):
    """An injected worker fault (raised by ``crash``/``shm-detach``)."""


class FaultSpec(NamedTuple):
    """One resolved fault: what to do and (for hang/slow) for how long."""

    kind: str
    seconds: float = 0.0


class FaultPlan:
    """A deterministic schedule of worker faults keyed by
    ``(round, shard, attempt)``.

    ``entries`` maps explicit keys to kinds.  A ``seed`` additionally
    samples faults for *every* key: the key is hashed through splitmix64
    and faults with probability ``rate``, drawing the kind from
    ``kinds`` — reproducible chaos at any dispatch count.  ``attempts``
    (when set) restricts seeded faults to attempt indices below it, so
    a schedule can be made survivable-by-retry by construction;
    ``rate=1.0`` with ``attempts=None`` faults every attempt of every
    shard and forces the supervisor's degraded-to-serial path.

    Plans are picklable (they ride in shard payloads) and encode to a
    ``key=value;…`` string (:meth:`spec`) round-trippable through
    :meth:`parse` — the ``REPRO_FAULT_PLAN`` shim CI uses.
    """

    def __init__(
        self,
        entries: Mapping[tuple[int, int, int], str] | None = None,
        *,
        seed: int | None = None,
        rate: float = 0.0,
        kinds: Iterable[str] = ("crash",),
        attempts: int | None = None,
        hang_s: float = 30.0,
        slow_s: float = 0.02,
    ) -> None:
        self.entries = {}
        for key, kind in dict(entries or {}).items():
            rnd, shard, attempt = (int(c) for c in key)
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}"
                )
            self.entries[(rnd, shard, attempt)] = kind
        self.seed = None if seed is None else int(seed)
        self.rate = float(rate)
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError("rate must be in [0, 1]")
        self.kinds = tuple(kinds)
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}"
                )
        if self.rate > 0.0 and self.seed is not None and not self.kinds:
            raise ValueError("a seeded plan needs at least one kind")
        self.attempts = None if attempts is None else int(attempts)
        self.hang_s = float(hang_s)
        self.slow_s = float(slow_s)

    def lookup(self, rnd: int, shard: int, attempt: int) -> FaultSpec | None:
        """The fault (if any) for this dispatch/shard/attempt key."""
        kind = self.entries.get((rnd, shard, attempt))
        if (
            kind is None
            and self.seed is not None
            and self.rate > 0.0
            and (self.attempts is None or attempt < self.attempts)
        ):
            h = _mix64(self.seed + _GAMMA)
            for coord in (rnd, shard, attempt):
                h = _mix64(h ^ (coord + _GAMMA))
            if (h >> 11) / float(1 << 53) < self.rate:
                kind = self.kinds[_mix64(h + 1) % len(self.kinds)]
        if kind is None:
            return None
        if kind == "hang":
            return FaultSpec(kind, self.hang_s)
        if kind == "slow":
            return FaultSpec(kind, self.slow_s)
        return FaultSpec(kind)

    def spec(self) -> str:
        """The ``key=value;…`` encoding :meth:`parse` round-trips."""
        parts = []
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        if self.rate:
            parts.append(f"rate={self.rate}")
        if self.seed is not None or self.rate:
            parts.append("kinds=" + "+".join(self.kinds))
        if self.attempts is not None:
            parts.append(f"attempts={self.attempts}")
        parts.append(f"hang_s={self.hang_s}")
        parts.append(f"slow_s={self.slow_s}")
        if self.entries:
            parts.append("at=" + "+".join(
                f"{kind}@{r}.{s}.{a}"
                for (r, s, a), kind in sorted(self.entries.items())
            ))
        return ";".join(parts)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the env-shim syntax, e.g.
        ``"seed=7;rate=0.2;kinds=crash+garbage+slow"`` or
        ``"at=crash@0.1.0+hang@2.0.1;hang_s=30"``.
        """
        kwargs: dict = {}
        entries: dict[tuple[int, int, int], str] = {}
        for part in text.split(";"):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep or not value:
                raise ValueError(
                    f"bad fault-plan entry {part!r} (want key=value)"
                )
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key == "rate":
                kwargs["rate"] = float(value)
            elif key == "kinds":
                kwargs["kinds"] = tuple(value.split("+"))
            elif key == "attempts":
                kwargs["attempts"] = int(value)
            elif key in ("hang_s", "slow_s"):
                kwargs[key] = float(value)
            elif key == "at":
                for item in value.split("+"):
                    kind, sep2, coords = item.partition("@")
                    cs = coords.split(".")
                    if not sep2 or len(cs) != 3:
                        raise ValueError(
                            f"bad explicit fault {item!r} "
                            "(want kind@round.shard.attempt)"
                        )
                    entries[tuple(int(c) for c in cs)] = kind
            else:
                raise ValueError(f"unknown fault-plan key {key!r}")
        return cls(entries, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.spec()!r})"


# Explicitly injected plan (driver side).  A module global rather than a
# parameter thread-through: the plan is test machinery, resolved once
# per dispatch and shipped inside the shard payloads — production call
# sites never mention it.
_ACTIVE: FaultPlan | None = None
_ACTIVE_SET = False
# One-slot cache of the env-shim parse, keyed by the raw string.
_ENV_CACHE: tuple[str, FaultPlan] | None = None


@contextlib.contextmanager
def inject(plan: FaultPlan | None):
    """Activate ``plan`` for pool dispatches inside the block.

    An injected plan (even ``None``) beats the ``REPRO_FAULT_PLAN``
    environment shim, so a test pinning its own schedule is isolated
    from a CI-wide chaos run.
    """
    global _ACTIVE, _ACTIVE_SET
    prev, prev_set = _ACTIVE, _ACTIVE_SET
    _ACTIVE, _ACTIVE_SET = plan, True
    try:
        yield plan
    finally:
        _ACTIVE, _ACTIVE_SET = prev, prev_set


def active_plan() -> FaultPlan | None:
    """The plan the next dispatch should ship: :func:`inject`'s, else
    the parsed ``REPRO_FAULT_PLAN`` environment shim, else None."""
    global _ENV_CACHE
    if _ACTIVE_SET:
        return _ACTIVE
    raw = os.environ.get(FAULT_PLAN_ENV, "").strip()
    if not raw:
        return None
    if _ENV_CACHE is None or _ENV_CACHE[0] != raw:
        _ENV_CACHE = (raw, FaultPlan.parse(raw))
    return _ENV_CACHE[1]


def apply_pre(spec: FaultSpec | None) -> None:
    """Apply a fault's *pre-play* effect inside the worker process.

    ``garbage``/``unpicklable`` act on the result instead (the pool's
    corruption hook); everything else fires here, before any work.
    """
    if spec is None:
        return
    if spec.kind == "crash":
        raise InjectedFault("injected worker fault: crash")
    if spec.kind == "exit":  # pragma: no cover - kills the process
        os._exit(17)
    if spec.kind in ("hang", "slow"):
        time.sleep(spec.seconds)
        return
    if spec.kind == "slab":
        # Fires inside run_shard_chain's first row exchange instead: the
        # worker corrupts one served slab *after* stamping its checksum,
        # so install_ghosts' slab-granular verify must reject it.
        return
    if spec.kind == "shm-detach":
        # Simulate losing the shared-memory attachment mid-round: drop
        # the worker's cached CSR so the retry must re-attach from the
        # driver's (still alive) segments, then fail this attempt.
        from repro.ampc import pool

        pool._CSR_CACHE.update(key=None, csr=None, adj=None, transpose=None)
        raise InjectedFault("injected worker fault: shm-detach")


# -- integrity checksums ---------------------------------------------------


def payload_checksum(*items) -> int:
    """Order-sensitive digest of arrays/bytes: per-item CRC-32 + length,
    chained through the splitmix64 finalizer (xxhash-style: fast block
    digest feeding a strong 64-bit avalanche)."""
    h = 0x243F6A8885A308D3
    for item in items:
        if isinstance(item, (bytes, bytearray, memoryview)):
            buf = bytes(item)
            nbytes = len(buf)
        else:
            arr = np.ascontiguousarray(item)
            buf = arr
            nbytes = arr.nbytes
        h = _mix64(h ^ zlib.crc32(buf))
        h = _mix64(h ^ nbytes)
    return h


def rows_checksum(
    ids: np.ndarray, lens: np.ndarray, targets: np.ndarray
) -> int:
    """Digest of one row-resolution slab ``(ids, lens, targets)``.

    The digest is slab-granular — one CRC pass per packed array, not a
    python loop over rows — matching the columnar wire format
    :meth:`repro.ampc.messaging._Shard.serve_rows` ships and
    :meth:`~repro.ampc.messaging._Shard.install_ghosts` verifies.
    """
    h = 0x452821E638D01377
    for arr in (ids, lens, targets):
        arr = np.ascontiguousarray(arr, dtype=np.int64)
        h = _mix64(h ^ zlib.crc32(arr))
        h = _mix64(h ^ len(arr))
    return h
