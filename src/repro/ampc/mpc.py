"""Low-space MPC simulator with broadcast trees — substrate for Theorem 1.5.

The theorem's algorithm is *non-adaptive*: machines hold edge shards and
repeatedly (a) evaluate conditional expectations locally, (b) aggregate
sums up an n^{δ/2}-ary broadcast tree, (c) receive the chosen seed-bit
assignment back down the tree.  The only costs are rounds (tree depth per
sweep) and per-machine message counts, which this class accounts.

AMPC can simulate any MPC algorithm round-for-round (proof of Theorem 1.5),
so the stats produced here compose directly with AMPC round counts.
"""

from __future__ import annotations

import math
from typing import Sequence, TypeVar

__all__ = ["MPCSimulator"]

T = TypeVar("T")


class MPCSimulator:
    """Machines with S = N^δ words; communication via a broadcast tree."""

    def __init__(self, input_size: int, delta: float = 0.5) -> None:
        if input_size < 1:
            raise ValueError("input_size must be >= 1")
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        self.input_size = input_size
        self.delta = delta
        self.space_limit = max(2, math.ceil(input_size**delta))
        self.num_machines = max(1, -(-input_size // self.space_limit))
        # Tree arity n^{δ/2} (the paper's choice); at least 2.
        self.tree_arity = max(2, math.ceil(input_size ** (delta / 2)))
        self.rounds = 0
        self.max_message_words = 0

    @property
    def tree_depth(self) -> int:
        """Depth of the broadcast tree over all machines (O(1/δ))."""
        if self.num_machines <= 1:
            return 1
        return max(1, math.ceil(math.log(self.num_machines, self.tree_arity)))

    def shard(self, items: Sequence[T]) -> list[list[T]]:
        """Partition items across machines, <= S per machine."""
        shards: list[list[T]] = []
        for start in range(0, len(items), self.space_limit):
            shards.append(list(items[start: start + self.space_limit]))
        if not shards:
            shards.append([])
        return shards

    def aggregate_sums(self, per_machine_vectors: Sequence[Sequence[float]]) -> list[float]:
        """Sum equal-length vectors from all machines at the tree root.

        Charges ``tree_depth`` rounds; per round a machine sends its
        (partial-sum) vector of ``w`` words, so w is recorded against the
        bandwidth stat.  (The paper sends n^{δ/3} values per round when
        sweeping seed batches.)
        """
        if not per_machine_vectors:
            return []
        width = len(per_machine_vectors[0])
        if any(len(v) != width for v in per_machine_vectors):
            raise ValueError("aggregate_sums needs equal-length vectors")
        self.rounds += self.tree_depth
        self.max_message_words = max(self.max_message_words, width)
        result = [0.0] * width
        for vector in per_machine_vectors:
            for i, value in enumerate(vector):
                result[i] += value
        return result

    def broadcast(self, words: int = 1) -> None:
        """Root-to-leaves broadcast of ``words`` words (tree_depth rounds)."""
        self.rounds += self.tree_depth
        self.max_message_words = max(self.max_message_words, words)

    def charge_local_round(self) -> None:
        """One round of purely local computation + O(S) shuffles."""
        self.rounds += 1
