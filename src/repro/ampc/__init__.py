"""AMPC and MPC model simulators with resource accounting (Section 3.1)."""

from repro.ampc.columnar import ColumnStore
from repro.ampc.cost import ExecutionStats, RoundStats
from repro.ampc.dds import EMPTY, DataStore
from repro.ampc.engine_config import EngineConfig
from repro.ampc.faults import (
    ChecksumError,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    inject,
)
from repro.ampc.machine import BatchMachineContext, MachineContext, SpaceExceeded
from repro.ampc.messaging import (
    MemoryGuard,
    MemoryGuardError,
    MessageFabric,
    owner_of,
)
from repro.ampc.mpc import MPCSimulator
from repro.ampc.pool import (
    CoinGamePool,
    WorkerPoolError,
    close_shared_pools,
    resolve_workers,
    shared_pool,
)
from repro.ampc.simulator import AMPCSimulator
from repro.ampc.sorting import SortCostReport, broadcast_tree_sort

__all__ = [
    "AMPCSimulator",
    "BatchMachineContext",
    "ChecksumError",
    "CoinGamePool",
    "ColumnStore",
    "DataStore",
    "EMPTY",
    "EngineConfig",
    "ExecutionStats",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "MPCSimulator",
    "MachineContext",
    "MemoryGuard",
    "MemoryGuardError",
    "MessageFabric",
    "RoundStats",
    "SortCostReport",
    "SpaceExceeded",
    "WorkerPoolError",
    "broadcast_tree_sort",
    "close_shared_pools",
    "inject",
    "owner_of",
    "resolve_workers",
    "shared_pool",
]
