"""Distributed data stores (DDS) — the AMPC model's communication fabric.

Section 3.1: the computation uses a sequence of key-value stores
D_0, D_1, ...; in round i machines read (adaptively) from D_{i-1} and write
to D_i.  Keys map to one value, or to k values accessible as
(key, 1) ... (key, k); querying an absent key returns an empty response.

``reduce_per_key`` models the paper's "separate set of machines that
handles the DDS" (proof of Theorem 1.2): it collapses multi-valued keys
with an associative reducer (e.g. min over layer proposals).  That
machinery is part of the store's sorting layer, not of the per-node
machines, so it costs no extra AMPC round.

This dict-of-lists store is the *semantics oracle*: the array-backed
:class:`repro.ampc.columnar.ColumnStore` implements the same contract
over typed vertex-keyed columns, and the equivalence tests hold the two
observationally identical.  Hot paths run columnar; this class stays the
reference (and the fallback for non-columnar keys).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

__all__ = ["DataStore", "EMPTY"]


class _Empty:
    """Sentinel for 'key not present' (the model's empty response)."""

    def __repr__(self) -> str:
        return "EMPTY"

    def __bool__(self) -> bool:
        return False


EMPTY = _Empty()


class DataStore:
    """One D_i: multi-valued key-value store with deterministic iteration."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._data: dict[Any, list[Any]] = {}

    def __len__(self) -> int:
        return sum(len(vals) for vals in self._data.values())

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def write(self, key: Any, value: Any) -> None:
        """Append ``value`` under ``key`` (duplicates allowed)."""
        self._data.setdefault(key, []).append(value)

    def read(self, key: Any) -> Any:
        """Single-value read; EMPTY if absent; error if multi-valued."""
        values = self._data.get(key)
        if values is None:
            return EMPTY
        if len(values) != 1:
            raise KeyError(
                f"key {key!r} holds {len(values)} values; use read_indexed"
            )
        return values[0]

    def read_indexed(self, key: Any, index: int) -> Any:
        """The (key, index) access of the model, index in [0, k)."""
        values = self._data.get(key)
        if values is None or not 0 <= index < len(values):
            return EMPTY
        return values[index]

    def count(self, key: Any) -> int:
        """Number of values stored under ``key``."""
        return len(self._data.get(key, ()))

    def keys(self) -> Iterable[Any]:
        """All keys (deterministic order by insertion)."""
        return self._data.keys()

    def items(self) -> Iterable[tuple[Any, list[Any]]]:
        """All (key, values) pairs."""
        return self._data.items()

    def reduce_per_key(self, reducer: Callable[[list[Any]], Any]) -> None:
        """Collapse each multi-valued key via ``reducer`` (DDS-side merge)."""
        for key, values in self._data.items():
            if len(values) > 1:
                self._data[key] = [reducer(values)]

    def total_words(self) -> int:
        """Total stored key-value pairs (the model's space unit)."""
        return len(self)

    def held_words(self) -> int:
        """Real words held: for dict-of-lists, the logical pair count.

        The columnar store's :meth:`~repro.ampc.columnar.ColumnStore.held_words`
        counts its backing-array lengths instead; strict-budget parity
        audits compare both against the per-machine S budget.
        """
        return len(self)
