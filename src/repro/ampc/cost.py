"""Cost accounting for AMPC/MPC executions.

The paper's performance claims are entirely in terms of (a) rounds,
(b) per-machine communication (queries + writes, bounded by the local
space S = n^δ), and (c) total space.  These dataclasses collect exactly
those quantities; every experiment table prints them next to the
theoretical bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["RoundStats", "ExecutionStats"]


@dataclass
class RoundStats:
    """Per-round resource usage."""

    round_index: int
    machines_active: int = 0
    max_reads: int = 0
    max_writes: int = 0
    total_reads: int = 0
    total_writes: int = 0
    store_words: int = 0  # words in the store written this round
    # Real words the store's backing arrays hold (array lengths, not the
    # logical pair count) — what a machine would genuinely have resident.
    # Equal to store_words on the dict oracle; the columnar store's typed
    # columns add offset/presence arrays on top of the logical pairs.
    dds_held_words: int = 0

    @property
    def max_communication(self) -> int:
        """Largest per-machine communication (the S-bounded quantity)."""
        return self.max_reads + self.max_writes

    @classmethod
    def from_machine_counts(
        cls, round_index: int, reads, writes, store_words: int,
        dds_held_words: int = 0,
    ) -> "RoundStats":
        """Aggregate per-machine count arrays into one round's stats.

        The batched counterpart of accumulating one machine at a time:
        identical maxima and totals, one reduction per array.
        """
        machines = len(reads)
        return cls(
            round_index=round_index,
            machines_active=machines,
            max_reads=int(reads.max()) if machines else 0,
            max_writes=int(writes.max()) if machines else 0,
            total_reads=int(reads.sum()),
            total_writes=int(writes.sum()),
            store_words=store_words,
            dds_held_words=dds_held_words,
        )


@dataclass
class ExecutionStats:
    """Whole-execution resource usage."""

    input_size: int
    space_per_machine: int  # the budget S
    rounds: list[RoundStats] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        """Number of AMPC rounds executed."""
        return len(self.rounds)

    @property
    def max_machine_communication(self) -> int:
        """Max over rounds and machines of per-machine communication."""
        return max((r.max_communication for r in self.rounds), default=0)

    @property
    def total_space_words(self) -> int:
        """Largest store footprint over the execution."""
        return max((r.store_words for r in self.rounds), default=0)

    @property
    def within_budget(self) -> bool:
        """True if every machine stayed within its space budget S."""
        return self.max_machine_communication <= self.space_per_machine

    def effective_delta(self) -> float:
        """The δ' such that max communication = N^δ' (measured locality).

        Lets small-n experiments quantify how close a run came to the
        n^δ regime without hard-failing on constant factors.
        """
        usage = self.max_machine_communication
        if usage <= 1 or self.input_size <= 1:
            return 0.0
        return math.log(usage) / math.log(self.input_size)
