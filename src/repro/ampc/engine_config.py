"""Tunable engine knobs as one explicit, env-overridable configuration.

The scenario sweeps in ROADMAP want to tune dispatch cutoffs, cohort
sizes, and the adaptive-replay gate without editing source.  The knobs
keep living as module constants next to the code they tune
(:data:`repro.core.columnar_rounds.COHORT_GAMES`,
:data:`repro.ampc.pool.MIN_POOL_GAMES` /
:data:`~repro.ampc.pool.MIN_POOL_GAMES_BATCHED`,
:data:`repro.core.batched_games.REPLAY_CONE_CUTOFF` /
:data:`~repro.core.batched_games.REPLAY_POOR_STREAK`) — tests monkeypatch
them there, and they document themselves in context — but every run of
:func:`repro.core.beta_partition_ampc.beta_partition_ampc` snapshots
them into one frozen :class:`EngineConfig` via :meth:`EngineConfig.from_env`,
applying ``REPRO_*`` environment overrides on top.  The config then
threads explicitly through the round kernel, the process pool (one
picklable value per shard payload), the batched engine, and the message
fabric, so every layer of one run agrees on the same knob values.

All knobs are pure throughput/memory-policy levers: no observable
(partitions, probe counts, store words) depends on any of them, which
is exactly why an environment override is safe.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Mapping

__all__ = ["EngineConfig"]

# Engine names an env override may select; beta_partition_ampc accepts
# the same set (plus None) for explicitly constructed configs.
_ENGINE_NAMES = ("scalar", "batched", "compiled")


def _env_int(name: str, raw: str, minimum: int) -> int:
    """Parse an integer env override, naming the variable on any error."""
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{name}={raw!r} is not an integer"
        ) from None
    if value < minimum:
        raise ValueError(f"{name}={raw!r} must be >= {minimum}")
    return value


def _env_float(name: str, raw: str, low: float, high: float) -> float:
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{name}={raw!r} is not a number") from None
    if not (low <= value <= high):
        raise ValueError(f"{name}={raw!r} must be in [{low}, {high}]")
    return value


def _env_bool(name: str, raw: str) -> bool:
    lowered = raw.lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"{name}={raw!r} is not a boolean (use 0/1)")


def _env_engine(name: str, raw: str) -> str:
    if raw not in _ENGINE_NAMES:
        choices = ", ".join(f'"{e}"' for e in _ENGINE_NAMES)
        raise ValueError(f"{name}={raw!r} must be one of {choices}")
    return raw


@dataclass(frozen=True)
class EngineConfig:
    """One run's engine knobs (see module docstring for the defaults).

    ``message_cap_words``, ``shard_budget_words``, and
    ``ghost_cache_words`` configure the message-passing fabric
    (:mod:`repro.ampc.messaging`): the maximum payload of one delivery
    segment, the per-shard S budget every held array is accounted
    against (None: account but never raise), and the per-shard word
    budget of the cross-round ghost cache (0 disables it; a budgeted
    shard never caches regardless — see the messaging docstring).
    """

    cohort_games: int
    min_pool_games: int
    min_pool_games_batched: int
    replay_cone_cutoff: float
    replay_poor_streak: int
    message_cap_words: int
    shard_budget_words: int | None = None
    ghost_cache_words: int = 0
    # Round-supervisor knobs (repro.ampc.pool): how many times a lost
    # or corrupted shard chain is re-dispatched before the driver runs
    # it inline (or, with pool_degrade=False, raises WorkerPoolError);
    # the base of the seed-jittered exponential retry backoff; the hard
    # per-shard wall-clock deadline; and the adaptive multiple of the
    # slowest observed sibling shard a still-running shard may take
    # before it is presumed hung and killed.  All recovery knobs — a
    # recovered round is bit-identical to an undisturbed one.
    max_shard_retries: int = 2
    retry_backoff_s: float = 0.05
    pool_deadline_s: float = 300.0
    pool_deadline_scale: float = 25.0
    pool_degrade: bool = True
    # Game engine when the caller passes engine=None: "batched",
    # "compiled", or "scalar" (``REPRO_ENGINE``); None keeps the
    # built-in default ("batched").  Engine choice never changes
    # observables — the compiled kernel is bit-identical by contract —
    # so an env override is as safe as the throughput knobs above.
    engine: str | None = None

    @classmethod
    def from_env(cls, env: Mapping[str, str] | None = None) -> "EngineConfig":
        """Snapshot the module-constant defaults with ``REPRO_*`` overrides.

        Defaults are read from the owning modules *at call time*, so a
        test that monkeypatches e.g. ``columnar_rounds.COHORT_GAMES``
        before running a partition sees its patch honored here.

        Every override is validated at parse time — a zero or negative
        cohort size, a non-numeric value, or a misspelled engine name
        raises a :class:`ValueError` naming the offending variable and
        value here, instead of failing deep inside the engine (or
        silently degenerating) rounds later.
        """
        # Imported lazily: repro.core imports repro.ampc, so a top-level
        # import back into core would be cyclic.
        from repro.ampc import messaging, pool
        from repro.core import batched_games, columnar_rounds

        if env is None:
            env = os.environ

        def get(name: str, default, parse, *args):
            raw = env.get(name, "").strip()
            return parse(name, raw, *args) if raw else default

        return cls(
            cohort_games=get(
                "REPRO_COHORT_GAMES", columnar_rounds.COHORT_GAMES,
                _env_int, 1,
            ),
            min_pool_games=get(
                "REPRO_MIN_POOL_GAMES", pool.MIN_POOL_GAMES, _env_int, 1
            ),
            min_pool_games_batched=get(
                "REPRO_MIN_POOL_GAMES_BATCHED", pool.MIN_POOL_GAMES_BATCHED,
                _env_int, 1,
            ),
            replay_cone_cutoff=get(
                "REPRO_REPLAY_CONE_CUTOFF", batched_games.REPLAY_CONE_CUTOFF,
                _env_float, 0.0, 1.0,
            ),
            replay_poor_streak=get(
                "REPRO_REPLAY_POOR_STREAK", batched_games.REPLAY_POOR_STREAK,
                _env_int, 1,
            ),
            message_cap_words=get(
                "REPRO_MESSAGE_CAP_WORDS", messaging.MESSAGE_CAP_WORDS,
                # >= 4: one row-resolution header must fit in a segment
                # (the same floor MessageFabric enforces).
                _env_int, 4,
            ),
            shard_budget_words=get(
                "REPRO_SHARD_BUDGET_WORDS", None, _env_int, 1
            ),
            ghost_cache_words=get(
                "REPRO_GHOST_CACHE_WORDS", messaging.GHOST_CACHE_WORDS,
                # >= 0: zero disables the cross-round ghost cache.
                _env_int, 0,
            ),
            max_shard_retries=get(
                "REPRO_MAX_SHARD_RETRIES", pool.MAX_SHARD_RETRIES,
                _env_int, 0,
            ),
            retry_backoff_s=get(
                "REPRO_RETRY_BACKOFF_S", pool.RETRY_BACKOFF_S,
                _env_float, 0.0, 3600.0,
            ),
            pool_deadline_s=get(
                "REPRO_POOL_DEADLINE_S", pool.POOL_DEADLINE_S,
                _env_float, 0.001, float("inf"),
            ),
            pool_deadline_scale=get(
                "REPRO_POOL_DEADLINE_SCALE", pool.POOL_DEADLINE_SCALE,
                _env_float, 1.0, float("inf"),
            ),
            pool_degrade=get(
                "REPRO_POOL_DEGRADE", pool.POOL_DEGRADE, _env_bool
            ),
            engine=get("REPRO_ENGINE", None, _env_engine),
        )

    def with_overrides(self, **changes) -> "EngineConfig":
        """A copy with ``changes`` applied (convenience for call sites)."""
        return replace(self, **changes)
