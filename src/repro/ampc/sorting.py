"""Constant-round deterministic sorting — the §6.4 MPC/AMPC primitive.

The proof of Theorem 1.3(3) sorts out-neighbor records by
``(ID(v), col(u))`` so each vertex's candidates land on contiguous
machines ("constant round deterministic sorting is a well known AMPC/MPC
primitive [CDP20, Goo99, GSZ11]").  We model the standard sample-sort
skeleton on the broadcast tree:

1. every machine sorts its shard locally (free: local computation);
2. machines send S^{1/2} evenly spaced splitter candidates up the tree;
3. the root picks global splitters and broadcasts them;
4. records route to their bucket machine (one all-to-all round);
5. bucket machines merge locally.

Rounds charged: two tree sweeps + one routing round = O(1/δ).  The
returned permutation is the true sorted order (we sort honestly — the
model only decides the *cost*), and the reported
:class:`SortCostReport` exposes the round/bandwidth profile, including
the max bucket size so space violations are visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.ampc.mpc import MPCSimulator

__all__ = ["SortCostReport", "broadcast_tree_sort"]


@dataclass
class SortCostReport:
    """Cost profile of one distributed sort."""

    rounds_charged: int
    num_machines: int
    splitters: int
    max_bucket: int  # largest per-machine bucket after routing
    within_space: bool


def _route_buckets(keys: list[Any], splitters: list[Any]) -> list[int]:
    """Bucket index per key: count of splitters <= key (exact semantics of
    the per-splitter scan this replaces, via bisection on sorted splitters)."""
    if not splitters:
        return [0] * len(keys)
    try:
        # Ragged tuple keys make asarray itself raise on numpy >= 1.24 and
        # out-of-int64 ints overflow; those (and any non-numeric dtype)
        # take the scan fallback below.
        key_arr = np.asarray(keys)
        split_arr = np.asarray(splitters)
    except (ValueError, OverflowError):
        key_arr = split_arr = None
    if (
        key_arr is not None
        and key_arr.ndim == 1
        and split_arr.ndim == 1
        # Same-kind arrays only: mixed int/float would promote int64 keys
        # to float64 and lose ULP-level exactness vs the Python scan.
        and (
            (key_arr.dtype.kind in "iu" and split_arr.dtype.kind in "iu")
            or (key_arr.dtype.kind == "f" and split_arr.dtype.kind == "f")
        )
    ):
        return np.searchsorted(split_arr, key_arr, side="right").tolist()
    out = []
    for k in keys:
        lo = 0
        for i, split in enumerate(splitters):
            if k >= split:
                lo = i + 1
        out.append(lo)
    return out


def broadcast_tree_sort(
    mpc: MPCSimulator,
    items: Sequence[Any],
    key: Callable[[Any], Any] | None = None,
) -> tuple[list[Any], SortCostReport]:
    """Sort ``items`` on the simulated cluster; return (sorted, report)."""
    key = key if key is not None else (lambda item: item)
    shards = mpc.shard(list(items))
    rounds_before = mpc.rounds
    # Local sort per shard (no communication).
    shards = [sorted(shard, key=key) for shard in shards]
    # Splitter candidates up the tree: ~sqrt(S) per machine.
    per_machine = max(1, int(mpc.space_limit**0.5))
    candidates: list[Any] = []
    for shard in shards:
        if not shard:
            continue
        step = max(1, len(shard) // per_machine)
        candidates.extend(key(shard[i]) for i in range(0, len(shard), step))
    mpc.aggregate_sums([[float(len(candidates))]])  # one up-sweep (counts)
    candidates.sort()
    # Root chooses one splitter per machine boundary, broadcasts down.
    num_buckets = max(1, len(shards))
    splitters = [
        candidates[(i * len(candidates)) // num_buckets]
        for i in range(1, num_buckets)
    ] if candidates else []
    mpc.broadcast(words=max(1, len(splitters)))
    # Routing round: every record moves to its bucket.  A record's bucket
    # is the number of splitters <= its key; splitters are sorted, so for
    # numeric keys that is one vectorized np.searchsorted instead of an
    # O(|items| * |splitters|) Python scan (tuple keys keep the scan).
    buckets: list[list[Any]] = [[] for _ in range(num_buckets)]
    scan_items = [item for shard in shards for item in shard]
    bucket_ids = _route_buckets([key(item) for item in scan_items], splitters)
    for item, bucket in zip(scan_items, bucket_ids):
        buckets[bucket].append(item)
    mpc.charge_local_round()
    merged: list[Any] = []
    max_bucket = 0
    for bucket in buckets:
        bucket.sort(key=key)
        max_bucket = max(max_bucket, len(bucket))
        merged.extend(bucket)
    report = SortCostReport(
        rounds_charged=mpc.rounds - rounds_before,
        num_machines=len(shards),
        splitters=len(splitters),
        max_bucket=max_bucket,
        within_space=max_bucket <= 2 * mpc.space_limit,
    )
    return merged, report
