"""Constant-round deterministic sorting — the §6.4 MPC/AMPC primitive.

The proof of Theorem 1.3(3) sorts out-neighbor records by
``(ID(v), col(u))`` so each vertex's candidates land on contiguous
machines ("constant round deterministic sorting is a well known AMPC/MPC
primitive [CDP20, Goo99, GSZ11]").  We model the standard sample-sort
skeleton on the broadcast tree:

1. every machine sorts its shard locally (free: local computation);
2. machines send S^{1/2} evenly spaced splitter candidates up the tree;
3. the root picks global splitters and broadcasts them;
4. records route to their bucket machine (one all-to-all round);
5. bucket machines merge locally.

Rounds charged: two tree sweeps + one routing round = O(1/δ).  The
returned permutation is the true sorted order (we sort honestly — the
model only decides the *cost*), and the reported
:class:`SortCostReport` exposes the round/bandwidth profile, including
the max bucket size so space violations are visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.ampc.mpc import MPCSimulator

__all__ = ["SortCostReport", "broadcast_tree_sort"]


@dataclass
class SortCostReport:
    """Cost profile of one distributed sort."""

    rounds_charged: int
    num_machines: int
    splitters: int
    max_bucket: int  # largest per-machine bucket after routing
    within_space: bool


def broadcast_tree_sort(
    mpc: MPCSimulator,
    items: Sequence[Any],
    key: Callable[[Any], Any] | None = None,
) -> tuple[list[Any], SortCostReport]:
    """Sort ``items`` on the simulated cluster; return (sorted, report)."""
    key = key if key is not None else (lambda item: item)
    shards = mpc.shard(list(items))
    rounds_before = mpc.rounds
    # Local sort per shard (no communication).
    shards = [sorted(shard, key=key) for shard in shards]
    # Splitter candidates up the tree: ~sqrt(S) per machine.
    per_machine = max(1, int(mpc.space_limit**0.5))
    candidates: list[Any] = []
    for shard in shards:
        if not shard:
            continue
        step = max(1, len(shard) // per_machine)
        candidates.extend(key(shard[i]) for i in range(0, len(shard), step))
    mpc.aggregate_sums([[float(len(candidates))]])  # one up-sweep (counts)
    candidates.sort()
    # Root chooses one splitter per machine boundary, broadcasts down.
    num_buckets = max(1, len(shards))
    splitters = [
        candidates[(i * len(candidates)) // num_buckets]
        for i in range(1, num_buckets)
    ] if candidates else []
    mpc.broadcast(words=max(1, len(splitters)))
    # Routing round: every record moves to its bucket.
    buckets: list[list[Any]] = [[] for _ in range(num_buckets)]
    for shard in shards:
        for item in shard:
            k = key(item)
            lo = 0
            for i, split in enumerate(splitters):
                if k >= split:
                    lo = i + 1
            buckets[lo].append(item)
    mpc.charge_local_round()
    merged: list[Any] = []
    max_bucket = 0
    for bucket in buckets:
        bucket.sort(key=key)
        max_bucket = max(max_bucket, len(bucket))
        merged.extend(bucket)
    report = SortCostReport(
        rounds_charged=mpc.rounds - rounds_before,
        num_machines=len(shards),
        splitters=len(splitters),
        max_bucket=max_bucket,
        within_space=max_bucket <= 2 * mpc.space_limit,
    )
    return merged, report
