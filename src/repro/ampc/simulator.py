"""The AMPC execution engine — Section 3.1 made runnable.

An :class:`AMPCSimulator` owns the sequence of data stores D_0, D_1, ...
and the round loop.  Client algorithms (e.g. Theorem 1.2 in
:mod:`repro.core.beta_partition_ampc`) drive it in one of two ways:

- :meth:`round` with a list of ``(machine_id, run)`` tasks; each task's
  ``run(ctx)`` reads adaptively from the previous store through the
  budgeted :class:`MachineContext` and writes to the next store.  Works
  against either store backend.
- :meth:`round_vectorized` with a single *kernel* that executes the whole
  machine fleet as array operations over a columnar store
  (:class:`~repro.ampc.columnar.ColumnStore`) and reports per-machine
  communication in bulk.  Observationally identical to :meth:`round` —
  same stores, same statistics, same strict-budget failures — at a
  fraction of the interpreter cost.

The backend is selected at construction: ``store="dict"`` keeps the
dict-of-lists :class:`~repro.ampc.dds.DataStore` (the semantics oracle);
``store="columnar"`` uses array-backed stores keyed by (kind, vertex)
columns.  Machines are simulated sequentially by default — the model is
synchronous, and within a round machines only read D_{i-1}, so sequential
execution is observationally identical to parallel execution.  That same
independence is what lets vectorized kernels shard a round's fleet across
OS processes (:mod:`repro.ampc.pool`): shards report per-machine counts
through :meth:`~repro.ampc.machine.BatchMachineContext.account_at` in
completion order, and the deferred strict scan plus commutative store
folds keep the outcome bit-identical to the serial schedule.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable

from repro.ampc.columnar import ColumnStore
from repro.ampc.cost import ExecutionStats, RoundStats
from repro.ampc.dds import DataStore
from repro.ampc.machine import BatchMachineContext, MachineContext

__all__ = ["AMPCSimulator"]

Task = tuple[Any, Callable[[MachineContext], None]]


class AMPCSimulator:
    """Round-synchronous AMPC machine with explicit stores and budgets.

    Parameters
    ----------
    input_size:
        N = n + m, determines the space budget.
    delta:
        Local space exponent; S = ceil(N^delta).
    strict_space:
        Raise :class:`~repro.ampc.machine.SpaceExceeded` on budget
        violation instead of recording it.
    space_slack:
        Multiplier on S before enforcement (the model allows O(S)).
    store:
        Store backend: "dict" (the oracle) or "columnar" (array-backed;
        requires ``num_vertices``).
    num_vertices:
        Vertex universe size for columnar stores.
    """

    def __init__(
        self,
        input_size: int,
        delta: float = 0.5,
        strict_space: bool = False,
        space_slack: float = 1.0,
        store: str = "dict",
        num_vertices: int | None = None,
    ) -> None:
        if input_size < 1:
            raise ValueError("input_size must be >= 1")
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        if store not in ("dict", "columnar"):
            raise ValueError('store must be "dict" or "columnar"')
        if store == "columnar" and num_vertices is None:
            raise ValueError("columnar stores need num_vertices")
        self.input_size = input_size
        self.delta = delta
        self.space_limit = max(1, math.ceil(input_size**delta * space_slack))
        self.strict_space = strict_space
        self.store_kind = store
        self.num_vertices = num_vertices
        self.stores: list[DataStore | ColumnStore] = [self._new_store("D0")]
        self.stats = ExecutionStats(
            input_size=input_size, space_per_machine=self.space_limit
        )

    def _new_store(self, name: str) -> DataStore | ColumnStore:
        if self.store_kind == "columnar":
            return ColumnStore(self.num_vertices, name=name)
        return DataStore(name=name)

    @property
    def current_store(self) -> DataStore | ColumnStore:
        """The most recently completed store D_i."""
        return self.stores[-1]

    def load_input(self, pairs: Iterable[tuple[Any, Any]]) -> None:
        """Populate D_0 with the input (free: input placement is given)."""
        store = self.stores[0]
        for key, value in pairs:
            store.write(key, value)

    def port_to_current(self, pairs: Iterable[tuple[Any, Any]]) -> None:
        """Write pairs into the *current* store (DDS-side porting).

        Models the bookkeeping machines of Theorem 1.2's proof that "can
        compute deg_{G_{i+1}}(u) ... and port the edges of G_{i+1} to
        D_{i+1}" within the same round; no extra round is charged.
        """
        store = self.stores[-1]
        for key, value in pairs:
            store.write(key, value)

    def port_residual_csr(self, alive, offsets, targets) -> None:
        """Columnar porting: install the residual graph as CSR columns.

        The bulk counterpart of feeding :meth:`port_to_current` (or
        :meth:`load_input`, for D_0) the ``("deg", v)`` / ``("adj", v, j)``
        pair stream; charges no round, like the pair-based porting.
        """
        store = self.stores[-1]
        if not isinstance(store, ColumnStore):
            raise TypeError("port_residual_csr requires a columnar store")
        store.load_residual_csr(alive, offsets, targets)

    def round(
        self,
        tasks: Iterable[Task],
        reducer: Callable[[list[Any]], Any] | None = None,
    ) -> DataStore | ColumnStore:
        """Execute one AMPC round of per-machine tasks.

        Every task reads from the current store and writes to a fresh next
        store.  ``reducer``, if given, collapses multi-valued keys in the
        new store afterwards (DDS-side merge, e.g. min over layer proofs).
        Returns the new store.
        """
        previous = self.stores[-1]
        target = self._new_store(f"D{len(self.stores)}")
        stats = RoundStats(round_index=len(self.stats.rounds))
        for machine_id, run in tasks:
            ctx = MachineContext(
                machine_id=machine_id,
                previous=previous,
                target=target,
                space_limit=self.space_limit,
                strict=self.strict_space,
            )
            run(ctx)
            stats.machines_active += 1
            stats.max_reads = max(stats.max_reads, ctx.reads)
            stats.max_writes = max(stats.max_writes, ctx.writes)
            stats.total_reads += ctx.reads
            stats.total_writes += ctx.writes
        if reducer is not None:
            target.reduce_per_key(reducer)
        stats.store_words = target.total_words()
        stats.dds_held_words = target.held_words()
        self.stats.rounds.append(stats)
        self.stores.append(target)
        return target

    def round_vectorized(
        self,
        machine_ids,
        kernel: Callable[[BatchMachineContext], None],
        reducer: Callable[[list[Any]], Any] | None = None,
    ) -> ColumnStore:
        """Execute one AMPC round as a single batched kernel.

        ``kernel(batch)`` runs every machine of ``machine_ids`` against the
        previous store's columns, writes the next store's columns, and
        reports per-machine communication through ``batch.account``.  The
        recorded :class:`~repro.ampc.cost.RoundStats` are identical to
        running the same machines one at a time through :meth:`round`.
        """
        if self.store_kind != "columnar":
            raise TypeError("round_vectorized requires a columnar simulator")
        previous = self.stores[-1]
        target = self._new_store(f"D{len(self.stores)}")
        batch = BatchMachineContext(
            machine_ids=machine_ids,
            previous=previous,
            target=target,
            space_limit=self.space_limit,
            strict=self.strict_space,
        )
        kernel(batch)
        # Deferred budget scan for kernels that account piecemeal via
        # account_at (memoized replays, pool shards); immediate account()
        # calls have already checked, so this is idempotent for them.
        batch.check_strict()
        if reducer is not None:
            target.reduce_per_key(reducer)
        stats = RoundStats.from_machine_counts(
            round_index=len(self.stats.rounds),
            reads=batch.reads,
            writes=batch.writes,
            store_words=target.total_words(),
            dds_held_words=target.held_words(),
        )
        self.stats.rounds.append(stats)
        self.stores.append(target)
        return target

    def charge_rounds(self, count: int, note: str = "") -> None:
        """Account for rounds executed by a closed-form simulation step.

        The coloring pipelines simulate LOCAL algorithms whose AMPC round
        cost is established analytically (Sections 6.1-6.3); this charges
        those rounds without materialising per-node machine tasks.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        for _ in range(count):
            self.stats.rounds.append(
                RoundStats(round_index=len(self.stats.rounds))
            )
