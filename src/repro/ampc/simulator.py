"""The AMPC execution engine — Section 3.1 made runnable.

An :class:`AMPCSimulator` owns the sequence of data stores D_0, D_1, ...
and the round loop.  Client algorithms (e.g. Theorem 1.2 in
:mod:`repro.core.beta_partition_ampc`) call :meth:`round` with a list of
``(machine_id, run)`` tasks; each task's ``run(ctx)`` reads adaptively from
the previous store through the budgeted :class:`MachineContext` and writes
to the next store.  The simulator records per-round statistics and can
enforce the S = N^δ budget strictly.

Machines are simulated sequentially — the model is synchronous, and within
a round machines only read D_{i-1}, so sequential execution is
observationally identical to parallel execution.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable

from repro.ampc.cost import ExecutionStats, RoundStats
from repro.ampc.dds import DataStore
from repro.ampc.machine import MachineContext

__all__ = ["AMPCSimulator"]

Task = tuple[Any, Callable[[MachineContext], None]]


class AMPCSimulator:
    """Round-synchronous AMPC machine with explicit stores and budgets.

    Parameters
    ----------
    input_size:
        N = n + m, determines the space budget.
    delta:
        Local space exponent; S = ceil(N^delta).
    strict_space:
        Raise :class:`~repro.ampc.machine.SpaceExceeded` on budget
        violation instead of recording it.
    space_slack:
        Multiplier on S before enforcement (the model allows O(S)).
    """

    def __init__(
        self,
        input_size: int,
        delta: float = 0.5,
        strict_space: bool = False,
        space_slack: float = 1.0,
    ) -> None:
        if input_size < 1:
            raise ValueError("input_size must be >= 1")
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        self.input_size = input_size
        self.delta = delta
        self.space_limit = max(1, math.ceil(input_size**delta * space_slack))
        self.strict_space = strict_space
        self.stores: list[DataStore] = [DataStore(name="D0")]
        self.stats = ExecutionStats(
            input_size=input_size, space_per_machine=self.space_limit
        )

    @property
    def current_store(self) -> DataStore:
        """The most recently completed store D_i."""
        return self.stores[-1]

    def load_input(self, pairs: Iterable[tuple[Any, Any]]) -> None:
        """Populate D_0 with the input (free: input placement is given)."""
        store = self.stores[0]
        for key, value in pairs:
            store.write(key, value)

    def port_to_current(self, pairs: Iterable[tuple[Any, Any]]) -> None:
        """Write pairs into the *current* store (DDS-side porting).

        Models the bookkeeping machines of Theorem 1.2's proof that "can
        compute deg_{G_{i+1}}(u) ... and port the edges of G_{i+1} to
        D_{i+1}" within the same round; no extra round is charged.
        """
        store = self.stores[-1]
        for key, value in pairs:
            store.write(key, value)

    def round(
        self,
        tasks: Iterable[Task],
        reducer: Callable[[list[Any]], Any] | None = None,
    ) -> DataStore:
        """Execute one AMPC round.

        Every task reads from the current store and writes to a fresh next
        store.  ``reducer``, if given, collapses multi-valued keys in the
        new store afterwards (DDS-side merge, e.g. min over layer proofs).
        Returns the new store.
        """
        previous = self.stores[-1]
        target = DataStore(name=f"D{len(self.stores)}")
        stats = RoundStats(round_index=len(self.stats.rounds))
        for machine_id, run in tasks:
            ctx = MachineContext(
                machine_id=machine_id,
                previous=previous,
                target=target,
                space_limit=self.space_limit,
                strict=self.strict_space,
            )
            run(ctx)
            stats.machines_active += 1
            stats.max_reads = max(stats.max_reads, ctx.reads)
            stats.max_writes = max(stats.max_writes, ctx.writes)
            stats.total_reads += ctx.reads
            stats.total_writes += ctx.writes
        if reducer is not None:
            target.reduce_per_key(reducer)
        stats.store_words = target.total_words()
        self.stats.rounds.append(stats)
        self.stores.append(target)
        return target

    def charge_rounds(self, count: int, note: str = "") -> None:
        """Account for rounds executed by a closed-form simulation step.

        The coloring pipelines simulate LOCAL algorithms whose AMPC round
        cost is established analytically (Sections 6.1-6.3); this charges
        those rounds without materialising per-node machine tasks.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        for _ in range(count):
            self.stats.rounds.append(
                RoundStats(round_index=len(self.stats.rounds))
            )
