"""Barenboim–Elkin H-partition by global peeling, with round accounting.

This is the classic LOCAL/sequential algorithm the paper generalizes
(Section 3.4 discussion): repeatedly put all vertices of current degree
<= β in the next layer and delete them.  One peel step corresponds to one
round in LOCAL — and to one AMPC round in the high-arboricity fallback of
Theorem 1.2, where the coin-dropping LCA cannot be afforded.

For β >= (2+ε)α, Lemma 3.4 guarantees each peel removes at least a
(1 - 2α/β) fraction of remaining vertices, so the number of layers is
O(log_{β/2α} n).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.graph import Graph
from repro.partition.beta_partition import PartialBetaPartition
from repro.partition.induced import natural_beta_partition

__all__ = ["HPartitionResult", "h_partition"]


@dataclass
class HPartitionResult:
    """Outcome of the peeling process."""

    partition: PartialBetaPartition
    rounds: int  # number of peel steps = number of layers produced
    completed: bool  # False if peeling stalled (happens iff beta too small)


def h_partition(graph: Graph, beta: int) -> HPartitionResult:
    """Peel ``graph`` into layers of degree <= β.

    The resulting layering *is* the natural β-partition σ_{V,β}
    (Definition 3.12 with S = V — the peel step and the induced-partition
    step coincide), so we reuse that computation and report peel rounds.
    """
    partition = natural_beta_partition(graph, beta)
    rounds = partition.max_layer() + 1
    completed = not partition.is_partial(graph.vertices())
    return HPartitionResult(partition=partition, rounds=rounds, completed=completed)
