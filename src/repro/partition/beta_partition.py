"""(Partial) β-partitions — Definition 3.5 — and the min-merge of Lemma 4.10.

A β-partition assigns every vertex a layer from ``N ∪ {∞}`` such that each
vertex with a finite layer has at most β neighbors in the same or higher
layers (∞ counts as higher).  If any vertex has layer ∞ the partition is
*partial*.  Layers are stored as a dict ``vertex -> layer`` with ∞
represented by :data:`INFINITY` (``float("inf")``), which keeps min-merging
and comparisons natural.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.graphs.graph import Graph

__all__ = ["INFINITY", "PartialBetaPartition", "merge_min"]

INFINITY: float = float("inf")

Layer = float  # an int layer or INFINITY


@dataclass
class PartialBetaPartition:
    """Layer assignment λ: V -> N ∪ {∞} with validation helpers.

    ``layers`` maps every vertex of the host graph to its layer.  Vertices
    absent from the mapping are treated as ∞ (convenient for proofs ℓ_u
    defined on small subgraphs, Remark 4.8).
    """

    layers: dict[int, Layer] = field(default_factory=dict)

    def layer(self, v: int) -> Layer:
        """Layer of ``v`` (∞ if unassigned)."""
        return self.layers.get(v, INFINITY)

    def layer_array(self, n: int) -> np.ndarray:
        """Layers of vertices ``0..n-1`` as a float vector (∞ = unassigned).

        The bulk counterpart of :meth:`layer` used by the vectorized layer
        grouping and recoloring paths.
        """
        out = np.full(n, INFINITY)
        if self.layers:
            ids = np.fromiter(self.layers.keys(), dtype=np.int64, count=len(self.layers))
            vals = np.fromiter(
                (float(lay) for lay in self.layers.values()),
                dtype=np.float64,
                count=len(self.layers),
            )
            in_range = (ids >= 0) & (ids < n)
            out[ids[in_range]] = vals[in_range]
        return out

    def assigned_vertices(self) -> list[int]:
        """Vertices with a finite layer."""
        return [v for v, lay in self.layers.items() if lay != INFINITY]

    def infinity_vertices(self, universe: Iterable[int]) -> list[int]:
        """Vertices of ``universe`` whose layer is ∞."""
        return [v for v in universe if self.layer(v) == INFINITY]

    def size(self) -> int:
        """Number of distinct non-∞ layers (Definition 3.5 'size')."""
        return len({lay for lay in self.layers.values() if lay != INFINITY})

    def max_layer(self) -> int:
        """Largest finite layer (-1 if none assigned)."""
        finite = [lay for lay in self.layers.values() if lay != INFINITY]
        return int(max(finite)) if finite else -1

    def is_partial(self, universe: Iterable[int]) -> bool:
        """True if some vertex of ``universe`` has layer ∞."""
        return any(self.layer(v) == INFINITY for v in universe)

    # -- validation --------------------------------------------------------

    def violations(self, graph: Graph, beta: int) -> list[int]:
        """Vertices violating Definition 3.5: finite layer but more than β
        neighbors in the same or higher layer (∞ counts as higher)."""
        bad = []
        for v in graph.vertices():
            lay = self.layer(v)
            if lay == INFINITY:
                continue
            high = sum(1 for w in graph.neighbors(v) if self.layer(int(w)) >= lay)
            if high > beta:
                bad.append(v)
        return bad

    def is_valid(self, graph: Graph, beta: int) -> bool:
        """True if this is a valid (partial) β-partition of ``graph``."""
        return not self.violations(graph, beta)

    def is_valid_on_subset(self, graph: Graph, beta: int, subset: set[int]) -> bool:
        """Lemma 4.7 style check: the layering of ``subset`` restricted to
        G[subset] is a β-partition (neighbors outside the subset ignored)."""
        for v in subset:
            lay = self.layer(v)
            if lay == INFINITY:
                return False
            high = sum(
                1
                for w in graph.neighbors(v)
                if int(w) in subset and self.layer(int(w)) >= lay
            )
            if high > beta:
                return False
        return True

    def copy(self) -> "PartialBetaPartition":
        """Independent copy."""
        return PartialBetaPartition(dict(self.layers))


def merge_min(partitions: Iterable[Mapping[int, Layer] | PartialBetaPartition]) -> PartialBetaPartition:
    """Pointwise minimum of partial β-partitions (Lemma 4.10).

    The minimum of partial β-partitions is again a partial β-partition, and
    a vertex is finite in the merge iff it is finite in any input.  This is
    how the AMPC algorithm combines per-node proofs into one consistent
    global partition (Section 2.3).
    """
    merged: dict[int, Layer] = {}
    for part in partitions:
        mapping = part.layers if isinstance(part, PartialBetaPartition) else part
        for v, lay in mapping.items():
            if lay < merged.get(v, INFINITY):
                merged[v] = lay
    return PartialBetaPartition(merged)
