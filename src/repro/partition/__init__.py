"""β-partitions: definitions 3.5/3.6/3.9/3.12 and the H-partition peeler."""

from repro.partition.beta_partition import INFINITY, PartialBetaPartition, merge_min
from repro.partition.dependency import dependency_set, dependency_sizes
from repro.partition.hpartition import HPartitionResult, h_partition
from repro.partition.induced import (
    induced_beta_partition,
    induced_partition_from_view,
    natural_beta_partition,
)

__all__ = [
    "HPartitionResult",
    "INFINITY",
    "PartialBetaPartition",
    "dependency_set",
    "dependency_sizes",
    "h_partition",
    "induced_beta_partition",
    "induced_partition_from_view",
    "merge_min",
    "natural_beta_partition",
]
