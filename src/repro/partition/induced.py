"""S-induced and natural β-partitions — Definitions 3.6 and 3.12.

The S-induced β-partition σ_{S,β} is built by synchronous peeling: at step
i, every still-unlayered vertex of S with at most β *∞-neighbors in G*
(neighbors outside S stay ∞ forever) receives layer i.  Crucially, degrees
refer to the *original* graph G, which is why an LCA can evaluate σ_{S,β}
knowing only G[S] and the true degrees of S's vertices (Lemma 4.7).

Two entry points:

- :func:`induced_beta_partition` — whole-graph view, given a Graph and S.
- :func:`induced_partition_from_view` — local view, given the explored
  adjacency among S plus true degrees; this is what the coin-dropping game
  calls every super-iteration.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.graphs.graph import Graph
from repro.partition.beta_partition import INFINITY, PartialBetaPartition

__all__ = [
    "induced_beta_partition",
    "induced_partition_from_view",
    "natural_beta_partition",
]


def induced_partition_from_view(
    adjacency: Mapping[int, Iterable[int]],
    true_degree: Mapping[int, int],
    beta: int,
) -> PartialBetaPartition:
    """σ_{S,β} from a local view: S = keys of ``adjacency``.

    ``adjacency[v]`` must list v's neighbors *within S* (symmetric), and
    ``true_degree[v]`` its degree in the full graph G.  Neighbors of v
    outside S therefore contribute ``true_degree[v] - |adjacency[v]|``
    permanently-∞ neighbors.

    Synchronous peeling, layer = step index, O(|S| + |E(G[S])|) total.
    """
    if beta < 1:
        raise ValueError("beta must be >= 1")
    inf_count: dict[int, int] = {}
    for v, nbrs in adjacency.items():
        deg = true_degree[v]
        known = 0
        for w in nbrs:
            if w not in adjacency:
                raise ValueError(f"adjacency not closed: {w} missing")
            known += 1
        if known > deg:
            raise ValueError(f"vertex {v}: more known neighbors than degree")
        # All deg neighbors start ∞ (inside-S ones unassigned, outside-S
        # ones forever).
        inf_count[v] = deg
    layers: dict[int, float] = {v: INFINITY for v in adjacency}
    frontier = [v for v in adjacency if inf_count[v] <= beta]
    layer_index = 0
    while frontier:
        for v in frontier:
            layers[v] = layer_index
        next_frontier: list[int] = []
        for v in frontier:
            for w in adjacency[v]:
                if layers[w] == INFINITY:
                    inf_count[w] -= 1
                    if inf_count[w] == beta:  # just crossed the threshold
                        next_frontier.append(w)
        frontier = next_frontier
        layer_index += 1
    return PartialBetaPartition(layers)


def induced_beta_partition(graph: Graph, subset: Iterable[int], beta: int) -> PartialBetaPartition:
    """σ_{S,β} for S = ``subset`` over the full graph (Definition 3.6).

    Vertices outside S keep layer ∞ (and are included in the returned
    mapping so Lemma 3.8 comparisons are direct).

    Synchronous peeling runs directly on the CSR arrays: each step is a
    bulk gather of the frontier's adjacency plus a ``np.bincount``
    decrement, instead of per-vertex dict walks.
    """
    if beta < 1:
        raise ValueError("beta must be >= 1")
    n = graph.num_vertices
    subset_arr = np.unique(np.fromiter((int(v) for v in subset), dtype=np.int64))
    in_s = np.zeros(n, dtype=bool)
    in_s[subset_arr] = True
    # All true-degree neighbors start ∞ (inside-S ones unassigned,
    # outside-S ones forever); only S-members can ever be peeled.
    inf_count = graph.degrees().copy()
    layer_vec = np.full(n, INFINITY)
    unassigned = in_s.copy()
    frontier = subset_arr[inf_count[subset_arr] <= beta]
    layer_index = 0
    while frontier.size:
        layer_vec[frontier] = layer_index
        unassigned[frontier] = False
        nbrs, __ = graph.neighbors_of(frontier)
        nbrs = nbrs[unassigned[nbrs]]
        if nbrs.size:
            # Work stays proportional to the frontier's volume: decrement
            # only the touched vertices, never a full-n vector.
            touched, drops = np.unique(nbrs, return_counts=True)
            old = inf_count[touched]
            new = old - drops
            inf_count[touched] = new
            frontier = touched[(old > beta) & (new <= beta)]
        else:
            frontier = np.empty(0, dtype=np.int64)
        layer_index += 1
    layers: dict[int, float] = {
        v: (lay if lay == INFINITY else int(lay))
        for v, lay in enumerate(layer_vec.tolist())
    }
    return PartialBetaPartition(layers)


def natural_beta_partition(graph: Graph, beta: int) -> PartialBetaPartition:
    """The natural β-partition ℓ_β = σ_{V,β} (Definition 3.12).

    For β >= (2+ε)α this is the Barenboim-Elkin H-partition: every vertex
    receives a finite layer and the number of layers is O(log n).
    """
    return induced_beta_partition(graph, graph.vertices(), beta)
