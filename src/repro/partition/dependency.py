"""Dependency graphs — Definition 3.9 — and their structural lemmas.

The dependency graph D(σ, v) contains every vertex reachable from v along
paths of strictly decreasing layers.  It "testifies" v's layer: if an LCA
has explored a superset of D(ℓ_β, v), its locally simulated layer for v is
exact (Lemma 3.14).  The coin-dropping game's analysis charges progress
against D, and experiment E1 measures how |D| distributes over vertices.
"""

from __future__ import annotations

from collections import deque

from repro.graphs.graph import Graph
from repro.partition.beta_partition import INFINITY, PartialBetaPartition

__all__ = ["dependency_set", "dependency_sizes"]


def dependency_set(graph: Graph, partition: PartialBetaPartition, v: int) -> set[int]:
    """D(σ, v): vertices reachable from v via strictly decreasing layers.

    Empty when σ(v) = ∞ (Definition 3.9).
    """
    if partition.layer(v) == INFINITY:
        return set()
    result = {v}
    queue = deque([v])
    while queue:
        u = queue.popleft()
        lay_u = partition.layer(u)
        for w in graph.neighbors(u):
            w = int(w)
            if w not in result and partition.layer(w) < lay_u:
                result.add(w)
                queue.append(w)
    return result


def dependency_sizes(graph: Graph, partition: PartialBetaPartition) -> dict[int, int]:
    """|D(σ, v)| for every vertex, computed in one pass.

    Uses the nested property (Observation 3.10): D(σ, w) ⊆ D(σ, v) whenever
    w ∈ D(σ, v).  We still compute sizes independently per vertex via BFS —
    sizes are *not* additive across children because dependency sets
    overlap — but we share the layer lookups.
    """
    return {v: len(dependency_set(graph, partition, v)) for v in graph.vertices()}
