"""Tests for the randomized Luby-style baseline."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.randomized import luby_plus_one_coloring
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_gnm,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.validation import is_proper_coloring


class TestLuby:
    @pytest.mark.parametrize(
        "graph",
        [path_graph(25), cycle_graph(17), star_graph(20), complete_graph(7)],
        ids=["path", "cycle", "star", "clique"],
    )
    def test_proper_on_fixed_shapes(self, graph):
        res = luby_plus_one_coloring(graph, seed=1)
        assert is_proper_coloring(graph, res.colors)

    def test_palette_respects_degree_plus_one(self):
        g = random_gnm(50, 110, seed=2)
        res = luby_plus_one_coloring(g, seed=3)
        assert is_proper_coloring(g, res.colors)
        for v in g.vertices():
            assert res.colors[v] <= g.degree(v)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_random_seeds_random_graphs(self, seed):
        g = random_gnm(40, 70, seed=seed % 1000)
        res = luby_plus_one_coloring(g, seed=seed)
        assert is_proper_coloring(g, res.colors)

    def test_logarithmic_rounds(self):
        g = random_gnm(200, 500, seed=4)
        res = luby_plus_one_coloring(g, seed=5)
        assert res.local_rounds <= 4 * math.log2(200)

    def test_reproducible_from_seed(self):
        g = random_gnm(40, 70, seed=6)
        a = luby_plus_one_coloring(g, seed=7)
        b = luby_plus_one_coloring(g, seed=7)
        assert a.colors == b.colors
        assert a.local_rounds == b.local_rounds

    def test_different_seeds_usually_differ(self):
        g = random_gnm(60, 150, seed=8)
        a = luby_plus_one_coloring(g, seed=1)
        b = luby_plus_one_coloring(g, seed=2)
        assert a.colors != b.colors

    def test_edgeless(self):
        g = Graph.from_edges(5, [])
        res = luby_plus_one_coloring(g, seed=9)
        assert res.colors == [0] * 5
        assert res.local_rounds == 1

    def test_round_cap_enforced(self):
        g = complete_graph(8)
        with pytest.raises(RuntimeError):
            luby_plus_one_coloring(g, seed=10, max_rounds=0)
