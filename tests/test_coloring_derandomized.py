"""Tests for Theorem 1.5: deterministic MPC coloring."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.derandomized_mpc import deterministic_mpc_coloring
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_gnm,
    star_graph,
    union_of_random_forests,
)
from repro.graphs.graph import Graph
from repro.graphs.validation import is_proper_coloring


class TestBasics:
    def test_empty_graph(self):
        res = deterministic_mpc_coloring(Graph.from_edges(0, []), x=2)
        assert res.colors == []

    def test_edgeless_graph_single_color(self):
        res = deterministic_mpc_coloring(Graph.from_edges(4, []), x=2)
        assert res.colors == [0] * 4
        assert res.num_colors == 1

    def test_x_below_two_rejected(self):
        with pytest.raises(ValueError):
            deterministic_mpc_coloring(path_graph(3), x=1)

    def test_palette_bound(self):
        g = random_gnm(60, 150, seed=1)
        for x in (2, 4):
            res = deterministic_mpc_coloring(g, x=x)
            target = 2 * x * g.max_degree()
            assert res.num_colors == 2 ** math.ceil(math.log2(target))
            assert res.num_colors < 4 * x * g.max_degree()
            assert all(0 <= c < res.num_colors for c in res.colors)


class TestProperness:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(30),
            cycle_graph(21),
            star_graph(25),
            complete_graph(9),
        ],
        ids=["path", "cycle", "star", "clique"],
    )
    def test_fixed_shapes(self, graph):
        res = deterministic_mpc_coloring(graph, x=2)
        assert is_proper_coloring(graph, res.colors)

    @given(st.integers(min_value=0, max_value=2**31), st.sampled_from([2, 3, 5]))
    @settings(max_examples=8, deadline=None)
    def test_random_graphs(self, seed, x):
        g = random_gnm(40, 80, seed=seed)
        res = deterministic_mpc_coloring(g, x=x)
        assert is_proper_coloring(g, res.colors)


class TestDeterministicGuarantees:
    def test_uncolored_decays_by_factor_x(self):
        """The conditional-expectations invariant: |U_{i+1}| <= |U_i| / x."""
        g = union_of_random_forests(120, 3, seed=2)
        for x in (2, 3):
            res = deterministic_mpc_coloring(g, x=x)
            hist = res.uncolored_history
            for before, after in zip(hist, hist[1:]):
                assert after <= before / x

    def test_phase_bound_log_x_n(self):
        g = union_of_random_forests(100, 2, seed=3)
        for x in (2, 4):
            res = deterministic_mpc_coloring(g, x=x)
            assert res.phases <= math.log(100) / math.log(x) + 1

    def test_fully_deterministic(self):
        g = random_gnm(50, 120, seed=4)
        a = deterministic_mpc_coloring(g, x=2)
        b = deterministic_mpc_coloring(g, x=2)
        assert a.colors == b.colors
        assert a.mpc_rounds == b.mpc_rounds

    def test_batch_bits_affect_rounds_not_output_validity(self):
        g = random_gnm(40, 70, seed=5)
        wide = deterministic_mpc_coloring(g, x=2, batch_bits=4)
        narrow = deterministic_mpc_coloring(g, x=2, batch_bits=1)
        assert is_proper_coloring(g, wide.colors)
        assert is_proper_coloring(g, narrow.colors)
        assert narrow.mpc_rounds >= wide.mpc_rounds

    def test_rounds_accounted(self):
        g = random_gnm(30, 50, seed=6)
        res = deterministic_mpc_coloring(g, x=2)
        assert res.mpc_rounds > 0
        assert res.max_message_words >= 1
