"""Tests for graph generators and their certified properties."""

from __future__ import annotations

import pytest

from repro.graphs.arboricity import degeneracy, exact_arboricity
from repro.graphs.generators import (
    complete_ary_tree,
    complete_graph,
    cycle_graph,
    grid_2d,
    hypercube,
    path_graph,
    preferential_attachment,
    random_forest,
    random_gnm,
    random_tree,
    skewed_dependency_gadget,
    star_graph,
    union_of_random_forests,
)
from repro.graphs.validation import is_forest
from repro.partition.dependency import dependency_set
from repro.partition.induced import natural_beta_partition


class TestDeterministicShapes:
    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.max_degree() == 2
        assert g.degree(0) == 1

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges == 10
        assert g.max_degree() == 4

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 6
        assert all(g.degree(v) == 1 for v in range(1, 7))

    def test_grid(self):
        g = grid_2d(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_hypercube(self):
        g = hypercube(4)
        assert g.num_vertices == 16
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert g.num_edges == 32

    def test_complete_ary_tree(self):
        g = complete_ary_tree(3, 2)
        assert g.num_vertices == 1 + 3 + 9
        assert g.num_edges == g.num_vertices - 1
        assert g.degree(0) == 3


class TestRandomGenerators:
    def test_random_tree_is_spanning_tree(self):
        g = random_tree(50, seed=1)
        assert g.num_edges == 49
        assert is_forest(50, list(g.edges()))
        assert len(g.connected_components()) == 1

    def test_random_tree_deterministic(self):
        assert random_tree(30, seed=5) == random_tree(30, seed=5)
        assert random_tree(30, seed=5) != random_tree(30, seed=6)

    def test_random_forest_edge_count_and_acyclicity(self):
        g = random_forest(40, 25, seed=2)
        assert g.num_edges == 25
        assert is_forest(40, list(g.edges()))

    def test_random_forest_too_many_edges(self):
        with pytest.raises(ValueError):
            random_forest(10, 10, seed=0)

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_union_of_forests_arboricity_certificate(self, k):
        g = union_of_random_forests(60, k, seed=3)
        assert exact_arboricity(g) <= k

    def test_union_of_forests_density_near_k(self):
        g = union_of_random_forests(300, 3, seed=4)
        # Dedup loses a few edges, but density stays close to k.
        assert g.num_edges >= 2.5 * (g.num_vertices - 1)

    def test_gnm_exact_edges(self):
        g = random_gnm(30, 50, seed=5)
        assert g.num_edges == 50

    def test_gnm_too_dense_rejected(self):
        with pytest.raises(ValueError):
            random_gnm(4, 7, seed=0)

    def test_preferential_attachment_degeneracy(self):
        g = preferential_attachment(200, 3, seed=6)
        assert degeneracy(g) <= 3
        assert g.max_degree() > 6  # hubs emerge

    def test_preferential_attachment_tiny_n(self):
        g = preferential_attachment(3, 5, seed=0)
        assert g == complete_graph(3)


class TestSkewedGadget:
    def test_chain_layers_strictly_decreasing(self):
        beta, length = 3, 4
        g, chain = skewed_dependency_gadget(beta, length, fan=5)
        nat = natural_beta_partition(g, beta)
        layers = [nat.layer(c) for c in chain]
        assert layers == [length - i for i in range(length)]
        assert nat.is_valid(g, beta)

    def test_dependency_graph_contains_chain(self):
        beta = 2
        g, chain = skewed_dependency_gadget(beta, 3, fan=4)
        nat = natural_beta_partition(g, beta)
        dep = dependency_set(g, nat, chain[0])
        assert set(chain) <= dep

    def test_decoy_outside_dependency_graph(self):
        beta, length = 3, 3
        g, chain = skewed_dependency_gadget(beta, length, fan=4, decoy_fan=6)
        nat = natural_beta_partition(g, beta)
        decoy = length  # documented: first fresh id
        assert nat.layer(decoy) == nat.layer(chain[0])  # same layer as w_0
        dep = dependency_set(g, nat, chain[0])
        assert decoy not in dep
        assert nat.is_valid(g, beta)

    def test_decoy_has_high_degree(self):
        beta, length = 2, 3
        g, chain = skewed_dependency_gadget(beta, length, fan=2, decoy_fan=10)
        assert g.degree(length) == 10 + 1  # trees + w_0

    def test_small_decoy_fan_rejected(self):
        with pytest.raises(ValueError):
            skewed_dependency_gadget(3, 3, fan=2, decoy_fan=2)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            skewed_dependency_gadget(1, 3, fan=2)
        with pytest.raises(ValueError):
            skewed_dependency_gadget(2, 0, fan=2)

    def test_gadget_arboricity_is_one_tree_like(self):
        # Chain + pendant trees + fans = a tree plus the chain edges: still
        # arboricity 1 (it is connected and acyclic by construction).
        g, __ = skewed_dependency_gadget(2, 3, fan=3)
        assert is_forest(g.num_vertices, list(g.edges()))
