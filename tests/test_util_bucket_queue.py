"""Tests for the bucket priority queue."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bucket_queue import BucketQueue


class TestBasics:
    def test_insert_pop_single(self):
        q = BucketQueue(10)
        q.insert(7, 3)
        assert q.pop_min() == (7, 3)
        assert len(q) == 0

    def test_pop_orders_by_key(self):
        q = BucketQueue(10)
        q.insert(1, 5)
        q.insert(2, 2)
        q.insert(3, 8)
        assert q.pop_min() == (2, 2)
        assert q.pop_min() == (1, 5)
        assert q.pop_min() == (3, 8)

    def test_contains_and_key_of(self):
        q = BucketQueue(5)
        q.insert(4, 2)
        assert 4 in q
        assert 5 not in q
        assert q.key_of(4) == 2

    def test_duplicate_insert_rejected(self):
        q = BucketQueue(5)
        q.insert(1, 1)
        with pytest.raises(ValueError):
            q.insert(1, 2)

    def test_pop_empty_raises(self):
        q = BucketQueue(5)
        with pytest.raises(IndexError):
            q.pop_min()

    def test_negative_max_key_rejected(self):
        with pytest.raises(ValueError):
            BucketQueue(-1)


class TestDecreaseKey:
    def test_decrease_moves_item(self):
        q = BucketQueue(10)
        q.insert(1, 9)
        q.insert(2, 5)
        q.decrease_key(1, 0)
        assert q.pop_min() == (1, 0)

    def test_decrease_below_cursor_still_found(self):
        # Pop once (cursor advances), then decrease another item below the
        # cursor: the queue must rewind.
        q = BucketQueue(10)
        q.insert(1, 3)
        q.insert(2, 6)
        assert q.pop_min() == (1, 3)
        q.decrease_key(2, 1)
        assert q.pop_min() == (2, 1)

    def test_increase_is_noop(self):
        q = BucketQueue(10)
        q.insert(1, 2)
        q.decrease_key(1, 7)  # not a decrease: ignored
        assert q.key_of(1) == 2


class TestAgainstSortedReference:
    @given(
        st.lists(
            st.tuples(st.integers(0, 99), st.integers(0, 20)),
            min_size=1,
            max_size=50,
            unique_by=lambda t: t[0],
        )
    )
    def test_pop_sequence_is_sorted_by_key(self, items):
        q = BucketQueue(20)
        for item, key in items:
            q.insert(item, key)
        popped = []
        while len(q):
            popped.append(q.pop_min())
        assert [k for __, k in popped] == sorted(k for __, k in items)
        assert {i for i, __ in popped} == {i for i, __ in items}
