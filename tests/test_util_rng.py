"""Tests for the SplitMix64 PRNG."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import SplitMix64


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = SplitMix64(42)
        b = SplitMix64(42)
        assert [a.next_u64() for _ in range(20)] == [b.next_u64() for _ in range(20)]

    def test_different_seeds_differ(self):
        a = SplitMix64(1)
        b = SplitMix64(2)
        assert [a.next_u64() for _ in range(5)] != [b.next_u64() for _ in range(5)]

    def test_known_reference_value(self):
        # SplitMix64 with seed 0: first output is a fixed constant of the
        # algorithm (regression pin so the stream never silently changes).
        assert SplitMix64(0).next_u64() == 0xE220A8397B1DCDAF

    def test_split_gives_independent_stream(self):
        a = SplitMix64(7)
        child = a.split()
        assert child.next_u64() != a.next_u64()


class TestDistributions:
    @given(st.integers(min_value=1, max_value=10**9), st.integers(min_value=0))
    def test_randrange_in_range(self, n, seed):
        rng = SplitMix64(seed)
        for _ in range(10):
            assert 0 <= rng.randrange(n) < n

    def test_randrange_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SplitMix64(0).randrange(0)

    def test_randint_inclusive_bounds(self):
        rng = SplitMix64(3)
        values = {rng.randint(2, 4) for _ in range(200)}
        assert values == {2, 3, 4}

    def test_randint_rejects_inverted(self):
        with pytest.raises(ValueError):
            SplitMix64(0).randint(5, 4)

    def test_random_unit_interval(self):
        rng = SplitMix64(9)
        for _ in range(100):
            f = rng.random()
            assert 0.0 <= f < 1.0

    def test_randrange_covers_all_residues(self):
        rng = SplitMix64(11)
        seen = {rng.randrange(7) for _ in range(500)}
        assert seen == set(range(7))


class TestShuffleSample:
    def test_shuffle_is_permutation(self):
        rng = SplitMix64(5)
        items = list(range(50))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # overwhelmingly likely

    def test_shuffle_empty_and_single(self):
        rng = SplitMix64(5)
        empty: list[int] = []
        rng.shuffle(empty)
        assert empty == []
        single = [1]
        rng.shuffle(single)
        assert single == [1]

    @given(st.integers(min_value=0, max_value=30), st.integers(min_value=0))
    def test_sample_distinct_and_in_range(self, n, seed):
        rng = SplitMix64(seed)
        k = min(n, 10)
        result = rng.sample(n, k)
        assert len(result) == k
        assert len(set(result)) == k
        assert all(0 <= v < n for v in result)

    def test_sample_full_population(self):
        rng = SplitMix64(13)
        assert sorted(rng.sample(10, 10)) == list(range(10))

    def test_sample_rejects_oversized(self):
        with pytest.raises(ValueError):
            SplitMix64(0).sample(3, 4)
