"""Tests for sequential coloring baselines."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.greedy import (
    degeneracy_coloring,
    greedy_coloring,
    orientation_greedy_coloring,
)
from repro.core.orientation import orient_by_partition
from repro.graphs.arboricity import degeneracy
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_gnm,
    star_graph,
    union_of_random_forests,
)
from repro.graphs.validation import count_colors, is_proper_coloring
from repro.partition.induced import natural_beta_partition


class TestGreedy:
    def test_path_two_colors(self):
        g = path_graph(10)
        colors = greedy_coloring(g)
        assert is_proper_coloring(g, colors)
        assert count_colors(g, colors) == 2

    def test_clique_full_palette(self):
        g = complete_graph(6)
        colors = greedy_coloring(g)
        assert count_colors(g, colors) == 6

    def test_delta_plus_one_bound(self):
        g = random_gnm(50, 120, seed=1)
        colors = greedy_coloring(g)
        assert is_proper_coloring(g, colors)
        assert max(colors) <= g.max_degree()

    def test_custom_order(self):
        g = star_graph(5)
        colors = greedy_coloring(g, order=[1, 2, 3, 4, 0])
        assert is_proper_coloring(g, colors)
        assert colors[0] == 1  # hub colored last


class TestDegeneracyColoring:
    def test_tree_two_colors(self):
        g = union_of_random_forests(60, 1, seed=2)
        colors = degeneracy_coloring(g)
        assert is_proper_coloring(g, colors)
        assert count_colors(g, colors) <= 2

    def test_degeneracy_plus_one_bound(self):
        for seed in range(4):
            g = random_gnm(40, 100, seed=seed)
            colors = degeneracy_coloring(g)
            assert is_proper_coloring(g, colors)
            assert max(colors) <= degeneracy(g)

    def test_cycle_three_colors(self):
        g = cycle_graph(9)
        colors = degeneracy_coloring(g)
        assert is_proper_coloring(g, colors)
        assert count_colors(g, colors) <= 3


class TestOrientationGreedy:
    @given(st.integers(min_value=0, max_value=2**31), st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_out_degree_plus_one(self, seed, alpha):
        g = union_of_random_forests(60, alpha, seed=seed)
        beta = math.ceil(3 * alpha)
        p = natural_beta_partition(g, beta)
        ori = orient_by_partition(g, p)
        colors = orientation_greedy_coloring(ori)
        assert is_proper_coloring(g, colors)
        assert max(colors) <= ori.max_out_degree()
