"""Tests for Lemma 5.1: arboricity-oblivious β-partitioning."""

from __future__ import annotations

import pytest

from repro.core.guessing import beta_partition_unknown_alpha
from repro.graphs.generators import (
    complete_graph,
    path_graph,
    union_of_random_forests,
)
from repro.graphs.graph import Graph


class TestGuessing:
    def test_tree_accepts_tiny_guess(self):
        g = path_graph(20)
        result = beta_partition_unknown_alpha(g)
        assert result.guessed_alpha <= 2
        assert not result.outcome.partition.is_partial(g.vertices())

    def test_forest_union_completes_validly(self):
        g = union_of_random_forests(80, 3, seed=1)
        result = beta_partition_unknown_alpha(g)
        beta = result.outcome.beta
        assert result.outcome.partition.is_valid(g, beta)
        assert not result.outcome.partition.is_partial(g.vertices())

    def test_guess_close_to_true_alpha(self):
        # alpha <= 3 here; the accepted guess never exceeds alpha by more
        # than the (1+eps)^2 refinement slack (eps=1 -> factor 4).
        g = union_of_random_forests(80, 3, seed=2)
        result = beta_partition_unknown_alpha(g, eps=1.0)
        assert result.guessed_alpha <= 4 * 3

    def test_dense_graph_needs_larger_guess(self):
        g = complete_graph(12)  # alpha = 6
        result = beta_partition_unknown_alpha(g)
        assert result.guessed_alpha >= 2
        assert not result.outcome.partition.is_partial(g.vertices())

    def test_attempt_log_records_failures(self):
        g = complete_graph(12)
        result = beta_partition_unknown_alpha(g)
        assert any(not ok for __, ok in result.attempts) or result.attempts[0][1]
        assert result.total_rounds >= result.outcome.rounds

    def test_round_accounting_split(self):
        g = union_of_random_forests(60, 2, seed=3)
        result = beta_partition_unknown_alpha(g)
        assert result.total_rounds == result.sequential_rounds + result.parallel_rounds

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            beta_partition_unknown_alpha(Graph.from_edges(0, []))
