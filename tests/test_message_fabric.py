"""The message-passing shard fabric must be invisible — and must bind.

``transport="message"`` replaces "every worker attaches the whole shared
CSR" with owner-hashed shards that hold only their residual slice plus a
bounded ghost fringe (:mod:`repro.ampc.messaging`).  Two contracts:

1. **Invisibility** — partitions, layers, probe counts, per-round stats,
   and store words are bit-identical to the ``transport="shm"`` oracle
   for any shard count and either engine, on randomized inputs, across
   retirement rounds, with zero-game shards, and through the bigint
   ejection path.
2. **The S budget binds** — a graph whose full CSR exceeds one shard's
   budget colors correctly with enough shards (strict accounting of
   every held array stays under budget), and an under-budgeted shard
   raises :class:`MemoryGuardError` loudly instead of over-holding.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ampc.engine_config import EngineConfig
from repro.ampc.messaging import (
    MemoryGuard,
    MemoryGuardError,
    MessageFabric,
    owner_of,
)
from repro.core import batched_games, native
from repro.core.beta_partition_ampc import beta_partition_ampc
from repro.graphs.generators import (
    complete_ary_tree,
    path_graph,
    preferential_attachment,
    random_gnm,
    union_of_random_forests,
)

SHARD_MATRIX = (1, 2, 3, 8)


def _assert_equivalent(oracle, candidate, compare_held=False):
    """Candidate vs oracle: observationally identical (the same checks
    as the (store, engine, workers) differential harness)."""
    assert candidate.partition.layers == oracle.partition.layers
    assert candidate.rounds == oracle.rounds
    assert candidate.mode == oracle.mode
    assert candidate.x == oracle.x
    assert candidate.unlayered_per_round == oracle.unlayered_per_round
    sa, sb = oracle.simulator.stats, candidate.simulator.stats
    assert sb.space_per_machine == sa.space_per_machine
    assert len(sb.rounds) == len(sa.rounds)
    fields = [
        "round_index", "machines_active", "max_reads", "max_writes",
        "total_reads", "total_writes", "store_words",
    ]
    if compare_held:  # same store backend on both sides
        fields.append("dds_held_words")
    for ra, rb in zip(sa.rounds, sb.rounds):
        for field in fields:
            assert getattr(rb, field) == getattr(ra, field), field
    for store_a, store_b in zip(
        oracle.simulator.stores, candidate.simulator.stores
    ):
        assert store_b.total_words() == store_a.total_words()


class TestOwnerHash:
    def test_deterministic_and_vectorized(self):
        ids = np.arange(500, dtype=np.int64)
        a = owner_of(ids, 7)
        b = owner_of(ids, 7)
        assert (a == b).all()
        assert all(owner_of(np.asarray([v]), 7)[0] == a[v] for v in (0, 3, 499))

    def test_spreads_consecutive_ids(self):
        # splitmix64 scatters contiguous ranges: no shard may own a
        # wildly disproportionate slice of a consecutive id block.
        counts = np.bincount(owner_of(np.arange(4096), 8), minlength=8)
        assert counts.min() > 0
        assert counts.max() < 2 * 4096 // 8


class TestMemoryGuard:
    def test_accounts_by_tag_and_raises(self):
        guard = MemoryGuard(budget_words=100, name="shard[3]")
        guard.account("owned_rows", 60)
        guard.account("ghost_fringe", 30)
        assert guard.current == 90
        guard.account("ghost_fringe", 10)  # replace, not add
        assert guard.current == 70
        with pytest.raises(MemoryGuardError) as err:
            guard.account("game_scratch", 40)
        assert "shard[3]" in str(err.value)
        assert "owned_rows=60" in str(err.value)

    def test_peaks_and_release(self):
        guard = MemoryGuard()  # unbudgeted: accounts but never raises
        guard.account("a", 50)
        guard.begin_round()
        guard.account("b", 30)
        guard.release("b")
        assert guard.current == 50
        assert guard.round_peak == 80
        assert guard.peak == 80
        guard.begin_round()
        assert guard.round_peak == 50

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            MemoryGuard(budget_words=0)
        with pytest.raises(ValueError):
            MemoryGuard().account("t", -1)

    def test_over_budget_charge_rolls_back(self):
        # The over-budget charge must not be committed before the raise:
        # a caller that catches the error continues with accounting that
        # reflects what the shard actually holds, not the rejected
        # charge, and the peaks stay unpolluted.
        guard = MemoryGuard(budget_words=100)
        guard.account("owned_rows", 60)
        guard.begin_round()
        with pytest.raises(MemoryGuardError):
            guard.account("game_scratch", 70)
        assert guard.held_words() == 60
        assert guard.peak == 60
        assert guard.round_peak == 60
        # The rejected tag holds nothing; a later in-budget charge of
        # the same tag accounts from a clean slate.
        guard.account("game_scratch", 30)
        assert guard.held_words() == 90
        with pytest.raises(MemoryGuardError):
            guard.account("game_scratch", 50)
        assert guard.held_words() == 90  # replace-charge rolled back too
        guard.release("game_scratch")
        assert guard.held_words() == 60


class TestShardCountInvariance:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=3, deadline=None)
    def test_randomized_transport_matrix_batched(self, seed):
        g = union_of_random_forests(60, 1, seed=seed)
        oracle = beta_partition_ampc(g, 3, x=4, store="dict")
        shm = beta_partition_ampc(g, 3, x=4, store="columnar")
        _assert_equivalent(oracle, shm)
        for shards in SHARD_MATRIX:
            msg = beta_partition_ampc(
                g, 3, x=4, store="columnar", transport="message",
                shards=shards,
            )
            assert msg.transport == "message"
            assert msg.shards == shards
            _assert_equivalent(oracle, msg)
            _assert_equivalent(shm, msg, compare_held=True)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=2, deadline=None)
    def test_randomized_transport_matrix_scalar(self, seed):
        g = union_of_random_forests(50, 1, seed=seed)
        oracle = beta_partition_ampc(g, 3, x=4, store="dict")
        for shards in SHARD_MATRIX:
            msg = beta_partition_ampc(
                g, 3, x=4, store="columnar", engine="scalar",
                transport="message", shards=shards,
            )
            _assert_equivalent(oracle, msg)

    @pytest.mark.skipif(
        not native.available(), reason="compiled wave kernel unavailable"
    )
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=2, deadline=None)
    def test_randomized_transport_matrix_compiled(self, seed):
        g = union_of_random_forests(60, 1, seed=seed)
        oracle = beta_partition_ampc(g, 3, x=4, store="dict")
        for shards in SHARD_MATRIX:
            msg = beta_partition_ampc(
                g, 3, x=4, store="columnar", engine="compiled",
                transport="message", shards=shards,
            )
            assert msg.engine == "compiled"
            _assert_equivalent(oracle, msg)

    def test_gnm_with_default_budget_games(self):
        # Denser shape at the default x = (β+1)²: deeper balls, several
        # ghost-exchange sub-rounds per round.
        g = random_gnm(70, 140, seed=13)
        oracle = beta_partition_ampc(g, 7, store="dict")
        msg = beta_partition_ampc(
            g, 7, store="columnar", transport="message", shards=3
        )
        _assert_equivalent(oracle, msg)
        assert any(c.get("subrounds", 0) > 0 for c in msg.round_comm)

    def test_multi_round_retirement_pruning(self):
        # x = β+1 certifies one layer per round: several residuals, so
        # retirement notices must prune every shard's owned rows down to
        # exactly the next residual CSR.
        beta = 3
        g = complete_ary_tree(beta + 1, 4)
        oracle = beta_partition_ampc(g, beta, x=beta + 1, store="dict")
        msg = beta_partition_ampc(
            g, beta, x=beta + 1, store="columnar", transport="message",
            shards=3,
        )
        assert oracle.rounds >= 2
        _assert_equivalent(oracle, msg)
        assert sum(c.get("retirement_words", 0) for c in msg.round_comm) > 0

    def test_zero_game_shard(self):
        # 8 shards on a 10-vertex forest: some shards own zero games and
        # zero rows, yet still serve folds and count in every round.
        g = union_of_random_forests(10, 1, seed=3)
        oracle = beta_partition_ampc(g, 3, store="dict")
        msg = beta_partition_ampc(
            g, 3, store="columnar", transport="message", shards=8
        )
        owners = owner_of(np.arange(g.num_vertices), 8)
        assert len(set(range(8)) - set(owners.tolist())) > 0
        _assert_equivalent(oracle, msg)

    def test_bigint_ejected_game_under_message(self, monkeypatch):
        # A tiny scale budget forces real ejections: the shard must
        # replay ejected games through the scalar bigint path against
        # its *local* compacted CSR and still commit exact transcripts.
        monkeypatch.setattr(batched_games, "SCALE_LIMIT", 1 << 24)
        g = preferential_attachment(150, 2, seed=11)
        oracle = beta_partition_ampc(g, 6, store="dict")
        msg = beta_partition_ampc(
            g, 6, store="columnar", transport="message", shards=3
        )
        assert sum(c.get("ejected_games", 0) for c in msg.round_comm) > 0
        _assert_equivalent(oracle, msg)

    @pytest.mark.skipif(
        not native.available(), reason="compiled wave kernel unavailable"
    )
    def test_bigint_ejected_game_under_message_compiled(self, monkeypatch):
        # Same adversarial budget through the fused C kernel: its
        # division-guarded escalation must eject the identical game set
        # and the shard replays them scalar-side, bit for bit.
        monkeypatch.setattr(batched_games, "SCALE_LIMIT", 1 << 24)
        g = preferential_attachment(150, 2, seed=11)
        oracle = beta_partition_ampc(g, 6, store="dict")
        msg = beta_partition_ampc(
            g, 6, store="columnar", engine="compiled",
            transport="message", shards=3,
        )
        assert sum(c.get("ejected_games", 0) for c in msg.round_comm) > 0
        _assert_equivalent(oracle, msg)


class TestBudgetBinds:
    def test_budget_below_full_csr_passes_with_enough_shards(self):
        # The acceptance scenario: the full residual CSR does not fit in
        # one shard's budget, yet 32 shards color the graph bit-identical
        # to the serial oracle while every shard stays under budget.
        g = union_of_random_forests(4000, 1, seed=7)
        csr_words = g.num_vertices + 1 + 2 * g.num_edges
        budget = int(csr_words * 0.85)
        oracle = beta_partition_ampc(g, 3, x=4, store="columnar")
        msg = beta_partition_ampc(
            g, 3, x=4, store="columnar", transport="message", shards=32,
            shard_budget=budget,
        )
        assert csr_words > budget
        assert 0 < msg.max_held_words <= budget
        _assert_equivalent(oracle, msg, compare_held=True)
        assert all(
            c["max_held_words"] <= budget for c in msg.round_comm if c
        )

    def test_under_budgeted_shard_raises(self):
        g = union_of_random_forests(200, 1, seed=7)
        with pytest.raises(MemoryGuardError) as err:
            beta_partition_ampc(
                g, 3, x=4, store="columnar", transport="message", shards=2,
                shard_budget=60,
            )
        assert "S budget" in str(err.value)

    def test_strict_space_parity_against_real_held_words(self):
        # A committed game's probe charge equals the real words of its
        # held ball (one degree word + the row per explored vertex), so
        # the strict S scan audits genuine footprint.  Round 0 has no
        # cache hits: its max_reads is exactly the largest fabric ball.
        g = random_gnm(80, 160, seed=2)
        msg = beta_partition_ampc(
            g, 5, store="columnar", transport="message", shards=3
        )
        round0 = msg.simulator.stats.rounds[0]
        assert msg.round_comm[0]["max_game_ball_words"] == round0.max_reads
        assert round0.dds_held_words > 0


class TestFabricSurface:
    def test_outcome_records_transport_and_comm(self):
        g = union_of_random_forests(40, 1, seed=1)
        msg = beta_partition_ampc(
            g, 3, x=4, store="columnar", transport="message", shards=2
        )
        assert msg.transport == "message"
        assert msg.shards == 2
        assert len(msg.round_comm) == msg.rounds
        total = {"messages": 0, "words": 0}
        for comm in msg.round_comm:
            assert comm["shards"] == 2
            for key in total:
                total[key] += comm[key]
        assert total["messages"] > 0 and total["words"] > 0
        assert msg.max_held_words == max(
            c["max_held_words"] for c in msg.round_comm
        )
        shm = beta_partition_ampc(g, 3, x=4, store="columnar")
        assert shm.transport == "shm"
        assert shm.shards == 0
        assert shm.round_comm == []
        assert shm.max_held_words == 0

    def test_dict_store_rejects_message_transport(self):
        g = path_graph(6)
        with pytest.raises(ValueError, match="columnar"):
            beta_partition_ampc(g, 1, x=2, store="dict", transport="message")

    def test_bad_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            beta_partition_ampc(path_graph(4), 1, x=2, transport="carrier")

    def test_peel_mode_unsharded_but_recorded(self):
        g = union_of_random_forests(50, 2, seed=4)
        oracle = beta_partition_ampc(g, 6, mode="peel", store="dict")
        msg = beta_partition_ampc(
            g, 6, mode="peel", store="columnar", transport="message"
        )
        _assert_equivalent(oracle, msg)
        assert msg.transport == "message"
        assert msg.round_comm == []

    def test_smaller_cap_means_more_messages_same_outcome(self):
        g = random_gnm(70, 140, seed=13)
        big = beta_partition_ampc(
            g, 7, store="columnar", transport="message", shards=3
        )
        tiny = beta_partition_ampc(
            g, 7, store="columnar", transport="message", shards=3,
            config=EngineConfig.from_env().with_overrides(
                message_cap_words=16
            ),
        )
        assert tiny.partition.layers == big.partition.layers
        msgs = lambda out: sum(c["messages"] for c in out.round_comm)  # noqa: E731
        words = lambda out: sum(c["words"] for c in out.round_comm)  # noqa: E731
        assert msgs(tiny) > msgs(big)
        assert words(tiny) == words(big)  # cap re-segments, never re-words

    def test_game_cache_rides_the_fabric(self):
        # Cross-round memoization stays driver-side: cached games never
        # enter the fabric, the rest still match the oracle bit for bit.
        g = path_graph(40)
        oracle = beta_partition_ampc(g, 1, x=2, store="dict")
        msg = beta_partition_ampc(
            g, 1, x=2, store="columnar", transport="message", shards=2
        )
        assert msg.game_cache_hits > 0
        _assert_equivalent(oracle, msg)

    def test_fabric_run_round_requires_config_default(self):
        # MessageFabric.run_round without an explicit config snapshots
        # EngineConfig.from_env() — exercised via the public API default.
        fabric = MessageFabric(2, cap_words=64)
        assert fabric.num_shards == 2
        with pytest.raises(ValueError):
            MessageFabric(0)
        with pytest.raises(ValueError):
            MessageFabric(2, cap_words=2)
