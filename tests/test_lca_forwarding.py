"""Tests for forwarding sets (Definition 4.1)."""

from __future__ import annotations

from repro.lca.forwarding import forwarding_set
from repro.partition.beta_partition import INFINITY


class TestForwardingSet:
    def test_small_degree_takes_all(self):
        fset = forwarding_set([1, 2], {1: 0, 2: 1}, {1, 2}, beta=3)
        assert sorted(fset) == [1, 2]

    def test_size_is_beta_plus_one(self):
        neighbors = list(range(10))
        layers = {w: w for w in neighbors}
        fset = forwarding_set(neighbors, layers, set(neighbors), beta=3)
        assert len(fset) == 4

    def test_picks_highest_layers(self):
        neighbors = [1, 2, 3, 4, 5]
        layers = {1: 0, 2: 5, 3: 2, 4: 9, 5: 1}
        fset = forwarding_set(neighbors, layers, set(neighbors), beta=1)
        assert sorted(fset) == [2, 4]

    def test_infinity_beats_finite(self):
        neighbors = [1, 2, 3]
        layers = {1: 100, 2: INFINITY}
        # 3 missing from layers => infinity as well.
        fset = forwarding_set(neighbors, layers, {1, 2}, beta=1)
        assert sorted(fset) == [2, 3]

    def test_unexplored_preferred_among_infinity(self):
        neighbors = [5, 6, 7]
        layers = {5: INFINITY, 6: INFINITY, 7: INFINITY}
        fset = forwarding_set(neighbors, layers, {5}, beta=1)
        # 6 and 7 unexplored: chosen before explored-but-infinity 5.
        assert sorted(fset) == [6, 7]

    def test_id_tiebreak_is_deterministic(self):
        neighbors = [9, 3, 7]
        fset = forwarding_set(neighbors, {}, set(), beta=1)
        assert fset == [3, 7]

    def test_empty_neighbors(self):
        assert forwarding_set([], {}, set(), beta=2) == []
